"""Consolidating public sources into city-level PoP maps (§4.2, Table 3).

The paper merges four source families per provider — published network
maps, looking-glass router listings, PeeringDB facility records, and
rDNS-derived locations — into one city-level topology, then reports how
much of it rDNS alone confirms (73% overall).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..mapping.peeringdb import PeeringDB
from ..netgen.scenario import InternetScenario
from .hoiho import (
    ConventionLearner,
    extract_codes,
    regex_for_convention,
)
from .model import ProviderFootprint
from .rdns import (
    RDNSDataset,
    collect_rdns,
    convention_for,
    generate_footprint,
    pop_rdns_confirmation,
)


@dataclass
class ConsolidatedMap:
    """Per-provider consolidated PoP map with per-source breakdown."""

    provider: str
    asn: int
    from_map: frozenset[str] = frozenset()
    from_looking_glass: frozenset[str] = frozenset()
    from_peeringdb: frozenset[str] = frozenset()
    from_rdns: frozenset[str] = frozenset()

    @property
    def cities(self) -> frozenset[str]:
        return (
            self.from_map
            | self.from_looking_glass
            | self.from_peeringdb
            | self.from_rdns
        )

    @property
    def rdns_confirmed_fraction(self) -> float:
        total = self.cities
        if not total:
            return 0.0
        return len(self.from_rdns & total) / len(total)


@dataclass(frozen=True)
class Table3Row:
    """One row of Table 3."""

    provider: str
    asn: int
    graph_pops: int
    hostnames: int
    rdns_percent: float


@dataclass
class ConsolidationResult:
    """Everything the Table 3 / Fig. 11-12 experiments consume."""

    footprints: dict[str, ProviderFootprint] = field(default_factory=dict)
    maps: dict[str, ConsolidatedMap] = field(default_factory=dict)
    rdns: RDNSDataset = field(default_factory=RDNSDataset)

    def table3(self) -> list[Table3Row]:
        rows = []
        for provider, footprint in self.footprints.items():
            confirmed, total = pop_rdns_confirmation(footprint)
            rows.append(
                Table3Row(
                    provider=provider,
                    asn=footprint.asn,
                    graph_pops=len(self.maps[provider].cities),
                    hostnames=footprint.hostname_count(),
                    rdns_percent=100.0 * confirmed / total if total else 0.0,
                )
            )
        rows.sort(key=lambda r: -r.rdns_percent)
        return rows


def consolidate_provider(
    footprint: ProviderFootprint,
    peeringdb: PeeringDB,
    rdns: RDNSDataset,
    rng: random.Random,
    map_coverage: float = 0.92,
    lg_coverage: float = 0.6,
) -> ConsolidatedMap:
    """Merge the four §4.2 sources for one provider."""
    truth = sorted(footprint.city_codes())
    sources = footprint.sources
    from_map = frozenset(
        code for code in truth if sources.network_map and rng.random() < map_coverage
    )
    from_lg = frozenset(
        code
        for code in truth
        if sources.looking_glass and rng.random() < lg_coverage
    )
    from_pdb = (
        frozenset(peeringdb.facility_cities(footprint.asn))
        if sources.peeringdb
        else frozenset()
    )
    hostnames = [
        router.hostname
        for router in footprint.routers
        if router.hostname is not None
    ]
    manual = regex_for_convention(convention_for(footprint.provider))
    learned = ConventionLearner().learn(hostnames)
    from_rdns = extract_codes(hostnames, learned=learned, manual_pattern=manual)
    return ConsolidatedMap(
        provider=footprint.provider,
        asn=footprint.asn,
        from_map=from_map,
        from_looking_glass=from_lg,
        from_peeringdb=from_pdb,
        from_rdns=from_rdns,
    )


def consolidate_scenario(
    scenario: InternetScenario,
    peeringdb: PeeringDB,
    providers: list[str] | None = None,
    seed: int = 17,
) -> ConsolidationResult:
    """Run the full §4.2 pipeline over a scenario's providers."""
    rng = random.Random(seed)
    if providers is None:
        providers = list(scenario.clouds) + sorted(scenario.transit_labels)
    result = ConsolidationResult()
    for provider in providers:
        footprint = generate_footprint(scenario, provider, rng)
        result.footprints[provider] = footprint
    result.rdns = collect_rdns(list(result.footprints.values()))
    for provider, footprint in result.footprints.items():
        result.maps[provider] = consolidate_provider(
            footprint, peeringdb, result.rdns, rng
        )
    return result
