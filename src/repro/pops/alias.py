"""MIDAR-style alias resolution (§4.2).

MIDAR infers that interface addresses belong to the same router when their
IP-ID time series interleave into a single monotonic sequence (the
Monotonic Bounds Test), after first bucketing candidates by counter
velocity.  We simulate routers with shared IP-ID counters and reproduce
the estimation + MBT structure.
"""

from __future__ import annotations

import ipaddress
import random
from collections import defaultdict
from collections.abc import Iterable, Sequence

from .model import RouterRecord


class ProbeSimulator:
    """Responds to IP-ID probes from ground-truth routers.

    Each router keeps one shared, monotonically increasing IP-ID counter
    (rate varies per router); every interface of the router answers from
    that counter.  Unknown addresses do not respond.
    """

    def __init__(self, routers: Iterable[RouterRecord], seed: int = 0) -> None:
        rng = random.Random(seed)
        self._router_of: dict[int, tuple[int, int]] = {}
        self._base: dict[tuple[int, int], int] = {}
        self._rate: dict[tuple[int, int], float] = {}
        for router in routers:
            key = (router.asn, router.router_id)
            self._base[key] = rng.randrange(0, 20000)
            self._rate[key] = rng.uniform(3.0, 80.0)
            for ip in router.interfaces:
                self._router_of[int(ip)] = key
        self.probe_count = 0

    def responds(self, ip: ipaddress.IPv4Address | str) -> bool:
        return int(ipaddress.IPv4Address(ip)) in self._router_of

    def probe(self, ip: ipaddress.IPv4Address | str, t: float) -> int | None:
        """IP-ID of ``ip`` at time ``t`` (None if unresponsive)."""
        key = self._router_of.get(int(ipaddress.IPv4Address(ip)))
        if key is None:
            return None
        self.probe_count += 1
        return (self._base[key] + int(self._rate[key] * t)) & 0xFFFF


def _velocity(prober: ProbeSimulator, ip, t0: float) -> float | None:
    first = prober.probe(ip, t0)
    second = prober.probe(ip, t0 + 1.0)
    if first is None or second is None:
        return None
    return float((second - first) & 0xFFFF)


def monotonic_bounds_test(
    prober: ProbeSimulator, a, b, t0: float, rounds: int = 4
) -> bool:
    """True if alternating probes of ``a`` and ``b`` form one monotonic
    IP-ID sequence (same shared counter)."""
    series: list[int] = []
    t = t0
    for _ in range(rounds):
        for ip in (a, b):
            value = prober.probe(ip, t)
            if value is None:
                return False
            series.append(value)
            t += 0.05
    unwrapped = [series[0]]
    for value in series[1:]:
        delta = (value - unwrapped[-1]) & 0xFFFF
        unwrapped.append(unwrapped[-1] + delta)
    deltas = [b_ - a_ for a_, b_ in zip(unwrapped, unwrapped[1:])]
    # same counter: small positive steps; different: one giant wrap step
    return all(0 <= d <= 4096 for d in deltas)


def resolve_aliases(
    prober: ProbeSimulator,
    addresses: Sequence[ipaddress.IPv4Address],
    seed: int = 0,
) -> list[frozenset[ipaddress.IPv4Address]]:
    """Group addresses into routers: velocity bucketing + pairwise MBT."""
    rng = random.Random(seed)
    t0 = rng.uniform(0, 10)
    responsive = [ip for ip in addresses if prober.responds(ip)]
    by_velocity: dict[int, list] = defaultdict(list)
    for ip in responsive:
        velocity = _velocity(prober, ip, t0)
        if velocity is not None:
            by_velocity[int(velocity // 8)].append(ip)

    parent: dict[int, int] = {int(ip): int(ip) for ip in responsive}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x: int, y: int) -> None:
        parent[find(x)] = find(y)

    for bucket in by_velocity.values():
        for i, a in enumerate(bucket):
            for b in bucket[i + 1 :]:
                if find(int(a)) == find(int(b)):
                    continue
                if monotonic_bounds_test(prober, a, b, t0 + 20):
                    union(int(a), int(b))

    groups: dict[int, set] = defaultdict(set)
    for ip in responsive:
        groups[find(int(ip))].add(ip)
    return [frozenset(group) for group in groups.values()]


def alias_groups_to_hostnames(
    groups: Iterable[frozenset],
    rdns_lookup,
) -> list[list[str]]:
    """Map alias groups to hostname groups (sc_hoiho's input shape)."""
    out: list[list[str]] = []
    for group in groups:
        names = sorted(
            {name for name in (rdns_lookup(ip) for ip in group) if name}
        )
        if names:
            out.append(names)
    return out
