"""PoP topology maps: rDNS, naming conventions, aliases, consolidation."""

from .alias import (
    ProbeSimulator,
    alias_groups_to_hostnames,
    monotonic_bounds_test,
    resolve_aliases,
)
from .consolidate import (
    ConsolidatedMap,
    ConsolidationResult,
    Table3Row,
    consolidate_provider,
    consolidate_scenario,
)
from .hoiho import (
    KNOWN_CODES,
    ConventionLearner,
    LearnedConvention,
    extract_codes,
    extract_with_regex,
    regex_for_convention,
)
from .model import DataSources, PoP, ProviderFootprint, RouterRecord
from .rdns import (
    CONVENTIONS,
    DEFAULT_CONVENTION,
    NamingConvention,
    RDNSDataset,
    collect_rdns,
    convention_for,
    generate_footprint,
    pop_rdns_confirmation,
    sources_for,
)

__all__ = [
    "CONVENTIONS",
    "ConsolidatedMap",
    "ConsolidationResult",
    "ConventionLearner",
    "DEFAULT_CONVENTION",
    "DataSources",
    "KNOWN_CODES",
    "LearnedConvention",
    "NamingConvention",
    "PoP",
    "ProbeSimulator",
    "ProviderFootprint",
    "RDNSDataset",
    "RouterRecord",
    "Table3Row",
    "alias_groups_to_hostnames",
    "collect_rdns",
    "consolidate_provider",
    "consolidate_scenario",
    "convention_for",
    "extract_codes",
    "extract_with_regex",
    "generate_footprint",
    "monotonic_bounds_test",
    "pop_rdns_confirmation",
    "regex_for_convention",
    "resolve_aliases",
    "sources_for",
]
