"""PoP and router ground-truth models for the §9 analyses."""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Optional

from ..geo.cities import City


@dataclass(frozen=True)
class PoP:
    """A provider's point of presence in one metro."""

    provider: str
    asn: int
    city: City


@dataclass(frozen=True)
class RouterRecord:
    """Ground truth for one router: its interfaces and (optional) rDNS.

    ``hostname`` is the name every interface resolves to (None when the
    provider has no rDNS for this router, as for all of Amazon).
    """

    provider: str
    asn: int
    router_id: int
    city: City
    interfaces: tuple[ipaddress.IPv4Address, ...]
    hostname: Optional[str]


@dataclass(frozen=True)
class DataSources:
    """Which public sources exist for a provider (§4.2's availability
    matrix: e.g. AT&T has a map and rDNS but no PeeringDB entries; Amazon
    has a map and PeeringDB but no rDNS)."""

    network_map: bool = True
    looking_glass: bool = True
    peeringdb: bool = True
    rdns: bool = True


@dataclass
class ProviderFootprint:
    """A provider's PoPs plus generated router/rDNS ground truth."""

    provider: str
    asn: int
    pops: tuple[PoP, ...]
    routers: list[RouterRecord] = field(default_factory=list)
    sources: DataSources = field(default_factory=DataSources)

    def cities(self) -> tuple[City, ...]:
        return tuple(p.city for p in self.pops)

    def city_codes(self) -> frozenset[str]:
        return frozenset(p.city.code for p in self.pops)

    def locations(self) -> list[tuple[float, float]]:
        return [(p.city.lat, p.city.lon) for p in self.pops]

    def hostname_count(self) -> int:
        return sum(
            len(r.interfaces) for r in self.routers if r.hostname is not None
        )
