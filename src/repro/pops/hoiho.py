"""Learning location codes from router hostnames (sc_hoiho-style, §4.2).

The paper extracts PoP locations from router hostnames two ways: manually
written per-provider regexes, and sc_hoiho's automatic naming-convention
learning over MIDAR alias groups — and reports identical results (with a
few providers yielding nothing from the learner due to too few alias
groups).  Both methods are implemented here:

* :func:`regex_for_convention` derives the "manual" regex from a known
  naming convention;
* :class:`ConventionLearner` learns, from hostname samples alone, which
  token position carries a known location code.
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Optional

from ..geo.cities import WORLD_CITIES
from .rdns import NamingConvention

#: Vocabulary of known location codes (the paper uses airport codes).
KNOWN_CODES: frozenset[str] = frozenset(c.code for c in WORLD_CITIES)

_TOKEN_SPLIT = re.compile(r"[.\-]")
_CODE_TOKEN = re.compile(r"^([a-z]{3})\d*$")


def regex_for_convention(convention: NamingConvention) -> Optional[str]:
    """Derive the manual extraction regex from a naming convention."""
    if not convention.template:
        return None
    sentinel = {
        "iface": "000IFACE000",
        "rid": 99991,
        "code": "000CODE000",
        "n": 99992,
        "domain": convention.domain,
    }
    rendered = convention.template.format(**sentinel)
    pattern = re.escape(rendered)
    pattern = pattern.replace("000IFACE000", r"\d+")
    pattern = pattern.replace("99991", r"\d+")
    pattern = pattern.replace("99992", r"\d+")
    pattern = pattern.replace("000CODE000", r"([a-z]{3})")
    return f"^{pattern}$"


def extract_with_regex(hostname: str, pattern: str) -> Optional[str]:
    """Apply a manual regex; returns the location code or None."""
    match = re.match(pattern, hostname)
    if not match:
        return None
    code = match.group(1)
    return code if code in KNOWN_CODES else None


@dataclass(frozen=True)
class LearnedConvention:
    """A learned extraction rule: which token (from the left) holds the
    code, and whether trailing digits must be stripped."""

    token_index: int
    strip_digits: bool
    support: int
    coverage: float

    def extract(self, hostname: str) -> Optional[str]:
        tokens = _TOKEN_SPLIT.split(hostname.lower())
        if self.token_index >= len(tokens):
            return None
        token = tokens[self.token_index]
        if self.strip_digits:
            match = _CODE_TOKEN.match(token)
            token = match.group(1) if match else token
        return token if token in KNOWN_CODES else None


class ConventionLearner:
    """Learn the code-bearing token position from hostname samples.

    Mirrors sc_hoiho's behaviour of requiring enough alias groups: with
    fewer than ``min_support`` distinct samples, learning fails (returns
    ``None``), as the paper observed for several ASes.
    """

    def __init__(self, min_support: int = 8, min_coverage: float = 0.5) -> None:
        self.min_support = min_support
        self.min_coverage = min_coverage

    def learn(self, hostnames: Iterable[str]) -> Optional[LearnedConvention]:
        samples = sorted(set(hostnames))
        if len(samples) < self.min_support:
            return None
        hits: Counter[tuple[int, bool]] = Counter()
        distinct_codes: dict[tuple[int, bool], set[str]] = {}
        for hostname in samples:
            tokens = _TOKEN_SPLIT.split(hostname.lower())
            for index, token in enumerate(tokens):
                for strip in (False, True):
                    candidate = token
                    if strip:
                        match = _CODE_TOKEN.match(token)
                        if not match:
                            continue
                        candidate = match.group(1)
                    if candidate in KNOWN_CODES:
                        hits[(index, strip)] += 1
                        distinct_codes.setdefault((index, strip), set()).add(
                            candidate
                        )
        if not hits:
            return None
        # Prefer the rule matching the most samples; among ties prefer the
        # one extracting the most distinct codes (a constant token like
        # "lon" in a domain name would extract exactly one).
        best, count = max(
            hits.items(),
            key=lambda item: (item[1], len(distinct_codes[item[0]]), -item[0][0]),
        )
        coverage = count / len(samples)
        if coverage < self.min_coverage or len(distinct_codes[best]) < 2:
            return None
        return LearnedConvention(
            token_index=best[0],
            strip_digits=best[1],
            support=len(samples),
            coverage=coverage,
        )


def extract_codes(
    hostnames: Iterable[str],
    learned: Optional[LearnedConvention] = None,
    manual_pattern: Optional[str] = None,
) -> frozenset[str]:
    """All location codes extracted from ``hostnames`` by either method."""
    codes: set[str] = set()
    for hostname in hostnames:
        code = None
        if manual_pattern is not None:
            code = extract_with_regex(hostname, manual_pattern)
        if code is None and learned is not None:
            code = learned.extract(hostname)
        if code is not None:
            codes.add(code)
    return frozenset(codes)
