"""Reverse-DNS generation and collection (§4.2).

Router hostnames encode locations (airport codes etc.) under per-provider
naming conventions.  This module generates each provider's router
interfaces and rDNS entries, reproducing the coverage patterns of Table 3:
NTT-style networks name everything, Microsoft names under half of its
PoPs, and Amazon publishes no router hostnames at all.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass
from typing import Optional

from ..geo.cities import City
from ..netgen.addressing import router_ip
from ..netgen.scenario import InternetScenario
from .model import DataSources, PoP, ProviderFootprint, RouterRecord


@dataclass(frozen=True)
class NamingConvention:
    """One provider's router naming scheme."""

    domain: str
    #: format fields: iface, rid, code (city airport code), n (site number)
    template: str
    #: fraction of PoPs whose routers have rDNS entries (Table 3's "% rDNS")
    pop_coverage: float

    def hostname(self, code: str, rid: int, iface: int, site: int = 1) -> str:
        return self.template.format(
            iface=iface, rid=rid, code=code, n=site, domain=self.domain
        )


#: Conventions loosely modeled on the real networks' schemes, with Table 3's
#: coverage levels.  Providers not listed get the default convention.
CONVENTIONS: dict[str, NamingConvention] = {
    "NTT": NamingConvention("gin.ntt.net", "ae-{iface}.r{rid:02d}.{code}{n:02d}.{domain}", 1.00),
    "Hurricane Electric": NamingConvention("core.he.net", "ge{iface}.core{rid}.{code}{n}.{domain}", 0.99),
    "AT&T": NamingConvention("ip.att.net", "cr{rid}.{code}{n}.{domain}", 0.92),
    "Tata": NamingConvention("as6453.net", "if-ae-{iface}-{rid}.tcore{n}.{code}.{domain}", 0.90),
    "Google": NamingConvention("1e100.net", "{code}{n:02d}s{rid:02d}-in-f{iface}.{domain}", 0.89),
    "PCCW": NamingConvention("pccwbtn.net", "te0-{iface}-0-{rid}.br{n:02d}.{code}.{domain}", 0.85),
    "Vodafone": NamingConvention("vodafone.net", "ae{iface}-xcr{rid}.{code}.cw.{domain}", 0.84),
    "Zayo": NamingConvention("zip.zayo.com", "ae{iface}.cs{rid}.{code}{n}.{domain}", 0.83),
    "Sprint": NamingConvention("sprintlink.net", "sl-crs{rid}-{code}-{iface}.{domain}", 0.67),
    "Telxius": NamingConvention("telxius.net", "{code}{n}-cr{rid}.{domain}", 0.67),
    "Telia": NamingConvention("ip.twelve99.net", "{code}-b{rid}-link.{domain}", 0.65),
    "Microsoft": NamingConvention("ntwk.msn.net", "ae{iface}-0.{code}-96cbe-1b.{domain}", 0.45),
    "Telecom Italia Sparkle": NamingConvention("seabone.net", "{code}{n}-core-{rid}.{domain}", 0.40),
    "Orange": NamingConvention("opentransit.net", "bundle-ether{iface}.{code}cr{rid}.{domain}", 0.27),
    "Amazon": NamingConvention("amazon.com", "", 0.0),
}

DEFAULT_CONVENTION = NamingConvention(
    "backbone.example.net", "ae-{iface}.cr{rid}.{code}{n}.{domain}", 0.73
)

#: §4.2 data-source availability quirks.
SOURCE_OVERRIDES: dict[str, DataSources] = {
    "AT&T": DataSources(peeringdb=False),
    "Amazon": DataSources(rdns=False),
}


def convention_for(provider: str) -> NamingConvention:
    return CONVENTIONS.get(provider, DEFAULT_CONVENTION)


def sources_for(provider: str) -> DataSources:
    return SOURCE_OVERRIDES.get(provider, DataSources())


class RDNSDataset:
    """A collected rDNS snapshot: address → hostname."""

    def __init__(self) -> None:
        self._entries: dict[int, str] = {}

    def add(self, ip: ipaddress.IPv4Address, hostname: str) -> None:
        self._entries[int(ip)] = hostname

    def lookup(self, ip: ipaddress.IPv4Address | str) -> Optional[str]:
        return self._entries.get(int(ipaddress.IPv4Address(ip)))

    def hostnames(self) -> list[str]:
        return sorted(set(self._entries.values()))

    def __len__(self) -> int:
        return len(self._entries)


def generate_footprint(
    scenario: InternetScenario,
    provider: str,
    rng: random.Random,
    routers_per_pop: tuple[int, int] = (2, 4),
    interfaces_per_router: tuple[int, int] = (1, 3),
) -> ProviderFootprint:
    """Generate router/rDNS ground truth for one provider's footprint."""
    asn = scenario.clouds.get(provider) or scenario.transit_labels.get(provider)
    if asn is None:
        raise KeyError(f"unknown provider: {provider!r}")
    cities = scenario.pop_footprints[provider]
    convention = convention_for(provider)
    sources = sources_for(provider)
    prefix = scenario.prefixes[asn]
    footprint = ProviderFootprint(
        provider=provider,
        asn=asn,
        pops=tuple(PoP(provider=provider, asn=asn, city=c) for c in cities),
        sources=sources,
    )
    rid = 0
    for city in cities:
        named_pop = (
            sources.rdns
            and bool(convention.template)
            and rng.random() < convention.pop_coverage
        )
        for _ in range(rng.randint(*routers_per_pop)):
            rid += 1
            n_ifaces = rng.randint(*interfaces_per_router)
            try:
                interfaces = tuple(
                    router_ip(prefix, rid, iface) for iface in range(n_ifaces)
                )
            except ValueError:
                break  # prefix router space exhausted; footprint is enough
            hostname = (
                convention.hostname(city.code, rid, 0, site=1)
                if named_pop
                else None
            )
            footprint.routers.append(
                RouterRecord(
                    provider=provider,
                    asn=asn,
                    router_id=rid,
                    city=city,
                    interfaces=interfaces,
                    hostname=hostname,
                )
            )
    return footprint


def collect_rdns(footprints: list[ProviderFootprint]) -> RDNSDataset:
    """Issue 'rDNS requests' over every provider's address space."""
    dataset = RDNSDataset()
    for footprint in footprints:
        for router in footprint.routers:
            if router.hostname is None:
                continue
            for ip in router.interfaces:
                dataset.add(ip, router.hostname)
    return dataset


def pop_rdns_confirmation(footprint: ProviderFootprint) -> tuple[int, int]:
    """(PoPs with at least one named router, total PoPs) — Table 3."""
    named_cities = {
        r.city.code for r in footprint.routers if r.hostname is not None
    }
    return len(named_cities & footprint.city_codes()), len(footprint.pops)
