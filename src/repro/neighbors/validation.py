"""Validation of inferred neighbor sets against ground truth (§5).

The paper validated with Google and Microsoft operators; the synthetic
scenario carries exact ground truth, so false-discovery and false-negative
rates are computed directly:

* FDR = FP / (FP + TP) — inferred neighbors that are not real;
* FNR = FN / (FN + TP) — real neighbors the measurements missed.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass


@dataclass(frozen=True)
class ValidationReport:
    """Confusion counts and rates for one cloud's inferred neighbor set."""

    cloud_asn: int
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def inferred_count(self) -> int:
        return self.true_positives + self.false_positives

    @property
    def truth_count(self) -> int:
        return self.true_positives + self.false_negatives

    @property
    def fdr(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.false_positives / denom if denom else 0.0

    @property
    def fnr(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.false_negatives / denom if denom else 0.0

    @property
    def precision(self) -> float:
        return 1.0 - self.fdr

    @property
    def recall(self) -> float:
        return 1.0 - self.fnr

    def as_row(self) -> dict[str, float | int]:
        return {
            "cloud_asn": self.cloud_asn,
            "inferred": self.inferred_count,
            "truth": self.truth_count,
            "tp": self.true_positives,
            "fp": self.false_positives,
            "fn": self.false_negatives,
            "fdr": round(self.fdr, 4),
            "fnr": round(self.fnr, 4),
        }


def validate_neighbors(
    cloud_asn: int,
    inferred: Iterable[int],
    truth: Iterable[int],
) -> ValidationReport:
    """Compare an inferred neighbor set against the real one."""
    inferred_set = set(inferred)
    truth_set = set(truth)
    tp = len(inferred_set & truth_set)
    return ValidationReport(
        cloud_asn=cloud_asn,
        true_positives=tp,
        false_positives=len(inferred_set - truth_set),
        false_negatives=len(truth_set - inferred_set),
    )


def validate_all(
    inferred_by_cloud: Mapping[int, Iterable[int]],
    truth_by_cloud: Mapping[int, Iterable[int]],
) -> dict[int, ValidationReport]:
    """Per-cloud validation reports."""
    return {
        cloud: validate_neighbors(cloud, inferred, truth_by_cloud[cloud])
        for cloud, inferred in inferred_by_cloud.items()
    }
