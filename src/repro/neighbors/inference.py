"""Neighbor inference from cloud traceroutes (§4.1), including the §5
methodology iterations.

The final rule: keep only traceroutes with a cloud hop immediately adjacent
to a hop that resolves to a different AS — no intervening unresponsive or
unmapped hops — and take that adjacent AS as a neighbor.  The paper reached
this rule through several iterations, which are preserved as stages so the
accuracy trajectory (FDR 50% → 11%, FNR 50% → 21% for Microsoft) can be
reproduced and benchmarked:

* **V0** — BGP-only resolution; one unknown/unresponsive hop after the
  cloud may be skipped (assumed not to be an intermediate AS);
* **V1** — discard traceroutes with an unresponsive border hop instead of
  skipping (the skipping rule was the leading cause of false positives);
* **V2** — resolve unmapped addresses through PeeringDB and whois (IXP
  LANs absent from BGP);
* **V3** — add the remaining VM locations (more peers, slightly more
  noise);
* **V4** — prefer PeeringDB over Team Cymru for peering-LAN addresses
  (globally-announced IXP prefixes otherwise resolve to the IXP's ASN).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Optional

from ..mapping.resolver import IterativeResolver
from .. import mapping
from ..traceroute.model import Traceroute


@dataclass(frozen=True)
class InferenceStage:
    """One methodology iteration."""

    name: str
    description: str
    resolution_order: tuple[str, ...]
    skip_one_unknown: bool
    vm_limit: Optional[int]  # None = use every VM


STAGES: tuple[InferenceStage, ...] = (
    InferenceStage(
        name="V0",
        description="initial: BGP-only mapping, skip one unknown hop",
        resolution_order=("cymru",),
        skip_one_unknown=True,
        vm_limit=6,
    ),
    InferenceStage(
        name="V1",
        description="discard traceroutes with unresponsive border hops",
        resolution_order=("cymru",),
        skip_one_unknown=False,
        vm_limit=6,
    ),
    InferenceStage(
        name="V2",
        description="resolve unmapped addresses via PeeringDB and whois",
        resolution_order=("cymru", "peeringdb", "whois"),
        skip_one_unknown=False,
        vm_limit=6,
    ),
    InferenceStage(
        name="V3",
        description="add VMs in the remaining locations",
        resolution_order=("cymru", "peeringdb", "whois"),
        skip_one_unknown=False,
        vm_limit=None,
    ),
    InferenceStage(
        name="V4",
        description="final: prefer PeeringDB over Cymru for IXP addresses",
        resolution_order=("peeringdb", "cymru", "whois"),
        skip_one_unknown=False,
        vm_limit=None,
    ),
)

FINAL_STAGE = STAGES[-1]


def stage_by_name(name: str) -> InferenceStage:
    for stage in STAGES:
        if stage.name == name:
            return stage
    raise KeyError(f"unknown inference stage: {name!r}")


@dataclass
class NeighborInference:
    """Inferred neighbor set for one cloud, with per-neighbor evidence."""

    cloud_asn: int
    neighbors: set[int]
    evidence: dict[int, int]  # neighbor → number of supporting traceroutes
    used: int = 0
    discarded: int = 0


def _resolve_hops(
    trace: Traceroute, resolver: IterativeResolver
) -> list[Optional[int]]:
    resolved: list[Optional[int]] = []
    for hop in trace.hops:
        if hop.ip is None:
            resolved.append(None)
        else:
            answer = resolver.resolve(hop.ip)
            resolved.append(answer.asn if answer else None)
    return resolved


def infer_from_traceroutes(
    cloud_asn: int,
    traceroutes: Iterable[Traceroute],
    resolver: IterativeResolver,
    stage: InferenceStage = FINAL_STAGE,
) -> NeighborInference:
    """Apply one methodology stage to a cloud's traceroutes."""
    if tuple(resolver.order) != stage.resolution_order:
        raise ValueError(
            f"resolver order {resolver.order} does not match stage "
            f"{stage.name} ({stage.resolution_order})"
        )
    result = NeighborInference(
        cloud_asn=cloud_asn, neighbors=set(), evidence=defaultdict(int)
    )
    for trace in traceroutes:
        if trace.cloud_asn != cloud_asn or not trace.reached:
            continue
        if stage.vm_limit is not None and trace.vantage.index >= stage.vm_limit:
            continue
        neighbor = _neighbor_from_trace(trace, resolver, stage)
        if neighbor is None:
            result.discarded += 1
            continue
        result.used += 1
        result.neighbors.add(neighbor)
        result.evidence[neighbor] += 1
    result.evidence = dict(result.evidence)
    return result


def _neighbor_from_trace(
    trace: Traceroute,
    resolver: IterativeResolver,
    stage: InferenceStage,
) -> Optional[int]:
    resolved = _resolve_hops(trace, resolver)
    # locate the last hop of the leading cloud segment
    last_cloud = -1
    for index, asn in enumerate(resolved):
        if asn == trace.cloud_asn:
            last_cloud = index
        else:
            break
    if last_cloud < 0:
        return None  # tunneled away: no cloud hop adjacent to the border
    index = last_cloud + 1
    if index >= len(resolved):
        return None
    candidate = resolved[index]
    if candidate is None and stage.skip_one_unknown:
        index += 1
        candidate = resolved[index] if index < len(resolved) else None
    if candidate is None or candidate == trace.cloud_asn:
        return None
    return candidate


def build_resolver(scenario, stage: InferenceStage) -> IterativeResolver:
    """The resolution cascade matching a stage's service order."""
    return mapping.resolver_from_scenario(
        scenario, order=stage.resolution_order
    )


def infer_all_clouds(
    scenario,
    traceroutes_by_cloud: dict[int, list[Traceroute]],
    stage: InferenceStage = FINAL_STAGE,
) -> dict[int, NeighborInference]:
    """Run one stage for every cloud (sharing one resolver)."""
    resolver = build_resolver(scenario, stage)
    return {
        cloud: infer_from_traceroutes(cloud, traces, resolver, stage)
        for cloud, traces in traceroutes_by_cloud.items()
    }
