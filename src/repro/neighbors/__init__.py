"""Neighbor inference from traceroutes and its validation."""

from .inference import (
    FINAL_STAGE,
    STAGES,
    InferenceStage,
    NeighborInference,
    build_resolver,
    infer_all_clouds,
    infer_from_traceroutes,
    stage_by_name,
)
from .validation import ValidationReport, validate_all, validate_neighbors

__all__ = [
    "FINAL_STAGE",
    "InferenceStage",
    "NeighborInference",
    "STAGES",
    "ValidationReport",
    "build_resolver",
    "infer_all_clouds",
    "infer_from_traceroutes",
    "stage_by_name",
    "validate_all",
    "validate_neighbors",
]
