"""APNIC-style per-AS user population estimates (§4.3).

APNIC estimates how many Internet users sit behind each AS.  We reproduce
the distribution's essentials: only access networks host users; each metro
area's online population is split among the access ASes homed there with
Zipf-like shares (a few dominant eyeball ISPs per market plus a tail).
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping

from ..geo.cities import City

#: fraction of a metro population that is online (coarse global average)
ONLINE_FRACTION = 0.62


def zipf_shares(n: int, exponent: float = 1.0) -> list[float]:
    """Normalized Zipf weights 1/1^s, 1/2^s, ... for ``n`` ranks."""
    if n <= 0:
        return []
    raw = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [value / total for value in raw]


def assign_users(
    access_by_city: Mapping[str, Iterable[int]],
    cities: Mapping[str, City],
    rng: random.Random,
    exponent: float = 1.1,
) -> dict[int, int]:
    """Split each city's online population among its access ASes.

    ``access_by_city`` maps city code → access ASNs homed there; the rank
    order within a city is shuffled deterministically so the dominant
    eyeball ISP differs per market.
    """
    users: dict[int, int] = {}
    for code in sorted(access_by_city):
        asns = sorted(access_by_city[code])
        if not asns:
            continue
        city = cities[code]
        online = city.population_m * 1_000_000.0 * ONLINE_FRACTION
        rng.shuffle(asns)
        for asn, share in zip(asns, zipf_shares(len(asns), exponent)):
            users[asn] = users.get(asn, 0) + int(online * share)
    return users


def eyeball_ases(users: Mapping[int, int]) -> frozenset[int]:
    """ASes hosting at least one user (the paper's 'eyeball networks')."""
    return frozenset(asn for asn, count in users.items() if count > 0)
