"""Scenario configuration profiles for the synthetic Internet generator.

The generator replaces the paper's external datasets (CAIDA relationship
snapshots, cloud VM traceroutes, PeeringDB, APNIC populations) with
synthetic equivalents.  Profiles encode the qualitative facts the paper
reports so the reproduced experiments exhibit the same shapes:

* the four clouds differ in peering policy — Google open (7,757 neighbors
  in 2020), Microsoft selective (3,580), IBM selective (3,702), Amazon
  restrictive-ish (1,389) — and in transit arrangements (Google had 3
  providers incl. two Tier-1s, Microsoft 7 Tier-1 providers, Amazon ~20);
* 2015's Internet was ~74% of 2020's size (51,801 vs 69,999 ASes) and
  Amazon/Microsoft/IBM peered far less then, while Google was already open;
* BGP feeds see essentially all c2p links but miss most cloud edge
  peerings (90% for Google/Microsoft);
* clouds concentrate PoPs near large metros in NA/EU/Asia; transit
  providers cover more unique locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CloudProfile:
    """Generation knobs for one cloud provider AS."""

    name: str
    asn: int
    #: probability of peering with an eligible edge AS co-located with a PoP
    edge_peer_fraction: float
    #: Tier-1s the cloud peers with (settlement-free)
    tier1_peers: int
    #: Tier-1s the cloud buys transit from
    tier1_providers: int
    #: Tier-2s the cloud buys transit from
    tier2_providers: int
    #: small/regional transit providers the cloud buys from
    other_providers: int
    #: number of PoP metros
    pop_count: int
    #: number of datacenter metros (VM locations are drawn from these)
    datacenter_count: int
    #: VMs used in the measurement campaign
    vm_locations: int
    #: False → tenant traffic exits near the VM (Amazon early exit)
    wan_egress: bool = True
    #: relative preference for peering with access networks (Fig. 4)
    access_bias: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.edge_peer_fraction <= 1.0:
            raise ValueError("edge_peer_fraction must be in [0, 1]")
        if self.vm_locations < 0:
            raise ValueError("vm_locations must be >= 0 (0 = no measurements)")


@dataclass(frozen=True)
class ArtifactRates:
    """Measurement-noise knobs for the traceroute simulator (§4.4, §5)."""

    #: probability that any given transit hop is unresponsive
    unresponsive_hop: float = 0.05
    #: probability a provider border hop is unresponsive (drives V0's FDR)
    unresponsive_border: float = 0.12
    #: fraction of IXP LANs absent from BGP (whois/PeeringDB only)
    ixp_unannounced: float = 0.5
    #: probability a border hop is misattributed to another IXP member
    #: (load balancing / off-path addresses; drives residual FDR)
    ixp_misattribution: float = 0.03
    #: probability an entire traceroute is dropped by rate limiting
    rate_limited: float = 0.02
    #: probability intra-cloud hops are hidden by tunneling
    tunnel_suppression: float = 0.3
    #: probability the cloud forwards via a non-best (traffic-engineered)
    #: route instead of a tied-best one — Appendix A's gap between
    #: simulated and observed paths
    policy_deviation: float = 0.05
    #: fraction of cloud-edge IXP peerings that are route-server sessions,
    #: usable only at the PoP where they live (drives the final FNR, §5)
    route_server_fraction: float = 0.45

    def __post_init__(self) -> None:
        for name in (
            "unresponsive_hop",
            "unresponsive_border",
            "ixp_unannounced",
            "ixp_misattribution",
            "rate_limited",
            "tunnel_suppression",
            "policy_deviation",
            "route_server_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability")


@dataclass(frozen=True)
class ScenarioConfig:
    """Full parameterization of one synthetic Internet."""

    name: str
    seed: int = 20200901
    year: int = 2020
    # AS population by class
    n_tier1: int = 14
    n_tier2: int = 18
    n_regional: int = 120
    n_access: int = 900
    n_content: int = 220
    n_enterprise: int = 700
    # wiring densities
    t2_mutual_peer_prob: float = 0.55
    t2_tier1_peer_prob: float = 0.4
    t2_provider_count: tuple[int, int] = (1, 3)
    regional_provider_count: tuple[int, int] = (1, 3)
    regional_peer_prob: float = 0.08
    edge_provider_count: tuple[int, int] = (1, 2)
    content_peer_prob: float = 0.06
    #: probability an edge AS is present at its home-city IXP
    ixp_presence: float = 0.55
    n_ixps: int = 40
    # measurement model
    n_bgp_monitors: int = 60
    artifacts: ArtifactRates = field(default_factory=ArtifactRates)
    clouds: tuple[CloudProfile, ...] = ()
    include_facebook: bool = True
    facebook_asn: int = 32934
    facebook_peer_fraction: float = 0.45

    @property
    def total_ases(self) -> int:
        # +1 for the Durand-like small transit the generator always adds
        # (Google's odd third provider in the Sep-2020 snapshot).
        extra = len(self.clouds) + (1 if self.include_facebook else 0) + 1
        return (
            self.n_tier1
            + self.n_tier2
            + self.n_regional
            + self.n_access
            + self.n_content
            + self.n_enterprise
            + extra
        )


def _clouds_2020() -> tuple[CloudProfile, ...]:
    return (
        CloudProfile(
            name="Google", asn=15169, edge_peer_fraction=0.82,
            tier1_peers=10, tier1_providers=2, tier2_providers=0,
            other_providers=1, pop_count=56, datacenter_count=12,
            vm_locations=12, access_bias=1.6,
        ),
        CloudProfile(
            name="Microsoft", asn=8075, edge_peer_fraction=0.62,
            tier1_peers=4, tier1_providers=7, tier2_providers=1,
            other_providers=0, pop_count=60, datacenter_count=11,
            vm_locations=11, access_bias=1.5,
        ),
        CloudProfile(
            name="IBM", asn=36351, edge_peer_fraction=0.55,
            tier1_peers=5, tier1_providers=3, tier2_providers=2,
            other_providers=1, pop_count=40, datacenter_count=6,
            vm_locations=6, access_bias=1.4,
        ),
        CloudProfile(
            name="Amazon", asn=16509, edge_peer_fraction=0.30,
            tier1_peers=5, tier1_providers=8, tier2_providers=6,
            other_providers=6, pop_count=48, datacenter_count=20,
            vm_locations=20, wan_egress=False, access_bias=0.9,
        ),
    )


def _clouds_2015() -> tuple[CloudProfile, ...]:
    # Google was already an open peer in 2015; the other three grew their
    # footprints dramatically between 2015 and 2020 (Table 1).
    google, microsoft, ibm, amazon = _clouds_2020()
    return (
        replace(google, edge_peer_fraction=0.75, pop_count=40,
                tier1_providers=3, other_providers=1),
        replace(microsoft, edge_peer_fraction=0.18, pop_count=30,
                vm_locations=0),  # no 2015 Microsoft traceroute data
        replace(ibm, edge_peer_fraction=0.38, pop_count=25),
        replace(amazon, edge_peer_fraction=0.08, pop_count=20),
    )


def tiny(seed: int = 7) -> ScenarioConfig:
    """~130 ASes; for unit tests."""
    return ScenarioConfig(
        name="tiny", seed=seed, n_tier1=4, n_tier2=5, n_regional=10,
        n_access=55, n_content=18, n_enterprise=35, n_ixps=8,
        n_bgp_monitors=10,
        clouds=tuple(
            replace(c, pop_count=10, datacenter_count=3,
                    vm_locations=min(3, c.vm_locations) or 3,
                    tier1_peers=min(2, c.tier1_peers),
                    tier1_providers=min(2, c.tier1_providers),
                    tier2_providers=min(1, c.tier2_providers),
                    other_providers=min(1, c.other_providers))
            for c in _clouds_2020()
        ),
    )


def small(seed: int = 20200901) -> ScenarioConfig:
    """~700 ASes; fast experiment smoke runs."""
    return ScenarioConfig(
        name="small", seed=seed, n_tier1=8, n_tier2=10, n_regional=40,
        n_access=340, n_content=90, n_enterprise=200, n_ixps=20,
        n_bgp_monitors=25, clouds=_clouds_2020(),
    )


def mid(seed: int = 20200901) -> ScenarioConfig:
    """~2k ASes; benchmark-scale scenario with a flatter edge mix than
    :func:`year2020` (more access networks, fewer transit tiers)."""
    return ScenarioConfig(
        name="mid", seed=seed, n_tier1=10, n_tier2=14, n_regional=80,
        n_access=1100, n_content=280, n_enterprise=500, n_ixps=30,
        n_bgp_monitors=40, clouds=_clouds_2020(),
    )


def large(seed: int = 20200901) -> ScenarioConfig:
    """~10k ASes; stress-scale scenario for the scaling benchmarks."""
    return ScenarioConfig(
        name="large", seed=seed, n_tier1=14, n_tier2=18, n_regional=300,
        n_access=5600, n_content=1100, n_enterprise=2950, n_ixps=80,
        n_bgp_monitors=100, clouds=_clouds_2020(),
    )


def full(seed: int = 20200901) -> ScenarioConfig:
    """~70k ASes — the paper's true September-2020 scale (69,999 ASes).

    Class counts follow the same edge-heavy mix as :func:`large` scaled
    ~7×: the access + enterprise edge dominates (as in the real
    AS-level topology), with the curated Tier-1/Tier-2 sets used in
    full.  Generating this profile takes minutes and the experiment
    sweeps at this scale should run with ``stream`` aggregation
    (``REPRO_STREAM=auto`` turns it on at this size).
    """
    return ScenarioConfig(
        name="full", seed=seed, n_tier1=16, n_tier2=21, n_regional=1800,
        n_access=40600, n_content=7800, n_enterprise=19756, n_ixps=120,
        n_bgp_monitors=200, clouds=_clouds_2020(),
    )


def year2020(seed: int = 20200901) -> ScenarioConfig:
    """The default benchmark scenario (~2000 ASes), September-2020-like."""
    return ScenarioConfig(name="year2020", seed=seed, clouds=_clouds_2020())


def year2015(seed: int = 20150901) -> ScenarioConfig:
    """September-2015-like scenario: ~74% of 2020's size, thin cloud
    peering except Google."""
    cfg2020 = year2020()
    scale = 0.74
    return ScenarioConfig(
        name="year2015", seed=seed, year=2015,
        n_tier1=cfg2020.n_tier1,
        n_tier2=cfg2020.n_tier2 - 2,
        n_regional=int(cfg2020.n_regional * scale),
        n_access=int(cfg2020.n_access * scale),
        n_content=int(cfg2020.n_content * scale),
        n_enterprise=int(cfg2020.n_enterprise * scale),
        n_ixps=int(cfg2020.n_ixps * 0.7),
        n_bgp_monitors=int(cfg2020.n_bgp_monitors * 0.7),
        clouds=_clouds_2015(),
        facebook_peer_fraction=0.30,
    )


def _scale_to_2015(cfg: ScenarioConfig, name: str, seed: int) -> ScenarioConfig:
    scale = 0.74
    return ScenarioConfig(
        name=name, seed=seed, year=2015,
        n_tier1=cfg.n_tier1,
        n_tier2=max(cfg.n_tier2 - 2, 2),
        n_regional=max(int(cfg.n_regional * scale), 2),
        n_access=max(int(cfg.n_access * scale), 4),
        n_content=max(int(cfg.n_content * scale), 2),
        n_enterprise=max(int(cfg.n_enterprise * scale), 2),
        n_ixps=max(int(cfg.n_ixps * 0.7), 2),
        n_bgp_monitors=max(int(cfg.n_bgp_monitors * 0.7), 2),
        clouds=tuple(
            replace(
                c2015,
                pop_count=min(c2015.pop_count, ctiny.pop_count),
                datacenter_count=ctiny.datacenter_count,
                vm_locations=min(c2015.vm_locations, ctiny.vm_locations),
                tier1_peers=ctiny.tier1_peers,
                tier1_providers=ctiny.tier1_providers,
                tier2_providers=ctiny.tier2_providers,
                other_providers=ctiny.other_providers,
            )
            for c2015, ctiny in zip(_clouds_2015(), cfg.clouds)
        ),
        facebook_peer_fraction=0.30,
    )


def tiny2015(seed: int = 8) -> ScenarioConfig:
    """2015 companion of :func:`tiny` (for fast longitudinal tests)."""
    return _scale_to_2015(tiny(), "tiny2015", seed)


def small2015(seed: int = 20150901) -> ScenarioConfig:
    """2015 companion of :func:`small` (for benchmark longitudinal runs)."""
    return _scale_to_2015(small(), "small2015", seed)


def mid2015(seed: int = 20150901) -> ScenarioConfig:
    """2015 companion of :func:`mid`."""
    return _scale_to_2015(mid(), "mid2015", seed)


def large2015(seed: int = 20150901) -> ScenarioConfig:
    """2015 companion of :func:`large`."""
    return _scale_to_2015(large(), "large2015", seed)


def full2015(seed: int = 20150901) -> ScenarioConfig:
    """2015 companion of :func:`full` (~51.8k ASes vs the paper's
    51,801)."""
    return _scale_to_2015(full(), "full2015", seed)


PROFILES = {
    "tiny": tiny,
    "tiny2015": tiny2015,
    "small": small,
    "small2015": small2015,
    "mid": mid,
    "mid2015": mid2015,
    "large": large,
    "large2015": large2015,
    "full": full,
    "full2015": full2015,
    "year2020": year2020,
    "year2015": year2015,
}

#: 2020-profile → matching 2015-profile for longitudinal experiments.
COMPANION_2015 = {
    "tiny": "tiny2015",
    "small": "small2015",
    "mid": "mid2015",
    "large": "large2015",
    "full": "full2015",
    "year2020": "year2015",
}


def companion_2015(profile_name: str) -> str:
    """The 2015 companion of a 2020-like profile."""
    try:
        return COMPANION_2015[profile_name]
    except KeyError:
        raise KeyError(
            f"no 2015 companion for profile {profile_name!r}"
        ) from None


def profile(name: str, **kwargs) -> ScenarioConfig:
    """Look up a named profile (``tiny``/``small``/``year2020``/``year2015``)."""
    try:
        factory = PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
    return factory(**kwargs)
