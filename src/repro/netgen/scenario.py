"""The synthetic-Internet scenario model.

An :class:`InternetScenario` is everything the paper's pipelines consume,
with ground truth attached: the true AS graph, the BGP-visible ("CAIDA
view") subgraph, per-AS metadata and geography, prefix/IXP addressing, the
clouds' interconnects (what a perfect measurement would discover), user
populations, and PoP footprints.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass, field
from typing import Optional

from ..geo.cities import City
from ..topology.asgraph import ASGraph
from ..topology.tiers import TierAssignment
from .config import ScenarioConfig


class ASKind(enum.Enum):
    """Generation-time AS classes (richer than the CAIDA 3-way types)."""

    TIER1 = "tier1"
    TIER2 = "tier2"
    REGIONAL = "regional"
    ACCESS = "access"
    CONTENT = "content"
    ENTERPRISE = "enterprise"
    CLOUD = "cloud"
    HYPERGIANT = "hypergiant"  # Facebook-like content hypergiant
    IXP = "ixp"  # IXP route-server / management AS


@dataclass(frozen=True)
class ASInfo:
    """Static metadata for one AS."""

    asn: int
    name: str
    kind: ASKind
    home_city: City


@dataclass(frozen=True)
class IXPRecord:
    """One Internet exchange: LAN addressing and membership."""

    ixp_id: int
    name: str
    asn: int
    city: City
    lan: ipaddress.IPv4Network
    announced: bool  # False → LAN absent from BGP (whois/PeeringDB only)
    members: frozenset[int]

    def member_ip(self, asn: int) -> ipaddress.IPv4Address:
        """The deterministic LAN address of a member (as PeeringDB lists)."""
        if asn not in self.members:
            raise KeyError(f"AS{asn} is not a member of {self.name}")
        index = sorted(self.members).index(asn)
        return self.lan[index + 2]


class InterconnectMedium(enum.Enum):
    PNI = "pni"  # private network interconnect
    IXP = "ixp"  # public exchange peering


@dataclass(frozen=True)
class Interconnect:
    """A physical cloud↔neighbor interconnection point."""

    cloud_asn: int
    neighbor_asn: int
    city: City
    medium: InterconnectMedium
    ixp_id: Optional[int] = None
    #: address a traceroute sees on the neighbor's border interface
    neighbor_ip: ipaddress.IPv4Address = ipaddress.IPv4Address("0.0.0.0")
    #: route-server session: the peer's routes are only used at this PoP
    #: (§5: most neighbors missed by measurements are route-server peers
    #: whose routes never win from any VM's location)
    route_server: bool = False


@dataclass
class InternetScenario:
    """Ground truth + derived views for one synthetic Internet."""

    config: ScenarioConfig
    graph: ASGraph  # ground-truth topology
    tiers: TierAssignment
    as_info: dict[int, ASInfo]
    clouds: dict[str, int]  # provider name → ASN
    facebook_asn: Optional[int]
    prefixes: dict[int, ipaddress.IPv4Network]  # one announced prefix per AS
    ixps: list[IXPRecord]
    interconnects: dict[tuple[int, int], list[Interconnect]]
    users: dict[int, int]  # APNIC-style per-AS user estimates
    monitors: frozenset[int]  # ASes hosting BGP vantage points
    public_graph: ASGraph = field(default_factory=ASGraph)  # CAIDA view
    pop_footprints: dict[str, tuple[City, ...]] = field(default_factory=dict)
    vm_cities: dict[int, tuple[City, ...]] = field(default_factory=dict)
    transit_labels: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def cloud_asns(self) -> tuple[int, ...]:
        return tuple(self.clouds.values())

    def kind_of(self, asn: int) -> ASKind:
        return self.as_info[asn].kind

    def name_of(self, asn: int) -> str:
        info = self.as_info.get(asn)
        return info.name if info else f"AS{asn}"

    def ases_of_kind(self, *kinds: ASKind) -> list[int]:
        wanted = set(kinds)
        return [asn for asn, info in self.as_info.items() if info.kind in wanted]

    def true_cloud_neighbors(self, cloud_asn: int) -> frozenset[int]:
        """Ground-truth neighbor set of a cloud (the validation target)."""
        return self.graph.neighbors(cloud_asn)

    def visible_cloud_neighbors(self, cloud_asn: int) -> frozenset[int]:
        """Neighbors visible in the BGP-derived public view alone."""
        if cloud_asn not in self.public_graph:
            return frozenset()
        return self.public_graph.neighbors(cloud_asn)

    def interconnects_of(self, cloud_asn: int) -> list[Interconnect]:
        out: list[Interconnect] = []
        for (c, _n), links in self.interconnects.items():
            if c == cloud_asn:
                out.extend(links)
        return out

    def ixp_by_id(self, ixp_id: int) -> IXPRecord:
        for ixp in self.ixps:
            if ixp.ixp_id == ixp_id:
                return ixp
        raise KeyError(f"no IXP with id {ixp_id}")

    def summary(self) -> dict[str, int]:
        """Headline counts, useful for logging and sanity tests."""
        return {
            "ases": len(self.graph),
            "edges": self.graph.edge_count(),
            "public_edges": self.public_graph.edge_count(),
            "tier1": len(self.tiers.tier1),
            "tier2": len(self.tiers.tier2),
            "ixps": len(self.ixps),
            "clouds": len(self.clouds),
        }
