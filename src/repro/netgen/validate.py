"""Structural validation of generated topologies.

The paper's measurements run over the real ~70k-AS Internet; the
synthetic profiles only earn the right to stand in for it if they keep
the coarse structural invariants of measured AS graphs (the dK-series /
joint-degree methodology of Mahadevan et al.): a sparse, heavy-tailed
degree distribution, *disassortative* degree mixing (high-degree transit
cores attach to low-degree edges), non-trivial clustering concentrated
in the core, and average-neighbor-degree falling with degree.

:func:`validate_scenario` measures those invariants and checks them
against one tolerance band calibrated on the seed ``mid``/``large``
profiles — the paper-scale ``full`` profile must land in the *same*
band, which is what keeps a 70k-AS generation structurally honest
rather than merely big.  All sampling is deterministic (fixed seed), so
a profile either always passes or always fails.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..topology.asgraph import ASGraph
from .scenario import ASKind, InternetScenario

#: nodes sampled for the clustering estimate (exact below this size)
_CLUSTER_SAMPLE = 1500
#: neighbor pairs sampled per node for high-degree clustering estimates
_PAIR_SAMPLE = 60
_SAMPLE_SEED = 0x5EED

#: Tolerance bands shared by ``mid``, ``large`` and ``full``, calibrated
#: on the measured seed profiles (mid ≈ deg 9.8 / assort −0.31 /
#: clust 0.46 / ndc −0.15; large ≈ 14.4 / −0.20 / 0.41 / −0.10; full ≈
#: 39.8 / −0.07 / 0.37 / −0.10 — seed-to-seed drift < 0.02 on every
#: metric).  The assortativity band stays strictly negative: a synthetic
#: Internet that mixes assortatively is structurally wrong at any size.
DEGREE_ASSORTATIVITY_BAND = (-0.6, -0.04)
AVG_CLUSTERING_BAND = (0.15, 0.6)
AVG_DEGREE_BAND = (5.0, 45.0)
#: Pearson corr(degree, mean neighbor degree) — the dK-2 joint-degree
#: shape: average neighbor degree must *fall* as degree grows.
NEIGHBOR_DEGREE_CORR_BAND = (-0.5, -0.03)


def degree_assortativity(graph: ASGraph) -> float:
    """Pearson degree correlation over the edge list (Newman's r)."""
    deg = {asn: graph.degree(asn) for asn in graph.nodes()}
    n = sx = sy = sxx = syy = sxy = 0.0
    for asn in sorted(deg):
        dx = deg[asn]
        for other in graph.neighbors(asn):
            # every undirected edge contributes both orientations, which
            # symmetrizes the correlation
            dy = deg[other]
            n += 1
            sx += dx
            sy += dy
            sxx += dx * dx
            syy += dy * dy
            sxy += dx * dy
    if not n:
        return 0.0
    cov = sxy / n - (sx / n) * (sy / n)
    vx = sxx / n - (sx / n) ** 2
    vy = syy / n - (sy / n) ** 2
    if vx <= 0 or vy <= 0:
        return 0.0
    return cov / math.sqrt(vx * vy)


def average_clustering(
    graph: ASGraph,
    sample: int = _CLUSTER_SAMPLE,
    seed: int = _SAMPLE_SEED,
) -> float:
    """Mean local clustering coefficient, deterministically sampled.

    Nodes beyond ``sample`` are subsampled with a fixed RNG; nodes of
    high degree estimate their coefficient from ``_PAIR_SAMPLE`` random
    neighbor pairs instead of all ``k*(k-1)/2`` (a 70k-AS Tier-1 has
    tens of thousands of neighbors).  Deterministic: same graph, same
    estimate.
    """
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    if len(nodes) > sample:
        nodes = rng.sample(nodes, sample)
    total = 0.0
    counted = 0
    for asn in nodes:
        nbrs = sorted(graph.neighbors(asn))
        k = len(nbrs)
        if k < 2:
            continue
        counted += 1
        pairs = k * (k - 1) // 2
        if pairs <= _PAIR_SAMPLE:
            hits = 0
            for i in range(k):
                ni = graph.neighbors(nbrs[i])
                for j in range(i + 1, k):
                    if nbrs[j] in ni:
                        hits += 1
            total += hits / pairs
        else:
            hits = 0
            for _ in range(_PAIR_SAMPLE):
                a, b = rng.sample(nbrs, 2)
                if b in graph.neighbors(a):
                    hits += 1
            total += hits / _PAIR_SAMPLE
    return total / counted if counted else 0.0


def neighbor_degree_correlation(graph: ASGraph) -> float:
    """Pearson corr(node degree, mean neighbor degree) — the joint-degree
    (dK-2) summary: negative when hubs attach to low-degree edges."""
    deg = {asn: graph.degree(asn) for asn in graph.nodes()}
    xs: list[float] = []
    ys: list[float] = []
    for asn in sorted(deg):
        nbrs = graph.neighbors(asn)
        if not nbrs:
            continue
        xs.append(float(deg[asn]))
        ys.append(sum(deg[x] for x in nbrs) / len(nbrs))
    n = len(xs)
    if n < 2:
        return 0.0
    mx, my = sum(xs) / n, sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / n
    vx = sum((x - mx) ** 2 for x in xs) / n
    vy = sum((y - my) ** 2 for y in ys) / n
    if vx <= 0 or vy <= 0:
        return 0.0
    return cov / math.sqrt(vx * vy)


def edge_count(graph: ASGraph) -> int:
    return sum(len(graph.neighbors(a)) for a in graph.nodes()) // 2


@dataclass
class TopologyReport:
    """Measured invariants of one generated topology + violations."""

    profile: str
    n_ases: int
    n_edges: int
    avg_degree: float
    assortativity: float
    clustering: float
    neighbor_degree_corr: float
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "profile": self.profile,
            "n_ases": self.n_ases,
            "n_edges": self.n_edges,
            "avg_degree": self.avg_degree,
            "assortativity": self.assortativity,
            "clustering": self.clustering,
            "neighbor_degree_corr": self.neighbor_degree_corr,
            "violations": list(self.violations),
        }


def _check_band(
    violations: list[str], name: str, value: float, band: tuple[float, float]
) -> None:
    lo, hi = band
    if not lo <= value <= hi:
        violations.append(
            f"{name} {value:.4f} outside tolerance band [{lo}, {hi}]"
        )


#: synthetic AS kinds whose ASNs come from the generator's block
#: allocator (the curated/named kinds are exempt)
_SYNTHETIC_KINDS = (
    ASKind.REGIONAL,
    ASKind.ACCESS,
    ASKind.CONTENT,
    ASKind.ENTERPRISE,
)


def validate_scenario(
    scenario: InternetScenario,
    expected_ases: int | None = None,
    as_tolerance: float = 0.02,
) -> TopologyReport:
    """Measure the scenario's structural invariants and band-check them.

    ``expected_ases`` (default: the config's ``total_ases``) checks the
    node count within ``as_tolerance``; edges are checked against the
    sparse-graph band via average degree.  Named (curated) ASNs must be
    disjoint from the synthetic block allocations.
    """
    from .generator import DURAND_ASN, TIER1_NAMES, TIER2_NAMES

    graph = scenario.graph
    cfg = scenario.config
    n = len(graph)
    m = edge_count(graph)
    report = TopologyReport(
        profile=cfg.name,
        n_ases=n,
        n_edges=m,
        avg_degree=2 * m / n if n else 0.0,
        assortativity=degree_assortativity(graph),
        clustering=average_clustering(graph),
        neighbor_degree_corr=neighbor_degree_correlation(graph),
    )
    violations = report.violations

    expected = cfg.total_ases if expected_ases is None else expected_ases
    if abs(n - expected) > as_tolerance * expected:
        violations.append(
            f"{n} ASes generated, expected {expected} "
            f"(±{as_tolerance:.0%})"
        )
    _check_band(violations, "avg_degree", report.avg_degree, AVG_DEGREE_BAND)
    _check_band(
        violations,
        "assortativity",
        report.assortativity,
        DEGREE_ASSORTATIVITY_BAND,
    )
    _check_band(
        violations, "clustering", report.clustering, AVG_CLUSTERING_BAND
    )
    _check_band(
        violations,
        "neighbor_degree_corr",
        report.neighbor_degree_corr,
        NEIGHBOR_DEGREE_CORR_BAND,
    )

    # synthetic blocks must stay clear of every real named ASN; the
    # Durand-like transit is the one deliberate named REGIONAL
    named = {asn for _, asn in TIER1_NAMES}
    named |= {asn for _, asn in TIER2_NAMES}
    named |= set(scenario.clouds.values())
    if scenario.facebook_asn is not None:
        named.add(scenario.facebook_asn)
    for asn, info in sorted(scenario.as_info.items()):
        if info.kind in _SYNTHETIC_KINDS and asn != DURAND_ASN:
            if asn in named:
                violations.append(
                    f"synthetic {info.kind.name} block allocated the real "
                    f"ASN {asn} ({info.name})"
                )
    return report
