"""IPv4 address allocation for the synthetic Internet.

Every AS announces one prefix (the paper's supplemental campaign selects
one prefix per origin AS [19]); IXP LANs get /24s, a configurable fraction
of which are *not* announced in BGP — reproducing the NL-IX situation in
§4.1 where peering interfaces resolve only through PeeringDB/whois.
"""

from __future__ import annotations

import ipaddress
from collections.abc import Sequence

#: ASes get sequential /16s starting here (kept well clear of the IXP pool).
AS_PREFIX_BASE = int(ipaddress.IPv4Address("16.0.0.0"))
#: IXP LANs are /24s carved from this block (homage to NL-IX's 193.238/22).
IXP_LAN_BASE = int(ipaddress.IPv4Address("193.238.0.0"))
MAX_AS_PREFIXES = 16384  # 16.0.0.0-79.255.255.255, clear of the IXP pool
MAX_IXP_LANS = 1024


def as_prefix(index: int) -> ipaddress.IPv4Network:
    """The /16 announced by the ``index``-th AS (allocation order)."""
    if not 0 <= index < MAX_AS_PREFIXES:
        raise ValueError(f"AS prefix index out of range: {index}")
    return ipaddress.IPv4Network((AS_PREFIX_BASE + (index << 16), 16))


def ixp_lan(index: int) -> ipaddress.IPv4Network:
    """The /24 peering LAN of the ``index``-th IXP."""
    if not 0 <= index < MAX_IXP_LANS:
        raise ValueError(f"IXP LAN index out of range: {index}")
    return ipaddress.IPv4Network((IXP_LAN_BASE + (index << 8), 24))


def allocate_as_prefixes(asns: Sequence[int]) -> dict[int, ipaddress.IPv4Network]:
    """Deterministically assign one /16 per AS, in the given order."""
    return {asn: as_prefix(i) for i, asn in enumerate(asns)}


def host_in(prefix: ipaddress.IPv4Network, index: int) -> ipaddress.IPv4Address:
    """The ``index``-th usable host address inside ``prefix``."""
    if index < 1 or index >= prefix.num_addresses - 1:
        raise ValueError(f"host index {index} out of range for {prefix}")
    return prefix[index]


def router_ip(
    prefix: ipaddress.IPv4Network, router_id: int, interface: int = 0
) -> ipaddress.IPv4Address:
    """A stable infrastructure address: router ``router_id``, interface
    ``interface`` inside the AS prefix (distinct from host space)."""
    offset = 256 + router_id * 8 + interface
    if offset >= prefix.num_addresses - 1:
        raise ValueError("router address space exhausted")
    return prefix[offset]
