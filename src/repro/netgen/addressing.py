"""IPv4 address allocation for the synthetic Internet.

Every AS announces one prefix (the paper's supplemental campaign selects
one prefix per origin AS [19]); IXP LANs get /24s, a configurable fraction
of which are *not* announced in BGP — reproducing the NL-IX situation in
§4.1 where peering interfaces resolve only through PeeringDB/whois.

The first 16,384 ASes get /16s — IPv4 simply does not hold 70,000 /16s —
so the paper-scale ``full`` profile spills into a second, contiguous tier
of /20s.  Legacy indices keep their historical /16s byte-for-byte, so
every pre-existing profile's addressing is unchanged.
"""

from __future__ import annotations

import ipaddress
from collections.abc import Sequence

#: ASes get sequential /16s starting here (kept well clear of the IXP pool).
AS_PREFIX_BASE = int(ipaddress.IPv4Address("16.0.0.0"))
#: IXP LANs are /24s carved from this block (homage to NL-IX's 193.238/22).
IXP_LAN_BASE = int(ipaddress.IPv4Address("193.238.0.0"))
MAX_AS_PREFIXES = 16384  # /16 tier: 16.0.0.0-79.255.255.255
#: ASes past the /16 tier get sequential /20s from 80.0.0.0 (where the
#: /16 tier ends), still clear of the 193.238/16 IXP pool.
AS_PREFIX_EXT_BASE = AS_PREFIX_BASE + (MAX_AS_PREFIXES << 16)
#: /20s available before running into 160.0.0.0 (comfortable headroom
#: under the IXP pool): enough for ~1.3M extra ASes — every profile fits.
MAX_AS_PREFIXES_EXT = (
    int(ipaddress.IPv4Address("160.0.0.0")) - AS_PREFIX_EXT_BASE
) >> 12
MAX_IXP_LANS = 1024
#: Paper-scale profiles put thousands of members on one metro exchange —
#: far past a /24's 252 usable slots — so their LANs are /18s, carved
#: from 11.0.0.0 (below the AS-prefix space, which owns 16.0.0.0 up),
#: mirroring how the largest real exchanges outgrew /24 peering LANs.
IXP_LAN_WIDE_BASE = int(ipaddress.IPv4Address("11.0.0.0"))
MAX_IXP_LANS_WIDE = 256


def as_prefix(index: int) -> ipaddress.IPv4Network:
    """The prefix announced by the ``index``-th AS (allocation order).

    Indices below :data:`MAX_AS_PREFIXES` map to the historical /16s;
    higher indices map to the /20 extension tier.
    """
    if 0 <= index < MAX_AS_PREFIXES:
        return ipaddress.IPv4Network((AS_PREFIX_BASE + (index << 16), 16))
    ext = index - MAX_AS_PREFIXES
    if not 0 <= ext < MAX_AS_PREFIXES_EXT:
        raise ValueError(f"AS prefix index out of range: {index}")
    return ipaddress.IPv4Network((AS_PREFIX_EXT_BASE + (ext << 12), 20))


def ixp_lan(index: int, wide: bool = False) -> ipaddress.IPv4Network:
    """The peering LAN of the ``index``-th IXP.

    ``wide=False`` (every seed profile) keeps the historical /24s;
    ``wide=True`` (paper-scale profiles, where one metro exchange holds
    thousands of members) allocates /18s instead.
    """
    if wide:
        if not 0 <= index < MAX_IXP_LANS_WIDE:
            raise ValueError(f"wide IXP LAN index out of range: {index}")
        return ipaddress.IPv4Network((IXP_LAN_WIDE_BASE + (index << 14), 18))
    if not 0 <= index < MAX_IXP_LANS:
        raise ValueError(f"IXP LAN index out of range: {index}")
    return ipaddress.IPv4Network((IXP_LAN_BASE + (index << 8), 24))


def allocate_as_prefixes(asns: Sequence[int]) -> dict[int, ipaddress.IPv4Network]:
    """Deterministically assign one prefix per AS, in the given order."""
    return {asn: as_prefix(i) for i, asn in enumerate(asns)}


def host_in(prefix: ipaddress.IPv4Network, index: int) -> ipaddress.IPv4Address:
    """The ``index``-th usable host address inside ``prefix``."""
    if index < 1 or index >= prefix.num_addresses - 1:
        raise ValueError(f"host index {index} out of range for {prefix}")
    return prefix[index]


def router_ip(
    prefix: ipaddress.IPv4Network, router_id: int, interface: int = 0
) -> ipaddress.IPv4Address:
    """A stable infrastructure address: router ``router_id``, interface
    ``interface`` inside the AS prefix (distinct from host space)."""
    offset = 256 + router_id * 8 + interface
    if offset >= prefix.num_addresses - 1:
        raise ValueError("router address space exhausted")
    return prefix[offset]
