"""JSON serialization of scenarios.

A generated Internet (ground truth included) can be saved and reloaded so
experiments are reproducible across machines without re-deriving anything
— the synthetic analogue of archiving the CAIDA snapshot, the traceroute
dataset, and PeeringDB dump a measurement paper ships.
"""

from __future__ import annotations

import dataclasses
import gzip
import ipaddress
import json
import os
from pathlib import Path
from typing import Union

from ..geo.cities import city_by_code
from ..topology.asgraph import ASGraph
from ..topology.relationships import Relationship
from ..topology.tiers import TierAssignment
from .config import ArtifactRates, CloudProfile, ScenarioConfig
from .scenario import (
    ASInfo,
    ASKind,
    Interconnect,
    InterconnectMedium,
    InternetScenario,
    IXPRecord,
)

PathLike = Union[str, os.PathLike]

FORMAT_VERSION = 1


def _graph_to_lists(graph: ASGraph) -> dict:
    p2c = []
    p2p = []
    for record in graph.records():
        if record.relationship is Relationship.PROVIDER_CUSTOMER:
            p2c.append([record.left, record.right])
        else:
            p2p.append([record.left, record.right])
    return {"nodes": sorted(graph.nodes()), "p2c": p2c, "p2p": p2p}


def _graph_from_lists(data: dict) -> ASGraph:
    graph = ASGraph()
    for asn in data["nodes"]:
        graph.add_as(asn)
    for provider, customer in data["p2c"]:
        graph.add_p2c(provider, customer)
    for a, b in data["p2p"]:
        graph.add_p2p(a, b)
    return graph


def scenario_to_dict(scenario: InternetScenario) -> dict:
    """JSON-serializable representation of a scenario."""
    return {
        "format_version": FORMAT_VERSION,
        "config": dataclasses.asdict(scenario.config),
        "graph": _graph_to_lists(scenario.graph),
        "public_graph": _graph_to_lists(scenario.public_graph),
        "tier1": sorted(scenario.tiers.tier1),
        "tier2": sorted(scenario.tiers.tier2),
        "as_info": [
            {
                "asn": info.asn,
                "name": info.name,
                "kind": info.kind.value,
                "city": info.home_city.code,
            }
            for info in scenario.as_info.values()
        ],
        "clouds": dict(scenario.clouds),
        "facebook_asn": scenario.facebook_asn,
        "prefixes": {
            str(asn): str(prefix) for asn, prefix in scenario.prefixes.items()
        },
        "ixps": [
            {
                "ixp_id": ixp.ixp_id,
                "name": ixp.name,
                "asn": ixp.asn,
                "city": ixp.city.code,
                "lan": str(ixp.lan),
                "announced": ixp.announced,
                "members": sorted(ixp.members),
            }
            for ixp in scenario.ixps
        ],
        "interconnects": [
            {
                "cloud": link.cloud_asn,
                "neighbor": link.neighbor_asn,
                "city": link.city.code,
                "medium": link.medium.value,
                "ixp_id": link.ixp_id,
                "neighbor_ip": str(link.neighbor_ip),
                "route_server": link.route_server,
            }
            for links in scenario.interconnects.values()
            for link in links
        ],
        "users": {str(asn): count for asn, count in scenario.users.items()},
        "monitors": sorted(scenario.monitors),
        "pop_footprints": {
            label: [city.code for city in cities]
            for label, cities in scenario.pop_footprints.items()
        },
        "vm_cities": {
            str(asn): [city.code for city in cities]
            for asn, cities in scenario.vm_cities.items()
        },
        "transit_labels": dict(scenario.transit_labels),
    }


def scenario_from_dict(data: dict) -> InternetScenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported scenario format version: {version!r}")
    config_data = dict(data["config"])
    config_data["artifacts"] = ArtifactRates(**config_data["artifacts"])
    clouds = []
    for cloud in config_data["clouds"]:
        clouds.append(CloudProfile(**cloud))
    config_data["clouds"] = tuple(clouds)
    for key in ("t2_provider_count", "regional_provider_count",
                "edge_provider_count"):
        config_data[key] = tuple(config_data[key])
    config = ScenarioConfig(**config_data)

    as_info = {
        row["asn"]: ASInfo(
            asn=row["asn"],
            name=row["name"],
            kind=ASKind(row["kind"]),
            home_city=city_by_code(row["city"]),
        )
        for row in data["as_info"]
    }
    interconnects: dict[tuple[int, int], list[Interconnect]] = {}
    for row in data["interconnects"]:
        link = Interconnect(
            cloud_asn=row["cloud"],
            neighbor_asn=row["neighbor"],
            city=city_by_code(row["city"]),
            medium=InterconnectMedium(row["medium"]),
            ixp_id=row["ixp_id"],
            neighbor_ip=ipaddress.IPv4Address(row["neighbor_ip"]),
            route_server=row["route_server"],
        )
        interconnects.setdefault(
            (link.cloud_asn, link.neighbor_asn), []
        ).append(link)
    return InternetScenario(
        config=config,
        graph=_graph_from_lists(data["graph"]),
        tiers=TierAssignment(
            tier1=frozenset(data["tier1"]), tier2=frozenset(data["tier2"])
        ),
        as_info=as_info,
        clouds=dict(data["clouds"]),
        facebook_asn=data["facebook_asn"],
        prefixes={
            int(asn): ipaddress.IPv4Network(prefix)
            for asn, prefix in data["prefixes"].items()
        },
        ixps=[
            IXPRecord(
                ixp_id=row["ixp_id"],
                name=row["name"],
                asn=row["asn"],
                city=city_by_code(row["city"]),
                lan=ipaddress.IPv4Network(row["lan"]),
                announced=row["announced"],
                members=frozenset(row["members"]),
            )
            for row in data["ixps"]
        ],
        interconnects=interconnects,
        users={int(asn): count for asn, count in data["users"].items()},
        monitors=frozenset(data["monitors"]),
        public_graph=_graph_from_lists(data["public_graph"]),
        pop_footprints={
            label: tuple(city_by_code(code) for code in codes)
            for label, codes in data["pop_footprints"].items()
        },
        vm_cities={
            int(asn): tuple(city_by_code(code) for code in codes)
            for asn, codes in data["vm_cities"].items()
        },
        transit_labels=dict(data["transit_labels"]),
    )


def save_scenario(scenario: InternetScenario, path: PathLike) -> None:
    """Write a scenario as JSON (gzip if the path ends in ``.gz``)."""
    path = Path(path)
    payload = json.dumps(scenario_to_dict(scenario))
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(payload)
    else:
        path.write_text(payload, encoding="utf-8")


def load_scenario(path: PathLike) -> InternetScenario:
    """Load a scenario written by :func:`save_scenario`."""
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = handle.read()
    else:
        payload = path.read_text(encoding="utf-8")
    return scenario_from_dict(json.loads(payload))
