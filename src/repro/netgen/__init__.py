"""Synthetic Internet generator (substitute for the paper's datasets)."""

from .addressing import (
    allocate_as_prefixes,
    as_prefix,
    host_in,
    ixp_lan,
    router_ip,
)
from .config import (
    COMPANION_2015,
    PROFILES,
    ArtifactRates,
    CloudProfile,
    ScenarioConfig,
    companion_2015,
    profile,
    small,
    small2015,
    tiny,
    tiny2015,
    year2015,
    year2020,
)
from .generator import TIER1_NAMES, TIER2_NAMES, build_scenario
from .population import ONLINE_FRACTION, assign_users, eyeball_ases, zipf_shares
from .scenario_io import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from .scenario import (
    ASInfo,
    ASKind,
    Interconnect,
    InterconnectMedium,
    InternetScenario,
    IXPRecord,
)

__all__ = [
    "ASInfo",
    "ASKind",
    "ArtifactRates",
    "COMPANION_2015",
    "companion_2015",
    "small2015",
    "tiny2015",
    "CloudProfile",
    "Interconnect",
    "InterconnectMedium",
    "InternetScenario",
    "IXPRecord",
    "ONLINE_FRACTION",
    "PROFILES",
    "ScenarioConfig",
    "TIER1_NAMES",
    "TIER2_NAMES",
    "allocate_as_prefixes",
    "as_prefix",
    "assign_users",
    "build_scenario",
    "eyeball_ases",
    "host_in",
    "ixp_lan",
    "load_scenario",
    "profile",
    "router_ip",
    "save_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
    "small",
    "tiny",
    "year2015",
    "year2020",
    "zipf_shares",
]
