"""Synthetic Internet generator.

Builds an :class:`~repro.netgen.scenario.InternetScenario` from a
:class:`~repro.netgen.config.ScenarioConfig`, reproducing the structural
facts the paper measures (see the module docstring of
:mod:`repro.netgen.config`).  Everything is deterministic in the config
seed.

The generator also derives the *public* (BGP-visible) graph: all transit
edges are observed, but a peering edge is observed only when a BGP monitor
sits inside either endpoint's customer cone — the visibility rule that
makes edge peerings (and hence most cloud interconnection) invisible to
feeds, per §2.3/§4.1.
"""

from __future__ import annotations

import ipaddress
import random
from collections import defaultdict

from ..core.reachability import ConeEngine
from ..geo.cities import WORLD_CITIES, City, largest_cities
from ..geo.continents import Continent
from ..topology.asgraph import ASGraph
from ..topology.tiers import TierAssignment
from .addressing import allocate_as_prefixes, host_in, ixp_lan
from .config import CloudProfile, ScenarioConfig
from .population import assign_users
from .scenario import (
    ASInfo,
    ASKind,
    Interconnect,
    InterconnectMedium,
    InternetScenario,
    IXPRecord,
)

#: Curated Tier-1 names/ASNs (extended with synthetic entries if needed).
TIER1_NAMES: tuple[tuple[str, int], ...] = (
    ("Level 3", 3356),
    ("Telia", 1299),
    ("Cogent", 174),
    ("GTT", 3257),
    ("NTT", 2914),
    ("Tata", 6453),
    ("Sprint", 1239),
    ("Orange", 5511),
    ("Deutsche Telekom", 3320),
    ("AT&T", 7018),
    ("Verizon", 701),
    ("Zayo", 6461),
    ("Telxius", 12956),
    ("Telecom Italia Sparkle", 6762),
    ("KPN", 286),
    ("Telefonica", 3352),
)

#: Curated Tier-2 names/ASNs.  PCCW and Liberty Global are generated with
#: no transit providers (the paper notes both reach everything without
#: providers yet are not in the Tier-1 clique).
TIER2_NAMES: tuple[tuple[str, int], ...] = (
    ("Hurricane Electric", 6939),
    ("PCCW", 3491),
    ("Comcast", 7922),
    ("Liberty Global", 6830),
    ("Vocus", 4826),
    ("RETN", 9002),
    ("Telstra", 4637),
    ("IIJ", 2497),
    ("Swisscom", 3303),
    ("COLT", 8220),
    ("Core-Backbone", 33891),
    ("Korea Telecom", 4766),
    ("TDC", 3292),
    ("Vodafone", 1273),
    ("KCOM", 12390),
    ("British Telecom", 5400),
    ("Tele2", 1257),
    ("SG.GS", 24482),
    ("TELIN", 7713),
    ("CN Net", 4134),
    ("KDDI", 2516),
)

PROVIDER_FREE_TIER2 = frozenset({"PCCW", "Liberty Global"})

#: Relative attractiveness of each Tier-1 as transit for *regional/edge*
#: customers.  Heavy-tailed: Level 3 dominates; Sprint and Deutsche Telekom
#: sell almost exclusively to Tier-2s (Appendix B: their hierarchy-free
#: reachability collapses because their cones live behind the Tier-2s).
TIER1_EDGE_WEIGHT: dict[str, float] = {
    "Level 3": 8.0,
    "Telia": 4.5,
    "Cogent": 5.5,
    "GTT": 4.0,
    "NTT": 3.0,
    "Tata": 2.5,
    "Sprint": 0.1,
    "Orange": 1.0,
    "Deutsche Telekom": 0.15,
    "AT&T": 2.0,
    "Verizon": 1.5,
    "Zayo": 4.0,
    "Telxius": 0.8,
    "Telecom Italia Sparkle": 1.0,
    "KPN": 0.8,
    "Telefonica": 1.0,
}

#: Relative attractiveness of each Tier-1 as transit for *Tier-2* customers
#: (Sprint/DT sell heavily into this market).
TIER1_T2_WEIGHT: dict[str, float] = {
    "Sprint": 3.0,
    "Deutsche Telekom": 3.0,
}

#: Relative attractiveness of each Tier-2 as transit for regional/edge
#: customers.  Hurricane Electric's cone is consistently top-10 (§6.4).
TIER2_EDGE_WEIGHT: dict[str, float] = {
    "Hurricane Electric": 6.0,
    "PCCW": 3.0,
    "Comcast": 2.0,
    "Liberty Global": 2.0,
    "RETN": 2.0,
    "Vocus": 1.5,
    "Telstra": 1.5,
    "IIJ": 1.5,
    "COLT": 1.5,
    "Vodafone": 1.5,
    "KCOM": 0.3,
}

#: Open-peering Tier-2s peer directly with edge networks (HE's open policy
#: makes its unreachable-type mix resemble the clouds', §6.7).
TIER2_OPEN_PEERING: dict[str, float] = {
    "Hurricane Electric": 0.45,
    "PCCW": 0.20,
    "Liberty Global": 0.18,
    "Vocus": 0.15,
    "RETN": 0.12,
    "Comcast": 0.10,
}
DEFAULT_T2_EDGE_PEERING = 0.04

#: Tier-1s also hold many settlement-free peerings below the hierarchy
#: (content networks, large regionals).  Probability of peering with a
#: regional transit; edge peering runs at 0.4x this.  Sprint and Deutsche
#: Telekom stick to the hierarchy, which is why their hierarchy-free
#: reachability collapses (§6.6, Appendix B).
TIER1_FLAT_PEERING: dict[str, float] = {
    "Level 3": 0.80,
    "Cogent": 0.55,
    "Telia": 0.50,
    "GTT": 0.45,
    "Zayo": 0.50,
    "NTT": 0.35,
    "Tata": 0.30,
    "AT&T": 0.25,
    "Verizon": 0.20,
    "Sprint": 0.01,
    "Deutsche Telekom": 0.01,
}
DEFAULT_T1_FLAT_PEERING = 0.15

#: Open Tier-2s also peer with regional transits at this probability.
TIER2_REGIONAL_PEERING: dict[str, float] = {
    "Hurricane Electric": 0.85,
    "PCCW": 0.45,
    "Liberty Global": 0.40,
    "Vocus": 0.35,
    "RETN": 0.35,
    "Comcast": 0.30,
}
DEFAULT_T2_REGIONAL_PEERING = 0.12

#: Google's small third provider in the Sep-2020 CAIDA snapshot.
DURAND_NAME = "Durand do Brasil"
DURAND_ASN = 22356

#: Synthetic ASN block bases (regional, access, content, enterprise).
#: Legacy 10k-stride bases serve every profile whose classes fit their
#: stride; paper-scale profiles use the wide bases, clear of the 60000+
#: synthetic-name pool, the 61000+ IXP ASNs, and all real ASNs (< 65536).
LEGACY_BLOCK_BASES = (20_000, 30_000, 40_000, 50_000)
WIDE_BLOCK_BASES = (100_000, 200_000, 400_000, 600_000)

_REGION_WEIGHTS = {
    Continent.NORTH_AMERICA: 0.26,
    Continent.EUROPE: 0.25,
    Continent.ASIA: 0.28,
    Continent.SOUTH_AMERICA: 0.09,
    Continent.AFRICA: 0.07,
    Continent.OCEANIA: 0.05,
}


class _Builder:
    """One-shot scenario construction (use :func:`build_scenario`)."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.graph = ASGraph()
        self.as_info: dict[int, ASInfo] = {}
        self.order: list[int] = []  # allocation order → prefix order
        self.tier1: list[int] = []
        self.tier2: list[int] = []
        self.regional: list[int] = []
        self.access: list[int] = []
        self.content: list[int] = []
        self.enterprise: list[int] = []
        self.clouds: dict[str, int] = {}
        self.facebook_asn: int | None = None
        self.ixps: list[IXPRecord] = []
        self.ixp_members: dict[int, set[int]] = {}
        self.as_ixps: dict[int, list[int]] = defaultdict(list)
        self.interconnects: dict[tuple[int, int], list[Interconnect]] = {}
        self.pop_footprints: dict[str, tuple[City, ...]] = {}
        self.vm_cities: dict[int, tuple[City, ...]] = {}
        self.transit_labels: dict[str, int] = {}
        self._synth_asn = 60000
        self._pni_counter: dict[int, int] = defaultdict(lambda: 10)

    # -- helpers -------------------------------------------------------
    def _register(
        self, asn: int, name: str, kind: ASKind, city: City,
        in_graph: bool = True,
    ) -> int:
        if asn in self.as_info:
            raise ValueError(f"duplicate ASN {asn}")
        if in_graph:
            # IXP route-server ASes never appear in relationship data, so
            # they are kept out of the topology graph (and prefix order).
            self.graph.add_as(asn)
            self.order.append(asn)
        self.as_info[asn] = ASInfo(asn=asn, name=name, kind=kind, home_city=city)
        return asn

    def _fresh_asn(self) -> int:
        self._synth_asn += 1
        return self._synth_asn

    def _block_asns(
        self, base: int, count: int, reserved: set[int]
    ) -> list[int]:
        """``count`` ASNs from ``base`` upward, deterministically skipping
        reserved real-world ASNs (large profiles run the synthetic access
        block through territory like Facebook's 32934)."""
        out: list[int] = []
        asn = base
        while len(out) < count:
            if asn not in reserved and asn not in self.as_info:
                out.append(asn)
            asn += 1
        return out

    def _weighted_city(self, continent: Continent | None = None) -> City:
        pool = [
            c
            for c in WORLD_CITIES
            if continent is None or c.continent is continent
        ]
        weights = [c.population_m for c in pool]
        return self.rng.choices(pool, weights=weights, k=1)[0]

    def _pick_continent(self) -> Continent:
        continents = list(_REGION_WEIGHTS)
        weights = [_REGION_WEIGHTS[c] for c in continents]
        return self.rng.choices(continents, weights=weights, k=1)[0]

    def _named_weight(
        self, asn: int, table: dict[str, float], default: float
    ) -> float:
        return table.get(self.as_info[asn].name, default)

    def _weighted_pick(
        self, pool: list[int], table: dict[str, float], default: float = 1.0
    ) -> int:
        weights = [self._named_weight(a, table, default) for a in pool]
        return self.rng.choices(pool, weights=weights, k=1)[0]

    # -- population ----------------------------------------------------
    def make_ases(self) -> None:
        cfg = self.config
        reserved = {DURAND_ASN, cfg.facebook_asn}
        reserved.update(asn for _, asn in TIER1_NAMES)
        reserved.update(asn for _, asn in TIER2_NAMES)
        reserved.update(profile.asn for profile in cfg.clouds)
        names1 = list(TIER1_NAMES)
        for i in range(cfg.n_tier1):
            name, asn = (
                names1[i] if i < len(names1) else (f"Tier1-{i}", self._fresh_asn())
            )
            city = self._weighted_city()
            self.tier1.append(self._register(asn, name, ASKind.TIER1, city))
            self.transit_labels[name] = asn
        names2 = list(TIER2_NAMES)
        for i in range(cfg.n_tier2):
            name, asn = (
                names2[i] if i < len(names2) else (f"Tier2-{i}", self._fresh_asn())
            )
            city = self._weighted_city()
            self.tier2.append(self._register(asn, name, ASKind.TIER2, city))
            self.transit_labels[name] = asn
        # Synthetic block bases.  The legacy 10k-stride bases are kept
        # verbatim while every class fits its stride (so the seed
        # profiles stay byte-identical); the paper-scale ``full`` profile
        # (40k+ access ASes) switches to wide, well-separated bases that
        # can never run into each other, the 60000+ synthetic-name pool,
        # the 61000+ IXP route-server ASNs, or any curated real ASN
        # (all < 65536).
        counts = (cfg.n_regional, cfg.n_access, cfg.n_content, cfg.n_enterprise)
        if max(counts) + 256 <= 10_000:
            block_bases = LEGACY_BLOCK_BASES
        else:
            block_bases = WIDE_BLOCK_BASES
        regional_base, access_base, content_base, enterprise_base = block_bases
        # Durand-like small transit (Google's odd third provider)
        self.durand = self._register(
            DURAND_ASN, DURAND_NAME, ASKind.REGIONAL,
            self._weighted_city(Continent.SOUTH_AMERICA),
        )
        self.regional.append(self.durand)
        for i, asn in enumerate(
            self._block_asns(regional_base, cfg.n_regional, reserved)
        ):
            continent = self._pick_continent()
            city = self._weighted_city(continent)
            self.regional.append(
                self._register(
                    asn, f"Regional-{city.country}-{i}", ASKind.REGIONAL, city
                )
            )
        for i, asn in enumerate(
            self._block_asns(access_base, cfg.n_access, reserved)
        ):
            city = self._weighted_city(self._pick_continent())
            self.access.append(
                self._register(
                    asn, f"Access-{city.code}-{i}", ASKind.ACCESS, city
                )
            )
        for i, asn in enumerate(
            self._block_asns(content_base, cfg.n_content, reserved)
        ):
            city = self._weighted_city()
            self.content.append(
                self._register(
                    asn, f"Content-{city.code}-{i}", ASKind.CONTENT, city
                )
            )
        for i, asn in enumerate(
            self._block_asns(enterprise_base, cfg.n_enterprise, reserved)
        ):
            city = self._weighted_city(self._pick_continent())
            self.enterprise.append(
                self._register(
                    asn, f"Enterprise-{city.code}-{i}",
                    ASKind.ENTERPRISE, city,
                )
            )
        for profile in cfg.clouds:
            city = self._weighted_city(Continent.NORTH_AMERICA)
            self.clouds[profile.name] = self._register(
                profile.asn, profile.name, ASKind.CLOUD, city
            )
        if cfg.include_facebook:
            self.facebook_asn = self._register(
                cfg.facebook_asn, "Facebook", ASKind.HYPERGIANT,
                self._weighted_city(Continent.NORTH_AMERICA),
            )

    # -- IXPs ------------------------------------------------------------
    def make_ixps(self) -> None:
        cfg = self.config
        metros = largest_cities(max(cfg.n_ixps, 1))
        # paper-scale profiles concentrate thousands of members on the big
        # metro exchanges, overflowing a /24 LAN's 252 usable slots
        wide_lans = cfg.total_ases >= 20_000
        for i in range(cfg.n_ixps):
            city = metros[i % len(metros)]
            announced = self.rng.random() >= cfg.artifacts.ixp_unannounced
            asn = self._register(
                61000 + i, f"IX-{city.code.upper()}-{i}", ASKind.IXP, city,
                in_graph=False,
            )
            record = IXPRecord(
                ixp_id=i,
                name=f"{city.name} IX",
                asn=asn,
                city=city,
                lan=ixp_lan(i, wide=wide_lans),
                announced=announced,
                members=frozenset(),
            )
            self.ixps.append(record)
            self.ixp_members[i] = set()

    def _join_ixps(self) -> None:
        """Edge/transit ASes join their home-city IXP (if any)."""
        by_city: dict[str, list[int]] = defaultdict(list)
        for ixp in self.ixps:
            by_city[ixp.city.code].append(ixp.ixp_id)
        presence = self.config.ixp_presence

        def join(asn: int, prob: float) -> None:
            city = self.as_info[asn].home_city
            candidates = by_city.get(city.code)
            if candidates and self.rng.random() < prob:
                ixp_id = self.rng.choice(candidates)
                self.ixp_members[ixp_id].add(asn)
                self.as_ixps[asn].append(ixp_id)

        def join_many(asn: int, lo: int, hi: int) -> None:
            count = min(self.rng.randint(lo, hi), len(self.ixps))
            for ixp in self.rng.sample(self.ixps, k=count):
                if asn not in self.ixp_members[ixp.ixp_id]:
                    self.ixp_members[ixp.ixp_id].add(asn)
                    self.as_ixps[asn].append(ixp.ixp_id)

        for asn in self.access + self.content:
            join(asn, presence)
        for asn in self.enterprise:
            join(asn, presence * 0.4)
        # transit networks deploy ports at many exchanges, not just one
        for asn in self.regional:
            join(asn, 0.9)
            join_many(asn, 1, 4)
        for asn in self.tier2:
            join_many(asn, 3, 8)

    # -- wiring ----------------------------------------------------------
    def wire_hierarchy(self) -> None:
        cfg, rng = self.config, self.rng
        for i, a in enumerate(self.tier1):
            for b in self.tier1[i + 1 :]:
                self.graph.add_p2p(a, b)
        lo, hi = cfg.t2_provider_count
        for asn in self.tier2:
            name = self.as_info[asn].name
            if name not in PROVIDER_FREE_TIER2:
                for _ in range(rng.randint(lo, hi)):
                    provider = self._weighted_pick(self.tier1, TIER1_T2_WEIGHT)
                    if self.graph.relationship_between(provider, asn) is None:
                        self.graph.add_p2c(provider, asn)
            for t1 in self.tier1:
                if (
                    self.graph.relationship_between(t1, asn) is None
                    and rng.random() < cfg.t2_tier1_peer_prob
                ):
                    self.graph.add_p2p(t1, asn)
        for i, a in enumerate(self.tier2):
            for b in self.tier2[i + 1 :]:
                if rng.random() < cfg.t2_mutual_peer_prob:
                    self.graph.add_p2p(a, b)

    def wire_regional(self) -> None:
        cfg, rng = self.config, self.rng
        lo, hi = cfg.regional_provider_count
        for asn in self.regional:
            for _ in range(rng.randint(lo, hi)):
                if rng.random() < 0.6:
                    provider = self._weighted_pick(self.tier2, TIER2_EDGE_WEIGHT)
                else:
                    provider = self._weighted_pick(self.tier1, TIER1_EDGE_WEIGHT)
                if self.graph.relationship_between(provider, asn) is None:
                    self.graph.add_p2c(provider, asn)
        by_continent: dict[Continent, list[int]] = defaultdict(list)
        for asn in self.regional:
            by_continent[self.as_info[asn].home_city.continent].append(asn)
        for members in by_continent.values():
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    if rng.random() < cfg.regional_peer_prob:
                        if self.graph.relationship_between(a, b) is None:
                            self.graph.add_p2p(a, b)

    def _edge_providers(self, asn: int) -> None:
        cfg, rng = self.config, self.rng
        continent = self.as_info[asn].home_city.continent
        local = [
            r
            for r in self.regional
            if self.as_info[r].home_city.continent is continent
        ]
        lo, hi = cfg.edge_provider_count
        count = rng.randint(lo, hi)
        for _ in range(count):
            if local and rng.random() < 0.7:
                provider = rng.choice(local)
            elif self.regional and rng.random() < 0.4:
                provider = rng.choice(self.regional)
            else:
                provider = self._weighted_pick(self.tier2, TIER2_EDGE_WEIGHT)
            if provider != asn and (
                self.graph.relationship_between(provider, asn) is None
            ):
                self.graph.add_p2c(provider, asn)

    def wire_edges(self) -> None:
        cfg, rng = self.config, self.rng
        for asn in self.access + self.content + self.enterprise:
            self._edge_providers(asn)
        # open-peering Tier-2s (HE et al.) peer directly with edge networks
        # present at any IXP, and with regional transits
        for t2 in self.tier2:
            fraction = self._named_weight(
                t2, TIER2_OPEN_PEERING, DEFAULT_T2_EDGE_PEERING
            )
            for edge in self.access + self.content:
                if not self.as_ixps.get(edge):
                    continue
                if rng.random() < fraction:
                    if self.graph.relationship_between(t2, edge) is None:
                        self.graph.add_p2p(t2, edge)
            regional_fraction = self._named_weight(
                t2, TIER2_REGIONAL_PEERING, DEFAULT_T2_REGIONAL_PEERING
            )
            for reg in self.regional:
                if rng.random() < regional_fraction:
                    if self.graph.relationship_between(t2, reg) is None:
                        self.graph.add_p2p(t2, reg)
        # Tier-1 flat peerings: regional transits and (fewer) edge networks
        for t1 in self.tier1:
            fraction = self._named_weight(
                t1, TIER1_FLAT_PEERING, DEFAULT_T1_FLAT_PEERING
            )
            for reg in self.regional:
                if rng.random() < fraction:
                    if self.graph.relationship_between(t1, reg) is None:
                        self.graph.add_p2p(t1, reg)
            for edge in self.access + self.content:
                if not self.as_ixps.get(edge):
                    continue
                if rng.random() < fraction * 0.4:
                    if self.graph.relationship_between(t1, edge) is None:
                        self.graph.add_p2p(t1, edge)
        # IXP members peer with one another (the flat mesh §6.6 observes:
        # thousands of ordinary networks gain hierarchy-free reach through
        # exchange peering with regionals and each other)
        pair_probability = {
            frozenset({ASKind.CONTENT}): 0.25,
            frozenset({ASKind.CONTENT, ASKind.ACCESS}): 0.12,
            frozenset({ASKind.ACCESS}): 1.3 * cfg.content_peer_prob,
            frozenset({ASKind.REGIONAL, ASKind.ACCESS}): 0.40,
            frozenset({ASKind.REGIONAL, ASKind.CONTENT}): 0.40,
            frozenset({ASKind.REGIONAL}): 0.20,
        }
        for ixp_id, members in self.ixp_members.items():
            member_list = sorted(members)
            for i, a in enumerate(member_list):
                kind_a = self.as_info[a].kind
                for b in member_list[i + 1 :]:
                    kind_b = self.as_info[b].kind
                    prob = pair_probability.get(frozenset({kind_a, kind_b}))
                    if prob is None:
                        continue
                    if (
                        rng.random() < min(prob, 1.0)
                        and self.graph.relationship_between(a, b) is None
                    ):
                        self.graph.add_p2p(a, b)

    # -- hypergiants -------------------------------------------------------
    def wire_facebook(self) -> None:
        if self.facebook_asn is None:
            return
        cfg, rng = self.config, self.rng
        asn = self.facebook_asn
        for provider in rng.sample(self.tier1, k=min(2, len(self.tier1))):
            self.graph.add_p2c(provider, asn)
        for t2 in self.tier2:
            if rng.random() < 0.7:
                self.graph.add_p2p(asn, t2)
        for reg in self.regional:
            if rng.random() < min(1.0, cfg.facebook_peer_fraction + 0.35):
                if self.graph.relationship_between(asn, reg) is None:
                    self.graph.add_p2p(asn, reg)
        for edge in self.access + self.content:
            if rng.random() < cfg.facebook_peer_fraction:
                if self.graph.relationship_between(asn, edge) is None:
                    self.graph.add_p2p(asn, edge)

    # -- clouds ------------------------------------------------------------
    def _cloud_pops(self, profile: CloudProfile) -> tuple[City, ...]:
        """Cloud PoP metros: population-weighted picks balanced across
        North America, Europe and Asia, always including Shanghai and
        Beijing (Fig. 11's cloud-only locations)."""
        from ..geo.cities import cities_in, city_by_code

        rng = self.rng
        regions = (
            Continent.NORTH_AMERICA,
            Continent.EUROPE,
            Continent.ASIA,
        )
        # mainland China presence is sha/bjs only (added explicitly below)
        china = {"sha", "bjs", "can", "szx", "ctu"}
        pools = {
            r: [c for c in cities_in(r) if c.code not in china]
            for r in regions
        }
        pops: list[City] = []
        region_index = 0
        while len(pops) < profile.pop_count and any(pools.values()):
            region = regions[region_index % len(regions)]
            region_index += 1
            pool = pools[region]
            if not pool:
                continue
            # square the weights: clouds chase the biggest metros first
            weights = [c.population_m**2 for c in pool]
            city = rng.choices(pool, weights=weights, k=1)[0]
            pool.remove(city)
            pops.append(city)
        extras = ["sha", "bjs"]
        if profile.pop_count >= 15:
            extras += ["syd", "gru"]  # real clouds serve Oceania/Brazil
        if profile.pop_count >= 40:
            extras += ["mel", "jnb", "eze"]
        for code in extras:
            if all(c.code != code for c in pops):
                pops.append(city_by_code(code))
        return tuple(pops)

    def _transit_pops(self, asn: int) -> tuple[City, ...]:
        """Transit footprints: broader and more global than the clouds'."""
        rng = self.rng
        count = rng.randint(30, min(110, len(WORLD_CITIES)))
        majors = list(largest_cities(count))
        extras = [
            c
            for c in WORLD_CITIES
            if c.continent
            in (Continent.SOUTH_AMERICA, Continent.AFRICA)
            and c not in majors
        ]
        rng.shuffle(extras)
        majors.extend(extras[: max(3, count // 8)])
        # no transit presence in mainland China (Fig. 11's observation)
        return tuple(c for c in majors if c.code not in ("sha", "bjs", "can", "szx", "ctu"))

    def wire_clouds(self) -> None:
        cfg, rng = self.config, self.rng
        for profile in cfg.clouds:
            asn = self.clouds[profile.name]
            pops = self._cloud_pops(profile)
            self.pop_footprints[profile.name] = pops
            datacenters = list(pops[: max(profile.datacenter_count, 1)])
            vm_count = profile.vm_locations if profile.vm_locations else 0
            self.vm_cities[asn] = tuple(datacenters[:vm_count]) if vm_count else ()
            pop_codes = {c.code for c in pops}
            # transit
            providers: list[int] = []
            providers.extend(
                rng.sample(self.tier1, k=min(profile.tier1_providers, len(self.tier1)))
            )
            available_t2 = [t for t in self.tier2]
            providers.extend(
                rng.sample(
                    available_t2, k=min(profile.tier2_providers, len(available_t2))
                )
            )
            if profile.other_providers:
                pool = [self.durand] + [
                    r for r in self.regional if r != self.durand
                ]
                providers.extend(pool[: profile.other_providers])
            for provider in providers:
                if self.graph.relationship_between(provider, asn) is None:
                    self.graph.add_p2c(provider, asn)
            # Tier-1 peerings (those not already providers)
            t1_candidates = [
                t for t in self.tier1
                if self.graph.relationship_between(t, asn) is None
            ]
            for t1 in rng.sample(
                t1_candidates, k=min(profile.tier1_peers, len(t1_candidates))
            ):
                self.graph.add_p2p(asn, t1)
            # Tier-2 peerings: clouds peer with most remaining Tier-2s
            for t2 in self.tier2:
                if self.graph.relationship_between(t2, asn) is None:
                    if rng.random() < max(profile.edge_peer_fraction, 0.5):
                        self.graph.add_p2p(asn, t2)
            # edge peerings, gated on PoP co-location
            for edge in self.access + self.content + self.enterprise:
                info = self.as_info[edge]
                colocated = info.home_city.code in pop_codes or any(
                    self.ixps[i].city.code in pop_codes
                    for i in self.as_ixps.get(edge, ())
                )
                if not colocated:
                    continue
                prob = profile.edge_peer_fraction
                if info.kind is ASKind.ACCESS:
                    prob = min(1.0, prob * profile.access_bias)
                elif info.kind is ASKind.ENTERPRISE:
                    prob *= 0.3
                if rng.random() < prob:
                    if self.graph.relationship_between(asn, edge) is None:
                        self.graph.add_p2p(asn, edge)
            # regional transit peers: these carry most of the cloud's
            # hierarchy-free reach, since their customer cones survive the
            # removal of the Tier-1/Tier-2 ISPs
            base = 0.5 + 0.5 * profile.edge_peer_fraction
            for reg in self.regional:
                colocated = self.as_info[reg].home_city.code in pop_codes
                prob = base * (1.0 if colocated else 0.7)
                if rng.random() < prob:
                    if self.graph.relationship_between(asn, reg) is None:
                        self.graph.add_p2p(asn, reg)

    # -- interconnect records ----------------------------------------------
    def make_interconnects(self, prefixes: dict[int, ipaddress.IPv4Network]) -> None:
        rng = self.rng
        ixps_by_city: dict[str, list[IXPRecord]] = defaultdict(list)
        for ixp in self.ixps:
            ixps_by_city[ixp.city.code].append(ixp)
        for name, cloud_asn in self.clouds.items():
            pops = self.pop_footprints[name]
            pop_codes = [c.code for c in pops]
            for neighbor in sorted(self.graph.neighbors(cloud_asn)):
                info = self.as_info[neighbor]
                # candidate meeting city: neighbor home city if the cloud has
                # a PoP there, else a random cloud PoP metro
                if info.home_city.code in pop_codes:
                    city = info.home_city
                else:
                    city = pops[rng.randrange(len(pops))]
                shared_ixps = [
                    ixp
                    for ixp in ixps_by_city.get(city.code, ())
                    if neighbor in self.ixp_members.get(ixp.ixp_id, ())
                ]
                use_ixp = bool(shared_ixps) and rng.random() < 0.7
                if use_ixp:
                    ixp = shared_ixps[0]
                    self.ixp_members[ixp.ixp_id].add(cloud_asn)
                    is_edge = info.kind in (
                        ASKind.ACCESS, ASKind.CONTENT, ASKind.ENTERPRISE
                    )
                    link = Interconnect(
                        cloud_asn=cloud_asn,
                        neighbor_asn=neighbor,
                        city=ixp.city,
                        medium=InterconnectMedium.IXP,
                        ixp_id=ixp.ixp_id,
                        neighbor_ip=ipaddress.IPv4Address("0.0.0.0"),
                        route_server=is_edge
                        and rng.random()
                        < self.config.artifacts.route_server_fraction,
                    )
                else:
                    self._pni_counter[neighbor] += 1
                    link = Interconnect(
                        cloud_asn=cloud_asn,
                        neighbor_asn=neighbor,
                        city=city,
                        medium=InterconnectMedium.PNI,
                        neighbor_ip=host_in(
                            prefixes[neighbor], self._pni_counter[neighbor]
                        ),
                    )
                self.interconnects.setdefault((cloud_asn, neighbor), []).append(link)

    def finalize_ixps(self, prefixes: dict[int, ipaddress.IPv4Network]) -> None:
        """Freeze membership sets and fill IXP member IPs on interconnects."""
        self.ixps = [
            IXPRecord(
                ixp_id=ixp.ixp_id,
                name=ixp.name,
                asn=ixp.asn,
                city=ixp.city,
                lan=ixp.lan,
                announced=ixp.announced,
                members=frozenset(self.ixp_members[ixp.ixp_id]),
            )
            for ixp in self.ixps
        ]
        by_id = {ixp.ixp_id: ixp for ixp in self.ixps}
        for key, links in self.interconnects.items():
            fixed = []
            for link in links:
                if link.medium is InterconnectMedium.IXP:
                    ixp = by_id[link.ixp_id]
                    fixed.append(
                        Interconnect(
                            cloud_asn=link.cloud_asn,
                            neighbor_asn=link.neighbor_asn,
                            city=link.city,
                            medium=link.medium,
                            ixp_id=link.ixp_id,
                            neighbor_ip=ixp.member_ip(link.neighbor_asn),
                            route_server=link.route_server,
                        )
                    )
                else:
                    fixed.append(link)
            self.interconnects[key] = fixed

    # -- public (BGP) view ---------------------------------------------------
    def choose_monitors(self) -> frozenset[int]:
        rng = self.rng
        monitors: set[int] = set(self.tier1[: max(2, len(self.tier1) // 2)])
        monitors.update(rng.sample(self.tier2, k=max(1, len(self.tier2) // 2)))
        monitors.update(
            rng.sample(self.regional, k=min(len(self.regional), 12))
        )
        pool = self.access + self.enterprise
        remaining = max(0, self.config.n_bgp_monitors - len(monitors))
        if pool and remaining:
            monitors.update(rng.sample(pool, k=min(remaining, len(pool))))
        return frozenset(monitors)

    def public_view(self, monitors: frozenset[int]) -> ASGraph:
        from ..topology.visibility import visible_subgraph

        return visible_subgraph(self.graph, monitors)

    # -- footprints for transit providers ------------------------------------
    def make_transit_footprints(self) -> None:
        for asn in self.tier1 + self.tier2:
            name = self.as_info[asn].name
            self.pop_footprints[name] = self._transit_pops(asn)

    # -- assembly -------------------------------------------------------------
    def build(self) -> InternetScenario:
        self.make_ases()
        self.make_ixps()
        self._join_ixps()
        self.wire_hierarchy()
        self.wire_regional()
        self.wire_edges()
        self.wire_facebook()
        self.wire_clouds()
        self.make_transit_footprints()
        prefixes = allocate_as_prefixes(self.order)
        self.make_interconnects(prefixes)
        self.finalize_ixps(prefixes)
        access_by_city: dict[str, list[int]] = defaultdict(list)
        for asn in self.access:
            access_by_city[self.as_info[asn].home_city.code].append(asn)
        cities = {c.code: c for c in WORLD_CITIES}
        users = assign_users(access_by_city, cities, random.Random(self.config.seed + 1))
        monitors = self.choose_monitors()
        public = self.public_view(monitors)
        tiers = TierAssignment(
            tier1=frozenset(self.tier1), tier2=frozenset(self.tier2)
        )
        return InternetScenario(
            config=self.config,
            graph=self.graph,
            tiers=tiers,
            as_info=self.as_info,
            clouds=self.clouds,
            facebook_asn=self.facebook_asn,
            prefixes=prefixes,
            ixps=self.ixps,
            interconnects=self.interconnects,
            users=users,
            monitors=monitors,
            public_graph=public,
            pop_footprints=self.pop_footprints,
            vm_cities=self.vm_cities,
            transit_labels=self.transit_labels,
        )


def build_scenario(config: ScenarioConfig) -> InternetScenario:
    """Build a deterministic synthetic Internet from ``config``."""
    scenario = _Builder(config).build()
    scenario.graph.validate()
    scenario.public_graph.validate()
    return scenario
