"""Router-level expansion of AS-level forwarding paths.

Cloud traceroutes observe: a few cloud-internal hops (often hidden by
tunneling), the *neighbor's* border interface — addressed either out of the
neighbor's own space (PNI) or out of an exchange LAN (public peering) —
then one ingress interface per subsequent AS, and finally the destination.
This module turns an AS path plus the scenario's interconnect records into
that hop sequence, applying the artifact model along the way.
"""

from __future__ import annotations

import random

from ..geo.distance import haversine_km
from ..netgen.addressing import host_in, router_ip
from ..netgen.scenario import Interconnect, InternetScenario
from .artifacts import ArtifactModel
from .model import Hop, Traceroute, VantagePoint


def nearest_interconnect(
    scenario: InternetScenario,
    cloud_asn: int,
    neighbor_asn: int,
    vantage: VantagePoint,
) -> Interconnect:
    """The interconnect with ``neighbor_asn`` closest to the VM's city."""
    links = scenario.interconnects.get((cloud_asn, neighbor_asn))
    if not links:
        raise KeyError(
            f"no interconnect between AS{cloud_asn} and AS{neighbor_asn}"
        )
    return min(
        links,
        key=lambda link: haversine_km(
            link.city.lat, link.city.lon, vantage.city.lat, vantage.city.lon
        ),
    )


def expand_path(
    scenario: InternetScenario,
    artifacts: ArtifactModel,
    rng: random.Random,
    vantage: VantagePoint,
    as_path: tuple[int, ...],
) -> Traceroute:
    """Expand an AS path (cloud first, destination last) into a traceroute."""
    if len(as_path) < 2:
        raise ValueError("AS path must include the cloud and a destination")
    if as_path[0] != vantage.cloud_asn:
        raise ValueError("AS path must start at the vantage cloud")
    dst_asn = as_path[-1]
    dst_ip = host_in(scenario.prefixes[dst_asn], 1)
    trace = Traceroute(
        vantage=vantage,
        dst_ip=dst_ip,
        dst_asn=dst_asn,
        true_as_path=as_path,
    )
    if artifacts.drop_whole_traceroute():
        trace.reached = False
        return trace

    hops: list[Hop] = []
    ttl = 0

    def add(ip) -> None:
        nonlocal ttl
        ttl += 1
        hops.append(Hop(ttl=ttl, ip=ip))

    # cloud interior (possibly tunneled away)
    cloud_prefix = scenario.prefixes[vantage.cloud_asn]
    if not artifacts.suppress_cloud_interior():
        add(router_ip(cloud_prefix, vantage.index, 0))
        add(router_ip(cloud_prefix, vantage.index, 1))

    # neighbor border interface
    neighbor = as_path[1]
    link = nearest_interconnect(
        scenario, vantage.cloud_asn, neighbor, vantage
    )
    add(artifacts.border_address(link))

    # subsequent transit ASes: one ingress interface each
    for asn in as_path[2:-1]:
        if artifacts.transit_unresponsive():
            add(None)
        else:
            add(router_ip(scenario.prefixes[asn], asn % 64, 0))

    # destination (when it is not the direct neighbor, add its ingress too)
    if len(as_path) > 2:
        if artifacts.transit_unresponsive():
            add(None)
        else:
            add(router_ip(scenario.prefixes[dst_asn], dst_asn % 64, 0))
    add(dst_ip)
    trace.hops = hops
    trace.reached = True
    return trace
