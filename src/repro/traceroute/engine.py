"""The traceroute campaign runner (Scamper from cloud VMs, §4.1).

For every destination AS we simulate the announcement of its prefix over
the ground-truth topology, then walk each cloud VM's tied-best forwarding
DAG toward it.  Clouds with a global WAN egress anywhere (cold potato);
Amazon's default early exit is modeled by choosing, among the tied-best
next hops, the one whose interconnect is closest to the VM — so distant
VMs take different first hops, exactly the behaviour §5 credits for both
extra discovered peers and extra accumulated error.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from typing import Optional

from ..bgpsim.cache import RoutingStateCache
from ..bgpsim.routes import RoutingState
from ..geo.distance import haversine_km
from ..netgen.scenario import InternetScenario
from .artifacts import ArtifactModel
from .model import Traceroute, VantagePoint
from .pathsim import expand_path


def vantage_points(
    scenario: InternetScenario, cloud_asn: int
) -> list[VantagePoint]:
    """The measurement VMs of a cloud, one per datacenter metro."""
    cities = scenario.vm_cities.get(cloud_asn, ())
    return [
        VantagePoint(cloud_asn=cloud_asn, city=city, index=i)
        for i, city in enumerate(cities)
    ]


class TracerouteCampaign:
    """Runs (and caches routing state for) a full measurement campaign.

    ``workers`` parallelizes the per-destination route propagations (the
    campaign's dominant cost) across processes; the measurement walk itself
    stays serial so the RNG stream — and therefore every emitted traceroute
    — is identical for any worker count.  ``cache_size`` bounds the
    routing-state cache (see :class:`~repro.bgpsim.cache.RoutingStateCache`);
    the default keeps every destination's state, matching the historical
    behaviour.
    """

    def __init__(
        self,
        scenario: InternetScenario,
        seed: int = 1,
        workers: int | str | None = None,
        cache_size: Optional[int] = None,
        engine: Optional[str] = None,
        batch: Optional[int] = None,
    ) -> None:
        self.scenario = scenario
        self.rng = random.Random(seed)
        self.workers = workers
        self.artifacts = ArtifactModel(
            scenario=scenario,
            rates=scenario.config.artifacts,
            rng=self.rng,
        )
        self._states = RoutingStateCache(
            scenario.graph, maxsize=cache_size, engine=engine, batch=batch
        )
        # exit distances depend only on (cloud, neighbor, VM city), not on
        # the destination — memoized across the whole campaign
        self._exit_km: dict[tuple[int, int, str], float] = {}

    # -- routing -------------------------------------------------------------
    def state_for(self, dst_asn: int) -> RoutingState:
        return self._states.state_for(dst_asn)

    def cache_stats(self):
        """Hit/miss/eviction counters of the routing-state cache."""
        return self._states.stats()

    def _usable_from(self, vantage: VantagePoint, neighbor: int) -> bool:
        """Is this neighbor's route usable from the VM's location?

        Route-server peer routes are only selected at the PoP where the
        session lives (§5: peers missed by the measurements provide routes
        to a single PoP far from the datacenters).
        """
        links = self.scenario.interconnects.get(
            (vantage.cloud_asn, neighbor)
        )
        if not links:
            return True  # providers etc. reached through the backbone
        return any(
            not link.route_server or link.city.code == vantage.city.code
            for link in links
        )

    def _choose_first_hop(
        self,
        vantage: VantagePoint,
        state: RoutingState,
        parents: Iterable[int],
        wan_egress: bool,
    ) -> int:
        candidates = [
            p for p in sorted(parents) if self._usable_from(vantage, p)
        ]
        if not candidates:
            # fall back to any transit provider holding a route
            providers = [
                p
                for p in sorted(
                    self.scenario.graph.providers(vantage.cloud_asn)
                )
                if state.has_route(p)
            ]
            candidates = providers or sorted(parents)
        if wan_egress or len(candidates) == 1:
            return self.rng.choice(candidates)
        # early exit: nearest interconnect to this VM wins (hot potato)
        def exit_distance(neighbor: int) -> float:
            key = (vantage.cloud_asn, neighbor, vantage.city.code)
            distance = self._exit_km.get(key)
            if distance is not None:
                return distance
            links = self.scenario.interconnects.get(
                (vantage.cloud_asn, neighbor)
            )
            if not links:
                distance = float("inf")
            else:
                distance = min(
                    haversine_km(
                        link.city.lat, link.city.lon,
                        vantage.city.lat, vantage.city.lon,
                    )
                    for link in links
                )
            self._exit_km[key] = distance
            return distance

        return min(candidates, key=lambda n: (exit_distance(n), n))

    def _deviated_first_hop(
        self, vantage: VantagePoint, state: RoutingState
    ) -> Optional[int]:
        """A traffic-engineered (non-best) exit via a transit provider."""
        providers = [
            p
            for p in sorted(self.scenario.graph.providers(vantage.cloud_asn))
            if state.has_route(p)
        ]
        if not providers:
            return None
        return self.rng.choice(providers)

    def forwarding_path(
        self, vantage: VantagePoint, dst_asn: int, wan_egress: bool
    ) -> Optional[tuple[int, ...]]:
        """The AS path the VM's traffic takes toward ``dst_asn``.

        Usually a tied-best Gao-Rexford path; occasionally (per the
        ``policy_deviation`` artifact rate, amplified for early-exit
        clouds) a valid but non-best path via a transit provider.
        """
        cloud = vantage.cloud_asn
        if dst_asn == cloud:
            return None
        state = self.state_for(dst_asn)
        route = state.route(cloud)
        if route is None:
            return None
        deviation = self.scenario.config.artifacts.policy_deviation
        if not wan_egress:
            deviation *= 3.0
        node: Optional[int] = None
        if self.rng.random() < deviation:
            node = self._deviated_first_hop(vantage, state)
        if node is None:
            node = self._choose_first_hop(
                vantage, state, route.parents, wan_egress
            )
        path = [cloud, node]
        while node != dst_asn:
            # the lazy per-AS accessor keeps compiled states compact: the
            # walk touches a handful of ASes, not the whole routes dict
            parents = sorted(state.route(node).parents)
            node = self.rng.choice(parents)
            path.append(node)
        return tuple(path)

    # -- campaign --------------------------------------------------------------
    def measure(
        self, vantage: VantagePoint, dst_asn: int, wan_egress: bool
    ) -> Optional[Traceroute]:
        path = self.forwarding_path(vantage, dst_asn, wan_egress)
        if path is None:
            return None
        return expand_path(
            self.scenario, self.artifacts, self.rng, vantage, path
        )

    def run_cloud(
        self,
        cloud_asn: int,
        destinations: Optional[Sequence[int]] = None,
    ) -> list[Traceroute]:
        """Measure from every VM of one cloud to every destination AS."""
        scenario = self.scenario
        profile = next(
            p for p in scenario.config.clouds if p.asn == cloud_asn
        )
        vms = vantage_points(scenario, cloud_asn)
        if destinations is None:
            destinations = sorted(
                asn for asn in scenario.graph if asn != cloud_asn
            )
        self._states.prefetch(
            (dst for dst in destinations if dst != cloud_asn),
            workers=self.workers,
        )
        traces: list[Traceroute] = []
        for dst in destinations:
            if dst == cloud_asn:
                continue
            for vm in vms:
                trace = self.measure(vm, dst, profile.wan_egress)
                if trace is not None:
                    traces.append(trace)
        return traces

    def run_all(
        self, destinations: Optional[Sequence[int]] = None
    ) -> dict[int, list[Traceroute]]:
        """Run the full campaign for every cloud in the scenario."""
        return {
            asn: self.run_cloud(asn, destinations)
            for asn in self.scenario.cloud_asns()
        }
