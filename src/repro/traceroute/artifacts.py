"""Measurement-noise models (§4.4, §5).

Each artifact corresponds to a phenomenon the paper documents:

* **unresponsive hops** — routers dropping ICMP or rate-limiting; the
  unresponsive-*border* case is what broke the initial skip-one-hop
  inference rule;
* **IXP misattribution** — under load balancing (or far-side addressing) a
  border hop can respond with an address belonging to a different member of
  the same exchange LAN, producing false-positive neighbors that survive
  even correct resolution;
* **rate limiting** — whole traceroutes lost (1000 pps cap, §4.1);
* **tunnel suppression** — cloud-internal hops hidden by encapsulation or
  TTL manipulation (Google's VPC behaviour).
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass
from typing import Optional

from ..netgen.config import ArtifactRates
from ..netgen.scenario import Interconnect, InterconnectMedium, InternetScenario


@dataclass
class ArtifactModel:
    """Samples measurement noise for one campaign."""

    scenario: InternetScenario
    rates: ArtifactRates
    rng: random.Random

    def drop_whole_traceroute(self) -> bool:
        return self.rng.random() < self.rates.rate_limited

    def suppress_cloud_interior(self) -> bool:
        return self.rng.random() < self.rates.tunnel_suppression

    def border_unresponsive(self) -> bool:
        return self.rng.random() < self.rates.unresponsive_border

    def transit_unresponsive(self) -> bool:
        return self.rng.random() < self.rates.unresponsive_hop

    def border_address(
        self, link: Interconnect
    ) -> Optional[ipaddress.IPv4Address]:
        """The address observed at the neighbor's border, after noise.

        Returns ``None`` for an unresponsive border.  IXP borders are
        occasionally misattributed to another member's LAN address.
        """
        if self.border_unresponsive():
            return None
        if (
            link.medium is InterconnectMedium.IXP
            and self.rng.random() < self.rates.ixp_misattribution
        ):
            ixp = self.scenario.ixp_by_id(link.ixp_id)
            others = sorted(
                ixp.members - {link.neighbor_asn, link.cloud_asn}
            )
            if others:
                impostor = self.rng.choice(others)
                return ixp.member_ip(impostor)
        return link.neighbor_ip
