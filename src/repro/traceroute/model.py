"""Traceroute data model (Scamper-like output, §4.1)."""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Optional

from ..geo.cities import City


@dataclass(frozen=True)
class Hop:
    """One TTL step: a responding address, or an unresponsive '*'."""

    ttl: int
    ip: Optional[ipaddress.IPv4Address]

    @property
    def responded(self) -> bool:
        return self.ip is not None

    def __str__(self) -> str:
        return f"{self.ttl:2d}  {self.ip if self.ip else '*'}"


@dataclass(frozen=True)
class VantagePoint:
    """A measurement VM inside a cloud provider."""

    cloud_asn: int
    city: City
    index: int

    @property
    def label(self) -> str:
        return f"AS{self.cloud_asn}-vm{self.index}-{self.city.code}"


@dataclass
class Traceroute:
    """One measurement: VM → destination prefix.

    ``true_as_path`` carries the simulated forwarding path's AS sequence
    (cloud first, destination last) as ground truth for validation
    (Appendix A); a real campaign obviously would not have it.
    """

    vantage: VantagePoint
    dst_ip: ipaddress.IPv4Address
    dst_asn: int
    hops: list[Hop] = field(default_factory=list)
    reached: bool = False
    true_as_path: tuple[int, ...] = ()

    @property
    def cloud_asn(self) -> int:
        return self.vantage.cloud_asn

    def responding_ips(self) -> list[ipaddress.IPv4Address]:
        return [hop.ip for hop in self.hops if hop.ip is not None]

    def __str__(self) -> str:
        lines = [f"traceroute from {self.vantage.label} to {self.dst_ip}"]
        lines.extend(str(hop) for hop in self.hops)
        return "\n".join(lines)
