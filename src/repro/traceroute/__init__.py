"""Simulated Scamper traceroute campaigns from cloud VMs."""

from .artifacts import ArtifactModel
from .engine import TracerouteCampaign, vantage_points
from .model import Hop, Traceroute, VantagePoint
from .pathsim import expand_path, nearest_interconnect

__all__ = [
    "ArtifactModel",
    "Hop",
    "Traceroute",
    "TracerouteCampaign",
    "VantagePoint",
    "expand_path",
    "nearest_interconnect",
    "vantage_points",
]
