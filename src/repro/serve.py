"""``repro serve`` — the routing-state query service.

The paper's headline metrics are pure functions of per-origin routing
states, and the engine stack now has three tiers for obtaining one:

1. **warm** — the :class:`~repro.bgpsim.cache.RoutingStateCache` LRU;
2. **disk** — precomputed shards (``repro precompute``) memory-mapped by
   a :class:`~repro.bgpsim.shards.ShardStore`, O(1) per origin;
3. **cold** — a live propagation sweep.

This module puts an HTTP face on that stack: :class:`QueryService` is
the synchronous query core (one method per endpoint, fully testable
without sockets) and :func:`serve` wraps it in a stdlib-``asyncio``
HTTP/1.1 server with **request batching** — concurrent queries for
cache-missing origins are coalesced within a short window and warmed
through one bit-parallel ``prefetch`` sweep instead of N independent
propagations.

Endpoints (GET, JSON responses):

``/reachable?origin=A&target=B``
    whether B holds a route for A's prefix (+ class and path length)
``/path_length?origin=A&target=B``
    B's tied-best AS-path length toward A (``null`` when unreachable)
``/reliance?origin=A&target=B``
    the paper's provider-reliance mass ``rely(A, B)``
``/hegemony?origin=A&target=B``
    local AS hegemony ``H(A, B)`` (Fontugne et al.)
``/rib?origin=A&asn=B``
    B's RIB entry for A's prefix: class, length, tied parent set
``/stats`` · ``/health``
    cache tier counters (lru/disk/computed) and liveness

Every answer is derived from the same states live propagation produces —
the serve benchmark (``make bench-serve``) and the CI smoke leg assert
responses bit-identical to fresh ``propagate`` output.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

from .bgpsim.cache import RoutingStateCache
from .core.hegemony import TRIM, local_hegemony
from .core.reliance import reliance_from_state
from .topology.asgraph import ASGraph

__all__ = [
    "DEFAULT_MAXSIZE",
    "QueryError",
    "QueryService",
    "ServerHandle",
    "serve",
    "start_server_thread",
]

#: default warm-tier bound: enough for a busy working set, bounded so a
#: long-running server over a paper-scale corpus cannot grow unbounded
DEFAULT_MAXSIZE = 1024

#: how long the batcher waits to coalesce concurrent cold origins
DEFAULT_BATCH_WINDOW = 0.002


class QueryError(Exception):
    """An HTTP-mappable query failure (bad parameter, unknown AS)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class QueryService:
    """The synchronous query core behind every ``repro serve`` endpoint.

    Holds the tiered state stack — a
    :class:`~repro.bgpsim.cache.RoutingStateCache` (warm LRU), optionally
    backed by a precomputed :class:`~repro.bgpsim.shards.ShardStore`
    (mmap disk tier) — and answers one query per method call.  The HTTP
    layer is a thin wrapper over :meth:`answer`; tests and benchmarks
    call the service directly.
    """

    def __init__(
        self,
        graph: ASGraph,
        cache: Optional[RoutingStateCache] = None,
        shards=None,
        maxsize: Optional[int] = DEFAULT_MAXSIZE,
        engine: Optional[str] = None,
        batch: Optional[int] = None,
        trim: float = TRIM,
    ) -> None:
        if cache is None:
            cache = RoutingStateCache(
                graph, maxsize=maxsize, engine=engine, batch=batch
            )
        if shards is not None:
            cache.attach_shards(shards)
        self.graph = graph
        self.cache = cache
        self.trim = trim
        self.requests = 0
        self._routes = {
            "/health": self._ep_health,
            "/stats": self._ep_stats,
            "/reachable": self._ep_reachable,
            "/path_length": self._ep_path_length,
            "/reliance": self._ep_reliance,
            "/hegemony": self._ep_hegemony,
            "/rib": self._ep_rib,
        }

    # -- plumbing -------------------------------------------------------
    def _asn(self, params: dict[str, str], name: str) -> int:
        raw = params.get(name)
        if raw is None:
            raise QueryError(400, f"missing query parameter {name!r}")
        try:
            asn = int(raw)
        except ValueError:
            raise QueryError(400, f"{name} must be an AS number, got {raw!r}")
        if asn not in self.graph:
            raise QueryError(404, f"AS{asn} not in graph")
        return asn

    def _state(self, origin: int):
        return self.cache.state_for(origin)

    def warm(self, origins) -> int:
        """Batched warm-up for the request batcher: one bit-parallel
        prefetch sweep over the origins that are in the graph (unknown
        origins are left for their own requests to 404)."""
        known = [o for o in origins if o in self.graph]
        if not known:
            return 0
        return self.cache.prefetch(known)

    def answer(self, path: str, params: dict[str, str]) -> tuple[int, dict]:
        """Dispatch one query; returns ``(http_status, json_payload)``."""
        self.requests += 1
        handler = self._routes.get(path.rstrip("/") or "/health")
        if handler is None:
            return 404, {
                "error": f"unknown endpoint {path!r}",
                "endpoints": sorted(self._routes),
            }
        try:
            return 200, handler(params)
        except QueryError as exc:
            return exc.status, {"error": exc.message}

    # -- endpoints ------------------------------------------------------
    def _ep_health(self, params: dict[str, str]) -> dict[str, Any]:
        return {"status": "ok", "nodes": len(self.graph.nodes())}

    def _ep_stats(self, params: dict[str, str]) -> dict[str, Any]:
        stats = self.cache.stats()
        payload: dict[str, Any] = dataclasses.asdict(stats)
        payload["tiers"] = stats.tiers
        payload["requests"] = self.requests
        store = self.cache.shards
        payload["shards"] = (
            None
            if store is None
            else {
                "directory": str(store.directory),
                "origins": len(store),
                "graph_digest": store.digest[:16],
            }
        )
        return payload

    def _ep_reachable(self, params: dict[str, str]) -> dict[str, Any]:
        origin = self._asn(params, "origin")
        target = self._asn(params, "target")
        state = self._state(origin)
        route_class = state.route_class(target)
        return {
            "origin": origin,
            "target": target,
            "reachable": route_class is not None,
            "route_class": None if route_class is None else route_class.name,
            "path_length": state.path_length(target),
        }

    def _ep_path_length(self, params: dict[str, str]) -> dict[str, Any]:
        origin = self._asn(params, "origin")
        target = self._asn(params, "target")
        return {
            "origin": origin,
            "target": target,
            "path_length": self._state(origin).path_length(target),
        }

    def _ep_reliance(self, params: dict[str, str]) -> dict[str, Any]:
        origin = self._asn(params, "origin")
        target = self._asn(params, "target")
        mass = reliance_from_state(self._state(origin))
        return {
            "origin": origin,
            "target": target,
            "reliance": mass.get(target, 0.0),
        }

    def _ep_hegemony(self, params: dict[str, str]) -> dict[str, Any]:
        origin = self._asn(params, "origin")
        target = self._asn(params, "target")
        value = local_hegemony(
            self.graph, origin, target, cache=self.cache, trim=self.trim
        )
        return {
            "origin": origin,
            "target": target,
            "hegemony": value,
            "trim": self.trim,
        }

    def _ep_rib(self, params: dict[str, str]) -> dict[str, Any]:
        origin = self._asn(params, "origin")
        asn = self._asn(params, "asn")
        node = self._state(origin).route(asn)
        route = (
            None
            if node is None
            else {
                "route_class": node.route_class.name,
                "length": node.length,
                "parents": sorted(node.parents),
                "origins": sorted(node.origins),
            }
        )
        return {"origin": origin, "asn": asn, "route": route}


# ---------------------------------------------------------------------------
# the asyncio HTTP layer
# ---------------------------------------------------------------------------


class _Batcher:
    """Coalesce concurrent cold-origin requests into one prefetch sweep.

    Each request awaiting a cache-missing origin registers a future; the
    first registration arms a ``window``-second timer, and on fire every
    pending origin is warmed through one ``QueryService.warm`` call (a
    bit-parallel batched sweep) on the executor.  Requests whose origin
    is already warm skip the batcher entirely.
    """

    def __init__(
        self, service: QueryService, window: float = DEFAULT_BATCH_WINDOW
    ) -> None:
        self.service = service
        self.window = window
        self.batches = 0
        self.batched_origins = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._timer: Optional[asyncio.TimerHandle] = None

    async def warm(self, origin: int) -> None:
        if origin in self.service.cache or origin not in self.service.graph:
            return
        loop = asyncio.get_running_loop()
        future = self._pending.get(origin)
        if future is None:
            future = loop.create_future()
            self._pending[origin] = future
            if self._timer is None:
                self._timer = loop.call_later(
                    self.window, lambda: loop.create_task(self._flush())
                )
        await future

    async def _flush(self) -> None:
        self._timer = None
        pending, self._pending = self._pending, {}
        if not pending:
            return
        self.batches += 1
        self.batched_origins += len(pending)
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(
                None, self.service.warm, list(pending)
            )
        except Exception as exc:  # surface on every waiter
            for future in pending.values():
                if not future.done():
                    future.set_exception(exc)
            return
        for future in pending.values():
            if not future.done():
                future.set_result(None)


class _HttpServer:
    """Minimal stdlib HTTP/1.1 front end over a :class:`QueryService`."""

    def __init__(
        self,
        service: QueryService,
        window: float = DEFAULT_BATCH_WINDOW,
    ) -> None:
        self.service = service
        self.batcher = _Batcher(service, window=window)

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").split()
                if len(parts) != 3:
                    await self._respond(
                        writer, 400, {"error": "malformed request line"}, False
                    )
                    break
                method, target, version = parts
                keep_alive = version.upper() == "HTTP/1.1"
                content_length = 0
                while True:
                    line = await reader.readline()
                    if not line or line in (b"\r\n", b"\n"):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    lowered = name.strip().lower()
                    if lowered == "content-length":
                        try:
                            content_length = int(value.strip() or 0)
                        except ValueError:
                            content_length = 0
                    elif lowered == "connection":
                        keep_alive = value.strip().lower() != "close"
                if content_length:
                    await reader.readexactly(content_length)
                if method.upper() != "GET":
                    await self._respond(
                        writer,
                        405,
                        {"error": f"{method} not supported; use GET"},
                        keep_alive,
                    )
                    if not keep_alive:
                        break
                    continue
                url = urlsplit(target)
                params = {
                    key: values[-1]
                    for key, values in parse_qs(url.query).items()
                }
                status, payload = await self._answer(url.path, params)
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _answer(
        self, path: str, params: dict[str, str]
    ) -> tuple[int, dict]:
        raw_origin = params.get("origin")
        if raw_origin is not None:
            try:
                await self.batcher.warm(int(raw_origin))
            except ValueError:
                pass  # the service will map this to a 400
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self.service.answer, path, params
        )

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
            status, "Error"
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


async def serve(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8351,
    window: float = DEFAULT_BATCH_WINDOW,
    ready: Optional[threading.Event] = None,
    bound: Optional[dict] = None,
    stop: Optional[asyncio.Event] = None,
) -> None:
    """Serve ``service`` over HTTP until cancelled (or ``stop`` is set).

    ``port=0`` binds an ephemeral port; the actual address is published
    into ``bound`` (``{"host":…, "port":…}``) before ``ready`` is set —
    the hooks :func:`start_server_thread` uses to run the server in a
    background thread for tests, benchmarks, and the smoke check.
    """
    http = _HttpServer(service, window=window)
    server = await asyncio.start_server(http.handle, host, port)
    address = server.sockets[0].getsockname()
    if bound is not None:
        bound["host"], bound["port"] = address[0], address[1]
        bound["batcher"] = http.batcher
    if ready is not None:
        ready.set()
    try:
        if stop is None:
            await server.serve_forever()
        else:
            await stop.wait()
    finally:
        server.close()
        await server.wait_closed()


class ServerHandle:
    """A running background server: address + clean shutdown."""

    def __init__(
        self,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        stop: asyncio.Event,
        host: str,
        port: int,
        batcher: _Batcher,
    ) -> None:
        self._thread = thread
        self._loop = loop
        self._stop = stop
        self.host = host
        self.port = port
        self.batcher = batcher

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout=10)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def start_server_thread(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    window: float = DEFAULT_BATCH_WINDOW,
) -> ServerHandle:
    """Run :func:`serve` in a daemon thread; returns once it is bound."""
    ready = threading.Event()
    bound: dict = {}

    def _run() -> None:
        async def _main() -> None:
            stop = asyncio.Event()
            bound["loop"] = asyncio.get_running_loop()
            bound["stop"] = stop
            await serve(
                service,
                host=host,
                port=port,
                window=window,
                ready=ready,
                bound=bound,
                stop=stop,
            )

        asyncio.run(_main())

    thread = threading.Thread(target=_run, daemon=True, name="repro-serve")
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("repro serve failed to bind within 30s")
    return ServerHandle(
        thread,
        bound["loop"],
        bound["stop"],
        bound["host"],
        bound["port"],
        bound["batcher"],
    )


def smoke_check(service: QueryService, host: str = "127.0.0.1") -> list[str]:
    """One HTTP query per endpoint, diffed against live propagation.

    Starts the server on an ephemeral port, issues a real request per
    endpoint, and recomputes every expected answer from a **fresh**
    ``propagate`` (bypassing the service's tiers).  Returns the list of
    mismatches — empty means the serve stack is answer-identical to the
    live engine.  This is the CI ``tests-serve`` leg.
    """
    import urllib.request

    from .bgpsim.engine import propagate
    from .bgpsim.routes import Seed

    nodes = sorted(service.graph.nodes())
    origin, target = nodes[0], nodes[-1]
    live = propagate(service.graph, Seed(asn=origin))
    live_mass = reliance_from_state(live)
    fresh_cache = RoutingStateCache(service.graph)
    expected = {
        "/health": {"status": "ok", "nodes": len(nodes)},
        f"/reachable?origin={origin}&target={target}": {
            "reachable": live.has_route(target),
            "route_class": None
            if live.route_class(target) is None
            else live.route_class(target).name,
            "path_length": live.path_length(target),
        },
        f"/path_length?origin={origin}&target={target}": {
            "path_length": live.path_length(target)
        },
        f"/reliance?origin={origin}&target={target}": {
            "reliance": live_mass.get(target, 0.0)
        },
        f"/hegemony?origin={origin}&target={target}": {
            "hegemony": local_hegemony(
                service.graph, origin, target, cache=fresh_cache
            )
        },
        f"/rib?origin={origin}&asn={target}": {
            "route": None
            if live.route(target) is None
            else {
                "route_class": live.route(target).route_class.name,
                "length": live.route(target).length,
                "parents": sorted(live.route(target).parents),
                "origins": sorted(live.route(target).origins),
            }
        },
    }
    failures: list[str] = []
    with start_server_thread(service, host=host) as handle:
        for query, want in expected.items():
            with urllib.request.urlopen(handle.base_url + query) as response:
                got = json.loads(response.read())
            for key, value in want.items():
                if got.get(key) != value:
                    failures.append(
                        f"{query}: {key} = {got.get(key)!r}, "
                        f"live propagation says {value!r}"
                    )
    return failures
