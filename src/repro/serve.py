"""``repro serve`` — the routing-state query service.

The paper's headline metrics are pure functions of per-origin routing
states, and the engine stack now has three tiers for obtaining one:

1. **warm** — the :class:`~repro.bgpsim.cache.RoutingStateCache` LRU;
2. **disk** — precomputed shards (``repro precompute``) memory-mapped by
   a :class:`~repro.bgpsim.shards.ShardStore`, O(1) per origin;
3. **cold** — a live propagation sweep.

This module puts an HTTP face on that stack: :class:`QueryService` is
the synchronous query core (one method per endpoint, fully testable
without sockets) and :func:`serve` wraps it in a stdlib-``asyncio``
HTTP/1.1 server with **request batching** — concurrent queries for
cache-missing origins are coalesced within a short window and warmed
through one bit-parallel ``prefetch`` sweep instead of N independent
propagations.

Endpoints (GET, JSON responses):

``/reachable?origin=A&target=B``
    whether B holds a route for A's prefix (+ class and path length)
``/path_length?origin=A&target=B``
    B's tied-best AS-path length toward A (``null`` when unreachable)
``/reliance?origin=A&target=B``
    the paper's provider-reliance mass ``rely(A, B)``
``/hegemony?origin=A&target=B``
    local AS hegemony ``H(A, B)`` (Fontugne et al.)
``/rib?origin=A&asn=B``
    B's RIB entry for A's prefix: class, length, tied parent set
``/stats`` · ``/health``
    tier counters (lru/metric/disk/computed), per-endpoint latency
    histograms, and liveness

``/reliance`` and ``/hegemony`` consult a fourth tier first when the
attached corpus carries **metric shards** (``repro precompute
--metrics``): the answer becomes a zero-copy float64 read off the mmap —
no routing state is touched at all — and falls back to the live kernels
for origins/targets the shards do not cover.  Stored values are written
by the same kernels that serve live queries, so the tiers are
bit-identical (asserted in tests and in-bench via ``float.hex()``).

:func:`serve` can also fan out across processes: ``repro serve
--workers N`` runs one asyncio server per worker process, each bound to
the same address via ``SO_REUSEPORT`` (the kernel load-balances
connections) and each mmapping the same content-addressed corpus — the
page cache is shared, so N workers cost one copy of the data.  A parent
:class:`WorkerSupervisor` restarts workers that die.

Every answer is derived from the same states live propagation produces —
the serve benchmark (``make bench-serve``) and the CI smoke leg assert
responses bit-identical to fresh ``propagate`` output.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import math
import multiprocessing
import multiprocessing.connection
import os
import signal
import socket
import threading
import time
from bisect import bisect_left
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

from .bgpsim.cache import DigestGate, RoutingStateCache
from .core.hegemony import TRIM, local_hegemony
from .core.reliance import reliance_from_state
from .topology.asgraph import ASGraph

__all__ = [
    "DEFAULT_MAXSIZE",
    "LatencyHistogram",
    "QueryError",
    "QueryService",
    "ServerHandle",
    "ServiceSpec",
    "WorkerSupervisor",
    "run_smoke_queries",
    "serve",
    "smoke_check",
    "smoke_expected",
    "start_server_thread",
]

#: default warm-tier bound: enough for a busy working set, bounded so a
#: long-running server over a paper-scale corpus cannot grow unbounded
DEFAULT_MAXSIZE = 1024

#: how long the batcher waits to coalesce concurrent cold origins
DEFAULT_BATCH_WINDOW = 0.002


class LatencyHistogram:
    """Fixed log-spaced latency buckets (stdlib only, GIL-atomic).

    Bounds span 1 µs – 10 s at 8 buckets per decade (57 bounds + one
    overflow bucket); a recorded duration lands in the first bucket
    whose upper bound covers it, so a reported percentile is the upper
    bound of its bucket — at most one bucket-width (~33%) above the true
    value, which is plenty for p50/p99 serving dashboards.  ``record``
    is a list-index increment and two adds, cheap enough for every
    request, and needs no lock under the GIL.
    """

    #: bucket upper bounds in seconds: 10^(k/8) µs for k = 0 .. 56
    BOUNDS = tuple(10.0 ** (k / 8 - 6.0) for k in range(57))

    __slots__ = ("counts", "total", "sum")

    def __init__(self) -> None:
        self.counts = [0] * (len(self.BOUNDS) + 1)
        self.total = 0
        self.sum = 0.0

    def record(self, seconds: float) -> None:
        self.counts[bisect_left(self.BOUNDS, seconds)] += 1
        self.total += 1
        self.sum += seconds

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-quantile bucket bound in seconds (None when empty)."""
        if not self.total:
            return None
        rank = max(1, math.ceil(q * self.total))
        cumulative = 0
        for i, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                return self.BOUNDS[min(i, len(self.BOUNDS) - 1)]
        return self.BOUNDS[-1]

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready summary: count, mean/p50/p99 in microseconds."""
        if not self.total:
            return {"count": 0, "mean_us": None, "p50_us": None,
                    "p99_us": None}
        return {
            "count": self.total,
            "mean_us": self.sum / self.total * 1e6,
            "p50_us": self.percentile(0.50) * 1e6,
            "p99_us": self.percentile(0.99) * 1e6,
        }


class QueryError(Exception):
    """An HTTP-mappable query failure (bad parameter, unknown AS)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class QueryService:
    """The synchronous query core behind every ``repro serve`` endpoint.

    Holds the tiered state stack — a
    :class:`~repro.bgpsim.cache.RoutingStateCache` (warm LRU), optionally
    backed by a precomputed :class:`~repro.bgpsim.shards.ShardStore`
    (mmap disk tier) — and answers one query per method call.  The HTTP
    layer is a thin wrapper over :meth:`answer`; tests and benchmarks
    call the service directly.

    ``metrics`` selects the metric-shard tier for ``/reliance`` and
    ``/hegemony``: the default ``"auto"`` adopts the attached shard
    store's :class:`~repro.bgpsim.shards.MetricShardStore` when the
    corpus carries metric shards, an explicit store overrides it, and
    ``None`` disables the tier (every metric query runs its live
    kernel).  Metric-tier answers are digest-gated exactly like the disk
    tier — a mutated topology falls back to the kernels — and
    hegemony rows are only served when the stored trim matches this
    service's ``trim``.
    """

    def __init__(
        self,
        graph: ASGraph,
        cache: Optional[RoutingStateCache] = None,
        shards=None,
        metrics="auto",
        maxsize: Optional[int] = DEFAULT_MAXSIZE,
        engine: Optional[str] = None,
        batch: Optional[int] = None,
        trim: float = TRIM,
    ) -> None:
        if cache is None:
            cache = RoutingStateCache(
                graph, maxsize=maxsize, engine=engine, batch=batch
            )
        if shards is not None:
            cache.attach_shards(shards)
        if metrics == "auto":
            store = cache.shards
            metrics = store.metrics if store is not None else None
        self.graph = graph
        self.cache = cache
        self.trim = trim
        self.metrics = metrics
        self._metric_gate = (
            None
            if metrics is None
            else DigestGate(graph, metrics.digest)
        )
        self.metric_hits = 0
        self.metric_misses = 0
        self.requests = 0
        self.latency: dict[str, LatencyHistogram] = {}
        self._routes = {
            "/health": self._ep_health,
            "/stats": self._ep_stats,
            "/reachable": self._ep_reachable,
            "/path_length": self._ep_path_length,
            "/reliance": self._ep_reliance,
            "/hegemony": self._ep_hegemony,
            "/rib": self._ep_rib,
        }

    # -- plumbing -------------------------------------------------------
    def _asn(self, params: dict[str, str], name: str) -> int:
        raw = params.get(name)
        if raw is None:
            raise QueryError(400, f"missing query parameter {name!r}")
        try:
            asn = int(raw)
        except ValueError:
            raise QueryError(400, f"{name} must be an AS number, got {raw!r}")
        if asn not in self.graph:
            raise QueryError(404, f"AS{asn} not in graph")
        return asn

    def _state(self, origin: int):
        return self.cache.state_for(origin)

    def _metric_lookup(self, kind: str, origin: int, target: int):
        """Consult the metric-shard tier; ``None`` means fall back.

        A miss (uncovered origin, non-node target, NaN diagonal, stale
        digest, trim mismatch) returns ``None`` and the caller runs the
        live kernel — ``0.0`` is a perfectly valid *hit*.
        """
        store = self.metrics
        if store is None:
            return None
        if kind == "hegemony" and store.trim != self.trim:
            self.metric_misses += 1
            return None
        if not self._metric_gate.ready():
            self.metric_misses += 1
            return None
        lookup = store.reliance if kind == "reliance" else store.hegemony
        value = lookup(origin, target)
        if value is None:
            self.metric_misses += 1
        else:
            self.metric_hits += 1
        return value

    def metric_covers(self, path: str, origin: int) -> bool:
        """Whether the metric tier can answer ``path`` for ``origin``
        without a routing state — lets the HTTP batcher skip warming
        the LRU for queries the shards will serve anyway (uncounted)."""
        endpoint = path.rstrip("/")
        if endpoint not in ("/reliance", "/hegemony") or self.metrics is None:
            return False
        if endpoint == "/hegemony" and self.metrics.trim != self.trim:
            return False
        return origin in self.metrics and self._metric_gate.ready()

    def warm(self, origins) -> int:
        """Batched warm-up for the request batcher: one bit-parallel
        prefetch sweep over the origins that are in the graph (unknown
        origins are left for their own requests to 404)."""
        known = [o for o in origins if o in self.graph]
        if not known:
            return 0
        return self.cache.prefetch(known)

    def answer(self, path: str, params: dict[str, str]) -> tuple[int, dict]:
        """Dispatch one query; returns ``(http_status, json_payload)``."""
        self.requests += 1
        endpoint = path.rstrip("/") or "/health"
        handler = self._routes.get(endpoint)
        if handler is None:
            return 404, {
                "error": f"unknown endpoint {path!r}",
                "endpoints": sorted(self._routes),
            }
        histogram = self.latency.get(endpoint)
        if histogram is None:
            histogram = self.latency.setdefault(endpoint, LatencyHistogram())
        start = time.perf_counter()
        try:
            return 200, handler(params)
        except QueryError as exc:
            return exc.status, {"error": exc.message}
        finally:
            histogram.record(time.perf_counter() - start)

    # -- endpoints ------------------------------------------------------
    def _ep_health(self, params: dict[str, str]) -> dict[str, Any]:
        return {
            "status": "ok",
            "nodes": len(self.graph.nodes()),
            "pid": os.getpid(),
        }

    def _ep_stats(self, params: dict[str, str]) -> dict[str, Any]:
        stats = self.cache.stats()
        payload: dict[str, Any] = dataclasses.asdict(stats)
        tiers = stats.tiers
        payload["tiers"] = {
            "lru": tiers["lru"],
            "metric": self.metric_hits,
            "disk": tiers["disk"],
            "computed": tiers["computed"],
        }
        payload["metric_hits"] = self.metric_hits
        payload["metric_misses"] = self.metric_misses
        payload["requests"] = self.requests
        payload["pid"] = os.getpid()
        payload["latency"] = {
            endpoint: histogram.snapshot()
            for endpoint, histogram in sorted(self.latency.items())
        }
        store = self.cache.shards
        payload["shards"] = (
            None
            if store is None
            else {
                "directory": str(store.directory),
                "origins": len(store),
                "graph_digest": store.digest[:16],
            }
        )
        payload["metrics"] = (
            None
            if self.metrics is None
            else {
                "origins": len(self.metrics),
                "targets": len(self.metrics.targets),
                "trim": self.metrics.trim,
            }
        )
        return payload

    def _ep_reachable(self, params: dict[str, str]) -> dict[str, Any]:
        origin = self._asn(params, "origin")
        target = self._asn(params, "target")
        state = self._state(origin)
        route_class = state.route_class(target)
        return {
            "origin": origin,
            "target": target,
            "reachable": route_class is not None,
            "route_class": None if route_class is None else route_class.name,
            "path_length": state.path_length(target),
        }

    def _ep_path_length(self, params: dict[str, str]) -> dict[str, Any]:
        origin = self._asn(params, "origin")
        target = self._asn(params, "target")
        return {
            "origin": origin,
            "target": target,
            "path_length": self._state(origin).path_length(target),
        }

    def _ep_reliance(self, params: dict[str, str]) -> dict[str, Any]:
        origin = self._asn(params, "origin")
        target = self._asn(params, "target")
        value = self._metric_lookup("reliance", origin, target)
        if value is None:
            mass = reliance_from_state(self._state(origin))
            value = mass.get(target, 0.0)
        return {
            "origin": origin,
            "target": target,
            "reliance": value,
        }

    def _ep_hegemony(self, params: dict[str, str]) -> dict[str, Any]:
        origin = self._asn(params, "origin")
        target = self._asn(params, "target")
        value = self._metric_lookup("hegemony", origin, target)
        if value is None:
            value = local_hegemony(
                self.graph, origin, target, cache=self.cache, trim=self.trim
            )
        return {
            "origin": origin,
            "target": target,
            "hegemony": value,
            "trim": self.trim,
        }

    def _ep_rib(self, params: dict[str, str]) -> dict[str, Any]:
        origin = self._asn(params, "origin")
        asn = self._asn(params, "asn")
        node = self._state(origin).route(asn)
        route = (
            None
            if node is None
            else {
                "route_class": node.route_class.name,
                "length": node.length,
                "parents": sorted(node.parents),
                "origins": sorted(node.origins),
            }
        )
        return {"origin": origin, "asn": asn, "route": route}


# ---------------------------------------------------------------------------
# the asyncio HTTP layer
# ---------------------------------------------------------------------------


class _Batcher:
    """Coalesce concurrent cold-origin requests into one prefetch sweep.

    Each request awaiting a cache-missing origin registers a future; the
    first registration arms a ``window``-second timer, and on fire every
    pending origin is warmed through one ``QueryService.warm`` call (a
    bit-parallel batched sweep) on the executor.  Requests whose origin
    is already warm skip the batcher entirely.
    """

    def __init__(
        self, service: QueryService, window: float = DEFAULT_BATCH_WINDOW
    ) -> None:
        self.service = service
        self.window = window
        self.batches = 0
        self.batched_origins = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._timer: Optional[asyncio.TimerHandle] = None

    async def warm(self, origin: int) -> None:
        if origin in self.service.cache or origin not in self.service.graph:
            return
        loop = asyncio.get_running_loop()
        future = self._pending.get(origin)
        if future is None:
            future = loop.create_future()
            self._pending[origin] = future
            if self._timer is None:
                self._timer = loop.call_later(
                    self.window, lambda: loop.create_task(self._flush())
                )
        await future

    async def _flush(self) -> None:
        self._timer = None
        pending, self._pending = self._pending, {}
        if not pending:
            return
        self.batches += 1
        self.batched_origins += len(pending)
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(
                None, self.service.warm, list(pending)
            )
        except Exception as exc:  # surface on every waiter
            for future in pending.values():
                if not future.done():
                    future.set_exception(exc)
            return
        for future in pending.values():
            if not future.done():
                future.set_result(None)


class _HttpServer:
    """Minimal stdlib HTTP/1.1 front end over a :class:`QueryService`."""

    def __init__(
        self,
        service: QueryService,
        window: float = DEFAULT_BATCH_WINDOW,
    ) -> None:
        self.service = service
        self.batcher = _Batcher(service, window=window)

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").split()
                if len(parts) != 3:
                    await self._respond(
                        writer, 400, {"error": "malformed request line"}, False
                    )
                    break
                method, target, version = parts
                keep_alive = version.upper() == "HTTP/1.1"
                content_length = 0
                while True:
                    line = await reader.readline()
                    if not line or line in (b"\r\n", b"\n"):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    lowered = name.strip().lower()
                    if lowered == "content-length":
                        try:
                            content_length = int(value.strip() or 0)
                        except ValueError:
                            content_length = 0
                    elif lowered == "connection":
                        keep_alive = value.strip().lower() != "close"
                if content_length:
                    await reader.readexactly(content_length)
                if method.upper() != "GET":
                    await self._respond(
                        writer,
                        405,
                        {"error": f"{method} not supported; use GET"},
                        keep_alive,
                    )
                    if not keep_alive:
                        break
                    continue
                url = urlsplit(target)
                params = {
                    key: values[-1]
                    for key, values in parse_qs(url.query).items()
                }
                status, payload = await self._answer(url.path, params)
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,  # loop shutdown beat the FIN
            ):
                pass

    async def _answer(
        self, path: str, params: dict[str, str]
    ) -> tuple[int, dict]:
        raw_origin = params.get("origin")
        if raw_origin is not None:
            try:
                origin = int(raw_origin)
            except ValueError:
                pass  # the service will map this to a 400
            else:
                if not self.service.metric_covers(path, origin):
                    await self.batcher.warm(origin)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self.service.answer, path, params
        )

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
            status, "Error"
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


async def serve(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8351,
    window: float = DEFAULT_BATCH_WINDOW,
    ready: Optional[threading.Event] = None,
    bound: Optional[dict] = None,
    stop: Optional[asyncio.Event] = None,
    sock: Optional[socket.socket] = None,
) -> None:
    """Serve ``service`` over HTTP until cancelled (or ``stop`` is set).

    ``port=0`` binds an ephemeral port; the actual address is published
    into ``bound`` (``{"host":…, "port":…}``) before ``ready`` is set —
    the hooks :func:`start_server_thread` uses to run the server in a
    background thread for tests, benchmarks, and the smoke check.

    ``sock`` serves on a pre-bound socket instead of binding
    ``host``/``port`` — how :class:`WorkerSupervisor` workers share one
    address via ``SO_REUSEPORT``.
    """
    http = _HttpServer(service, window=window)
    if sock is not None:
        server = await asyncio.start_server(http.handle, sock=sock)
    else:
        server = await asyncio.start_server(http.handle, host, port)
    address = server.sockets[0].getsockname()
    if bound is not None:
        bound["host"], bound["port"] = address[0], address[1]
        bound["batcher"] = http.batcher
    if ready is not None:
        ready.set()
    try:
        if stop is None:
            await server.serve_forever()
        else:
            await stop.wait()
    finally:
        server.close()
        await server.wait_closed()


class ServerHandle:
    """A running background server: address + clean shutdown."""

    def __init__(
        self,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        stop: asyncio.Event,
        host: str,
        port: int,
        batcher: _Batcher,
    ) -> None:
        self._thread = thread
        self._loop = loop
        self._stop = stop
        self.host = host
        self.port = port
        self.batcher = batcher

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout=10)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def start_server_thread(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    window: float = DEFAULT_BATCH_WINDOW,
) -> ServerHandle:
    """Run :func:`serve` in a daemon thread; returns once it is bound."""
    ready = threading.Event()
    bound: dict = {}

    def _run() -> None:
        async def _main() -> None:
            stop = asyncio.Event()
            bound["loop"] = asyncio.get_running_loop()
            bound["stop"] = stop
            await serve(
                service,
                host=host,
                port=port,
                window=window,
                ready=ready,
                bound=bound,
                stop=stop,
            )

        asyncio.run(_main())

    thread = threading.Thread(target=_run, daemon=True, name="repro-serve")
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("repro serve failed to bind within 30s")
    return ServerHandle(
        thread,
        bound["loop"],
        bound["stop"],
        bound["host"],
        bound["port"],
        bound["batcher"],
    )


# ---------------------------------------------------------------------------
# multi-process serving: SO_REUSEPORT workers under a supervisor
# ---------------------------------------------------------------------------


def _reuseport_socket(host: str, port: int) -> socket.socket:
    """A bound (not listening) ``SO_REUSEPORT`` TCP socket.

    Every worker binds its own socket to the same address; the kernel
    hashes each incoming connection's 4-tuple to one of them, which is
    the entire load balancer — no shared accept lock, no parent proxy.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    return sock


@dataclasses.dataclass
class ServiceSpec:
    """A picklable recipe for building a :class:`QueryService`.

    Worker processes are spawned (not forked), so they cannot inherit a
    live service; each worker rebuilds its own from this spec — loading
    ``graph_file`` when no in-memory ``graph`` is given, and mmapping
    the corpus at ``shards`` under its own lease.  The mappings are
    content-addressed and read-only, so N workers share one page-cache
    copy of the data with zero coordination.
    """

    graph: Optional[ASGraph] = None
    graph_file: Optional[str] = None
    shards: Optional[str] = None
    maxsize: Optional[int] = DEFAULT_MAXSIZE
    engine: Optional[str] = None
    batch: Optional[int] = None
    trim: float = TRIM

    def build(self) -> QueryService:
        graph = self.graph
        if graph is None:
            if self.graph_file is None:
                raise ValueError("ServiceSpec needs graph or graph_file")
            from .topology import load_graph

            graph = load_graph(self.graph_file)
        store = None
        if self.shards is not None:
            from .bgpsim.shards import ShardStore

            store = ShardStore.open(self.shards, graph=graph, lease=True)
        return QueryService(
            graph,
            shards=store,
            maxsize=self.maxsize,
            engine=self.engine,
            batch=self.batch,
            trim=self.trim,
        )


def _worker_main(
    spec: ServiceSpec,
    host: str,
    port: int,
    window: float,
    ready,
) -> None:
    """One worker process: build the service, serve on a reuseport
    socket until SIGTERM/SIGINT, then release the corpus lease."""
    service = spec.build()
    sock = _reuseport_socket(host, port)

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await serve(
            service, window=window, ready=ready, stop=stop, sock=sock
        )

    try:
        asyncio.run(_main())
    finally:
        store = service.cache.shards
        if store is not None:
            store.close()


class WorkerSupervisor:
    """N serving processes on one address, restarted when they die.

    The parent holds a bound-but-never-listening ``SO_REUSEPORT`` guard
    socket: it reserves the port (letting ``port=0`` pick an ephemeral
    one that every worker then binds) and keeps the address claimed
    across worker restarts, but never accepts — the kernel only
    dispatches connections to *listening* sockets.  A monitor thread
    waits on process sentinels and respawns dead workers up to
    ``max_restarts`` (a crash-loop fuse, not a normal-operation limit).
    """

    def __init__(
        self,
        spec: ServiceSpec,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        window: float = DEFAULT_BATCH_WINDOW,
        max_restarts: int = 16,
        start_timeout: float = 60.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        self.host = host
        self.window = window
        self.max_restarts = max_restarts
        self.restarts = 0
        self._start_timeout = start_timeout
        self._guard = _reuseport_socket(host, port)
        self.port = self._guard.getsockname()[1]
        # spawn, not fork: the parent may hold live threads and event
        # loops, and everything a worker needs travels via the spec
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: list = []
        self._closing = False
        self._lock = threading.Lock()
        try:
            events = [self._spawn() for _ in range(workers)]
            for _, ready in events:
                if not ready.wait(timeout=self._start_timeout):
                    raise RuntimeError(
                        f"serve worker failed to bind within "
                        f"{self._start_timeout:.0f}s"
                    )
        except BaseException:
            self.close()
            raise
        self._monitor = threading.Thread(
            target=self._watch, daemon=True, name="repro-serve-supervisor"
        )
        self._monitor.start()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def pids(self) -> list[int]:
        with self._lock:
            return [p.pid for p, _ in self._procs if p.is_alive()]

    def _spawn(self):
        ready = self._ctx.Event()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self.spec, self.host, self.port, self.window, ready),
            daemon=True,
            name="repro-serve-worker",
        )
        proc.start()
        entry = (proc, ready)
        self._procs.append(entry)
        return entry

    def _watch(self) -> None:
        while True:
            with self._lock:
                if self._closing:
                    return
                sentinels = {p.sentinel: p for p, _ in self._procs}
            if not sentinels:
                return
            dead = multiprocessing.connection.wait(
                list(sentinels), timeout=0.25
            )
            for sentinel in dead:
                proc = sentinels[sentinel]
                proc.join()  # reap
                with self._lock:
                    if self._closing:
                        return
                    self._procs = [
                        (p, r) for p, r in self._procs if p is not proc
                    ]
                    if self.restarts >= self.max_restarts:
                        continue
                    self.restarts += 1
                    _, ready = self._spawn()
                ready.wait(timeout=self._start_timeout)

    def close(self) -> None:
        with self._lock:
            if self._closing:
                return
            self._closing = True
            procs = [p for p, _ in self._procs]
            self._procs = []
        for proc in procs:
            if proc.is_alive():
                proc.terminate()  # SIGTERM → graceful asyncio shutdown
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=10)
        monitor = getattr(self, "_monitor", None)
        if monitor is not None and monitor.is_alive():
            monitor.join(timeout=5)
        self._guard.close()

    def __enter__(self) -> "WorkerSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# the differential smoke check
# ---------------------------------------------------------------------------


def smoke_expected(service: QueryService) -> dict[str, dict]:
    """Expected answers per smoke query, from a **fresh** propagation.

    Every value is recomputed outside the service's tiers — a fresh
    ``propagate`` and a fresh cache — so comparing them against served
    answers is a true differential check.  When the service carries a
    metric-shard tier, the hegemony query targets a shard target (the
    highest-degree ASes), exercising the zero-copy read path.
    """
    from .bgpsim.engine import propagate
    from .bgpsim.routes import Seed

    nodes = sorted(service.graph.nodes())
    origin, target = nodes[0], nodes[-1]
    heg_target = target
    if service.metrics is not None:
        covered = [t for t in service.metrics.targets if t != origin]
        if covered:
            heg_target = covered[-1]
    live = propagate(service.graph, Seed(asn=origin))
    live_mass = reliance_from_state(live)
    fresh_cache = RoutingStateCache(service.graph)
    return {
        "/health": {"status": "ok", "nodes": len(nodes)},
        f"/reachable?origin={origin}&target={target}": {
            "reachable": live.has_route(target),
            "route_class": None
            if live.route_class(target) is None
            else live.route_class(target).name,
            "path_length": live.path_length(target),
        },
        f"/path_length?origin={origin}&target={target}": {
            "path_length": live.path_length(target)
        },
        f"/reliance?origin={origin}&target={target}": {
            "reliance": live_mass.get(target, 0.0)
        },
        f"/hegemony?origin={origin}&target={heg_target}": {
            "hegemony": local_hegemony(
                service.graph,
                origin,
                heg_target,
                cache=fresh_cache,
                trim=service.trim,
            )
        },
        f"/rib?origin={origin}&asn={target}": {
            "route": None
            if live.route(target) is None
            else {
                "route_class": live.route(target).route_class.name,
                "length": live.route(target).length,
                "parents": sorted(live.route(target).parents),
                "origins": sorted(live.route(target).origins),
            }
        },
    }


def run_smoke_queries(
    base_url: str,
    expected: dict[str, dict],
    require_metric_tier: bool = False,
) -> list[str]:
    """Drive the smoke queries over HTTP; returns the mismatch list.

    All queries ride **one keep-alive connection** — under multi-worker
    serving the kernel pins a connection to a single worker, so the
    closing ``/stats`` read reports the same process that answered the
    queries, making the ``require_metric_tier`` attribution assertion
    (both metric queries served off the shard tier) valid per-worker.
    """
    import http.client

    url = urlsplit(base_url)
    failures: list[str] = []
    conn = http.client.HTTPConnection(url.hostname, url.port, timeout=60)
    try:
        for query, want in expected.items():
            conn.request("GET", query)
            got = json.loads(conn.getresponse().read())
            for key, value in want.items():
                if got.get(key) != value:
                    failures.append(
                        f"{query}: {key} = {got.get(key)!r}, "
                        f"live propagation says {value!r}"
                    )
        if require_metric_tier:
            conn.request("GET", "/stats")
            stats = json.loads(conn.getresponse().read())
            metric_hits = stats.get("tiers", {}).get("metric", 0)
            if metric_hits < 2:
                failures.append(
                    f"/stats: tiers['metric'] = {metric_hits}, expected the "
                    f"reliance + hegemony queries to be served from metric "
                    f"shards"
                )
    finally:
        conn.close()
    return failures


def smoke_check(service: QueryService, host: str = "127.0.0.1") -> list[str]:
    """One HTTP query per endpoint, diffed against live propagation.

    Starts the server on an ephemeral port, issues a real request per
    endpoint over one keep-alive connection, and recomputes every
    expected answer from a **fresh** ``propagate`` (bypassing the
    service's tiers).  When the service has a metric-shard tier, the
    ``/reliance`` + ``/hegemony`` answers must additionally be
    *attributed* to that tier in ``/stats``.  Returns the list of
    mismatches — empty means the serve stack is answer-identical to the
    live engine.  This is the CI ``tests-serve`` leg.
    """
    expected = smoke_expected(service)
    with start_server_thread(service, host=host) as handle:
        return run_smoke_queries(
            handle.base_url,
            expected,
            require_metric_tier=service.metrics is not None,
        )
