"""Experiment E15 — Fig. 13 (Appendix E): path-length mix over time.

Paper shape: each cloud's 1-hop (direct) share is roughly stable between
2015 and 2020 despite growing peer counts — the Internet grew faster than
the clouds added peers — and Google reaches by far the largest share of
the user population at one hop.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pathlen import PathLengthMix, fig13_bars_sweep
from .context import ExperimentContext
from .report import format_table, percent


@dataclass
class Fig13Result:
    #: {year: {cloud: {weighting: mix}}}
    bars: dict[int, dict[str, dict[str, PathLengthMix]]]

    def mix(self, year: int, cloud: str, weighting: str) -> PathLengthMix:
        return self.bars[year][cloud][weighting]

    def render(self) -> str:
        rows = []
        for year in sorted(self.bars):
            for cloud in sorted(self.bars[year]):
                for weighting, mix in self.bars[year][cloud].items():
                    rows.append(
                        (
                            year,
                            cloud,
                            weighting,
                            percent(mix.one_hop),
                            percent(mix.two_hop),
                            percent(mix.three_plus),
                        )
                    )
        return format_table(
            ("year", "cloud", "weighting", "1 hop", "2 hops", "3+ hops"),
            rows,
            title="Fig. 13 — path length mix (direct connectivity)",
        )


def run(
    ctx_2020: ExperimentContext,
    ctx_2015: ExperimentContext,
    workers: int | str | None = None,
    engine: str | None = None,
    batch: int | None = None,
    stream: bool | str | None = None,
) -> Fig13Result:
    bars: dict[int, dict[str, dict[str, PathLengthMix]]] = {}
    for year, ctx in ((2015, ctx_2015), (2020, ctx_2020)):
        clouds = [
            (name, asn)
            for name, asn in ctx.clouds.items()
            # no 2015 Microsoft traceroute data
            if year != 2015 or ctx.scenario.vm_cities.get(asn)
        ]
        groups = fig13_bars_sweep(
            ctx.graph,
            [asn for _, asn in clouds],
            ctx.scenario.users,
            workers=workers,
            engine=engine,
            batch=batch,
            stream=stream,
        )
        bars[year] = {
            name: group for (name, _), group in zip(clouds, groups)
        }
    return Fig13Result(bars=bars)
