"""Experiment E4 — Fig. 4: what the top networks *cannot* reach
hierarchy-free, broken down by AS type.

Paper shape: Google/IBM/Microsoft (and open-peering Hurricane Electric)
leave proportionally fewer access networks unreached — their peering
strategies chase eyeballs — while Amazon's unreachable mix resembles the
transit providers'.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.metrics import hierarchy_free_set, hierarchy_free_sweep, rank_by
from ..topology.astype import ASType, classify_with_users, type_breakdown
from .context import ExperimentContext
from .report import format_table, percent


@dataclass(frozen=True)
class Fig4Row:
    name: str
    asn: int
    unreachable_total: int
    breakdown: dict[ASType, int]

    def fraction(self, astype: ASType) -> float:
        if self.unreachable_total == 0:
            return 0.0
        return self.breakdown.get(astype, 0) / self.unreachable_total


@dataclass
class Fig4Result:
    rows: list[Fig4Row]

    def render(self) -> str:
        table = []
        for row in self.rows:
            table.append(
                (
                    row.name,
                    row.unreachable_total,
                    percent(row.fraction(ASType.CONTENT)),
                    percent(row.fraction(ASType.ACCESS)),
                    percent(row.fraction(ASType.TRANSIT)),
                    percent(row.fraction(ASType.ENTERPRISE)),
                )
            )
        return format_table(
            ("network", "unreachable", "content", "access", "transit",
             "enterprise"),
            table,
            title="Fig. 4 — unreachable ASes by type (hierarchy-free)",
        )


def run(ctx: ExperimentContext, top_transit: int = 8) -> Fig4Result:
    graph, tiers = ctx.graph, ctx.tiers
    types = classify_with_users(graph, ctx.scenario.users)
    cloud_asns = set(ctx.clouds.values())
    sweep = hierarchy_free_sweep(
        graph, tiers, origins=sorted(tiers.hierarchy)
    )
    transit_ranked = [asn for asn, _ in rank_by(sweep)][:top_transit]
    targets = [(name, asn) for name, asn in ctx.clouds.items()]
    targets += [(ctx.label(asn), asn) for asn in transit_ranked]
    rows = []
    all_ases = set(graph.nodes())
    for name, asn in targets:
        reached = hierarchy_free_set(graph, asn, tiers)
        excluded = (graph.providers(asn) | tiers.hierarchy) - {asn}
        unreachable = all_ases - reached - excluded - {asn} - cloud_asns
        breakdown = type_breakdown(unreachable, types)
        rows.append(
            Fig4Row(
                name=name,
                asn=asn,
                unreachable_total=len(unreachable),
                breakdown=breakdown,
            )
        )
    return Fig4Result(rows=rows)
