"""Experiments E6-E8 — Figs. 7-10: route-leak resilience.

* Figs. 7/8: per-cloud (and Facebook) CDFs of the detoured-AS fraction
  under five announcement/peer-locking configurations plus the random
  *average resilience* baseline.
* Fig. 9: the same for Google, weighted by user population.
* Fig. 10: Google's announce-to-all resilience, 2015 vs 2020 topologies.

Paper shape (per the erratum): peer locking at Tier-1+Tier-2 neighbors
caps even the worst leaks near ~20% of ASes; global locking is near
immunity; announcing only to the hierarchy is *worse* than the average
random origin, because it forfeits the clouds' peering footprints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..bgpsim.cache import RoutingStateCache
from ..core.leaks import (
    LEAK_CONFIGURATIONS,
    average_resilience_curve,
    configuration_seed_and_locks,
    simulate_leaks,
)
from .context import ExperimentContext
from .report import cdf_summary, format_table


@dataclass
class LeakCurves:
    """All configuration curves for one origin network."""

    name: str
    asn: int
    curves: dict[str, list[float]] = field(default_factory=dict)
    users_curves: dict[str, list[float]] = field(default_factory=dict)

    def mean(self, configuration: str) -> float:
        curve = self.curves.get(configuration, [])
        return sum(curve) / len(curve) if curve else 0.0


@dataclass
class LeakResult:
    origins: list[LeakCurves]
    average_resilience: list[float]

    @property
    def average_mean(self) -> float:
        if not self.average_resilience:
            return 0.0
        return sum(self.average_resilience) / len(self.average_resilience)

    def render(self) -> str:
        rows = []
        for origin in self.origins:
            for configuration in LEAK_CONFIGURATIONS:
                if configuration in origin.curves:
                    rows.append(
                        (
                            origin.name,
                            configuration,
                            cdf_summary(origin.curves[configuration]),
                        )
                    )
        rows.append(("(random origin)", "average", cdf_summary(self.average_resilience)))
        return format_table(
            ("origin", "configuration", "detoured ASes"),
            rows,
            title="Figs. 7/8 — route-leak resilience",
        )


def leak_curves_for_origin(
    ctx: ExperimentContext,
    name: str,
    asn: int,
    leakers: list[int],
    configurations: tuple[str, ...] = LEAK_CONFIGURATIONS,
    with_users: bool = False,
    workers: int | str | None = None,
    engine: Optional[str] = None,
    cache: Optional[RoutingStateCache] = None,
) -> LeakCurves:
    graph, tiers = ctx.graph, ctx.tiers
    result = LeakCurves(name=name, asn=asn)
    for configuration in configurations:
        seed, locks = configuration_seed_and_locks(graph, asn, tiers, configuration)
        outcomes = simulate_leaks(
            graph,
            seed,
            [leaker for leaker in leakers if leaker != asn],
            peer_locked=locks,
            workers=workers,
            engine=engine,
            cache=cache,
        )
        fractions: list[float] = []
        user_fractions: list[float] = []
        for outcome in outcomes:
            if outcome is None:
                continue
            fractions.append(outcome.fraction_detoured)
            if with_users:
                user_fractions.append(
                    outcome.fraction_users_detoured(ctx.scenario.users)
                )
        result.curves[configuration] = sorted(fractions)
        if with_users:
            result.users_curves[configuration] = sorted(user_fractions)
    return result


def sample_leakers(ctx: ExperimentContext, n: int, seed: int = 11) -> list[int]:
    rng = random.Random(seed)
    nodes = sorted(ctx.graph.nodes())
    return rng.sample(nodes, k=min(n, len(nodes)))


def run(
    ctx: ExperimentContext,
    leaks_per_config: int = 120,
    baseline_origins: int = 15,
    baseline_leakers: int = 15,
    include_facebook: bool = True,
    workers: int | str | None = None,
    engine: Optional[str] = None,
    stream: bool | str | None = None,
) -> LeakResult:
    """Figs. 7 and 8 for every cloud (and Facebook).

    With ``engine="incremental"`` every ``(origin, configuration)`` group
    computes its baseline once through a shared
    :class:`~repro.bgpsim.cache.RoutingStateCache`.
    """
    leakers = sample_leakers(ctx, leaks_per_config)
    origins = list(ctx.clouds.items())
    if include_facebook and ctx.scenario.facebook_asn is not None:
        origins.append(("Facebook", ctx.scenario.facebook_asn))
    cache = RoutingStateCache(ctx.graph, engine=engine)
    curves = [
        leak_curves_for_origin(
            ctx, name, asn, leakers, workers=workers, engine=engine,
            cache=cache,
        )
        for name, asn in origins
    ]
    baseline = average_resilience_curve(
        ctx.graph,
        random.Random(23),
        origins=baseline_origins,
        leakers_per_origin=baseline_leakers,
        workers=workers,
        engine=engine,
        cache=cache,
        stream=stream,
    )
    return LeakResult(origins=curves, average_resilience=baseline)


def run_fig9(
    ctx: ExperimentContext,
    leaks_per_config: int = 120,
    workers: int | str | None = None,
    engine: Optional[str] = None,
) -> LeakCurves:
    """Fig. 9: Google's curves weighted by detoured users."""
    leakers = sample_leakers(ctx, leaks_per_config, seed=13)
    return leak_curves_for_origin(
        ctx, "Google", ctx.clouds["Google"], leakers, with_users=True,
        workers=workers, engine=engine,
    )


@dataclass
class Fig10Result:
    curve_2015: list[float]
    curve_2020: list[float]

    def render(self) -> str:
        return format_table(
            ("topology", "detoured ASes"),
            [
                ("2015", cdf_summary(self.curve_2015)),
                ("2020", cdf_summary(self.curve_2020)),
            ],
            title="Fig. 10 — Google announce-to-all resilience over time",
        )


def run_fig10(
    ctx_2020: ExperimentContext,
    ctx_2015: ExperimentContext,
    leaks_per_config: int = 120,
    workers: int | str | None = None,
    engine: Optional[str] = None,
) -> Fig10Result:
    curves = {}
    for key, ctx in (("2015", ctx_2015), ("2020", ctx_2020)):
        leakers = sample_leakers(ctx, leaks_per_config, seed=29)
        origin = ctx.clouds["Google"]
        result = leak_curves_for_origin(
            ctx, "Google", origin, leakers, configurations=("announce_all",),
            workers=workers, engine=engine,
        )
        curves[key] = result.curves["announce_all"]
    return Fig10Result(curve_2015=curves["2015"], curve_2020=curves["2020"])
