"""Experiment E9 — Fig. 11: PoP deployment locations vs population
density.

Paper shape: cloud PoPs are (almost) a subset of the transit providers'
locations, concentrated near large metros in North America, Europe and
Asia; the two cloud-only locations are Shanghai and Beijing; transit
providers cover more unique metros, especially in South America, Africa
and the Middle East.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geo.cities import city_by_code
from ..geo.continents import Continent
from ..geo.popgrid import PopulationGrid
from .context import ExperimentContext
from .report import format_table, percent


@dataclass
class Fig11Result:
    cloud_only: frozenset[str]
    transit_only: frozenset[str]
    both: frozenset[str]
    population_near_cloud: float  # fraction within 500 km of a cloud PoP
    population_near_transit: float

    @property
    def cloud_cities(self) -> frozenset[str]:
        return self.cloud_only | self.both

    @property
    def transit_cities(self) -> frozenset[str]:
        return self.transit_only | self.both

    def continent_histogram(self, codes: frozenset[str]) -> dict[Continent, int]:
        histogram: dict[Continent, int] = {}
        for code in codes:
            continent = city_by_code(code).continent
            histogram[continent] = histogram.get(continent, 0) + 1
        return histogram

    def render(self) -> str:
        rows = [
            ("cloud-only", len(self.cloud_only), ", ".join(sorted(self.cloud_only))[:60]),
            ("both", len(self.both), ""),
            ("transit-only", len(self.transit_only), ""),
        ]
        table = format_table(
            ("cohort", "metros", "examples"),
            rows,
            title="Fig. 11 — PoP deployment overlap",
        )
        return (
            table
            + f"\npopulation within 500 km: cloud PoPs "
            f"{percent(self.population_near_cloud)}, transit PoPs "
            f"{percent(self.population_near_transit)}"
        )


def run(ctx: ExperimentContext, grid: PopulationGrid | None = None) -> Fig11Result:
    scenario = ctx.scenario
    cloud_codes: set[str] = set()
    for name in scenario.clouds:
        cloud_codes.update(c.code for c in scenario.pop_footprints[name])
    transit_codes: set[str] = set()
    for label in scenario.transit_labels:
        transit_codes.update(
            c.code for c in scenario.pop_footprints.get(label, ())
        )
    if grid is None:
        grid = PopulationGrid()

    def coverage(codes: set[str]) -> float:
        points = [
            (city_by_code(code).lat, city_by_code(code).lon) for code in codes
        ]
        return grid.population_within(points, 500) / grid.total_population

    return Fig11Result(
        cloud_only=frozenset(cloud_codes - transit_codes),
        transit_only=frozenset(transit_codes - cloud_codes),
        both=frozenset(cloud_codes & transit_codes),
        population_near_cloud=coverage(cloud_codes),
        population_near_transit=coverage(transit_codes),
    )
