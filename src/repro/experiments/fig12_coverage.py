"""Experiment E10 — Fig. 12: population within 500/700/1000 km of PoPs.

Paper shape: the transit cohort leads the cloud cohort worldwide by only
a few percentage points despite many more unique locations; clouds have
dense coverage in Europe/North America; individually, the big clouds
cover more population than most individual transit providers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geo.coverage import COVERAGE_RADII_KM, CoverageRow, coverage_rows
from ..geo.popgrid import PopulationGrid
from .context import ExperimentContext
from .report import format_table


@dataclass
class Fig12Result:
    cohort_rows: list[CoverageRow]  # Fig. 12a: cloud vs transit cohorts
    provider_rows: list[CoverageRow]  # Fig. 12b: individual providers

    def cohort(self, label: str, region: str = "World") -> CoverageRow:
        for row in self.cohort_rows:
            if row.label == label and row.region == region:
                return row
        raise KeyError((label, region))

    def provider(self, label: str) -> CoverageRow:
        for row in self.provider_rows:
            if row.label == label and row.region == "World":
                return row
        raise KeyError(label)

    def render(self) -> str:
        def rows_for(rows):
            return [
                (
                    r.label,
                    r.region,
                    f"{r.percent(500):.1f}",
                    f"{r.percent(700):.1f}",
                    f"{r.percent(1000):.1f}",
                )
                for r in rows
            ]

        a = format_table(
            ("cohort", "region", "500km%", "700km%", "1000km%"),
            rows_for(self.cohort_rows),
            title="Fig. 12a — population coverage per cohort",
        )
        world_rows = [r for r in self.provider_rows if r.region == "World"]
        world_rows.sort(key=lambda r: -r.percent(500))
        b = format_table(
            ("provider", "region", "500km%", "700km%", "1000km%"),
            rows_for(world_rows),
            title="Fig. 12b — population coverage per provider",
        )
        return a + "\n\n" + b


def run(
    ctx: ExperimentContext, grid: PopulationGrid | None = None
) -> Fig12Result:
    scenario = ctx.scenario
    if grid is None:
        grid = PopulationGrid()

    def locations(labels) -> list[tuple[float, float]]:
        points = []
        for label in labels:
            for city in scenario.pop_footprints.get(label, ()):
                points.append((city.lat, city.lon))
        return points

    cohorts = {
        "clouds": locations(scenario.clouds),
        "transit": locations(scenario.transit_labels),
    }
    cohort_rows = coverage_rows(
        grid, cohorts, radii_km=COVERAGE_RADII_KM, per_continent=True
    )
    providers = {
        label: locations([label])
        for label in list(scenario.clouds) + sorted(scenario.transit_labels)
        if scenario.pop_footprints.get(label)
    }
    provider_rows = coverage_rows(
        grid, providers, radii_km=COVERAGE_RADII_KM, per_continent=False
    )
    return Fig12Result(cohort_rows=cohort_rows, provider_rows=provider_rows)
