"""Experiment E3 — Fig. 3: hierarchy-free reachability vs customer cone
for every AS.

Paper shape: apart from the Tier-1/Tier-2 ISPs (high on both axes), the
two metrics barely correlate: thousands of networks reach ≥1,000 ASes
hierarchy-free while only a few dozen have customer cones that large, and
Tier-1s like Sprint combine a top-50 cone with a collapsed hierarchy-free
rank.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.cones import all_customer_cone_sizes
from ..core.metrics import hierarchy_free_sweep
from ..netgen.scenario import ASKind
from .context import ExperimentContext
from .report import format_table


@dataclass(frozen=True)
class ScatterPoint:
    asn: int
    customer_cone: int
    hierarchy_free: int
    category: str  # cloud / tier1 / tier2 / content / access / ...


@dataclass
class Fig3Result:
    points: list[ScatterPoint]
    threshold: int = 1000

    def count_hfr_at_least(self, value: int) -> int:
        return sum(1 for p in self.points if p.hierarchy_free >= value)

    def count_cone_at_least(self, value: int) -> int:
        return sum(1 for p in self.points if p.customer_cone >= value)

    def rank_correlation(self) -> float:
        """Spearman rank correlation between the two metrics."""
        points = self.points
        n = len(points)
        if n < 3:
            return 0.0

        def ranks(values):
            order = sorted(range(n), key=lambda i: values[i])
            out = [0.0] * n
            for position, index in enumerate(order):
                out[index] = float(position)
            return out

        rc = ranks([p.customer_cone for p in points])
        rh = ranks([p.hierarchy_free for p in points])
        mean = (n - 1) / 2.0
        cov = sum((a - mean) * (b - mean) for a, b in zip(rc, rh))
        var_c = sum((a - mean) ** 2 for a in rc)
        var_h = sum((b - mean) ** 2 for b in rh)
        if var_c == 0 or var_h == 0:
            return 0.0
        return cov / math.sqrt(var_c * var_h)

    def render(self) -> str:
        header = (
            f"Fig. 3 — hierarchy-free reachability vs customer cone "
            f"({len(self.points)} ASes)\n"
            f"ASes with HFR >= {self.threshold}: "
            f"{self.count_hfr_at_least(self.threshold)}; "
            f"with cone >= {self.threshold}: "
            f"{self.count_cone_at_least(self.threshold)}\n"
            f"Spearman rank correlation: {self.rank_correlation():.3f}"
        )
        by_cat: dict[str, list[ScatterPoint]] = {}
        for point in self.points:
            by_cat.setdefault(point.category, []).append(point)
        rows = []
        for category in sorted(by_cat):
            group = by_cat[category]
            rows.append(
                (
                    category,
                    len(group),
                    max(p.customer_cone for p in group),
                    max(p.hierarchy_free for p in group),
                )
            )
        return header + "\n" + format_table(
            ("category", "count", "max cone", "max HFR"), rows
        )


_KIND_CATEGORY = {
    ASKind.CLOUD: "cloud",
    ASKind.TIER1: "tier1",
    ASKind.TIER2: "tier2",
    ASKind.REGIONAL: "provider",
    ASKind.ACCESS: "access",
    ASKind.CONTENT: "content",
    ASKind.HYPERGIANT: "content",
    ASKind.ENTERPRISE: "other",
}


def run(ctx: ExperimentContext, threshold: int = 1000) -> Fig3Result:
    graph = ctx.graph
    cones = all_customer_cone_sizes(graph)
    hfr = hierarchy_free_sweep(graph, ctx.tiers)
    points = [
        ScatterPoint(
            asn=asn,
            customer_cone=cones[asn],
            hierarchy_free=hfr[asn],
            category=_KIND_CATEGORY.get(
                ctx.scenario.as_info[asn].kind, "other"
            )
            if asn in ctx.scenario.as_info
            else "other",
        )
        for asn in graph
    ]
    # scale the paper's >=1000 threshold to the scenario size
    scaled = max(10, int(threshold * len(graph) / 70000))
    return Fig3Result(points=points, threshold=scaled)
