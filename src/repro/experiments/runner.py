"""Run every experiment and render a combined report.

``run_all`` reproduces each table and figure of the paper in sequence on
one (or, for the longitudinal artifacts, two) scenario contexts.  The
``python -m repro.experiments.runner [profile]`` entry point prints the
whole report — this is what EXPERIMENTS.md is generated from.
"""

from __future__ import annotations

import os
import sys
import time

from . import (
    appendixA_paths,
    appendixB_tier1,
    appendixD_geolocation,
    fig2_reachability,
    fig3_cone_vs_hfr,
    fig4_unreachable,
    fig6_table2_reliance,
    fig7_10_leaks,
    fig11_map,
    fig12_coverage,
    fig13_pathlen,
    metrics_comparison,
    sec45_validation,
    table1_top20,
    table3_rdns,
)
from .context import ExperimentContext, build_context


def run_all(
    ctx_2020: ExperimentContext,
    ctx_2015: ExperimentContext,
    leaks_per_config: int = 60,
    workers: int | str | None = None,
    batch: int | None = None,
    stream: bool | str | None = None,
) -> dict[str, object]:
    """Run every experiment; returns {experiment id: result}.

    ``workers`` parallelizes the propagation-heavy sweeps (reliance, route
    leaks) across processes; ``batch`` selects the bit-parallel
    multi-origin batch width for the all-AS sweeps (default: the
    ``REPRO_BATCH`` environment variable).  ``stream`` folds the sweep
    aggregations (Fig. 6, Fig. 13, hegemony, the leak baseline) view by
    view at O(batch) memory instead of retaining eager state windows
    (default: ``REPRO_STREAM``; ``auto`` streams at paper scale).  Every
    experiment's output is identical for any worker count, batch width
    or stream mode (see ``tests/test_parallel_engine.py`` /
    ``tests/test_multiorigin_engine.py`` /
    ``tests/test_streaming_sweeps.py``).
    """
    results: dict[str, object] = {}
    results["sec4_5"] = sec45_validation.run(ctx_2020)
    results["fig2"] = fig2_reachability.run(ctx_2020)
    results["table1"] = table1_top20.run(ctx_2020, ctx_2015)
    results["fig3"] = fig3_cone_vs_hfr.run(ctx_2020)
    results["fig4"] = fig4_unreachable.run(ctx_2020)
    results["fig6_table2"] = fig6_table2_reliance.run(
        ctx_2020, workers=workers, batch=batch, stream=stream
    )
    results["fig7_8"] = fig7_10_leaks.run(
        ctx_2020, leaks_per_config=leaks_per_config, workers=workers,
        stream=stream,
    )
    results["fig9"] = fig7_10_leaks.run_fig9(
        ctx_2020, leaks_per_config=leaks_per_config, workers=workers
    )
    results["fig10"] = fig7_10_leaks.run_fig10(
        ctx_2020, ctx_2015, leaks_per_config=leaks_per_config, workers=workers
    )
    results["fig11"] = fig11_map.run(ctx_2020)
    results["fig12"] = fig12_coverage.run(ctx_2020)
    results["table3"] = table3_rdns.run(ctx_2020)
    results["appendixA"] = appendixA_paths.run(ctx_2020)
    results["appendixB"] = appendixB_tier1.run(ctx_2020)
    results["appendixD"] = appendixD_geolocation.run(ctx_2020)
    results["fig13"] = fig13_pathlen.run(
        ctx_2020, ctx_2015, workers=workers, batch=batch, stream=stream
    )
    results["metrics"] = metrics_comparison.run(
        ctx_2020, workers=workers, batch=batch, stream=stream
    )
    return results


def render_all(results: dict[str, object]) -> str:
    """Combined plain-text report."""
    sections = []
    for key, result in results.items():
        render = getattr(result, "render", None)
        if render is None:
            continue
        sections.append(f"===== {key} =====\n{render()}")
    fig9 = results.get("fig9")
    if fig9 is not None and hasattr(fig9, "users_curves"):
        from .report import cdf_summary

        lines = [
            f"  {config}: {cdf_summary(curve)}"
            for config, curve in fig9.users_curves.items()
        ]
        sections.append(
            "===== fig9 (users detoured, Google) =====\n" + "\n".join(lines)
        )
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    from ..netgen import companion_2015

    argv = sys.argv[1:] if argv is None else argv
    csv_dir = None
    if "--csv" in argv:
        index = argv.index("--csv")
        csv_dir = argv[index + 1]
        argv = argv[:index] + argv[index + 2 :]
    workers: int | str | None = None
    if "--workers" in argv:
        index = argv.index("--workers")
        raw = argv[index + 1]
        workers = raw if raw == "auto" else int(raw)
        argv = argv[:index] + argv[index + 2 :]
    if "--engine" in argv:
        # Exported rather than threaded through run_all: every propagate()
        # call (parent and pool workers alike) reads REPRO_ENGINE at call
        # time, so one env var switches the whole experiment run.
        index = argv.index("--engine")
        os.environ["REPRO_ENGINE"] = argv[index + 1]
        argv = argv[:index] + argv[index + 2 :]
    batch: int | None = None
    if "--batch" in argv:
        # Exported (like --engine) so sweeps that resolve the width at
        # call time — cache prefetches, pool workers — see it too, and
        # additionally threaded through run_all for the explicit knobs.
        index = argv.index("--batch")
        batch = int(argv[index + 1])
        os.environ["REPRO_BATCH"] = argv[index + 1]
        argv = argv[:index] + argv[index + 2 :]
    stream: str | None = None
    if "--stream" in argv:
        # Exported (like --engine/--batch) so call-time resolvers —
        # RoutingStateCache defaults, pool workers — see it too, and
        # additionally threaded through run_all for the explicit knobs.
        index = argv.index("--stream")
        stream = argv[index + 1]
        os.environ["REPRO_STREAM"] = stream
        argv = argv[:index] + argv[index + 2 :]
    profile_2020 = argv[0] if argv else "small"
    profile_2015 = companion_2015(profile_2020)
    started = time.time()
    print(f"building {profile_2020} (2020-like) context...", flush=True)
    ctx_2020 = build_context(profile_2020)
    print(f"building {profile_2015} context...", flush=True)
    ctx_2015 = build_context(profile_2015)
    results = run_all(
        ctx_2020, ctx_2015, workers=workers, batch=batch, stream=stream
    )
    print(render_all(results))
    if csv_dir:
        from .export import export_results

        written = export_results(results, csv_dir)
        print(f"\nwrote {len(written)} CSV files to {csv_dir}")
    print(f"\ntotal wall time: {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
