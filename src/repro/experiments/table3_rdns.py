"""Experiment E11 — Table 3: consolidated PoP counts and rDNS
confirmation rates.

Paper shape: coverage varies enormously by provider — NTT-style networks
name ~100% of PoPs, Microsoft under half, Amazon none — and overall
roughly three quarters of consolidated PoPs are confirmed by rDNS.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mapping import peeringdb_from_scenario
from ..pops import ConsolidationResult, Table3Row, consolidate_scenario
from .context import ExperimentContext
from .report import format_table


@dataclass
class Table3Result:
    rows: list[Table3Row]
    consolidation: ConsolidationResult

    @property
    def overall_rdns_percent(self) -> float:
        confirmed = 0
        total = 0
        for provider, footprint in self.consolidation.footprints.items():
            from ..pops import pop_rdns_confirmation

            c, t = pop_rdns_confirmation(footprint)
            confirmed += c
            total += t
        return 100.0 * confirmed / total if total else 0.0

    def row(self, provider: str) -> Table3Row:
        for row in self.rows:
            if row.provider == provider:
                return row
        raise KeyError(provider)

    def render(self) -> str:
        table = format_table(
            ("network", "ASN", "graph PoPs", "hostnames", "% rDNS"),
            [
                (
                    r.provider,
                    r.asn,
                    r.graph_pops,
                    r.hostnames,
                    f"{r.rdns_percent:.1f}",
                )
                for r in self.rows
            ],
            title="Table 3 — PoPs and rDNS confirmation",
        )
        return table + f"\noverall rDNS confirmation: {self.overall_rdns_percent:.1f}%"


def run(ctx: ExperimentContext, providers: list[str] | None = None) -> Table3Result:
    scenario = ctx.scenario
    pdb = peeringdb_from_scenario(scenario)
    consolidation = consolidate_scenario(scenario, pdb, providers=providers)
    return Table3Result(rows=consolidation.table3(), consolidation=consolidation)
