"""Experiment E1 — Fig. 2: reachability of clouds, Tier-1s and Tier-2s
under the three nested bypass constraints.

Paper shape: Tier-1s have maximum provider-free reachability; the clouds
are among the least affected networks as each constraint is added, each
retaining well over 70% of the Internet hierarchy-free.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.metrics import ReachabilityReport, reachability_report
from .context import ExperimentContext
from .report import format_table, percent


@dataclass(frozen=True)
class Fig2Row:
    name: str
    asn: int
    cohort: str  # "cloud" | "tier1" | "tier2"
    report: ReachabilityReport


@dataclass
class Fig2Result:
    rows: list[Fig2Row]
    total_ases: int

    def sorted_rows(self) -> list[Fig2Row]:
        return sorted(self.rows, key=lambda r: -r.report.hierarchy_free)

    def cloud_rows(self) -> list[Fig2Row]:
        return [r for r in self.rows if r.cohort == "cloud"]

    def render(self) -> str:
        table_rows = []
        denominator = max(self.total_ases - 1, 1)
        for row in self.sorted_rows():
            rep = row.report
            table_rows.append(
                (
                    row.name,
                    row.cohort,
                    rep.provider_free,
                    rep.tier1_free,
                    rep.hierarchy_free,
                    percent(rep.hierarchy_free / denominator),
                )
            )
        return format_table(
            ("network", "cohort", "I\\Po", "I\\Po\\T1", "I\\Po\\T1\\T2", "HFR%"),
            table_rows,
            title=f"Fig. 2 — reachability under bypass constraints "
            f"(of {self.total_ases} ASes)",
        )


def run(ctx: ExperimentContext) -> Fig2Result:
    graph, tiers = ctx.graph, ctx.tiers
    rows: list[Fig2Row] = []
    for name, asn in ctx.clouds.items():
        rows.append(
            Fig2Row(name, asn, "cloud", reachability_report(graph, asn, tiers))
        )
    for asn in sorted(tiers.tier1):
        rows.append(
            Fig2Row(
                ctx.label(asn), asn, "tier1",
                reachability_report(graph, asn, tiers),
            )
        )
    for asn in sorted(tiers.tier2):
        rows.append(
            Fig2Row(
                ctx.label(asn), asn, "tier2",
                reachability_report(graph, asn, tiers),
            )
        )
    return Fig2Result(rows=rows, total_ases=len(graph))
