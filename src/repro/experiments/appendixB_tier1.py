"""Experiment E14 — Appendix B: why some Tier-1s collapse without the
Tier-2s.

Paper shape: Sprint and Deutsche Telekom lose most of their reachability
when the Tier-2s are additionally bypassed; their Tier-1-free reliance
concentrates on about six Tier-2 ISPs, and bypassing just those six
accounts for nearly the whole drop.  Level-3-style Tier-1s, with
diversified flat peering, are barely affected.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.metrics import (
    hierarchy_free_reachability,
    tier1_free_reachability,
)
from ..core.reachability import reachability
from ..core.reliance import tier1_free_reliance, top_reliance
from .context import ExperimentContext
from .report import format_table


@dataclass(frozen=True)
class Tier1CaseStudy:
    name: str
    asn: int
    tier1_free: int
    hierarchy_free: int
    top_tier2_reliance: list[tuple[int, float]]
    reach_bypassing_top6: int

    @property
    def drop(self) -> int:
        return self.tier1_free - self.hierarchy_free

    @property
    def drop_explained_by_top6(self) -> float:
        """Fraction of the Tier-2 drop reproduced by bypassing only the
        six highest-reliance Tier-2s."""
        if self.drop <= 0:
            return 1.0
        partial_drop = self.tier1_free - self.reach_bypassing_top6
        return max(0.0, min(1.0, partial_drop / self.drop))


@dataclass
class AppendixBResult:
    cases: list[Tier1CaseStudy]

    def case(self, name: str) -> Tier1CaseStudy:
        for case in self.cases:
            if case.name == name:
                return case
        raise KeyError(name)

    def render(self) -> str:
        rows = []
        for case in self.cases:
            top = ", ".join(f"AS{a}" for a, _ in case.top_tier2_reliance[:6])
            rows.append(
                (
                    case.name,
                    case.tier1_free,
                    case.hierarchy_free,
                    case.reach_bypassing_top6,
                    f"{case.drop_explained_by_top6:.0%}",
                    top,
                )
            )
        return format_table(
            ("Tier-1", "T1-free", "hierarchy-free", "bypass top-6 T2",
             "drop explained", "top T2 reliance"),
            rows,
            title="Appendix B — Tier-1 reliance on Tier-2s",
        )


def run(
    ctx: ExperimentContext,
    tier1_names: tuple[str, ...] = ("Sprint", "Deutsche Telekom", "Level 3"),
) -> AppendixBResult:
    graph, tiers = ctx.graph, ctx.tiers
    cases = []
    for name in tier1_names:
        asn = ctx.scenario.transit_labels.get(name)
        if asn is None or asn not in graph:
            continue
        t1_free = tier1_free_reachability(graph, asn, tiers)
        h_free = hierarchy_free_reachability(graph, asn, tiers)
        reliance = tier1_free_reliance(graph, asn, tiers)
        tier2_reliance = {
            a: v for a, v in reliance.items() if a in tiers.tier2
        }
        top6 = top_reliance(tier2_reliance, 6)
        excluded = (
            graph.providers(asn)
            | tiers.tier1
            | {a for a, _ in top6}
        ) - {asn}
        partial = reachability(graph, asn, excluded)
        cases.append(
            Tier1CaseStudy(
                name=name,
                asn=asn,
                tier1_free=t1_free,
                hierarchy_free=h_free,
                top_tier2_reliance=top6,
                reach_bypassing_top6=partial,
            )
        )
    return AppendixBResult(cases=cases)
