"""One module per table/figure of the paper (see DESIGN.md's index)."""

from . import (
    appendixA_paths,
    appendixB_tier1,
    appendixD_geolocation,
    fig2_reachability,
    fig3_cone_vs_hfr,
    fig4_unreachable,
    fig6_table2_reliance,
    fig7_10_leaks,
    fig11_map,
    fig12_coverage,
    fig13_pathlen,
    metrics_comparison,
    sec45_validation,
    table1_top20,
    table3_rdns,
    timeline,
)
from .context import (
    DEFAULT_PROFILE,
    ExperimentContext,
    build_context,
    cached_context,
)
from .export import export_results
from .runner import render_all, run_all

__all__ = [
    "DEFAULT_PROFILE",
    "ExperimentContext",
    "appendixA_paths",
    "appendixB_tier1",
    "appendixD_geolocation",
    "build_context",
    "cached_context",
    "fig2_reachability",
    "fig3_cone_vs_hfr",
    "fig4_unreachable",
    "fig6_table2_reliance",
    "fig7_10_leaks",
    "fig11_map",
    "fig12_coverage",
    "export_results",
    "fig13_pathlen",
    "metrics_comparison",
    "render_all",
    "run_all",
    "sec45_validation",
    "table1_top20",
    "table3_rdns",
    "timeline",
]
