"""Plain-text rendering helpers for experiment results."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [str(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def percent(value: float, digits: int = 1) -> str:
    return f"{100.0 * value:.{digits}f}%"


def cdf_summary(fractions: Sequence[float]) -> str:
    """Compact summary of a detour-fraction distribution."""
    if not fractions:
        return "n=0"
    ordered = sorted(fractions)
    n = len(ordered)

    def q(p: float) -> float:
        return ordered[min(n - 1, int(p * n))]

    return (
        f"n={n} median={percent(q(0.5))} p90={percent(q(0.9))} "
        f"max={percent(ordered[-1])}"
    )
