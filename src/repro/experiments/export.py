"""CSV export of experiment results.

Every result object from :func:`repro.experiments.run_all` can be written
as one or more CSV files so the paper's figures can be re-plotted with any
tooling.  ``export_results`` dispatches on the experiment key and writes
into a directory; unknown result types are skipped with a note.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import Union

PathLike = Union[str, os.PathLike]


def _write(path: Path, header: list[str], rows: list[tuple]) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def _export_fig2(result, directory: Path) -> list[Path]:
    path = directory / "fig2_reachability.csv"
    _write(
        path,
        ["network", "asn", "cohort", "full", "provider_free", "tier1_free",
         "hierarchy_free"],
        [
            (
                row.name, row.asn, row.cohort, row.report.full,
                row.report.provider_free, row.report.tier1_free,
                row.report.hierarchy_free,
            )
            for row in result.sorted_rows()
        ],
    )
    return [path]


def _export_table1(result, directory: Path) -> list[Path]:
    paths = []
    for year, entries in (
        ("2015", result.entries_2015),
        ("2020", result.entries_2020),
    ):
        path = directory / f"table1_{year}.csv"
        _write(
            path,
            ["rank", "network", "asn", "reachability", "fraction",
             "change_pp"],
            [
                (
                    e.rank, e.name, e.asn, e.reachability,
                    round(e.fraction, 6),
                    "" if e.change_from_past is None
                    else round(e.change_from_past, 3),
                )
                for e in entries
            ],
        )
        paths.append(path)
    return paths


def _export_fig3(result, directory: Path) -> list[Path]:
    path = directory / "fig3_scatter.csv"
    _write(
        path,
        ["asn", "customer_cone", "hierarchy_free", "category"],
        [
            (p.asn, p.customer_cone, p.hierarchy_free, p.category)
            for p in result.points
        ],
    )
    return [path]


def _export_fig4(result, directory: Path) -> list[Path]:
    from ..topology.astype import ASType

    path = directory / "fig4_unreachable.csv"
    _write(
        path,
        ["network", "asn", "unreachable", "content", "access", "transit",
         "enterprise"],
        [
            (
                row.name, row.asn, row.unreachable_total,
                row.breakdown.get(ASType.CONTENT, 0),
                row.breakdown.get(ASType.ACCESS, 0),
                row.breakdown.get(ASType.TRANSIT, 0),
                row.breakdown.get(ASType.ENTERPRISE, 0),
            )
            for row in result.rows
        ],
    )
    return [path]


def _export_reliance(result, directory: Path) -> list[Path]:
    hist = directory / "fig6_reliance_histogram.csv"
    hist_rows = []
    for cloud in result.clouds:
        for bucket, count in cloud.histogram.items():
            hist_rows.append((cloud.name, bucket, count))
    _write(hist, ["cloud", "bucket", "count"], hist_rows)
    top = directory / "table2_top_reliance.csv"
    top_rows = []
    for cloud in result.clouds:
        for rank, (asn, value) in enumerate(cloud.top3, 1):
            top_rows.append((cloud.name, rank, asn, round(value, 3)))
    _write(top, ["cloud", "rank", "asn", "reliance"], top_rows)
    return [hist, top]


def _export_leaks(result, directory: Path) -> list[Path]:
    path = directory / "fig7_8_leak_cdfs.csv"
    rows = []
    for origin in result.origins:
        for configuration, curve in origin.curves.items():
            for index, fraction in enumerate(curve):
                rows.append(
                    (origin.name, configuration, index, round(fraction, 6))
                )
    for index, fraction in enumerate(result.average_resilience):
        rows.append(("average", "average_resilience", index, round(fraction, 6)))
    _write(path, ["origin", "configuration", "index", "detoured_fraction"], rows)
    return [path]


def _export_fig9(result, directory: Path) -> list[Path]:
    path = directory / "fig9_users_detoured.csv"
    rows = []
    for configuration, curve in result.users_curves.items():
        for index, fraction in enumerate(curve):
            rows.append((configuration, index, round(fraction, 6)))
    _write(path, ["configuration", "index", "users_detoured_fraction"], rows)
    return [path]


def _export_fig10(result, directory: Path) -> list[Path]:
    path = directory / "fig10_over_time.csv"
    rows = [
        ("2015", i, round(x, 6)) for i, x in enumerate(result.curve_2015)
    ] + [("2020", i, round(x, 6)) for i, x in enumerate(result.curve_2020)]
    _write(path, ["topology", "index", "detoured_fraction"], rows)
    return [path]


def _export_fig11(result, directory: Path) -> list[Path]:
    path = directory / "fig11_pop_overlap.csv"
    rows = (
        [("cloud-only", code) for code in sorted(result.cloud_only)]
        + [("both", code) for code in sorted(result.both)]
        + [("transit-only", code) for code in sorted(result.transit_only)]
    )
    _write(path, ["cohort", "city_code"], rows)
    return [path]


def _export_fig12(result, directory: Path) -> list[Path]:
    path = directory / "fig12_coverage.csv"
    rows = []
    for row in result.cohort_rows + result.provider_rows:
        for radius, percent in row.percent_by_radius:
            rows.append((row.label, row.region, radius, round(percent, 3)))
    _write(path, ["label", "region", "radius_km", "coverage_percent"], rows)
    return [path]


def _export_table3(result, directory: Path) -> list[Path]:
    path = directory / "table3_rdns.csv"
    _write(
        path,
        ["provider", "asn", "graph_pops", "hostnames", "rdns_percent"],
        [
            (r.provider, r.asn, r.graph_pops, r.hostnames,
             round(r.rdns_percent, 2))
            for r in result.rows
        ],
    )
    return [path]


def _export_sec45(result, directory: Path) -> list[Path]:
    counts = directory / "sec4_peer_counts.csv"
    _write(
        counts,
        ["cloud", "asn", "bgp_visible", "augmented", "truth"],
        [
            (r.name, r.asn, r.bgp_visible, r.augmented, r.truth)
            for r in result.peer_counts
        ],
    )
    stages = directory / "sec5_stage_rates.csv"
    rows = []
    for stage_name, reports in result.stage_reports.items():
        for asn, report in reports.items():
            rows.append(
                (
                    stage_name, asn, report.true_positives,
                    report.false_positives, report.false_negatives,
                    round(report.fdr, 4), round(report.fnr, 4),
                )
            )
    _write(stages, ["stage", "cloud_asn", "tp", "fp", "fn", "fdr", "fnr"], rows)
    return [counts, stages]


def _export_appendixA(result, directory: Path) -> list[Path]:
    path = directory / "appendixA_path_match.csv"
    _write(
        path,
        ["cloud", "asn", "matched", "total", "rate"],
        [
            (r.name, r.asn, r.matched, r.total, round(r.match_rate, 4))
            for r in result.rows
        ],
    )
    return [path]


def _export_appendixB(result, directory: Path) -> list[Path]:
    path = directory / "appendixB_tier1_reliance.csv"
    _write(
        path,
        ["tier1", "asn", "tier1_free", "hierarchy_free",
         "reach_bypassing_top6", "drop_explained"],
        [
            (
                c.name, c.asn, c.tier1_free, c.hierarchy_free,
                c.reach_bypassing_top6, round(c.drop_explained_by_top6, 4),
            )
            for c in result.cases
        ],
    )
    return [path]


def _export_appendixD(result, directory: Path) -> list[Path]:
    path = directory / "appendixD_geolocation.csv"
    _write(
        path,
        ["provider", "interfaces", "coverage", "accuracy"],
        [
            (r.provider, r.interfaces, round(r.coverage, 4),
             round(r.accuracy, 4))
            for r in result.rows
        ],
    )
    return [path]


def _export_fig13(result, directory: Path) -> list[Path]:
    path = directory / "fig13_path_lengths.csv"
    rows = []
    for year, clouds in sorted(result.bars.items()):
        for cloud, weightings in sorted(clouds.items()):
            for weighting, mix in weightings.items():
                rows.append(
                    (
                        year, cloud, weighting,
                        round(mix.one_hop, 6), round(mix.two_hop, 6),
                        round(mix.three_plus, 6),
                    )
                )
    _write(
        path,
        ["year", "cloud", "weighting", "one_hop", "two_hops", "three_plus"],
        rows,
    )
    return [path]


def _export_metrics(result, directory: Path) -> list[Path]:
    path = directory / "metrics_comparison.csv"
    _write(
        path,
        ["network", "asn", "cohort", "hierarchy_free", "customer_cone",
         "transit_degree", "node_degree", "hegemony"],
        [
            (
                r.name, r.asn, r.cohort, r.hierarchy_free, r.customer_cone,
                r.transit_degree, r.node_degree, round(r.hegemony, 6),
            )
            for r in result.rows
        ],
    )
    return [path]


_EXPORTERS = {
    "fig2": _export_fig2,
    "table1": _export_table1,
    "fig3": _export_fig3,
    "fig4": _export_fig4,
    "fig6_table2": _export_reliance,
    "fig7_8": _export_leaks,
    "fig9": _export_fig9,
    "fig10": _export_fig10,
    "fig11": _export_fig11,
    "fig12": _export_fig12,
    "table3": _export_table3,
    "sec4_5": _export_sec45,
    "appendixA": _export_appendixA,
    "appendixB": _export_appendixB,
    "appendixD": _export_appendixD,
    "fig13": _export_fig13,
    "metrics": _export_metrics,
}


def export_results(results: dict, directory: PathLike) -> list[Path]:
    """Write every recognized result to CSV files under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for key, result in results.items():
        exporter = _EXPORTERS.get(key)
        if exporter is None:
            continue
        written.extend(exporter(result, directory))
    return written
