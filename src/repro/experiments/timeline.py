"""Event-timeline replay: per-event metric series over cached baselines.

The paper's leak experiments study one kind of disturbance; AS Hegemony
(Fontugne et al.) tracks the same dependency metrics as *time series*
across link failures, depeerings and hijacks.  This module replays a
timeline of :mod:`repro.bgpsim.events` against per-origin baselines held
in a :class:`~repro.bgpsim.cache.RoutingStateCache`, emitting one
:class:`EventMetrics` row per (event, origin): reachability
(:func:`~repro.bgpsim.metrics_kernel.routed_count_kernel`), reliance on
each chosen target, local hegemony toward each target, and — for seed
events — the number of ASes captured by the hijacker/leaker.

Engine semantics: the ``engine`` knob (``REPRO_ENGINE``) selects *how*
each post-event state is derived — ``"incremental"`` applies the event's
delta to the cached baseline via
:func:`~repro.bgpsim.events.propagate_delta_event`; any other engine does
a full recompute on the mutated graph via
:func:`~repro.bgpsim.events.full_event_outcome`.  Both paths produce
bit-identical metric floats (``tests/test_event_engine.py``).  Baselines
are always compiled array states (the delta pass requires them and the
metric kernels are fastest on them), so a runner-created cache uses the
compiled kernel regardless of the engine knob.

Cache discipline: baselines are read *before* ``event.apply`` mutates the
graph; a topology-mutating event then drops every cached state
(:meth:`~repro.bgpsim.cache.RoutingStateCache.invalidate` — the
silent-staleness hazard covered by ``tests/test_event_engine.py``) and
installs the post-event states as the next event's baselines.  Seed
events (hijack, leak) are transient: the baseline topology is untouched,
so the cache is left alone.

Per-origin work fans out through
:func:`~repro.bgpsim.parallel.graph_map` (``workers``), and the initial
baseline warm-up uses the cache's bit-parallel batched ``prefetch``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Optional

from ..bgpsim.cache import RoutingStateCache
from ..bgpsim.engine import resolve_engine
from ..bgpsim.events import (
    ASFailure,
    Depeer,
    Event,
    Hijack,
    LinkDown,
    LinkUp,
    RouteLeak,
    full_event_outcome,
    propagate_delta_event,
)
from ..bgpsim.metrics_kernel import reliance_kernel, routed_count_kernel
from ..bgpsim.parallel import graph_map
from ..bgpsim.routes import RoutingState
from ..core.hegemony import TRIM, path_cross_fractions, trimmed_mean
from ..topology.asgraph import ASGraph

__all__ = [
    "EventMetrics",
    "ScenarioRunner",
    "TimelineResult",
    "parse_events",
]


@dataclass(frozen=True)
class EventMetrics:
    """One (event, origin) row of a timeline's metric series.

    ``step`` 0 is the pre-timeline baseline (``event == "baseline"``);
    steps 1..n follow the event sequence.  ``captured`` counts the ASes
    routing on the hijacker's/leaker's announcement (``None`` for
    topology events); ``visited_fraction``/``fallback`` expose the delta
    pass's instrumentation (0.0/False on the full-recompute path for
    topology and leak events, which do not track a frontier).
    """

    step: int
    event: str
    origin: int
    reachable: int
    reliance: dict[int, float]
    hegemony: dict[int, float]
    captured: Optional[int] = None
    visited_fraction: float = 0.0
    fallback: bool = False


@dataclass(frozen=True)
class TimelineResult:
    """All metric rows of one replayed timeline, ordered (step, origin)."""

    origins: tuple[int, ...]
    targets: tuple[int, ...]
    events: tuple[str, ...]
    records: tuple[EventMetrics, ...]

    def series(self, origin: int) -> tuple[EventMetrics, ...]:
        """One origin's rows across every step, baseline first."""
        return tuple(r for r in self.records if r.origin == origin)

    def record(self, step: int, origin: int) -> EventMetrics:
        for r in self.records:
            if r.step == step and r.origin == origin:
                return r
        raise KeyError(f"no record for step {step}, origin AS{origin}")


def _metric_row(
    state: RoutingState, origin: int, targets: Sequence[int]
) -> tuple[int, dict[int, float], dict[int, float]]:
    """(reachable, reliance-per-target, hegemony-per-target) of a state."""
    reachable = routed_count_kernel(state)
    reliance: dict[int, float] = {}
    hegemony: dict[int, float] = {}
    if targets:
        full = reliance_kernel(state)
        for target in targets:
            reliance[target] = full.get(target, 0.0)
            fractions = path_cross_fractions(state, target)
            samples = [
                value
                for asn, value in fractions.items()
                if asn not in (origin, target)
            ]
            hegemony[target] = trimmed_mean(samples, TRIM)
    return reachable, reliance, hegemony


def _event_task(
    graph: ASGraph,
    origin: int,
    *,
    applied=None,
    baselines=None,
    targets: tuple[int, ...] = (),
    delta: bool = True,
    threshold: Optional[float] = None,
):
    """One origin's post-event outcome + metric row (module-level so
    ``graph_map`` can ship it to worker processes; ``applied``/
    ``baselines`` ride along as per-worker shared state)."""
    baseline = baselines[origin]
    event = applied.event
    if (
        (isinstance(event, Hijack) and event.hijacker == origin)
        or (
            isinstance(event, RouteLeak)
            and (
                event.leaker == origin
                or (
                    event.initial_length is None
                    and baseline.path_length(event.leaker) is None
                )
            )
        )
    ):
        # per-prefix no-ops: an AS "hijacking"/"leaking" the prefix it
        # legitimately originates, or re-announcing a route it never had
        row = _metric_row(baseline, origin, targets)
        return (origin, None, row, 0, 0.0, False)
    if delta:
        outcome = propagate_delta_event(
            graph, baseline, applied, threshold=threshold
        )
    else:
        outcome = full_event_outcome(graph, baseline, applied)
    state = outcome.state
    captured = None
    if isinstance(event, (Hijack, RouteLeak)):
        captured = len(state.ases_with_origin(event.key))
    row = _metric_row(state, origin, targets)
    # seed-event states are transient (never re-installed as baselines),
    # so skip shipping them back over the worker pipe
    return (
        origin,
        state if applied.mutates_topology else None,
        row,
        captured,
        outcome.visited_fraction,
        outcome.fallback,
    )


class ScenarioRunner:
    """Replay an event timeline, one metric row per (event, origin).

    ``cache`` defaults to a fresh compiled-engine
    :class:`RoutingStateCache` over ``graph``; a caller-provided cache
    must hold compiled array states (the delta pass and seed-event
    merges require them).  ``engine`` picks delta vs full recompute (see
    the module docstring), ``workers`` fans per-origin work across
    processes, ``batch`` sets the bit-parallel prefetch width, and
    ``threshold`` caps the delta pass's withdrawal region
    (:func:`~repro.bgpsim.events.resolve_event_threshold`).

    ``shards`` attaches a precomputed
    :class:`~repro.bgpsim.shards.ShardStore` as the cache's disk tier:
    the step-0 baselines come from mmap instead of propagation, and the
    digest re-check inside the cache keeps mutated topologies off the
    disk tier (re-enabling it when an inverse event restores the graph).
    """

    def __init__(
        self,
        graph: ASGraph,
        origins: Iterable[int],
        targets: Iterable[int] = (),
        cache: Optional[RoutingStateCache] = None,
        engine: Optional[str] = None,
        workers: int | str | None = None,
        batch: Optional[int] = None,
        threshold: Optional[float] = None,
        shards=None,
    ) -> None:
        self.graph = graph
        self.origins = tuple(origins)
        if not self.origins:
            raise ValueError("at least one origin required")
        self.targets = tuple(targets)
        self.engine = resolve_engine(engine)
        self.workers = workers
        self.batch = batch
        self.threshold = threshold
        if cache is None:
            cache = RoutingStateCache(graph, engine="compiled", batch=batch)
        if shards is not None:
            cache.attach_shards(shards)
        self.cache = cache

    def run(self, events: Iterable[Event]) -> TimelineResult:
        """Apply ``events`` in order to the runner's graph (mutating it)
        and return the full metric series, baseline step included."""
        events = tuple(events)
        delta = self.engine == "incremental"
        records: list[EventMetrics] = []
        self.cache.prefetch(
            self.origins, workers=self.workers, batch=self.batch
        )
        for origin in self.origins:
            state = self.cache.state_for(origin)
            reachable, reliance, hegemony = _metric_row(
                state, origin, self.targets
            )
            records.append(
                EventMetrics(0, "baseline", origin, reachable, reliance, hegemony)
            )
        for step, event in enumerate(events, 1):
            # baselines must predate the mutation — apply() changes graph
            baselines = {o: self.cache.state_for(o) for o in self.origins}
            applied = event.apply(self.graph)
            rows = list(
                graph_map(
                    self.graph,
                    _event_task,
                    self.origins,
                    workers=self.workers,
                    applied=applied,
                    baselines=baselines,
                    targets=self.targets,
                    delta=delta,
                    threshold=self.threshold,
                )
            )
            if applied.mutates_topology:
                self.cache.invalidate()
            for origin, state, row, captured, visited_fraction, fallback in rows:
                if state is not None:
                    self.cache.install(origin, state)
                reachable, reliance, hegemony = row
                records.append(
                    EventMetrics(
                        step,
                        event.describe(),
                        origin,
                        reachable,
                        reliance,
                        hegemony,
                        captured=captured,
                        visited_fraction=visited_fraction,
                        fallback=fallback,
                    )
                )
        return TimelineResult(
            self.origins,
            self.targets,
            tuple(event.describe() for event in events),
            tuple(records),
        )


def _parse_pair(text: str, token: str) -> tuple[int, int]:
    a, _, b = text.partition("-")
    if not b:
        raise ValueError(f"expected 'A-B' AS pair in {token!r}")
    return int(a), int(b)


def parse_events(spec: str) -> tuple[Event, ...]:
    """Parse a compact CLI timeline spec into events.

    Comma-separated tokens: ``down:A-B`` (remove any link),
    ``up:A-B[:p2p|p2c]`` (add a link, ``A`` the provider for p2c;
    default p2p), ``depeer:A-B``, ``fail:A`` (AS outage),
    ``hijack:A``, ``leak:A[:LEN]`` (re-announce by default, explicit
    initial length otherwise) — e.g.
    ``"down:11-100,hijack:301,up:11-100:p2c"``.
    """
    events: list[Event] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        kind, _, rest = token.partition(":")
        parts = rest.split(":") if rest else []
        try:
            if kind == "down" and len(parts) == 1:
                events.append(LinkDown(*_parse_pair(parts[0], token)))
            elif kind == "up" and len(parts) in (1, 2):
                a, b = _parse_pair(parts[0], token)
                rel = parts[1] if len(parts) == 2 else "p2p"
                events.append(LinkUp(a, b, relationship=rel))
            elif kind == "depeer" and len(parts) == 1:
                events.append(Depeer(*_parse_pair(parts[0], token)))
            elif kind == "fail" and len(parts) == 1:
                events.append(ASFailure(int(parts[0])))
            elif kind == "hijack" and len(parts) == 1:
                events.append(Hijack(int(parts[0])))
            elif kind == "leak" and len(parts) in (1, 2):
                length = int(parts[1]) if len(parts) == 2 else None
                events.append(RouteLeak(int(parts[0]), initial_length=length))
            else:
                raise ValueError(
                    f"unknown or malformed event {token!r}; expected "
                    "down:A-B, up:A-B[:rel], depeer:A-B, fail:A, "
                    "hijack:A or leak:A[:LEN]"
                )
        except ValueError as exc:
            if "unknown or malformed" in str(exc):
                raise
            raise ValueError(f"bad event token {token!r}: {exc}") from exc
    if not events:
        raise ValueError(f"no events in timeline spec {spec!r}")
    return tuple(events)
