"""Experiment E13 — Appendix A: do simulated paths reflect actual paths?

For each traceroute that reached its destination, check whether its AS
path appears among the tied-best paths of the Gao-Rexford simulation on
the analysis graph.  Paper shape: 73% (Amazon) to 92% (Google) of
traceroutes are contained, with Amazon lowest because early exit adds
location-dependent variation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bgpsim.engine import propagate
from ..bgpsim.routes import RoutingState, Seed
from .context import ExperimentContext
from .report import format_table, percent


@dataclass(frozen=True)
class PathMatchRow:
    name: str
    asn: int
    matched: int
    total: int

    @property
    def match_rate(self) -> float:
        return self.matched / self.total if self.total else 0.0


@dataclass
class AppendixAResult:
    rows: list[PathMatchRow]

    def rate(self, name: str) -> float:
        for row in self.rows:
            if row.name == name:
                return row.match_rate
        raise KeyError(name)

    def render(self) -> str:
        return format_table(
            ("cloud", "matched", "total", "rate"),
            [
                (r.name, r.matched, r.total, percent(r.match_rate))
                for r in self.rows
            ],
            title="Appendix A — simulated paths contain observed paths",
        )


def run(ctx: ExperimentContext, max_traces_per_cloud: int = 4000) -> AppendixAResult:
    graph = ctx.graph
    rows = []
    states: dict[int, RoutingState] = {}
    for name, asn in ctx.clouds.items():
        matched = 0
        total = 0
        for trace in ctx.traceroutes.get(asn, [])[:max_traces_per_cloud]:
            if not trace.reached or not trace.true_as_path:
                continue
            dst = trace.dst_asn
            if dst not in graph or asn not in graph:
                continue
            total += 1
            state = states.get(dst)
            if state is None:
                state = propagate(graph, Seed(asn=dst))
                states[dst] = state
            # the traceroute path runs cloud→dst, which is exactly the
            # receiver→origin orientation of the simulation's best-path DAG
            # when the destination is the announcement origin
            if state.contains_path(trace.true_as_path):
                matched += 1
        rows.append(PathMatchRow(name=name, asn=asn, matched=matched, total=total))
    return AppendixAResult(rows=rows)
