"""Experiment E12 — §4.1 peer counts and §5 validation trajectory.

Two paper artifacts:

* §4.1's "CAIDA alone vs CAIDA+traceroutes" neighbor counts (333 vs 1,389
  for Amazon, 818 vs 7,757 for Google, ...): BGP feeds miss most cloud
  peerings, and the traceroute campaign recovers them;
* §5's methodology-iteration table: FDR/FNR per inference stage V0→V4
  (≈50%/≈50% initially, 11%/21% finally for Microsoft).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..neighbors import STAGES, InferenceStage, infer_all_clouds, validate_all
from ..neighbors.validation import ValidationReport
from .context import ExperimentContext
from .report import format_table, percent


@dataclass(frozen=True)
class PeerCountRow:
    name: str
    asn: int
    bgp_visible: int
    augmented: int
    truth: int

    @property
    def missed_by_bgp(self) -> float:
        if self.truth == 0:
            return 0.0
        return 1.0 - self.bgp_visible / self.truth


@dataclass
class Sec45Result:
    peer_counts: list[PeerCountRow]
    stage_reports: dict[str, dict[int, ValidationReport]] = field(
        default_factory=dict
    )

    def final_reports(self) -> dict[int, ValidationReport]:
        return self.stage_reports[STAGES[-1].name]

    def mean_fdr(self, stage_name: str) -> float:
        reports = self.stage_reports[stage_name]
        return sum(r.fdr for r in reports.values()) / len(reports)

    def mean_fnr(self, stage_name: str) -> float:
        reports = self.stage_reports[stage_name]
        return sum(r.fnr for r in reports.values()) / len(reports)

    def render(self) -> str:
        counts = format_table(
            ("cloud", "BGP-visible", "augmented", "truth", "missed by BGP"),
            [
                (
                    r.name,
                    r.bgp_visible,
                    r.augmented,
                    r.truth,
                    percent(r.missed_by_bgp, 0),
                )
                for r in self.peer_counts
            ],
            title="§4.1 — cloud neighbors: BGP feeds vs augmented",
        )
        stage_rows = [
            (name, percent(self.mean_fdr(name)), percent(self.mean_fnr(name)))
            for name in self.stage_reports
        ]
        stages = format_table(
            ("stage", "mean FDR", "mean FNR"),
            stage_rows,
            title="§5 — methodology iterations",
        )
        return counts + "\n\n" + stages


def run(
    ctx: ExperimentContext,
    stages: tuple[InferenceStage, ...] = STAGES,
) -> Sec45Result:
    scenario = ctx.scenario
    truth = {
        asn: scenario.true_cloud_neighbors(asn) for asn in scenario.cloud_asns()
    }
    peer_counts = []
    for name, asn in scenario.clouds.items():
        peer_counts.append(
            PeerCountRow(
                name=name,
                asn=asn,
                bgp_visible=len(scenario.visible_cloud_neighbors(asn)),
                augmented=ctx.graph.degree(asn) if asn in ctx.graph else 0,
                truth=len(truth[asn]),
            )
        )
    result = Sec45Result(peer_counts=peer_counts)
    for stage in stages:
        inferred = infer_all_clouds(scenario, ctx.traceroutes, stage)
        result.stage_reports[stage.name] = validate_all(
            {c: inf.neighbors for c, inf in inferred.items()}, truth
        )
    return result
