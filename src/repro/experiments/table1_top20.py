"""Experiment E2 — Table 1: top-20 networks by hierarchy-free
reachability, 2015 vs 2020.

Paper shape: Google is top-3 in both years; Amazon/Microsoft/IBM climb
dramatically between 2015 and 2020; large well-peered transits (Level 3,
Hurricane Electric) stay at the top; most networks gain a few percent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.metrics import hierarchy_free_sweep, rank_by
from .context import ExperimentContext
from .report import format_table, percent


@dataclass(frozen=True)
class Table1Entry:
    rank: int
    name: str
    asn: int
    reachability: int
    fraction: float
    change_from_past: Optional[float] = None  # percentage-point change


@dataclass
class Table1Result:
    entries_2015: list[Table1Entry]
    entries_2020: list[Table1Entry]
    cloud_ranks_2015: dict[str, int]
    cloud_ranks_2020: dict[str, int]

    def render(self) -> str:
        def rows(entries):
            return [
                (
                    e.rank,
                    e.name,
                    e.asn,
                    e.reachability,
                    percent(e.fraction),
                    "" if e.change_from_past is None
                    else f"{e.change_from_past:+.1f}pp",
                )
                for e in entries
            ]

        past = format_table(
            ("#", "network", "ASN", "reach", "%", "Δ"),
            rows(self.entries_2015),
            title="Table 1 (2015) — top 20 by hierarchy-free reachability",
        )
        present = format_table(
            ("#", "network", "ASN", "reach", "%", "Δ"),
            rows(self.entries_2020),
            title="Table 1 (2020) — top 20 by hierarchy-free reachability",
        )
        return past + "\n\n" + present


def _sweep_table(ctx: ExperimentContext) -> tuple[list[tuple[int, int]], dict[int, int]]:
    values = hierarchy_free_sweep(ctx.graph, ctx.tiers)
    ranked = rank_by(values)
    ranks = {asn: i + 1 for i, (asn, _) in enumerate(ranked)}
    return ranked, ranks


def run(
    ctx_2020: ExperimentContext,
    ctx_2015: ExperimentContext,
    top_n: int = 20,
) -> Table1Result:
    ranked_2015, ranks_2015 = _sweep_table(ctx_2015)
    ranked_2020, ranks_2020 = _sweep_table(ctx_2020)
    total_2015 = max(len(ctx_2015.graph) - 1, 1)
    total_2020 = max(len(ctx_2020.graph) - 1, 1)
    past_fraction = {
        ctx_2015.label(asn): value / total_2015 for asn, value in ranked_2015
    }
    entries_2015 = [
        Table1Entry(
            rank=i + 1,
            name=ctx_2015.label(asn),
            asn=asn,
            reachability=value,
            fraction=value / total_2015,
        )
        for i, (asn, value) in enumerate(ranked_2015[:top_n])
    ]
    entries_2020 = []
    for i, (asn, value) in enumerate(ranked_2020[:top_n]):
        name = ctx_2020.label(asn)
        fraction = value / total_2020
        change = None
        if name in past_fraction:
            change = 100.0 * (fraction - past_fraction[name])
        entries_2020.append(
            Table1Entry(
                rank=i + 1,
                name=name,
                asn=asn,
                reachability=value,
                fraction=fraction,
                change_from_past=change,
            )
        )
    cloud_ranks_2015 = {
        name: ranks_2015.get(asn, 0) for name, asn in ctx_2015.clouds.items()
    }
    cloud_ranks_2020 = {
        name: ranks_2020.get(asn, 0) for name, asn in ctx_2020.clouds.items()
    }
    return Table1Result(
        entries_2015=entries_2015,
        entries_2020=entries_2020,
        cloud_ranks_2015=cloud_ranks_2015,
        cloud_ranks_2020=cloud_ranks_2020,
    )
