"""Extension experiment — influence metrics side by side.

Not a paper artifact: the paper's §6.6/§10 argue that customer cone,
degree-based metrics, and inbetweenness scores (AS hegemony) capture
different notions of importance than hierarchy-free reachability.  This
experiment computes all five metrics for the clouds and the transit
hierarchy on one topology so the decorrelation claims can be inspected
directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.cones import customer_cone_size, node_degree, transit_degree
from ..core.hegemony import global_hegemony
from ..core.metrics import hierarchy_free_reachability
from .context import ExperimentContext
from .report import format_table


@dataclass(frozen=True)
class MetricsRow:
    name: str
    asn: int
    cohort: str
    hierarchy_free: int
    customer_cone: int
    transit_degree: int
    node_degree: int
    hegemony: float


@dataclass
class MetricsComparisonResult:
    rows: list[MetricsRow]

    def row(self, name: str) -> MetricsRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def rank_of(self, name: str, metric: str) -> int:
        ordered = sorted(
            self.rows, key=lambda r: (-getattr(r, metric), r.asn)
        )
        for rank, row in enumerate(ordered, 1):
            if row.name == name:
                return rank
        raise KeyError(name)

    def render(self) -> str:
        ordered = sorted(self.rows, key=lambda r: -r.hierarchy_free)
        return format_table(
            ("network", "cohort", "HFR", "cone", "transit°", "degree",
             "hegemony"),
            [
                (
                    r.name, r.cohort, r.hierarchy_free, r.customer_cone,
                    r.transit_degree, r.node_degree, f"{r.hegemony:.4f}",
                )
                for r in ordered
            ],
            title="Influence metrics compared (extension)",
        )


def run(
    ctx: ExperimentContext,
    hegemony_sample: int = 40,
    seed: int = 41,
    workers: int | str | None = None,
    engine: str | None = None,
    batch: int | None = None,
    stream: bool | str | None = None,
) -> MetricsComparisonResult:
    graph, tiers = ctx.graph, ctx.tiers
    targets: list[tuple[str, int, str]] = [
        (name, asn, "cloud") for name, asn in ctx.clouds.items()
    ]
    targets += [
        (ctx.label(asn), asn, "tier1") for asn in sorted(tiers.tier1)
    ]
    targets += [
        (ctx.label(asn), asn, "tier2") for asn in sorted(tiers.tier2)
    ]
    hegemony = global_hegemony(
        graph,
        targets=[asn for _, asn, _ in targets],
        sample=hegemony_sample,
        rng=random.Random(seed),
        workers=workers,
        engine=engine,
        batch=batch,
        stream=stream,
    )
    rows = [
        MetricsRow(
            name=name,
            asn=asn,
            cohort=cohort,
            hierarchy_free=hierarchy_free_reachability(graph, asn, tiers),
            customer_cone=customer_cone_size(graph, asn),
            transit_degree=transit_degree(graph, asn),
            node_degree=node_degree(graph, asn),
            hegemony=hegemony[asn],
        )
        for name, asn, cohort in targets
    ]
    return MetricsComparisonResult(rows=rows)
