"""Experiment E5 — Fig. 6 and Table 2: the clouds' reliance on other
networks under hierarchy-free constraints.

Paper shape: the overwhelming majority of networks have reliance 1 (the
flat-mesh ideal); each cloud relies heavily on only a handful of networks;
the least-peered cloud (Amazon) shows the single largest reliance value.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.reliance import (
    hierarchy_free_reliance_sweep,
    reliance_histogram,
    top_reliance,
)
from .context import ExperimentContext
from .report import format_table


@dataclass
class CloudReliance:
    name: str
    asn: int
    values: dict[int, float]
    histogram: dict[int, int]
    top3: list[tuple[int, float]]

    @property
    def max_reliance(self) -> float:
        return max(self.values.values(), default=0.0)

    def fraction_at_one(self) -> float:
        """Share of relied-on networks with reliance ~1 (flat ideal)."""
        if not self.values:
            return 0.0
        near_one = sum(1 for v in self.values.values() if v <= 1.0 + 1e-9)
        return near_one / len(self.values)


@dataclass
class Fig6Table2Result:
    clouds: list[CloudReliance]

    def render(self) -> str:
        hist_rows = []
        for cloud in self.clouds:
            hist_rows.append(
                (
                    cloud.name,
                    len(cloud.values),
                    f"{cloud.fraction_at_one():.0%}",
                    f"{cloud.max_reliance:.1f}",
                )
            )
        hist = format_table(
            ("cloud", "networks relied on", "rely<=1", "max rely"),
            hist_rows,
            title="Fig. 6 — reliance distribution per cloud (hierarchy-free)",
        )
        top_rows = []
        for cloud in self.clouds:
            cells = [cloud.name]
            for asn, value in cloud.top3:
                cells.append(f"AS{asn} ({value:.1f})")
            while len(cells) < 4:
                cells.append("-")
            top_rows.append(tuple(cells))
        top = format_table(
            ("cloud", "#1", "#2", "#3"),
            top_rows,
            title="Table 2 — top-3 reliance per cloud",
        )
        return hist + "\n\n" + top


def run(
    ctx: ExperimentContext,
    bin_width: int = 25,
    workers: int | str | None = None,
) -> Fig6Table2Result:
    graph, tiers = ctx.graph, ctx.tiers
    names = list(ctx.clouds.items())
    sweeps = hierarchy_free_reliance_sweep(
        graph, [asn for _, asn in names], tiers, workers=workers
    )
    clouds = []
    for (name, asn), values in zip(names, sweeps):
        clouds.append(
            CloudReliance(
                name=name,
                asn=asn,
                values=values,
                histogram=reliance_histogram(values, bin_width=bin_width),
                top3=top_reliance(values, 3),
            )
        )
    return Fig6Table2Result(clouds=clouds)
