"""Experiment E5 — Fig. 6 and Table 2: the clouds' reliance on other
networks under hierarchy-free constraints.

Paper shape: the overwhelming majority of networks have reliance 1 (the
flat-mesh ideal); each cloud relies heavily on only a handful of networks;
the least-peered cloud (Amazon) shows the single largest reliance value.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.reliance import RelianceSummary, hierarchy_free_reliance_summaries
from .context import ExperimentContext
from .report import format_table


@dataclass
class CloudReliance:
    """One cloud's aggregated reliance record (a named summary).

    Sweep workers return the compact :class:`RelianceSummary` — the
    per-AS reliance dict never leaves the worker, since the figure and
    table only aggregate it.
    """

    name: str
    asn: int
    summary: RelianceSummary

    @property
    def networks_relied_on(self) -> int:
        return self.summary.networks

    @property
    def histogram(self) -> dict[int, int]:
        return self.summary.histogram

    @property
    def top3(self) -> list[tuple[int, float]]:
        return list(self.summary.top)

    @property
    def max_reliance(self) -> float:
        return self.summary.max_value

    def fraction_at_one(self) -> float:
        """Share of relied-on networks with reliance ~1 (flat ideal)."""
        return self.summary.fraction_at_one()


@dataclass
class Fig6Table2Result:
    clouds: list[CloudReliance]

    def render(self) -> str:
        hist_rows = []
        for cloud in self.clouds:
            hist_rows.append(
                (
                    cloud.name,
                    cloud.networks_relied_on,
                    f"{cloud.fraction_at_one():.0%}",
                    f"{cloud.max_reliance:.1f}",
                )
            )
        hist = format_table(
            ("cloud", "networks relied on", "rely<=1", "max rely"),
            hist_rows,
            title="Fig. 6 — reliance distribution per cloud (hierarchy-free)",
        )
        top_rows = []
        for cloud in self.clouds:
            cells = [cloud.name]
            for asn, value in cloud.top3:
                cells.append(f"AS{asn} ({value:.1f})")
            while len(cells) < 4:
                cells.append("-")
            top_rows.append(tuple(cells))
        top = format_table(
            ("cloud", "#1", "#2", "#3"),
            top_rows,
            title="Table 2 — top-3 reliance per cloud",
        )
        return hist + "\n\n" + top


def run(
    ctx: ExperimentContext,
    bin_width: int = 25,
    workers: int | str | None = None,
    engine: str | None = None,
    batch: int | None = None,
    stream: bool | str | None = None,
) -> Fig6Table2Result:
    graph, tiers = ctx.graph, ctx.tiers
    names = list(ctx.clouds.items())
    summaries = hierarchy_free_reliance_summaries(
        graph,
        [asn for _, asn in names],
        tiers,
        bin_width=bin_width,
        workers=workers,
        engine=engine,
        batch=batch,
        stream=stream,
    )
    clouds = [
        CloudReliance(name=name, asn=asn, summary=summary)
        for (name, asn), summary in zip(names, summaries)
    ]
    return Fig6Table2Result(clouds=clouds)
