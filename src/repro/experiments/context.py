"""Shared experiment context: from raw scenario to the paper's analysis
graph.

Every experiment in the paper runs on the *augmented* AS-level topology:
the BGP-derived (CAIDA) view plus the cloud neighbors inferred from the
traceroute campaign (§4.1).  ``build_context`` performs that full pipeline
— generate the synthetic Internet, run the campaign, infer neighbors with
the final methodology, augment the public graph — and caches the result
per (profile, seed) so benchmarks can share it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..netgen import InternetScenario, build_scenario, profile
from ..neighbors import (
    FINAL_STAGE,
    NeighborInference,
    infer_all_clouds,
    validate_all,
)
from ..neighbors.validation import ValidationReport
from ..topology import ASGraph, AugmentationReport, augment_with_neighbors
from ..traceroute import Traceroute, TracerouteCampaign

#: Profile used when none is requested (override with REPRO_PROFILE).
DEFAULT_PROFILE = "small"


@dataclass
class ExperimentContext:
    """Everything downstream experiments need."""

    scenario: InternetScenario
    traceroutes: dict[int, list[Traceroute]] = field(default_factory=dict)
    inferred: dict[int, NeighborInference] = field(default_factory=dict)
    augmented_graph: ASGraph = field(default_factory=ASGraph)
    augmentation: AugmentationReport = field(default_factory=AugmentationReport)

    @property
    def graph(self) -> ASGraph:
        """The analysis graph (public view + inferred cloud neighbors)."""
        return self.augmented_graph

    @property
    def tiers(self):
        return self.scenario.tiers

    @property
    def clouds(self) -> dict[str, int]:
        return self.scenario.clouds

    def validation_reports(self) -> dict[int, ValidationReport]:
        return validate_all(
            {c: inf.neighbors for c, inf in self.inferred.items()},
            {
                c: self.scenario.true_cloud_neighbors(c)
                for c in self.inferred
            },
        )

    def label(self, asn: int) -> str:
        return self.scenario.name_of(asn)


def build_context(
    profile_name: str = DEFAULT_PROFILE,
    seed: int | None = None,
    measure: bool = True,
) -> ExperimentContext:
    """Run the full §4 pipeline for one scenario profile.

    With ``measure=False`` the context's analysis graph is the ground-truth
    topology (useful for isolating measurement error in ablations).
    """
    config = profile(profile_name) if seed is None else profile(profile_name, seed=seed)
    scenario = build_scenario(config)
    context = ExperimentContext(scenario=scenario)
    if not measure:
        context.augmented_graph = scenario.graph.copy()
        return context
    campaign = TracerouteCampaign(scenario, seed=config.seed + 2)
    context.traceroutes = campaign.run_all()
    context.inferred = infer_all_clouds(
        scenario, context.traceroutes, FINAL_STAGE
    )
    context.augmented_graph = scenario.public_graph.copy()
    context.augmentation = augment_with_neighbors(
        context.augmented_graph,
        {c: inf.neighbors for c, inf in context.inferred.items()},
    )
    return context


_CACHE: dict[tuple[str, int | None, bool], ExperimentContext] = {}


def cached_context(
    profile_name: str | None = None,
    seed: int | None = None,
    measure: bool = True,
) -> ExperimentContext:
    """Memoized :func:`build_context` (shared across benchmarks)."""
    if profile_name is None:
        profile_name = os.environ.get("REPRO_PROFILE", DEFAULT_PROFILE)
    key = (profile_name, seed, measure)
    if key not in _CACHE:
        _CACHE[key] = build_context(profile_name, seed=seed, measure=measure)
    return _CACHE[key]
