"""Experiment E16 — Appendix D: active router geolocation.

For a sample of providers' router interfaces, run the candidate-then-ping
geolocation pipeline and report coverage (fraction of addresses pinned to
a city) and accuracy (pinned city == true city).  The paper's technique is
conservative by construction — a 1 ms RTT bound cannot produce a city more
than ~100 km off — so accuracy should be near-perfect wherever a usable
VP exists.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..geo.geolocate import (
    Geolocator,
    PingSimulator,
    atlas_from_scenario,
    geolocate_routers,
)
from ..mapping import peeringdb_from_scenario, resolver_from_scenario
from ..pops import generate_footprint
from .context import ExperimentContext
from .report import format_table, percent


@dataclass(frozen=True)
class GeolocationRow:
    provider: str
    interfaces: int
    coverage: float
    accuracy: float


@dataclass
class AppendixDResult:
    rows: list[GeolocationRow]

    def row(self, provider: str) -> GeolocationRow:
        for row in self.rows:
            if row.provider == provider:
                return row
        raise KeyError(provider)

    def render(self) -> str:
        return format_table(
            ("provider", "interfaces", "coverage", "accuracy"),
            [
                (
                    r.provider,
                    r.interfaces,
                    percent(r.coverage),
                    percent(r.accuracy),
                )
                for r in self.rows
            ],
            title="Appendix D — active geolocation of router interfaces",
        )


def run(
    ctx: ExperimentContext,
    providers: tuple[str, ...] = (
        "Hurricane Electric",
        "Level 3",
        "Google",
    ),
    routers_per_provider: int = 40,
    seed: int = 31,
) -> AppendixDResult:
    scenario = ctx.scenario
    rng = random.Random(seed)
    vps = atlas_from_scenario(scenario, rng, vps_per_city=2)
    peeringdb = peeringdb_from_scenario(scenario)
    resolver = resolver_from_scenario(scenario)
    rows = []
    for provider in providers:
        if (
            provider not in scenario.clouds
            and provider not in scenario.transit_labels
        ):
            continue
        footprint = generate_footprint(scenario, provider, rng)
        routers = footprint.routers[:routers_per_provider]
        pinger = PingSimulator.from_routers(routers, rng)
        geolocator = Geolocator(
            peeringdb=peeringdb, resolver=resolver, vps=vps, pinger=pinger
        )
        summary = geolocate_routers(geolocator, routers, rng)
        rows.append(
            GeolocationRow(
                provider=provider,
                interfaces=int(summary["total"]),
                coverage=summary["coverage"],
                accuracy=summary["accuracy"],
            )
        )
    return AppendixDResult(rows=rows)
