"""The paper's reachability metric family (§6).

Three nested constraints are applied to an origin's route propagation:

* **provider-free** — ``reach(o, I \\ P_o)``: bypass the origin's own
  transit providers (§6.2);
* **Tier-1-free** — ``reach(o, I \\ P_o \\ T1)``: additionally bypass the
  Tier-1 clique (§6.3);
* **hierarchy-free** — ``reach(o, I \\ P_o \\ T1 \\ T2)``: additionally
  bypass the Tier-2 ISPs (§6.4) — the paper's headline metric.

``full_reachability`` (no exclusions) gives the maximum-possible baseline
(what a Tier-1 attains), and :func:`hierarchy_free_sweep` computes the
headline metric for every AS in the topology using the bitset engine.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..bgpsim.metrics_kernel import is_array_state, routed_count_kernel
from ..bgpsim.routes import RoutingState
from ..topology.asgraph import ASGraph
from ..topology.tiers import TierAssignment
from .reachability import ConeEngine, reachability, reachable_set


@dataclass(frozen=True)
class ReachabilityReport:
    """Reachability of one origin under the three nested constraints."""

    origin: int
    full: int
    provider_free: int
    tier1_free: int
    hierarchy_free: int

    def __post_init__(self) -> None:
        if not (
            self.hierarchy_free
            <= self.tier1_free
            <= self.provider_free
            <= self.full
        ):
            raise ValueError(
                f"reachability constraints must nest for AS{self.origin}"
            )

    def as_fractions(self, total_ases: int) -> dict[str, float]:
        """Each reachability as a fraction of the other ASes in the graph."""
        denom = max(total_ases - 1, 1)
        return {
            "full": self.full / denom,
            "provider_free": self.provider_free / denom,
            "tier1_free": self.tier1_free / denom,
            "hierarchy_free": self.hierarchy_free / denom,
        }


def reachability_from_state(state: RoutingState) -> int:
    """``reach(o, ·)`` of an already-propagated state: the number of
    routed non-seed ASes.

    Array-backed states answer from the routed-index array
    (:func:`repro.bgpsim.metrics_kernel.routed_count_kernel`) without
    materializing ``routes`` or building the ``reachable_ases`` set.
    """
    if is_array_state(state):
        return routed_count_kernel(state)
    return len(state.routes.keys() - state.seed_asns)


def full_reachability(graph: ASGraph, origin: int) -> int:
    """``reach(o, I)`` — no bypass constraints."""
    return reachability(graph, origin)


def provider_free_reachability(graph: ASGraph, origin: int) -> int:
    """``reach(o, I \\ P_o)`` (§6.2)."""
    return reachability(graph, origin, graph.providers(origin))


def tier1_free_reachability(
    graph: ASGraph, origin: int, tiers: TierAssignment
) -> int:
    """``reach(o, I \\ P_o \\ T1)`` (§6.3)."""
    excluded = (graph.providers(origin) | tiers.tier1) - {origin}
    return reachability(graph, origin, excluded)


def hierarchy_free_reachability(
    graph: ASGraph, origin: int, tiers: TierAssignment
) -> int:
    """``reach(o, I \\ P_o \\ T1 \\ T2)`` (§6.4) — hierarchy-free reachability."""
    excluded = (graph.providers(origin) | tiers.hierarchy) - {origin}
    return reachability(graph, origin, excluded)


def hierarchy_free_set(
    graph: ASGraph, origin: int, tiers: TierAssignment
) -> frozenset[int]:
    """The actual hierarchy-free reachable AS set (used by Fig. 4)."""
    excluded = (graph.providers(origin) | tiers.hierarchy) - {origin}
    return reachable_set(graph, origin, excluded)


def reachability_report(
    graph: ASGraph, origin: int, tiers: TierAssignment
) -> ReachabilityReport:
    """All four reachability values for ``origin`` (one Fig. 2 bar group)."""
    return ReachabilityReport(
        origin=origin,
        full=full_reachability(graph, origin),
        provider_free=provider_free_reachability(graph, origin),
        tier1_free=tier1_free_reachability(graph, origin, tiers),
        hierarchy_free=hierarchy_free_reachability(graph, origin, tiers),
    )


def hierarchy_free_sweep(
    graph: ASGraph,
    tiers: TierAssignment,
    origins: Iterable[int] | None = None,
    engine: ConeEngine | None = None,
) -> dict[int, int]:
    """Hierarchy-free reachability for every origin (default: all ASes).

    Uses the bitset cone engine with exact-BFS fallback, so results are
    identical to calling :func:`hierarchy_free_reachability` per AS.
    """
    if engine is None:
        engine = ConeEngine(graph, excluded=tiers.hierarchy)
    elif engine.excluded != tiers.hierarchy:
        raise ValueError("engine exclusion set must equal tiers.hierarchy")
    if origins is None:
        origins = graph.nodes()
    return {origin: engine.provider_free_count(origin) for origin in origins}


def rank_by(values: dict[int, int]) -> list[tuple[int, int]]:
    """Sort ``{asn: value}`` descending by value (ASN ascending on ties)."""
    return sorted(values.items(), key=lambda item: (-item[1], item[0]))
