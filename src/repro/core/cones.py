"""Customer cone, transit degree, and node degree (AS-Rank metrics).

These are the incumbent influence metrics the paper contrasts with
hierarchy-free reachability (§6.6): customer cone is the set of ASes
reachable following only p2c links downward, transit degree counts unique
neighbors on transit edges, node degree counts all unique neighbors.
"""

from __future__ import annotations

from ..topology.asgraph import ASGraph
from .reachability import ConeEngine


def customer_cone(graph: ASGraph, asn: int) -> frozenset[int]:
    """The ASes ``asn`` can reach using only p2c links (excluding itself)."""
    if asn not in graph:
        raise KeyError(f"AS{asn} not in graph")
    cone: set[int] = set()
    frontier = [asn]
    while frontier:
        next_frontier = []
        for node in frontier:
            for customer in graph.customers(node):
                if customer not in cone and customer != asn:
                    cone.add(customer)
                    next_frontier.append(customer)
        frontier = next_frontier
    return frozenset(cone)


def customer_cone_size(graph: ASGraph, asn: int) -> int:
    """``|customer_cone(asn)|`` — the AS-Rank market-power metric."""
    return len(customer_cone(graph, asn))


def all_customer_cone_sizes(
    graph: ASGraph, engine: ConeEngine | None = None
) -> dict[int, int]:
    """Customer-cone size for every AS, via the bitset engine."""
    if engine is None or engine.excluded:
        engine = ConeEngine(graph)
    return {asn: engine.cone_size(asn) for asn in graph}


def transit_degree(graph: ASGraph, asn: int) -> int:
    """Unique neighbors appearing on transit (p2c) edges of ``asn``."""
    return graph.transit_degree(asn)


def node_degree(graph: ASGraph, asn: int) -> int:
    """Raw number of unique neighbors of ``asn``."""
    return graph.degree(asn)
