"""AS hegemony (Fontugne et al., PAM 2018) — a third influence metric.

The paper's related work (§10) contrasts hierarchy-free reachability with
"inbetweenness" metrics like AS hegemony: the average fraction of paths
toward an origin that cross a given AS, with the most- and least-biased
vantage points trimmed before averaging.  Unlike the original (which works
on observed BGP paths), this implementation evaluates hegemony on the
simulated tied-best-path DAG, making it directly comparable with reliance
and hierarchy-free reachability on the same topology.

* **local hegemony** ``H(o, a)`` — how much origin *o* depends on AS *a*:
  the trimmed mean over receivers *t* of the fraction of *t*'s tied-best
  paths to *o* that cross *a*;
* **global hegemony** ``H(a)`` — the mean of local hegemony over a sample
  of origins; the paper's point is that such transit-centric scores and
  hierarchy-free reachability capture different things.

The tied-best-path counts of a state are shared across every hegemony
target: :func:`path_cross_fractions` accepts precomputed ``counts`` (and
the array kernels cache them on the state), so a many-target sweep is
linear — not quadratic — in the number of targets.
"""

from __future__ import annotations

import math
import random
from array import array
from collections.abc import Collection, Iterable, Mapping, Sequence
from typing import Optional

from ..bgpsim import vectorized as _vec
from ..bgpsim.cache import RoutingStateCache
from ..bgpsim.engine import propagate
from ..bgpsim.metrics_kernel import (
    cross_fractions_kernel,
    cross_fractions_many_kernel,
    is_array_state,
)
from ..bgpsim.parallel import graph_map
from ..bgpsim.routes import RoutingState, Seed
from ..topology.asgraph import ASGraph
from .reliance import path_counts

#: default trimming fraction on each side (the original uses 10%)
TRIM = 0.1


def path_cross_fractions(
    state: RoutingState,
    target: int,
    counts: Optional[Mapping[int, int]] = None,
) -> dict[int, float]:
    """For every receiver ``t``: fraction of t's tied-best paths crossing
    ``target`` (1.0 for t == target).

    Array-backed states dispatch to the forward kernel pass (which caches
    the tied-best-path counts on the state); on the dict path pass
    ``counts=path_counts(state)`` when evaluating many targets against
    one state, so the counts are computed once rather than per target.
    """
    if is_array_state(state):
        return cross_fractions_kernel(state, target)
    routes = state.routes
    if target not in routes:
        return {}
    if counts is None:
        counts = path_counts(state)
    fractions: dict[int, float] = {}
    for asn in sorted(routes, key=lambda a: (routes[a].length, a)):
        if asn == target:
            fractions[asn] = 1.0
            continue
        parents = routes[asn].parents
        if not parents:
            fractions[asn] = 0.0  # the origin itself
            continue
        if len(parents) == 1:
            # single parent: the child inherits its parent's fraction
            # (the array kernel takes the same shortcut)
            fractions[asn] = fractions[next(iter(parents))]
            continue
        denom = sum(counts[p] for p in parents)
        fractions[asn] = sum(
            fractions[p] * counts[p] for p in sorted(parents)
        ) / denom
    return fractions


def trimmed_mean(values: Sequence[float], trim: float = TRIM) -> float:
    """Mean with ``trim`` fraction removed from each end (hegemony's
    defence against vantage-point bias)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    cut = int(len(ordered) * trim)
    kept = ordered[cut : len(ordered) - cut] or ordered
    return sum(kept) / len(kept)


def _hegemony_of_state(
    state: RoutingState,
    origin: int,
    target: int,
    trim: float = TRIM,
    counts: Optional[Mapping[int, int]] = None,
    fractions: Optional[Mapping[int, float]] = None,
) -> float:
    if fractions is None:
        fractions = path_cross_fractions(state, target, counts=counts)
    samples = [
        value
        for asn, value in fractions.items()
        if asn not in (origin, target)
    ]
    return trimmed_mean(samples, trim)


def _hegemony_values(
    state: RoutingState,
    origin: int,
    targets: tuple[int, ...],
    trim: float = TRIM,
) -> array:
    """One origin's local hegemony toward every target, as a compact
    float array (NaN where target == origin).  Array-backed states get
    all targets' crossing fractions from one many-target sweep."""
    if is_array_state(state):
        if _vec.vector_enabled():
            fused = _vec.hegemony_values_vector(state, origin, targets, trim)
            if fused is not None:
                return fused
        values = array("d")
        others = [target for target in targets if target != origin]
        by_target = dict(
            zip(others, cross_fractions_many_kernel(state, others))
        )
        for target in targets:
            if target == origin:
                values.append(math.nan)
            else:
                values.append(
                    _hegemony_of_state(
                        state, origin, target, trim,
                        fractions=by_target[target],
                    )
                )
        return values
    values = array("d")
    counts = path_counts(state)
    for target in targets:
        if target == origin:
            values.append(math.nan)
        else:
            values.append(
                _hegemony_of_state(state, origin, target, trim, counts=counts)
            )
    return values


def local_hegemony(
    graph: ASGraph,
    origin: int,
    target: int,
    cache: Optional[RoutingStateCache] = None,
    trim: float = TRIM,
    engine: Optional[str] = None,
    counts: Optional[Mapping[int, int]] = None,
) -> float:
    """``H(origin, target)`` on the tied-best-path DAG.

    ``counts`` (optional) are ``path_counts`` of the origin's state,
    reused across targets on the dict path; array-backed states cache
    them internally.
    """
    if cache is None:
        cache = RoutingStateCache(graph, engine=engine)
    state = cache.state_for(origin)
    return _hegemony_of_state(state, origin, target, trim, counts=counts)


def _hegemony_task(
    graph: ASGraph,
    origin: int,
    targets: tuple[int, ...] = (),
    trim: float = TRIM,
    engine: Optional[str] = None,
) -> array:
    """One origin's local hegemony toward every target, as a compact
    float array (NaN where target == origin)."""
    state = propagate(graph, Seed(asn=origin), engine=engine)
    return _hegemony_values(state, origin, targets, trim)


def _hegemony_batch_task(
    graph: ASGraph,
    origins: tuple[int, ...],
    targets: tuple[int, ...] = (),
    trim: float = TRIM,
    engine: Optional[str] = None,
) -> list[array]:
    """:func:`_hegemony_task` rows for a whole batch of origins, served
    by one bit-parallel sweep (the per-origin views feed the same metric
    kernels, so every float is bit-identical to the per-origin path)."""
    from ..bgpsim.multiorigin import propagate_batch

    del engine  # the batch kernel is the compiled engine
    batch_state = propagate_batch(graph, origins)
    return [
        _hegemony_values(state, origin, targets, trim)
        for origin, state in batch_state.views()
    ]


def global_hegemony(
    graph: ASGraph,
    targets: Collection[int],
    origins: Optional[Sequence[int]] = None,
    sample: int = 50,
    rng: Optional[random.Random] = None,
    trim: float = TRIM,
    workers: int | str | None = None,
    cache_size: Optional[int] = None,
    engine: Optional[str] = None,
    batch: Optional[int] = None,
    stream: bool | str | None = None,
    cache: Optional[RoutingStateCache] = None,
) -> dict[int, float]:
    """``H(target)`` for each target, averaged over sampled origins.

    Each origin is propagated once and evaluated against every target in
    one pass (the tied-best-path counts are shared across targets);
    ``workers`` fans the origins out across a process pool, and each
    worker returns one compact float array per origin rather than a
    per-AS dict.  ``batch`` groups origins into bit-parallel multi-origin
    sweeps (one propagation per batch; identical floats); it defaults
    through ``REPRO_BATCH`` and is ignored on the reference engine.
    ``cache_size`` is kept for API compatibility — the sweep streams one
    state at a time and retains none.

    ``stream`` (``REPRO_STREAM``; auto-on at paper scale) folds each
    origin's hegemony row as its view is computed and drops the view
    before the next arrives, so an all-origin sweep peaks at O(batch)
    memory instead of one window of materialized views; scores are
    bit-identical (the fold visits origins in the same order either
    way).  ``cache`` (optional) supplies warm/precomputed states to the
    streaming path.
    """
    del cache_size  # the streaming sweep holds no state cache
    from ..bgpsim.engine import resolve_engine, resolve_stream
    from ..bgpsim.multiorigin import resolve_batch

    rng = rng or random.Random(0)
    nodes = sorted(graph.nodes())
    if origins is None:
        origins = rng.sample(nodes, k=min(sample, len(nodes)))
    targets = tuple(targets)
    try:
        resolved = resolve_engine(engine)
    except ValueError:
        resolved = "reference"  # unknown engine: let the task raise
    width = resolve_batch(batch)
    if (
        resolve_stream(stream, len(graph))
        and resolved in ("compiled", "incremental")
        and origins
    ):
        if cache is None:
            cache = RoutingStateCache(graph, engine=engine, batch=batch)
        states = cache.states_for_many(
            list(origins), workers=workers, batch=batch, stream=True
        )

        def _stream_rows() -> Iterable[array]:
            for origin, state in states:
                yield _hegemony_values(state, origin, targets, trim)
                # release this view (and its cached path counts) before
                # pulling the next one
                del state

        rows: Iterable[array] = _stream_rows()
    elif width > 1 and resolved in ("compiled", "incremental") and origins:
        origin_list = list(origins)
        chunks = [
            tuple(origin_list[i : i + width])
            for i in range(0, len(origin_list), width)
        ]
        row_lists = graph_map(
            graph,
            _hegemony_batch_task,
            chunks,
            workers=workers,
            targets=targets,
            trim=trim,
            engine=engine,
        )
        rows: Iterable[array] = (row for rows_ in row_lists for row in rows_)
    else:
        rows = graph_map(
            graph,
            _hegemony_task,
            list(origins),
            workers=workers,
            targets=targets,
            trim=trim,
            engine=engine,
        )
    sums = [0.0] * len(targets)
    counts_per_target = [0] * len(targets)
    for row in rows:
        for j, value in enumerate(row):
            if math.isnan(value):
                continue
            sums[j] += value
            counts_per_target[j] += 1
    return {
        target: (sums[j] / counts_per_target[j] if counts_per_target[j] else 0.0)
        for j, target in enumerate(targets)
    }
