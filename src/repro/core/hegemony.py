"""AS hegemony (Fontugne et al., PAM 2018) — a third influence metric.

The paper's related work (§10) contrasts hierarchy-free reachability with
"inbetweenness" metrics like AS hegemony: the average fraction of paths
toward an origin that cross a given AS, with the most- and least-biased
vantage points trimmed before averaging.  Unlike the original (which works
on observed BGP paths), this implementation evaluates hegemony on the
simulated tied-best-path DAG, making it directly comparable with reliance
and hierarchy-free reachability on the same topology.

* **local hegemony** ``H(o, a)`` — how much origin *o* depends on AS *a*:
  the trimmed mean over receivers *t* of the fraction of *t*'s tied-best
  paths to *o* that cross *a*;
* **global hegemony** ``H(a)`` — the mean of local hegemony over a sample
  of origins; the paper's point is that such transit-centric scores and
  hierarchy-free reachability capture different things.
"""

from __future__ import annotations

import random
from collections.abc import Collection, Sequence
from typing import Optional

from ..bgpsim.cache import RoutingStateCache
from ..bgpsim.routes import RoutingState
from ..topology.asgraph import ASGraph
from .reliance import path_counts

#: default trimming fraction on each side (the original uses 10%)
TRIM = 0.1


def path_cross_fractions(
    state: RoutingState, target: int
) -> dict[int, float]:
    """For every receiver ``t``: fraction of t's tied-best paths crossing
    ``target`` (1.0 for t == target)."""
    routes = state.routes
    if target not in routes:
        return {}
    counts = path_counts(state)
    fractions: dict[int, float] = {}
    for asn in sorted(routes, key=lambda a: routes[a].length):
        if asn == target:
            fractions[asn] = 1.0
            continue
        parents = routes[asn].parents
        if not parents:
            fractions[asn] = 0.0  # the origin itself
            continue
        denom = sum(counts[p] for p in parents)
        fractions[asn] = sum(
            fractions[p] * counts[p] for p in parents
        ) / denom
    return fractions


def trimmed_mean(values: Sequence[float], trim: float = TRIM) -> float:
    """Mean with ``trim`` fraction removed from each end (hegemony's
    defence against vantage-point bias)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    cut = int(len(ordered) * trim)
    kept = ordered[cut : len(ordered) - cut] or ordered
    return sum(kept) / len(kept)


def local_hegemony(
    graph: ASGraph,
    origin: int,
    target: int,
    cache: Optional[RoutingStateCache] = None,
    trim: float = TRIM,
    engine: Optional[str] = None,
) -> float:
    """``H(origin, target)`` on the tied-best-path DAG."""
    if cache is None:
        cache = RoutingStateCache(graph, engine=engine)
    state = cache.state_for(origin)
    fractions = path_cross_fractions(state, target)
    samples = [
        value
        for asn, value in fractions.items()
        if asn not in (origin, target)
    ]
    return trimmed_mean(samples, trim)


def global_hegemony(
    graph: ASGraph,
    targets: Collection[int],
    origins: Optional[Sequence[int]] = None,
    sample: int = 50,
    rng: Optional[random.Random] = None,
    trim: float = TRIM,
    workers: int | str | None = None,
    cache_size: Optional[int] = None,
    engine: Optional[str] = None,
) -> dict[int, float]:
    """``H(target)`` for each target, averaged over sampled origins.

    ``workers`` parallelizes the per-origin propagations (computed once up
    front and cached); ``cache_size`` bounds the cache when the origin
    sample is too large to hold every state.
    """
    rng = rng or random.Random(0)
    nodes = sorted(graph.nodes())
    if origins is None:
        origins = rng.sample(nodes, k=min(sample, len(nodes)))
    cache = RoutingStateCache(graph, maxsize=cache_size, engine=engine)
    cache.prefetch(origins, workers=workers)
    scores: dict[int, float] = {}
    for target in targets:
        values = []
        for origin in origins:
            if origin == target:
                continue
            values.append(
                local_hegemony(graph, origin, target, cache, trim)
            )
        scores[target] = sum(values) / len(values) if values else 0.0
    return scores
