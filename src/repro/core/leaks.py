"""Route-leak resilience simulation (§8, with the erratum's semantics).

A misconfigured AS leaks the origin's prefix (re-announcing its learned
route to every neighbor); the leaked and legitimate routes then compete at
every AS under Gao-Rexford preference and AS-path length.  An AS is
*detoured* if **any** of its tied-best routes leads to the leaker (worst
case; no tie-breaking).  Peer locking is modeled per the erratum: a
peer-locking AS discards routes for the origin's prefix arriving from
anyone but the origin itself, so leaked routes can never propagate through
it — not merely never be announced to it.
"""

from __future__ import annotations

import enum
import random
from collections.abc import Collection, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Optional

from ..bgpsim.cache import RoutingStateCache
from ..bgpsim.compiled import CompiledRoutingState
from ..bgpsim.engine import propagate, resolve_engine, resolve_stream
from ..bgpsim.incremental import propagate_delta
from ..bgpsim.parallel import graph_map
from ..bgpsim.policies import LeakMode, hierarchy_only_seed, peer_lock_set
from ..bgpsim.routes import RoutingState, Seed
from ..topology.asgraph import ASGraph
from ..topology.tiers import TierAssignment


class PeerLockSemantics(enum.Enum):
    """Erratum semantics (leak can never traverse a locking AS) vs the
    original paper's buggy semantics (leak only filtered when announced
    directly to a locking AS) — kept as an ablation."""

    ERRATUM = "erratum"
    ORIGINAL = "original"


@dataclass(frozen=True)
class LeakOutcome:
    """Result of one leak simulation."""

    origin: int
    leaker: int
    detoured: frozenset[int]
    total_ases: int
    #: fraction of ASes the incremental delta pass examined (``None`` for
    #: a full recompute); instrumentation only, excluded from equality so
    #: differential tests can compare outcomes across engines directly
    visited_fraction: Optional[float] = field(default=None, compare=False)

    @property
    def eligible(self) -> int:
        """ASes that could be detoured (everyone but origin and leaker)."""
        return max(self.total_ases - 2, 1)

    @property
    def fraction_detoured(self) -> float:
        return len(self.detoured) / self.eligible

    def fraction_users_detoured(self, users: Mapping[int, int]) -> float:
        """Fraction of users in detoured ASes (Fig. 9's weighting)."""
        total = sum(
            count
            for asn, count in users.items()
            if asn not in (self.origin, self.leaker)
        )
        if total == 0:
            return 0.0
        detoured_users = sum(users.get(asn, 0) for asn in self.detoured)
        return detoured_users / total


def simulate_leak(
    graph: ASGraph,
    origin: int | Seed,
    leaker: int,
    peer_locked: Collection[int] = frozenset(),
    mode: LeakMode = LeakMode.REANNOUNCE,
    semantics: PeerLockSemantics = PeerLockSemantics.ERRATUM,
    engine: Optional[str] = None,
) -> Optional[LeakOutcome]:
    """Simulate ``leaker`` leaking ``origin``'s prefix.

    ``origin`` may be a :class:`Seed` to carry an announcement restriction
    (the "announce to Tier-1, Tier-2, and providers" configuration).
    Returns ``None`` when the leaker holds no route to the origin under the
    given configuration (there is nothing to re-announce); a hijack-mode
    leaker never needs a route.  ``engine`` selects the propagation
    engine (see :func:`repro.bgpsim.engine.propagate`).
    """
    legit = origin if isinstance(origin, Seed) else Seed(asn=origin, key="origin")
    if leaker == legit.asn or leaker not in graph:
        raise ValueError(f"invalid leaker AS{leaker}")

    peer_locked = frozenset(peer_locked) - {legit.asn, leaker}

    if mode is LeakMode.SUBPREFIX:
        # a more-specific prefix wins everywhere it propagates; only the
        # filtering (peer locking) limits it, so the legitimate route is
        # irrelevant and the leak is simulated alone
        if semantics is PeerLockSemantics.ORIGINAL and peer_locked:
            export_to = frozenset(graph.neighbors(leaker) - peer_locked)
            seed = Seed(asn=leaker, key="leak", initial_length=0,
                        export_to=export_to)
            state = propagate(graph, seed, engine=engine)
        else:
            seed = Seed(asn=leaker, key="leak", initial_length=0)
            state = propagate(
                graph, seed,
                peer_locked=peer_locked, locked_origin=legit.asn,
                engine=engine,
            )
        detoured = state.reachable_ases() - {legit.asn}
        return LeakOutcome(
            origin=legit.asn,
            leaker=leaker,
            detoured=frozenset(detoured),
            total_ases=len(graph),
        )

    baseline = propagate(graph, legit, peer_locked=peer_locked,
                         locked_origin=legit.asn, engine=engine)
    if mode is LeakMode.HIJACK:
        initial = 0
    else:
        legit_length = baseline.path_length(leaker)
        if legit_length is None:
            return None
        initial = legit_length

    if semantics is PeerLockSemantics.ORIGINAL and peer_locked:
        # Original (pre-erratum) behaviour: the leak is only filtered on
        # direct announcement to a locking AS; emulate by removing locking
        # ASes from the leaker's export set and disabling path filtering.
        export_to = frozenset(graph.neighbors(leaker) - peer_locked)
        leak = Seed(asn=leaker, key="leak", initial_length=initial,
                    export_to=export_to)
        state = propagate(graph, (legit, leak), engine=engine)
    else:
        leak = Seed(asn=leaker, key="leak", initial_length=initial)
        state = propagate(
            graph,
            (legit, leak),
            peer_locked=peer_locked,
            locked_origin=legit.asn,
            engine=engine,
        )

    # the array-backed states answer this without materializing routes
    detoured = state.ases_with_origin("leak") - state.seed_asns
    return LeakOutcome(
        origin=legit.asn,
        leaker=leaker,
        detoured=detoured,
        total_ases=len(graph),
    )


def _leak_task(
    graph: ASGraph,
    leaker: int,
    origin: int | Seed = 0,
    peer_locked: Collection[int] = frozenset(),
    mode: LeakMode = LeakMode.REANNOUNCE,
    semantics: PeerLockSemantics = PeerLockSemantics.ERRATUM,
    engine: Optional[str] = None,
) -> Optional[LeakOutcome]:
    return simulate_leak(
        graph, origin, leaker, peer_locked=peer_locked, mode=mode,
        semantics=semantics, engine=engine,
    )


def _delta_outcome(
    graph: ASGraph,
    baseline: RoutingState,
    legit: Seed,
    leaker: int,
    peer_locked: frozenset[int],
    mode: LeakMode,
) -> Optional[LeakOutcome]:
    """Combined-state outcome derived from a shared baseline, or ``None``
    when the leaker has nothing to re-announce.  Raises ``ValueError``
    for configurations the delta pass cannot serve (callers fall back)."""
    if mode is LeakMode.HIJACK:
        initial = 0
    else:
        legit_length = baseline.path_length(leaker)
        if legit_length is None:
            return None
        initial = legit_length
    leak = Seed(asn=leaker, key="leak", initial_length=initial)
    state = propagate_delta(
        graph,
        baseline,
        leak,
        peer_locked=peer_locked,
        locked_origin=legit.asn,
    )
    detoured = state.ases_with_origin("leak") - state.seed_asns
    return LeakOutcome(
        origin=legit.asn,
        leaker=leaker,
        detoured=detoured,
        total_ases=len(graph),
        visited_fraction=state.visited_count / max(len(graph), 1),
    )


def _incremental_leak_task(
    graph: ASGraph,
    leaker: int,
    baseline: Optional[RoutingState] = None,
    origin: int | Seed = 0,
    peer_locked: Collection[int] = frozenset(),
    mode: LeakMode = LeakMode.REANNOUNCE,
    semantics: PeerLockSemantics = PeerLockSemantics.ERRATUM,
    engine: Optional[str] = None,
) -> Optional[LeakOutcome]:
    """One leaker against a shared precomputed baseline.

    Leakers the delta pass cannot serve — peer-locked leakers (whose
    baseline uses a different lock set) chiefly — fall back to the full
    two-propagation :func:`simulate_leak`, so the sweep's results never
    depend on which path each leaker took.
    """
    legit = origin if isinstance(origin, Seed) else Seed(asn=origin, key="origin")
    if leaker == legit.asn or leaker not in graph:
        raise ValueError(f"invalid leaker AS{leaker}")
    peer_locked = frozenset(peer_locked)
    if baseline is not None and leaker not in peer_locked:
        try:
            return _delta_outcome(
                graph, baseline, legit, leaker, peer_locked, mode
            )
        except ValueError:
            pass
    return simulate_leak(
        graph, legit, leaker, peer_locked=peer_locked, mode=mode,
        semantics=semantics, engine=engine,
    )


def simulate_leaks(
    graph: ASGraph,
    origin: int | Seed,
    leakers: Sequence[int],
    peer_locked: Collection[int] = frozenset(),
    mode: LeakMode = LeakMode.REANNOUNCE,
    semantics: PeerLockSemantics = PeerLockSemantics.ERRATUM,
    workers: int | str | None = None,
    engine: Optional[str] = None,
    cache: Optional[RoutingStateCache] = None,
) -> list[Optional[LeakOutcome]]:
    """:func:`simulate_leak` for every leaker, optionally across processes.

    Returns one entry per leaker, in order (``None`` where the leaker holds
    no route).  The fixed arguments ship to each worker once; with
    ``workers=None`` the simulations run serially in-process, producing the
    same list.

    With ``engine="incremental"`` the whole sweep shares one baseline
    propagation for its ``(origin, locks, mode, semantics)`` group — taken
    from ``cache`` when given, computed once otherwise — and each leaker
    runs only the frontier-limited delta pass of
    :func:`repro.bgpsim.incremental.propagate_delta`; the baseline's
    compact arrays ship to each pool worker once, next to the CSR graph.
    Subprefix leaks, the pre-erratum ``ORIGINAL`` semantics and
    peer-locked leakers fall back to the full recompute transparently.
    """
    legit = origin if isinstance(origin, Seed) else Seed(asn=origin, key="origin")
    peer_locked = frozenset(peer_locked)
    baseline: Optional[RoutingState] = None
    if (
        resolve_engine(engine) == "incremental"
        and mode is not LeakMode.SUBPREFIX
        and semantics is PeerLockSemantics.ERRATUM
    ):
        locks = peer_locked - {legit.asn}
        if cache is not None:
            baseline = cache.baseline_for(legit, locks, legit.asn)
        if baseline is None or not isinstance(baseline, CompiledRoutingState):
            # the delta pass needs the baseline's compact arrays; a cache
            # running the reference engine cannot supply them
            baseline = propagate(
                graph, legit, peer_locked=locks,
                locked_origin=legit.asn, engine=engine,
            )
        return list(
            graph_map(
                graph,
                _incremental_leak_task,
                leakers,
                workers=workers,
                baseline=baseline,
                origin=legit,
                peer_locked=peer_locked,
                mode=mode,
                semantics=semantics,
                engine=engine,
            )
        )
    return list(
        graph_map(
            graph,
            _leak_task,
            leakers,
            workers=workers,
            origin=legit,
            peer_locked=peer_locked,
            mode=mode,
            semantics=semantics,
            engine=engine,
        )
    )


def _pair_leak_task(
    graph: ASGraph,
    pair: tuple[int, int],
    mode: LeakMode = LeakMode.REANNOUNCE,
    engine: Optional[str] = None,
) -> Optional[LeakOutcome]:
    origin, leaker = pair
    return simulate_leak(graph, origin, leaker, mode=mode, engine=engine)


def _pair_delta_task(
    graph: ASGraph,
    pair: tuple[int, int],
    baselines: Optional[Mapping[int, RoutingState]] = None,
    mode: LeakMode = LeakMode.REANNOUNCE,
    engine: Optional[str] = None,
) -> Optional[LeakOutcome]:
    """One (origin, leaker) pair against a shared per-origin baseline map."""
    origin, leaker = pair
    baseline = (baselines or {}).get(origin)
    if isinstance(baseline, CompiledRoutingState):
        legit = Seed(asn=origin, key="origin")
        try:
            return _delta_outcome(
                graph, baseline, legit, leaker, frozenset(), mode
            )
        except ValueError:
            pass
    return simulate_leak(graph, origin, leaker, mode=mode, engine=engine)


#: The five announcement/locking configurations plotted in Figs. 7-9.
LEAK_CONFIGURATIONS = (
    "announce_all",
    "announce_all_t1_lock",
    "announce_all_t1t2_lock",
    "announce_all_global_lock",
    "announce_hierarchy_only",
)


def configuration_seed_and_locks(
    graph: ASGraph,
    origin: int,
    tiers: TierAssignment,
    configuration: str,
) -> tuple[Seed, frozenset[int]]:
    """Map a Fig. 7/8 configuration name to (origin seed, peer-lock set)."""
    if configuration == "announce_all":
        return Seed(asn=origin, key="origin"), frozenset()
    if configuration == "announce_all_t1_lock":
        return Seed(asn=origin, key="origin"), peer_lock_set(
            graph, origin, tiers, "tier1"
        )
    if configuration == "announce_all_t1t2_lock":
        return Seed(asn=origin, key="origin"), peer_lock_set(
            graph, origin, tiers, "tier1+tier2"
        )
    if configuration == "announce_all_global_lock":
        return Seed(asn=origin, key="origin"), peer_lock_set(
            graph, origin, tiers, "all"
        )
    if configuration == "announce_hierarchy_only":
        return hierarchy_only_seed(graph, origin, tiers), frozenset()
    raise ValueError(f"unknown leak configuration: {configuration!r}")


def resilience_curve(
    graph: ASGraph,
    origin: int,
    tiers: TierAssignment,
    configuration: str,
    leakers: Sequence[int],
    mode: LeakMode = LeakMode.REANNOUNCE,
    semantics: PeerLockSemantics = PeerLockSemantics.ERRATUM,
    workers: int | str | None = None,
    engine: Optional[str] = None,
    cache: Optional[RoutingStateCache] = None,
) -> list[float]:
    """Detoured-AS fractions over ``leakers`` for one configuration.

    Leakers with no route to the origin under the configuration are skipped
    (they cannot re-announce anything).  Each call is one baseline group:
    with ``engine="incremental"`` the configuration's ``(seed, locks)``
    baseline is propagated once (memoized in ``cache`` when given) and
    every leaker reuses it through the delta pass.
    """
    seed, locks = configuration_seed_and_locks(graph, origin, tiers, configuration)
    outcomes = simulate_leaks(
        graph,
        seed,
        [leaker for leaker in leakers if leaker != origin],
        peer_locked=locks,
        mode=mode,
        semantics=semantics,
        workers=workers,
        engine=engine,
        cache=cache,
    )
    return sorted(
        outcome.fraction_detoured
        for outcome in outcomes
        if outcome is not None
    )


def average_resilience_curve(
    graph: ASGraph,
    rng: random.Random,
    origins: int = 50,
    leakers_per_origin: int = 50,
    mode: LeakMode = LeakMode.REANNOUNCE,
    workers: int | str | None = None,
    engine: Optional[str] = None,
    cache: Optional[RoutingStateCache] = None,
    batch: Optional[int] = None,
    stream: bool | str | None = None,
) -> list[float]:
    """The paper's *average resilience* baseline: random legitimate origins
    against random misconfigured ASes, announce-to-all, no locking.

    The (origin, leaker) pairs are drawn up front — in exactly the order the
    historical serial loop drew them, so the RNG stream is unchanged — and
    then simulated, optionally in parallel.

    With ``engine="incremental"`` each distinct origin's baseline is
    propagated exactly once (in parallel and — per ``batch`` — in
    bit-parallel multi-origin sweeps, through a
    :class:`~repro.bgpsim.cache.RoutingStateCache` prefetch) and the
    per-origin baseline map ships to the pool workers alongside the CSR
    graph, so the historical ``origins × leakers`` full propagations
    collapse to ``origins`` baselines plus one delta pass per pair.

    ``stream`` (``REPRO_STREAM``; auto-on at paper scale) bounds the
    baseline footprint: instead of prefetching and holding *every*
    distinct origin's baseline for the whole sweep, origins are consumed
    in batch-width windows — one
    :meth:`~repro.bgpsim.cache.RoutingStateCache.states_for_many`
    streaming window of baselines lives at a time, its pairs run their
    delta passes, and the window is dropped before the next is computed.
    The curve is bit-identical (it is sorted, so per-window reordering
    of pairs cannot change it).
    """
    nodes = sorted(graph.nodes())
    pairs: list[tuple[int, int]] = []
    for _ in range(origins):
        origin = rng.choice(nodes)
        for _ in range(leakers_per_origin):
            leaker = rng.choice(nodes)
            if leaker != origin:
                pairs.append((origin, leaker))
    if (
        resolve_engine(engine) == "incremental"
        and mode is not LeakMode.SUBPREFIX
    ):
        unique_origins = list(dict.fromkeys(origin for origin, _ in pairs))
        if resolve_stream(stream, len(graph)):
            if cache is None:
                cache = RoutingStateCache(graph, engine=engine, batch=batch)
            width = cache._batch_width(batch, cap=False)
            by_origin: dict[int, list[tuple[int, int]]] = {}
            for pair in pairs:
                by_origin.setdefault(pair[0], []).append(pair)
            fractions: list[float] = []
            for i in range(0, len(unique_origins), width):
                window = unique_origins[i : i + width]
                baselines = dict(
                    cache.states_for_many(
                        window, workers=workers, batch=batch, stream=True
                    )
                )
                window_pairs = [
                    pair for origin in window for pair in by_origin[origin]
                ]
                for outcome in graph_map(
                    graph, _pair_delta_task, window_pairs, workers=workers,
                    baselines=baselines, mode=mode, engine=engine,
                ):
                    if outcome is not None:
                        fractions.append(outcome.fraction_detoured)
                # drop this window's baselines before the next window
                baselines.clear()
            return sorted(fractions)
        if cache is None or (
            cache.maxsize is not None and cache.maxsize < len(unique_origins)
        ):
            cache = RoutingStateCache(graph, engine=engine)
        cache.prefetch(unique_origins, workers=workers, batch=batch)
        baselines = {
            origin: cache.state_for(origin) for origin in unique_origins
        }
        outcomes = graph_map(
            graph, _pair_delta_task, pairs, workers=workers,
            baselines=baselines, mode=mode, engine=engine,
        )
    else:
        outcomes = graph_map(
            graph, _pair_leak_task, pairs, workers=workers, mode=mode,
            engine=engine,
        )
    return sorted(
        outcome.fraction_detoured
        for outcome in outcomes
        if outcome is not None
    )


def lock_coverage_sweep(
    graph: ASGraph,
    origin: int,
    leakers: Sequence[int],
    coverages: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    rng: Optional[random.Random] = None,
    mode: LeakMode = LeakMode.REANNOUNCE,
    engine: Optional[str] = None,
    workers: int | str | None = None,
    cache: Optional[RoutingStateCache] = None,
) -> dict[float, float]:
    """Mean detoured fraction vs. peer-lock deployment coverage.

    An ablation beyond the paper's three fixed deployment scenarios: for
    each coverage level, a random ``coverage`` fraction of the origin's
    neighbors deploys peer locking (biggest neighbors first would be the
    T1/T2 scenarios; random deployment is the pessimistic counterpart),
    and the same leakers are replayed.  Each coverage level is one
    :func:`simulate_leaks` sweep, so the ``workers``, ``engine`` and
    ``cache`` knobs (shared baseline per lock set under
    ``engine="incremental"``) all apply.
    """
    rng = rng or random.Random(0)
    neighbors = sorted(graph.neighbors(origin))
    eligible = [leaker for leaker in leakers if leaker != origin]
    results: dict[float, float] = {}
    for coverage in coverages:
        count = round(coverage * len(neighbors))
        locked = frozenset(rng.sample(neighbors, k=count)) if count else frozenset()
        outcomes = simulate_leaks(
            graph, origin, eligible, peer_locked=locked, mode=mode,
            workers=workers, engine=engine, cache=cache,
        )
        fractions = [
            outcome.fraction_detoured
            for outcome in outcomes
            if outcome is not None
        ]
        results[coverage] = (
            sum(fractions) / len(fractions) if fractions else 0.0
        )
    return results


def cdf_points(fractions: Sequence[float]) -> list[tuple[float, float]]:
    """(x, F(x)) pairs for plotting a CDF of detoured fractions."""
    ordered = sorted(fractions)
    n = len(ordered)
    return [(x, (i + 1) / n) for i, x in enumerate(ordered)]


def fraction_at_most(fractions: Sequence[float], threshold: float) -> float:
    """Share of simulations with detoured fraction <= threshold."""
    if not fractions:
        return 0.0
    return sum(1 for x in fractions if x <= threshold) / len(fractions)
