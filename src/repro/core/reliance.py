"""Reachability reliance (§7).

``rely(o, a)`` measures how much origin *o* depends on AS *a* to be
reached: over every network *t* holding a route to *o*, the fraction of
*t*'s tied-best paths on which *a* appears, summed over all *t* (units of
"ASes").  In a pure hierarchy an origin relies on its provider for the whole
Internet; in a full mesh every reliance is 1.

The computation runs on the tied-best-path DAG produced by the propagation
engine: every routed AS injects one unit of mass at itself (so
``rely(o, t) >= 1`` — *t* is on all of its own paths), and mass flows toward
the origin, splitting across a node's parents in proportion to the number of
tied-best paths through each parent.  The total mass passing through *a* is
exactly ``rely(o, a)``.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable
from fractions import Fraction
from typing import Optional

from ..bgpsim.engine import propagate
from ..bgpsim.parallel import graph_map
from ..bgpsim.routes import RoutingState, Seed
from ..topology.asgraph import ASGraph
from ..topology.tiers import TierAssignment


def path_counts(state: RoutingState) -> dict[int, int]:
    """Number of tied-best paths from each routed AS to the seeds."""
    counts: dict[int, int] = {}
    for asn in sorted(state.routes, key=lambda a: state.routes[a].length):
        route = state.routes[asn]
        if asn in state.seed_asns:
            counts[asn] = 1
        else:
            counts[asn] = sum(counts[p] for p in route.parents)
    return counts


def reliance_from_state(
    state: RoutingState,
    receivers: Iterable[int] | None = None,
    exact: bool = False,
) -> dict[int, float]:
    """``rely(o, a)`` for every AS ``a`` appearing on some tied-best path.

    ``receivers`` restricts which networks inject mass (default: every
    routed non-seed AS).  With ``exact=True`` the splits are computed with
    :class:`fractions.Fraction` (slower; useful for tests).
    """
    routes = state.routes
    counts = path_counts(state)
    zero = Fraction(0) if exact else 0.0
    mass: dict[int, Fraction | float] = {asn: zero for asn in routes}
    if receivers is None:
        injectors = set(routes) - state.seed_asns
    else:
        injectors = {t for t in receivers if t in routes} - state.seed_asns
    for t in injectors:
        mass[t] += Fraction(1) if exact else 1.0
    # Parents always have strictly smaller path length, so processing by
    # decreasing length finalizes each node before it distributes its mass.
    for asn in sorted(routes, key=lambda a: -routes[a].length):
        node_mass = mass[asn]
        if not node_mass:
            continue
        parents = routes[asn].parents
        if not parents:
            continue
        denom = sum(counts[p] for p in parents)
        for parent in parents:
            share = (
                Fraction(counts[parent], denom)
                if exact
                else counts[parent] / denom
            )
            mass[parent] += node_mass * share
    result = {
        asn: (float(m) if exact else m)
        for asn, m in mass.items()
        if m and asn not in state.seed_asns
    }
    return result


def reliance(
    graph: ASGraph,
    origin: int,
    excluded: Collection[int] = frozenset(),
    exact: bool = False,
    engine: Optional[str] = None,
) -> dict[int, float]:
    """``rely(origin, ·)`` over ``graph`` minus ``excluded``."""
    state = propagate(
        graph, Seed(asn=origin, key="origin"), excluded=excluded, engine=engine
    )
    return reliance_from_state(state, exact=exact)


def _reliance_task(
    graph: ASGraph,
    item: tuple[int, frozenset[int]],
    exact: bool = False,
    engine: Optional[str] = None,
) -> dict[int, float]:
    origin, excluded = item
    return reliance(graph, origin, excluded, exact=exact, engine=engine)


def reliance_sweep(
    graph: ASGraph,
    origin_excluded: Iterable[tuple[int, Collection[int]]],
    exact: bool = False,
    workers: int | str | None = None,
    engine: Optional[str] = None,
) -> list[dict[int, float]]:
    """:func:`reliance` for many (origin, excluded) pairs, in input order.

    The propagation per origin is the dominant cost; with ``workers`` the
    pairs fan out across a process pool (the graph ships once per worker).
    ``workers=None`` runs the identical computations serially.
    """
    items = [
        (origin, frozenset(excluded)) for origin, excluded in origin_excluded
    ]
    return list(
        graph_map(
            graph, _reliance_task, items, workers=workers, exact=exact,
            engine=engine,
        )
    )


def hierarchy_free_reliance_sweep(
    graph: ASGraph,
    origins: Iterable[int],
    tiers: TierAssignment,
    exact: bool = False,
    workers: int | str | None = None,
    engine: Optional[str] = None,
) -> list[dict[int, float]]:
    """:func:`hierarchy_free_reliance` for many origins (Fig. 6's sweep)."""
    return reliance_sweep(
        graph,
        (
            (origin, (graph.providers(origin) | tiers.hierarchy) - {origin})
            for origin in origins
        ),
        exact=exact,
        workers=workers,
        engine=engine,
    )


def hierarchy_free_reliance(
    graph: ASGraph,
    origin: int,
    tiers: TierAssignment,
    exact: bool = False,
    engine: Optional[str] = None,
) -> dict[int, float]:
    """Reliance under the hierarchy-free constraints (§7.2)."""
    excluded = (graph.providers(origin) | tiers.hierarchy) - {origin}
    return reliance(graph, origin, excluded, exact=exact, engine=engine)


def tier1_free_reliance(
    graph: ASGraph,
    origin: int,
    tiers: TierAssignment,
    exact: bool = False,
    engine: Optional[str] = None,
) -> dict[int, float]:
    """Reliance under Tier-1-free constraints (Appendix B's case study)."""
    excluded = (graph.providers(origin) | tiers.tier1) - {origin}
    return reliance(graph, origin, excluded, exact=exact, engine=engine)


def top_reliance(values: dict[int, float], n: int = 3) -> list[tuple[int, float]]:
    """The ``n`` highest-reliance ASes (Table 2 rows)."""
    return sorted(values.items(), key=lambda item: (-item[1], item[0]))[:n]


def reliance_histogram(
    values: dict[int, float], bin_width: int = 25
) -> dict[int, int]:
    """Histogram of reliance values in ``bin_width``-wide bins (Fig. 6)."""
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    histogram: dict[int, int] = {}
    for value in values.values():
        bucket = int(value // bin_width) * bin_width
        histogram[bucket] = histogram.get(bucket, 0) + 1
    return dict(sorted(histogram.items()))
