"""Reachability reliance (§7).

``rely(o, a)`` measures how much origin *o* depends on AS *a* to be
reached: over every network *t* holding a route to *o*, the fraction of
*t*'s tied-best paths on which *a* appears, summed over all *t* (units of
"ASes").  In a pure hierarchy an origin relies on its provider for the whole
Internet; in a full mesh every reliance is 1.

The computation runs on the tied-best-path DAG produced by the propagation
engine: every routed AS injects one unit of mass at itself (so
``rely(o, t) >= 1`` — *t* is on all of its own paths), and mass flows toward
the origin, splitting across a node's parents in proportion to the number of
tied-best paths through each parent.  The total mass passing through *a* is
exactly ``rely(o, a)``.
"""

from __future__ import annotations

import heapq
from collections.abc import Collection, Iterable
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..bgpsim.engine import propagate
from ..bgpsim.metrics_kernel import (
    is_array_state,
    path_counts_kernel,
    reliance_kernel,
    reliance_mass_kernel,
)
from ..bgpsim.parallel import graph_map
from ..bgpsim.routes import RoutingState, Seed
from ..topology.asgraph import ASGraph
from ..topology.tiers import TierAssignment


def path_counts(state: RoutingState) -> dict[int, int]:
    """Number of tied-best paths from each routed AS to the seeds.

    Array-backed states dispatch to the forward kernel pass in
    :mod:`repro.bgpsim.metrics_kernel` (no ``routes`` materialization);
    plain states use the dict reference below.
    """
    if is_array_state(state):
        return path_counts_kernel(state)
    return _path_counts_routes(state)


def _path_counts_routes(state: RoutingState) -> dict[int, int]:
    """Dict reference implementation of :func:`path_counts`."""
    counts: dict[int, int] = {}
    routes = state.routes
    for asn in sorted(routes, key=lambda a: (routes[a].length, a)):
        route = routes[asn]
        if asn in state.seed_asns:
            counts[asn] = 1
        else:
            counts[asn] = sum(counts[p] for p in route.parents)
    return counts


def reliance_from_state(
    state: RoutingState,
    receivers: Iterable[int] | None = None,
    exact: bool = False,
) -> dict[int, float]:
    """``rely(o, a)`` for every AS ``a`` appearing on some tied-best path.

    ``receivers`` restricts which networks inject mass (default: every
    routed non-seed AS).  With ``exact=True`` the splits are computed with
    :class:`fractions.Fraction` (slower; useful for tests).

    Array-backed states dispatch to the backward kernel pass in
    :mod:`repro.bgpsim.metrics_kernel`; both paths accumulate in the same
    canonical order (nodes by length then ASN, parents ascending), so the
    float results are bit-identical to each other and across runs.
    """
    if is_array_state(state):
        return reliance_kernel(state, receivers=receivers, exact=exact)
    return _reliance_from_routes(state, receivers=receivers, exact=exact)


def _reliance_from_routes(
    state: RoutingState,
    receivers: Iterable[int] | None = None,
    exact: bool = False,
) -> dict[int, float]:
    """Dict reference implementation of :func:`reliance_from_state`."""
    routes = state.routes
    counts = _path_counts_routes(state)
    zero = Fraction(0) if exact else 0.0
    mass: dict[int, Fraction | float] = {asn: zero for asn in routes}
    if receivers is None:
        injectors = set(routes) - state.seed_asns
    else:
        injectors = {t for t in receivers if t in routes} - state.seed_asns
    for t in injectors:
        mass[t] += Fraction(1) if exact else 1.0
    # Parents always have strictly smaller path length, so processing by
    # decreasing length finalizes each node before it distributes its
    # mass; the ASN tie-break and the sorted parents pin the float
    # accumulation order regardless of dict/set insertion order.
    for asn in sorted(routes, key=lambda a: (routes[a].length, a), reverse=True):
        node_mass = mass[asn]
        if not node_mass:
            continue
        parents = routes[asn].parents
        if not parents:
            continue
        denom = sum(counts[p] for p in parents)
        for parent in sorted(parents):
            share = (
                Fraction(counts[parent], denom)
                if exact
                else counts[parent] / denom
            )
            mass[parent] += node_mass * share
    result = {
        asn: (float(m) if exact else m)
        for asn, m in mass.items()
        if m and asn not in state.seed_asns
    }
    return result


def reliance(
    graph: ASGraph,
    origin: int,
    excluded: Collection[int] = frozenset(),
    exact: bool = False,
    engine: Optional[str] = None,
) -> dict[int, float]:
    """``rely(origin, ·)`` over ``graph`` minus ``excluded``."""
    state = propagate(
        graph, Seed(asn=origin, key="origin"), excluded=excluded, engine=engine
    )
    return reliance_from_state(state, exact=exact)


def _reliance_task(
    graph: ASGraph,
    item: tuple[int, frozenset[int]],
    exact: bool = False,
    engine: Optional[str] = None,
) -> dict[int, float]:
    origin, excluded = item
    return reliance(graph, origin, excluded, exact=exact, engine=engine)


def reliance_sweep(
    graph: ASGraph,
    origin_excluded: Iterable[tuple[int, Collection[int]]],
    exact: bool = False,
    workers: int | str | None = None,
    engine: Optional[str] = None,
) -> list[dict[int, float]]:
    """:func:`reliance` for many (origin, excluded) pairs, in input order.

    The propagation per origin is the dominant cost; with ``workers`` the
    pairs fan out across a process pool (the graph ships once per worker).
    ``workers=None`` runs the identical computations serially.
    """
    items = [
        (origin, frozenset(excluded)) for origin, excluded in origin_excluded
    ]
    return list(
        graph_map(
            graph, _reliance_task, items, workers=workers, exact=exact,
            engine=engine,
        )
    )


def hierarchy_free_reliance_sweep(
    graph: ASGraph,
    origins: Iterable[int],
    tiers: TierAssignment,
    exact: bool = False,
    workers: int | str | None = None,
    engine: Optional[str] = None,
) -> list[dict[int, float]]:
    """:func:`hierarchy_free_reliance` for many origins (Fig. 6's sweep)."""
    return reliance_sweep(
        graph,
        (
            (origin, (graph.providers(origin) | tiers.hierarchy) - {origin})
            for origin in origins
        ),
        exact=exact,
        workers=workers,
        engine=engine,
    )


def hierarchy_free_reliance(
    graph: ASGraph,
    origin: int,
    tiers: TierAssignment,
    exact: bool = False,
    engine: Optional[str] = None,
) -> dict[int, float]:
    """Reliance under the hierarchy-free constraints (§7.2)."""
    excluded = (graph.providers(origin) | tiers.hierarchy) - {origin}
    return reliance(graph, origin, excluded, exact=exact, engine=engine)


def tier1_free_reliance(
    graph: ASGraph,
    origin: int,
    tiers: TierAssignment,
    exact: bool = False,
    engine: Optional[str] = None,
) -> dict[int, float]:
    """Reliance under Tier-1-free constraints (Appendix B's case study)."""
    excluded = (graph.providers(origin) | tiers.tier1) - {origin}
    return reliance(graph, origin, excluded, exact=exact, engine=engine)


def top_reliance(values: dict[int, float], n: int = 3) -> list[tuple[int, float]]:
    """The ``n`` highest-reliance ASes (Table 2 rows)."""
    # heapq.nsmallest(n, it, key) == sorted(it, key=key)[:n], in O(len * log n)
    return heapq.nsmallest(n, values.items(), key=lambda item: (-item[1], item[0]))


def reliance_histogram(
    values: dict[int, float], bin_width: int = 25
) -> dict[int, int]:
    """Histogram of reliance values in ``bin_width``-wide bins (Fig. 6)."""
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    histogram: dict[int, int] = {}
    for value in values.values():
        bucket = int(value // bin_width) * bin_width
        histogram[bucket] = histogram.get(bucket, 0) + 1
    return dict(sorted(histogram.items()))


@dataclass(frozen=True)
class RelianceSummary:
    """Everything Fig. 6 / Table 2 keep from one origin's reliance values.

    A full reliance dict holds one float per relied-on AS; the figures
    only aggregate it (counts, a histogram, the top rows).  Sweep workers
    return this compact record instead, so a parallel sweep ships a few
    dozen numbers per origin rather than a per-AS dict.
    """

    networks: int  #: number of ASes with nonzero reliance
    near_one: int  #: of those, how many have reliance <= 1 (flat ideal)
    max_value: float
    histogram: dict[int, int]
    top: tuple[tuple[int, float], ...]

    def fraction_at_one(self) -> float:
        """Share of relied-on networks with reliance ~1 (flat ideal)."""
        return self.near_one / self.networks if self.networks else 0.0


def summarize_reliance(
    values: dict[int, float], bin_width: int = 25, top_n: int = 3
) -> RelianceSummary:
    """Compress a reliance dict into a :class:`RelianceSummary`."""
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    near_one = 0
    max_value = 0.0
    histogram: dict[int, int] = {}
    for value in values.values():
        if value <= 1.0 + 1e-9:
            near_one += 1
        if value > max_value:
            max_value = value
        bucket = int(value // bin_width) * bin_width
        histogram[bucket] = histogram.get(bucket, 0) + 1
    return RelianceSummary(
        networks=len(values),
        near_one=near_one,
        max_value=max_value,
        histogram=dict(sorted(histogram.items())),
        top=tuple(top_reliance(values, top_n)),
    )


def summarize_reliance_from_state(
    state: RoutingState, bin_width: int = 25, top_n: int = 3
) -> RelianceSummary:
    """:func:`summarize_reliance` of ``reliance_from_state(state)``.

    On array-backed states the summary is aggregated in one fused pass
    over the kernel's mass list — the intermediate ASN-keyed reliance
    dict is never built.  The result is identical to summarizing the
    dict (same float values; the aggregates are order-insensitive and
    the top rows use the same ``(-value, asn)`` ordering).
    """
    if not is_array_state(state):
        return summarize_reliance(
            reliance_from_state(state), bin_width=bin_width, top_n=top_n
        )
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    dag, mass = reliance_mass_kernel(state)
    asns, seed_idx = dag.asns, dag.seed_idx
    networks = 0
    near_one = 0
    max_value = 0.0
    histogram: dict[int, int] = {}
    pairs: list[tuple[int, float]] = []
    for i in dag.order:
        value = mass[i]
        if not value or i in seed_idx:
            continue
        networks += 1
        if value <= 1.0 + 1e-9:
            near_one += 1
        if value > max_value:
            max_value = value
        bucket = int(value // bin_width) * bin_width
        histogram[bucket] = histogram.get(bucket, 0) + 1
        pairs.append((asns[i], value))
    top = tuple(
        heapq.nsmallest(top_n, pairs, key=lambda item: (-item[1], item[0]))
    )
    return RelianceSummary(
        networks=networks,
        near_one=near_one,
        max_value=max_value,
        histogram=dict(sorted(histogram.items())),
        top=top,
    )


def _reliance_summary_task(
    graph: ASGraph,
    item: tuple[int, frozenset[int]],
    bin_width: int = 25,
    top_n: int = 3,
    engine: Optional[str] = None,
) -> RelianceSummary:
    origin, excluded = item
    state = propagate(
        graph, Seed(asn=origin, key="origin"), excluded=excluded, engine=engine
    )
    return summarize_reliance_from_state(state, bin_width=bin_width, top_n=top_n)


def _reliance_summary_batch_task(
    graph: ASGraph,
    item: tuple[tuple[int, ...], frozenset[int]],
    bin_width: int = 25,
    top_n: int = 3,
    engine: Optional[str] = None,
) -> list[RelianceSummary]:
    """Summaries for a batch of origins sharing one excluded set, served
    by one bit-parallel sweep (the views feed the same fused kernel
    aggregation, so every float is bit-identical to the per-origin path).
    """
    from ..bgpsim.multiorigin import propagate_batch

    del engine  # the batch kernel is the compiled engine
    origins, excluded = item
    batch_state = propagate_batch(graph, origins, excluded=excluded)
    return [
        summarize_reliance_from_state(view, bin_width=bin_width, top_n=top_n)
        for _, view in batch_state.views()
    ]


def reliance_summary_sweep(
    graph: ASGraph,
    origin_excluded: Iterable[tuple[int, Collection[int]]],
    bin_width: int = 25,
    top_n: int = 3,
    workers: int | str | None = None,
    engine: Optional[str] = None,
    batch: Optional[int] = None,
    stream: bool | str | None = None,
    cache=None,
) -> list[RelianceSummary]:
    """:class:`RelianceSummary` per (origin, excluded) pair, in input order.

    Like :func:`reliance_sweep` but each worker aggregates before
    returning, which keeps the per-item payload O(histogram) instead of
    O(ASes) — the shape Fig. 6 / Table 2 actually consume.

    ``batch`` routes the sweep through the bit-parallel multi-origin
    kernel: pairs sharing an excluded set are grouped (the kernel needs
    one export predicate per sweep) and each group chunked to the batch
    width, so e.g. an all-AS hierarchy-free sweep with a common excluded
    set costs ``ceil(N / batch)`` propagations instead of ``N``.  It
    defaults through ``REPRO_BATCH`` and is ignored on the reference
    engine; results are identical either way.

    ``stream`` (``REPRO_STREAM``; auto-on at paper scale) folds each
    per-origin view through the summary kernel as it is computed and
    drops it before the next arrives —
    :meth:`~repro.bgpsim.cache.RoutingStateCache.states_for_many`'s
    O(batch)-memory tier — instead of retaining a whole batch window of
    views at once.  Summaries are bit-identical to the eager path
    (asserted in ``tests/test_streaming_sweeps.py`` and in-bench).  A
    ``cache`` with an attached shard store lets precomputed corpora
    serve the no-excluded-set sweeps.
    """
    from ..bgpsim.engine import resolve_engine, resolve_stream
    from ..bgpsim.multiorigin import resolve_batch

    items = [
        (origin, frozenset(excluded)) for origin, excluded in origin_excluded
    ]
    try:
        resolved = resolve_engine(engine)
    except ValueError:
        resolved = "reference"  # unknown engine: let the task raise
    width = resolve_batch(batch)
    if (
        resolve_stream(stream, len(graph))
        and resolved in ("compiled", "incremental")
        and items
    ):
        from ..bgpsim.cache import RoutingStateCache

        if cache is None:
            cache = RoutingStateCache(graph, engine=engine, batch=batch)
        groups: dict[frozenset[int], list[int]] = {}
        for position, (_, excluded) in enumerate(items):
            groups.setdefault(excluded, []).append(position)
        results: list[Optional[RelianceSummary]] = [None] * len(items)
        for excluded, positions in groups.items():
            states = cache.states_for_many(
                (items[p][0] for p in positions),
                workers=workers,
                batch=batch,
                stream=True,
                excluded=excluded,
            )
            for position, (_, state) in zip(positions, states):
                results[position] = summarize_reliance_from_state(
                    state, bin_width=bin_width, top_n=top_n
                )
                # release this view before pulling the next: the fold
                # keeps one live view, not a window of them
                del state
        return results
    if width > 1 and resolved in ("compiled", "incremental") and items:
        groups: dict[frozenset[int], list[int]] = {}
        for position, (_, excluded) in enumerate(items):
            groups.setdefault(excluded, []).append(position)
        tasks: list[tuple[tuple[int, ...], frozenset[int]]] = []
        task_positions: list[list[int]] = []
        for excluded, positions in groups.items():
            for i in range(0, len(positions), width):
                chunk = positions[i : i + width]
                tasks.append(
                    (tuple(items[p][0] for p in chunk), excluded)
                )
                task_positions.append(chunk)
        results: list[Optional[RelianceSummary]] = [None] * len(items)
        summaries_per_task = graph_map(
            graph,
            _reliance_summary_batch_task,
            tasks,
            workers=workers,
            bin_width=bin_width,
            top_n=top_n,
            engine=engine,
        )
        for positions, summaries in zip(task_positions, summaries_per_task):
            for position, summary in zip(positions, summaries):
                results[position] = summary
        return results
    return list(
        graph_map(
            graph,
            _reliance_summary_task,
            items,
            workers=workers,
            bin_width=bin_width,
            top_n=top_n,
            engine=engine,
        )
    )


def hierarchy_free_reliance_summaries(
    graph: ASGraph,
    origins: Iterable[int],
    tiers: TierAssignment,
    bin_width: int = 25,
    top_n: int = 3,
    workers: int | str | None = None,
    engine: Optional[str] = None,
    batch: Optional[int] = None,
    stream: bool | str | None = None,
    cache=None,
) -> list[RelianceSummary]:
    """:func:`reliance_summary_sweep` under hierarchy-free constraints."""
    return reliance_summary_sweep(
        graph,
        (
            (origin, (graph.providers(origin) | tiers.hierarchy) - {origin})
            for origin in origins
        ),
        bin_width=bin_width,
        top_n=top_n,
        workers=workers,
        engine=engine,
        batch=batch,
        stream=stream,
        cache=cache,
    )
