"""Valley-free reachability over topology subgraphs.

An AS *t* can reach an origin *o* (equivalently, receives *o*'s
announcement) iff the graph contains a valley-free propagation path from
*o* to *t*: zero or more hops up provider edges, at most one peer hop, then
zero or more hops down customer edges — with every intermediate AS outside
the excluded set.  Because export rules alone determine existence (route
preference never blackholes a prefix), reachability is computed directly by
a three-segment BFS, which is what :func:`reachable_set` does.

For all-AS sweeps (Fig. 3 computes hierarchy-free reachability for *every*
AS) the package also provides :class:`ConeEngine`, a bitset customer-cone
engine: when the origin's own transit providers are excluded, the up
segment collapses and reachability is exactly the restricted down-closure
of the origin and its allowed peers, computable with big-integer OR in
microseconds.  The engine detects the rare case where the closure would
touch one of the origin's providers and falls back to the exact BFS.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable

from ..topology.asgraph import ASGraph


def reachable_set(
    graph: ASGraph,
    origin: int,
    excluded: Collection[int] = frozenset(),
) -> frozenset[int]:
    """ASes receiving ``origin``'s announcement in ``graph`` minus ``excluded``.

    The origin itself is not part of the result.  ``excluded`` ASes neither
    receive nor forward the announcement (and are never counted reachable,
    matching Fig. 1's accounting).
    """
    if origin not in graph:
        raise KeyError(f"AS{origin} not in graph")
    excluded = set(excluded)
    excluded.discard(origin)

    # up segment: provider chains from the origin
    up = {origin}
    frontier = [origin]
    while frontier:
        next_frontier = []
        for asn in frontier:
            for provider in graph.providers(asn):
                if provider not in up and provider not in excluded:
                    up.add(provider)
                    next_frontier.append(provider)
        frontier = next_frontier

    # at most one peer hop from any up-segment AS
    apex = set(up)
    for asn in up:
        for peer in graph.peers(asn):
            if peer not in excluded:
                apex.add(peer)

    # down segment: customer closure of the apex set
    reach = set(apex)
    frontier = list(apex)
    while frontier:
        next_frontier = []
        for asn in frontier:
            for customer in graph.customers(asn):
                if customer not in reach and customer not in excluded:
                    reach.add(customer)
                    next_frontier.append(customer)
        frontier = next_frontier

    reach.discard(origin)
    return frozenset(reach)


def reachability(
    graph: ASGraph,
    origin: int,
    excluded: Collection[int] = frozenset(),
) -> int:
    """Count of ASes reachable by ``origin`` — ``|reach(o, I \\ X)|``."""
    return len(reachable_set(graph, origin, excluded))


class ConeEngine:
    """Bitset customer-cone closures over ``graph`` minus a fixed exclusion.

    ``cone(asn)`` is the down-closure (the AS plus everything reachable by
    following provider→customer edges) restricted to non-excluded ASes,
    encoded as a big-integer bitmask.  Construction is a single post-order
    pass over the p2c DAG; a provider-customer cycle in the input raises.
    """

    def __init__(
        self, graph: ASGraph, excluded: Collection[int] = frozenset()
    ) -> None:
        self.graph = graph
        self.excluded = frozenset(excluded)
        members = [asn for asn in graph if asn not in self.excluded]
        self.bit_index: dict[int, int] = {asn: i for i, asn in enumerate(members)}
        self._members = members
        self._cones: dict[int, int] = {}
        self._build()

    def _build(self) -> None:
        graph, cones = self.graph, self._cones
        excluded = self.excluded
        state: dict[int, int] = {}  # 1 = on stack, 2 = done
        for root in self._members:
            if root in cones:
                continue
            stack = [root]
            while stack:
                node = stack[-1]
                if state.get(node) == 2:
                    stack.pop()
                    continue
                if state.get(node) != 1:
                    state[node] = 1
                    for customer in graph.customers(node):
                        if customer in excluded:
                            continue
                        if state.get(customer) == 1:
                            raise ValueError(
                                "provider-customer cycle involving "
                                f"AS{node} and AS{customer}"
                            )
                        if state.get(customer) != 2:
                            stack.append(customer)
                    continue
                mask = 1 << self.bit_index[node]
                for customer in graph.customers(node):
                    if customer not in excluded:
                        mask |= cones[customer]
                cones[node] = mask
                state[node] = 2

    def cone_mask(self, asn: int) -> int:
        """Bitmask of the restricted customer cone of ``asn`` (incl. itself)."""
        return self._cones[asn]

    def cone_size(self, asn: int) -> int:
        """Restricted customer-cone size, excluding the AS itself."""
        return self._cones[asn].bit_count() - 1

    def mask_of(self, asns: Iterable[int]) -> int:
        """Bitmask with the bits of ``asns`` set (excluded ASes skipped)."""
        mask = 0
        for asn in asns:
            bit = self.bit_index.get(asn)
            if bit is not None:
                mask |= 1 << bit
        return mask

    def closure_mask(self, starts: Iterable[int]) -> int:
        """OR of the cones of ``starts`` (ASes in the exclusion are skipped)."""
        mask = 0
        for asn in starts:
            cone = self._cones.get(asn)
            if cone is not None:
                mask |= cone
        return mask

    def provider_free_count(self, origin: int) -> int:
        """Reachability of ``origin`` with its providers also excluded.

        Exact whenever the down-closure of {origin} ∪ peers avoids the
        origin's own providers; otherwise falls back to the exact BFS.
        Returns the same value as
        ``reachability(graph, origin, excluded | providers(origin))``.
        """
        graph = self.graph
        if origin in self.excluded:
            return reachability(
                graph, origin, (self.excluded | graph.providers(origin)) - {origin}
            )
        providers = graph.providers(origin)
        starts = [origin]
        starts.extend(
            p for p in graph.peers(origin) if p not in self.excluded
        )
        closure = self.closure_mask(starts)
        provider_mask = self.mask_of(providers)
        if closure & provider_mask:
            return reachability(graph, origin, self.excluded | providers)
        return closure.bit_count() - 1  # origin's own bit
