"""Best-path length distributions (Appendix E, Fig. 13).

For a cloud origin announcing over the full topology, every routed AS falls
in a path-length bin: 1 hop (direct peering/customer), 2 hops, or 3+ hops.
The bins can be weighted three ways, as in Fig. 13: by networks, by eyeball
(user-hosting) networks only, or by the user population those networks
host.
"""

from __future__ import annotations

from collections.abc import Collection, Mapping
from dataclasses import dataclass

from ..bgpsim.engine import propagate
from ..bgpsim.routes import Seed
from ..topology.asgraph import ASGraph

BINS = ("1", "2", "3+")


@dataclass(frozen=True)
class PathLengthMix:
    """Weighted share of destinations at 1 / 2 / 3+ AS hops."""

    one_hop: float
    two_hop: float
    three_plus: float

    def __post_init__(self) -> None:
        total = self.one_hop + self.two_hop + self.three_plus
        if total and abs(total - 1.0) > 1e-9:
            raise ValueError("path length mix must sum to 1 (or be empty)")

    def as_dict(self) -> dict[str, float]:
        return {"1": self.one_hop, "2": self.two_hop, "3+": self.three_plus}


def _bin_of(length: int) -> str:
    if length <= 1:
        return "1"
    if length == 2:
        return "2"
    return "3+"


def path_length_weights(
    graph: ASGraph,
    origin: int,
    weights: Mapping[int, float] | None = None,
    restrict_to: Collection[int] | None = None,
    excluded: Collection[int] = frozenset(),
) -> dict[str, float]:
    """Total weight of routed destinations per path-length bin.

    ``weights`` maps AS → weight (default 1 per AS); ``restrict_to``
    limits the accounting to a subset (e.g. eyeball networks).
    """
    state = propagate(graph, Seed(asn=origin, key="origin"), excluded=excluded)
    totals = {b: 0.0 for b in BINS}
    restrict = set(restrict_to) if restrict_to is not None else None
    for asn, route in state.routes.items():
        if asn == origin:
            continue
        if restrict is not None and asn not in restrict:
            continue
        weight = 1.0 if weights is None else float(weights.get(asn, 0))
        if weight:
            totals[_bin_of(route.length)] += weight
    return totals


def normalize_mix(totals: Mapping[str, float]) -> PathLengthMix:
    """Convert bin totals to a :class:`PathLengthMix` of fractions."""
    total = sum(totals.get(b, 0.0) for b in BINS)
    if total == 0:
        return PathLengthMix(0.0, 0.0, 0.0)
    return PathLengthMix(
        one_hop=totals.get("1", 0.0) / total,
        two_hop=totals.get("2", 0.0) / total,
        three_plus=totals.get("3+", 0.0) / total,
    )


def path_length_mix(
    graph: ASGraph,
    origin: int,
    weights: Mapping[int, float] | None = None,
    restrict_to: Collection[int] | None = None,
) -> PathLengthMix:
    """Fractional 1 / 2 / 3+ hop mix for ``origin`` (one Fig. 13 bar)."""
    return normalize_mix(
        path_length_weights(graph, origin, weights, restrict_to)
    )


def fig13_bars(
    graph: ASGraph,
    origin: int,
    users: Mapping[int, int],
) -> dict[str, PathLengthMix]:
    """The three weightings of Fig. 13 for one cloud provider.

    ``ases``: all networks equally; ``eyeball_ases``: only user-hosting
    networks; ``population``: user-hosting networks weighted by users.
    """
    eyeballs = {asn for asn, count in users.items() if count > 0}
    return {
        "ases": path_length_mix(graph, origin),
        "eyeball_ases": path_length_mix(graph, origin, restrict_to=eyeballs),
        "population": path_length_mix(
            graph, origin, weights={a: float(c) for a, c in users.items()}
        ),
    }
