"""Best-path length distributions (Appendix E, Fig. 13).

For a cloud origin announcing over the full topology, every routed AS falls
in a path-length bin: 1 hop (direct peering/customer), 2 hops, or 3+ hops.
The bins can be weighted three ways, as in Fig. 13: by networks, by eyeball
(user-hosting) networks only, or by the user population those networks
host.

All weightings are projections of one per-path-length weight histogram,
so a Fig. 13 bar group costs a single propagation; on array-backed states
the histogram is read straight off the compiled length array
(:func:`repro.bgpsim.metrics_kernel.length_histogram_kernel`) without
materializing ``routes``.  Sweeps accept the same ``engine=`` /
``workers=`` knobs as every other consumer.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable, Mapping
from dataclasses import dataclass
from typing import Optional

from ..bgpsim.engine import propagate
from ..bgpsim.metrics_kernel import is_array_state, length_histogram_kernel
from ..bgpsim.parallel import graph_map
from ..bgpsim.routes import RoutingState, Seed
from ..topology.asgraph import ASGraph

BINS = ("1", "2", "3+")


@dataclass(frozen=True)
class PathLengthMix:
    """Weighted share of destinations at 1 / 2 / 3+ AS hops."""

    one_hop: float
    two_hop: float
    three_plus: float

    def __post_init__(self) -> None:
        total = self.one_hop + self.two_hop + self.three_plus
        if total and abs(total - 1.0) > 1e-9:
            raise ValueError("path length mix must sum to 1 (or be empty)")

    def as_dict(self) -> dict[str, float]:
        return {"1": self.one_hop, "2": self.two_hop, "3+": self.three_plus}


def _bin_of(length: int) -> str:
    if length <= 1:
        return "1"
    if length == 2:
        return "2"
    return "3+"


def path_length_histogram(
    state: RoutingState,
    weights: Mapping[int, float] | None = None,
    restrict_to: Collection[int] | None = None,
) -> dict[int, float]:
    """Total weight of routed destinations per exact path length.

    Seeds are excluded (they are sources, not destinations).  Array-backed
    states read the histogram off the compiled length array; plain states
    walk the routes dict in canonical (ASN) order, so float totals match
    the kernel bit-for-bit.
    """
    if is_array_state(state):
        return length_histogram_kernel(state, weights, restrict_to)
    restrict = set(restrict_to) if restrict_to is not None else None
    histogram: dict[int, float] = {}
    for asn, route in sorted(state.routes.items()):
        if asn in state.seed_asns:
            continue
        if restrict is not None and asn not in restrict:
            continue
        weight = 1.0 if weights is None else float(weights.get(asn, 0))
        if weight:
            histogram[route.length] = histogram.get(route.length, 0.0) + weight
    return histogram


def _bin_totals(histogram: Mapping[int, float]) -> dict[str, float]:
    totals = {b: 0.0 for b in BINS}
    for length in sorted(histogram):
        totals[_bin_of(length)] += histogram[length]
    return totals


def path_length_weights_from_state(
    state: RoutingState,
    weights: Mapping[int, float] | None = None,
    restrict_to: Collection[int] | None = None,
) -> dict[str, float]:
    """Per-bin weight totals of an already-propagated state."""
    return _bin_totals(path_length_histogram(state, weights, restrict_to))


def mean_path_length(
    state: RoutingState,
    weights: Mapping[int, float] | None = None,
    restrict_to: Collection[int] | None = None,
) -> float:
    """Weight-averaged best-path length over routed destinations."""
    histogram = path_length_histogram(state, weights, restrict_to)
    total = sum(histogram.values())
    if not total:
        return 0.0
    return sum(length * w for length, w in sorted(histogram.items())) / total


def path_length_weights(
    graph: ASGraph,
    origin: int,
    weights: Mapping[int, float] | None = None,
    restrict_to: Collection[int] | None = None,
    excluded: Collection[int] = frozenset(),
    engine: Optional[str] = None,
) -> dict[str, float]:
    """Total weight of routed destinations per path-length bin.

    ``weights`` maps AS → weight (default 1 per AS); ``restrict_to``
    limits the accounting to a subset (e.g. eyeball networks);
    ``engine`` selects the propagation engine like every other consumer.
    """
    state = propagate(
        graph, Seed(asn=origin, key="origin"), excluded=excluded, engine=engine
    )
    return path_length_weights_from_state(state, weights, restrict_to)


def normalize_mix(totals: Mapping[str, float]) -> PathLengthMix:
    """Convert bin totals to a :class:`PathLengthMix` of fractions."""
    total = sum(totals.get(b, 0.0) for b in BINS)
    if total == 0:
        return PathLengthMix(0.0, 0.0, 0.0)
    return PathLengthMix(
        one_hop=totals.get("1", 0.0) / total,
        two_hop=totals.get("2", 0.0) / total,
        three_plus=totals.get("3+", 0.0) / total,
    )


def path_length_mix(
    graph: ASGraph,
    origin: int,
    weights: Mapping[int, float] | None = None,
    restrict_to: Collection[int] | None = None,
    engine: Optional[str] = None,
) -> PathLengthMix:
    """Fractional 1 / 2 / 3+ hop mix for ``origin`` (one Fig. 13 bar)."""
    return normalize_mix(
        path_length_weights(graph, origin, weights, restrict_to, engine=engine)
    )


def _pathlen_task(
    graph: ASGraph,
    origin: int,
    weights: Mapping[int, float] | None = None,
    restrict_to: Optional[frozenset[int]] = None,
    excluded: Collection[int] = frozenset(),
    engine: Optional[str] = None,
) -> tuple[float, float, float]:
    totals = path_length_weights(
        graph, origin, weights, restrict_to, excluded=excluded, engine=engine
    )
    return (totals["1"], totals["2"], totals["3+"])


def path_length_distribution(
    graph: ASGraph,
    origins: Iterable[int],
    weights: Mapping[int, float] | None = None,
    restrict_to: Collection[int] | None = None,
    excluded: Collection[int] = frozenset(),
    workers: int | str | None = None,
    engine: Optional[str] = None,
) -> list[dict[str, float]]:
    """Per-origin bin totals for many origins, in input order.

    Fans the per-origin propagations out with ``workers`` (each worker
    returns a compact 3-tuple, not a per-AS structure) and threads
    ``engine`` through, matching every other sweep.
    """
    rows = graph_map(
        graph,
        _pathlen_task,
        list(origins),
        workers=workers,
        weights=dict(weights) if weights is not None else None,
        restrict_to=frozenset(restrict_to) if restrict_to is not None else None,
        excluded=frozenset(excluded),
        engine=engine,
    )
    return [dict(zip(BINS, row)) for row in rows]


#: the three weightings of one Fig. 13 bar group, in render order
_FIG13_SERIES = ("ases", "eyeball_ases", "population")


def _fig13_weightings(
    users: Mapping[int, int],
) -> tuple[tuple[Mapping[int, float] | None, frozenset[int] | None], ...]:
    """The three (weights, restrict_to) pairs of one Fig. 13 bar group."""
    eyeballs = frozenset(asn for asn, count in users.items() if count > 0)
    population = {a: float(c) for a, c in users.items()}
    return ((None, None), (None, eyeballs), (population, None))


def _fig13_triples_from_state(
    state: RoutingState,
    weightings: tuple,
) -> tuple[tuple[float, float, float], ...]:
    """All three Fig. 13 weightings of an already-propagated state."""
    triples = []
    for weights, restrict_to in weightings:
        totals = path_length_weights_from_state(state, weights, restrict_to)
        triples.append((totals["1"], totals["2"], totals["3+"]))
    return tuple(triples)


def _fig13_task(
    graph: ASGraph,
    origin: int,
    users: Mapping[int, int] = {},
    engine: Optional[str] = None,
) -> tuple[tuple[float, float, float], ...]:
    """All three Fig. 13 weightings from a single propagation."""
    state = propagate(graph, Seed(asn=origin, key="origin"), engine=engine)
    return _fig13_triples_from_state(state, _fig13_weightings(users))


def _fig13_batch_task(
    graph: ASGraph,
    origins: tuple[int, ...],
    users: Mapping[int, int] = {},
    engine: Optional[str] = None,
) -> list[tuple[tuple[float, float, float], ...]]:
    """:func:`_fig13_task` rows for a batch of origins from one
    bit-parallel sweep (the views feed the same histogram kernel, so
    every float is bit-identical to the per-origin path)."""
    from ..bgpsim.multiorigin import propagate_batch

    del engine  # the batch kernel is the compiled engine
    weightings = _fig13_weightings(users)
    batch_state = propagate_batch(graph, origins)
    return [
        _fig13_triples_from_state(state, weightings)
        for _, state in batch_state.views()
    ]


def _bars_from_triples(
    triples: tuple[tuple[float, float, float], ...],
) -> dict[str, PathLengthMix]:
    return {
        name: normalize_mix(dict(zip(BINS, triple)))
        for name, triple in zip(_FIG13_SERIES, triples)
    }


def fig13_bars(
    graph: ASGraph,
    origin: int,
    users: Mapping[int, int],
    engine: Optional[str] = None,
) -> dict[str, PathLengthMix]:
    """The three weightings of Fig. 13 for one cloud provider.

    ``ases``: all networks equally; ``eyeball_ases``: only user-hosting
    networks; ``population``: user-hosting networks weighted by users.
    One propagation serves all three weightings.
    """
    return _bars_from_triples(_fig13_task(graph, origin, users, engine))


def fig13_bars_sweep(
    graph: ASGraph,
    origins: Iterable[int],
    users: Mapping[int, int],
    workers: int | str | None = None,
    engine: Optional[str] = None,
    batch: Optional[int] = None,
    stream: bool | str | None = None,
    cache=None,
) -> list[dict[str, PathLengthMix]]:
    """:func:`fig13_bars` for many origins; workers return compact bin
    triples (3 weightings × 3 bins per origin).

    ``batch`` groups origins into bit-parallel multi-origin sweeps;
    ``stream`` (``REPRO_STREAM``; auto-on at paper scale) folds each
    origin's triples as its view arrives and drops the view before the
    next one — O(batch) peak memory with bit-identical mixes either
    way.  ``cache`` (optional) supplies warm/precomputed states to the
    streaming path.
    """
    from ..bgpsim.engine import resolve_engine, resolve_stream
    from ..bgpsim.multiorigin import resolve_batch

    origin_list = list(origins)
    try:
        resolved = resolve_engine(engine)
    except ValueError:
        resolved = "reference"  # unknown engine: let the task raise
    width = resolve_batch(batch)
    if (
        resolve_stream(stream, len(graph))
        and resolved in ("compiled", "incremental")
        and origin_list
    ):
        from ..bgpsim.cache import RoutingStateCache

        if cache is None:
            cache = RoutingStateCache(graph, engine=engine, batch=batch)
        weightings = _fig13_weightings(users)
        bars = []
        for _, state in cache.states_for_many(
            origin_list, workers=workers, batch=batch, stream=True
        ):
            bars.append(
                _bars_from_triples(
                    _fig13_triples_from_state(state, weightings)
                )
            )
            del state  # release this view before pulling the next
        return bars
    if width > 1 and resolved in ("compiled", "incremental") and origin_list:
        chunks = [
            tuple(origin_list[i : i + width])
            for i in range(0, len(origin_list), width)
        ]
        row_lists = graph_map(
            graph,
            _fig13_batch_task,
            chunks,
            workers=workers,
            users=dict(users),
            engine=engine,
        )
        return [
            _bars_from_triples(triples)
            for rows_ in row_lists
            for triples in rows_
        ]
    rows = graph_map(
        graph,
        _fig13_task,
        list(origin_list),
        workers=workers,
        users=dict(users),
        engine=engine,
    )
    return [_bars_from_triples(triples) for triples in rows]
