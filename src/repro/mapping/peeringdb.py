"""PeeringDB model: exchanges, LAN memberships, and facility presence.

The paper uses PeeringDB three ways: (1) resolving peering-LAN addresses to
the member network (preferred over Cymru in the final methodology, §5);
(2) locating candidate PoP facilities (§4.2, Appendix D); (3) general
peering metadata.  This module models the relevant subset of PeeringDB's
schema — ``ix``/``ixlan``, ``netixlan``, and ``netfac`` records — populated
from a scenario.
"""

from __future__ import annotations

import ipaddress
from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

IPLike = ipaddress.IPv4Address | str


@dataclass(frozen=True)
class IXLanRecord:
    """An exchange LAN (PeeringDB ``ixlan`` + its parent ``ix``)."""

    ixp_id: int
    name: str
    city_code: str
    lan: ipaddress.IPv4Network


@dataclass(frozen=True)
class NetIXLanRecord:
    """A network's port on an exchange LAN (PeeringDB ``netixlan``)."""

    asn: int
    ixp_id: int
    ip: ipaddress.IPv4Address


@dataclass(frozen=True)
class NetFacRecord:
    """A network's presence at a facility city (PeeringDB ``netfac``)."""

    asn: int
    city_code: str


class PeeringDB:
    """Queryable PeeringDB snapshot."""

    def __init__(
        self,
        ixlans: list[IXLanRecord] | None = None,
        netixlans: list[NetIXLanRecord] | None = None,
        netfacs: list[NetFacRecord] | None = None,
    ) -> None:
        self.ixlans = list(ixlans or [])
        self.netixlans = list(netixlans or [])
        self.netfacs = list(netfacs or [])
        self._by_ip: dict[int, int] = {
            int(rec.ip): rec.asn for rec in self.netixlans
        }
        self._lans = [(rec.lan, rec.ixp_id) for rec in self.ixlans]
        self._members: dict[int, set[int]] = defaultdict(set)
        self._facs: dict[int, set[str]] = defaultdict(set)
        for rec in self.netixlans:
            self._members[rec.ixp_id].add(rec.asn)
        for rec in self.netfacs:
            self._facs[rec.asn].add(rec.city_code)

    # -- address resolution -------------------------------------------------
    def ip_to_asn(self, ip: IPLike) -> Optional[int]:
        """Resolve a peering-LAN address to the member network's ASN."""
        return self._by_ip.get(int(ipaddress.IPv4Address(ip)))

    def lan_of(self, ip: IPLike) -> Optional[int]:
        """The exchange whose LAN contains ``ip``, if any."""
        address = ipaddress.IPv4Address(ip)
        for lan, ixp_id in self._lans:
            if address in lan:
                return ixp_id
        return None

    def is_ixp_address(self, ip: IPLike) -> bool:
        return self.lan_of(ip) is not None

    # -- membership / facilities ---------------------------------------------
    def members_of(self, ixp_id: int) -> frozenset[int]:
        return frozenset(self._members.get(ixp_id, ()))

    def exchanges_of(self, asn: int) -> frozenset[int]:
        return frozenset(
            ixp_id for ixp_id, members in self._members.items() if asn in members
        )

    def facility_cities(self, asn: int) -> frozenset[str]:
        """Candidate PoP cities for ``asn`` (Appendix D step 1)."""
        return frozenset(self._facs.get(asn, ()))


def peeringdb_from_scenario(
    scenario, facility_listing_rate: float = 0.85, seed: int = 5
) -> PeeringDB:
    """Build a PeeringDB snapshot from a scenario.

    All LAN memberships are listed (PeeringDB IX data is generally
    reliable); facility listings are sampled at ``facility_listing_rate``
    (operators under-register facilities), and networks configured without
    a PeeringDB presence (e.g. AT&T, §4.2) can be filtered by callers.
    """
    import random

    rng = random.Random(seed)
    ixlans = [
        IXLanRecord(
            ixp_id=ixp.ixp_id,
            name=ixp.name,
            city_code=ixp.city.code,
            lan=ixp.lan,
        )
        for ixp in scenario.ixps
    ]
    netixlans = [
        NetIXLanRecord(asn=member, ixp_id=ixp.ixp_id, ip=ixp.member_ip(member))
        for ixp in scenario.ixps
        for member in sorted(ixp.members)
    ]
    netfacs = []
    for label, cities in scenario.pop_footprints.items():
        asn = scenario.clouds.get(label) or scenario.transit_labels.get(label)
        if asn is None:
            continue
        for city in cities:
            if rng.random() < facility_listing_rate:
                netfacs.append(NetFacRecord(asn=asn, city_code=city.code))
    return PeeringDB(ixlans=ixlans, netixlans=netixlans, netfacs=netfacs)
