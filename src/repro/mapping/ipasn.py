"""Team-Cymru-style IP-to-ASN mapping (longest prefix match over BGP).

The real service answers from the global BGP table: an address resolves to
the origin AS of the longest announced prefix covering it.  Addresses in
unannounced space (many IXP LANs, §4.1/§5) get no answer — which is exactly
the failure mode that drove the paper's methodology changes.
"""

from __future__ import annotations

import ipaddress
from collections.abc import Iterable
from typing import Optional

IPLike = ipaddress.IPv4Address | str


class IpAsnService:
    """Longest-prefix-match resolver over announced prefixes."""

    def __init__(
        self,
        announcements: Iterable[tuple[ipaddress.IPv4Network, int]] = (),
    ) -> None:
        # prefixes bucketed by length; lookups probe longest-first
        self._by_length: dict[int, dict[int, int]] = {}
        for network, asn in announcements:
            self.announce(network, asn)

    def announce(self, network: ipaddress.IPv4Network, asn: int) -> None:
        """Register an announced prefix originated by ``asn``."""
        bucket = self._by_length.setdefault(network.prefixlen, {})
        key = int(network.network_address)
        existing = bucket.get(key)
        if existing is not None and existing != asn:
            raise ValueError(
                f"{network} already announced by AS{existing}"
            )
        bucket[key] = asn

    def withdraw(self, network: ipaddress.IPv4Network) -> None:
        """Remove an announcement (no-op if absent)."""
        self._by_length.get(network.prefixlen, {}).pop(
            int(network.network_address), None
        )

    def lookup(self, ip: IPLike) -> Optional[int]:
        """Origin ASN of the longest covering announced prefix, or None."""
        address = int(ipaddress.IPv4Address(ip))
        for length in sorted(self._by_length, reverse=True):
            mask = ((1 << length) - 1) << (32 - length) if length else 0
            asn = self._by_length[length].get(address & mask)
            if asn is not None:
                return asn
        return None

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_length.values())


def cymru_from_scenario(scenario) -> IpAsnService:
    """Build the Cymru view of a scenario: every AS prefix plus the
    *announced* IXP LANs (which resolve to the IXP's own ASN)."""
    service = IpAsnService()
    for asn, prefix in scenario.prefixes.items():
        service.announce(prefix, asn)
    for ixp in scenario.ixps:
        if ixp.announced:
            service.announce(ixp.lan, ixp.asn)
    return service
