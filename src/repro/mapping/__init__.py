"""IP-to-AS mapping services: Cymru-style LPM, PeeringDB, whois, cascade."""

from .ipasn import IpAsnService, cymru_from_scenario
from .peeringdb import (
    IXLanRecord,
    NetFacRecord,
    NetIXLanRecord,
    PeeringDB,
    peeringdb_from_scenario,
)
from .pfx2as import (
    Pfx2AsDataset,
    Pfx2AsEntry,
    Pfx2AsFormatError,
    dump_pfx2as,
    dumps_pfx2as,
    load_pfx2as,
    parse_pfx2as,
    pfx2as_from_dump,
)
from .resolver import (
    FINAL_ORDER,
    INITIAL_ORDER,
    IterativeResolver,
    ResolvedHop,
    resolver_from_scenario,
)
from .whois import WhoisRecord, WhoisRegistry, whois_from_scenario

__all__ = [
    "FINAL_ORDER",
    "INITIAL_ORDER",
    "IXLanRecord",
    "IpAsnService",
    "IterativeResolver",
    "NetFacRecord",
    "NetIXLanRecord",
    "PeeringDB",
    "Pfx2AsDataset",
    "Pfx2AsEntry",
    "Pfx2AsFormatError",
    "dump_pfx2as",
    "dumps_pfx2as",
    "load_pfx2as",
    "parse_pfx2as",
    "pfx2as_from_dump",
    "ResolvedHop",
    "WhoisRecord",
    "WhoisRegistry",
    "cymru_from_scenario",
    "peeringdb_from_scenario",
    "resolver_from_scenario",
    "whois_from_scenario",
]
