"""RouteViews-style prefix-to-AS dataset (the paper's reference [19]).

CAIDA publishes daily ``routeviews-prefix2as`` files derived from collector
RIBs: one line per routed prefix with its origin AS(es).  The paper uses
this dataset to pick one prefix per origin AS for its supplemental
traceroute campaign.  This module derives the same dataset from a
simulated collector dump, reads/writes the public text format
(``<prefix>\\t<length>\\t<asn>``, multi-origin ASes joined by ``_``,
AS-sets by ``,``), and implements the per-AS target selection.
"""

from __future__ import annotations

import ipaddress
import os
from collections import defaultdict
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from ..collectors.rib import CollectorDump

PathLike = Union[str, os.PathLike]


@dataclass(frozen=True)
class Pfx2AsEntry:
    """One routed prefix and its origin AS(es)."""

    prefix: ipaddress.IPv4Network
    origins: tuple[int, ...]  # >1 = MOAS (multi-origin AS) prefix

    @property
    def is_moas(self) -> bool:
        return len(self.origins) > 1


class Pfx2AsDataset:
    """Queryable prefix-to-AS snapshot."""

    def __init__(self, entries: list[Pfx2AsEntry] | None = None) -> None:
        self.entries = sorted(
            entries or [],
            key=lambda e: (int(e.prefix.network_address), e.prefix.prefixlen),
        )
        self._by_origin: dict[int, list[Pfx2AsEntry]] = defaultdict(list)
        for entry in self.entries:
            for origin in entry.origins:
                self._by_origin[origin].append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def origins(self) -> frozenset[int]:
        return frozenset(self._by_origin)

    def prefixes_of(self, asn: int) -> list[ipaddress.IPv4Network]:
        return [entry.prefix for entry in self._by_origin.get(asn, [])]

    def one_prefix_per_as(self) -> dict[int, ipaddress.IPv4Network]:
        """The paper's supplemental target selection: one prefix per
        origin AS (the numerically lowest routed prefix, deterministic)."""
        return {
            asn: entries[0].prefix
            for asn, entries in sorted(self._by_origin.items())
            if entries
        }

    def moas_prefixes(self) -> list[Pfx2AsEntry]:
        return [entry for entry in self.entries if entry.is_moas]


def pfx2as_from_dump(dump: CollectorDump) -> Pfx2AsDataset:
    """Derive the dataset from a collector RIB snapshot."""
    origins_by_prefix: dict[ipaddress.IPv4Network, set[int]] = defaultdict(set)
    for entry in dump.entries:
        origins_by_prefix[entry.prefix].add(entry.origin)
    return Pfx2AsDataset(
        [
            Pfx2AsEntry(prefix=prefix, origins=tuple(sorted(origins)))
            for prefix, origins in origins_by_prefix.items()
        ]
    )


def dumps_pfx2as(dataset: Pfx2AsDataset) -> str:
    """Serialize in the routeviews-prefix2as text format."""
    lines = []
    for entry in dataset.entries:
        asns = "_".join(str(asn) for asn in entry.origins)
        lines.append(
            f"{entry.prefix.network_address}\t{entry.prefix.prefixlen}\t{asns}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def dump_pfx2as(dataset: Pfx2AsDataset, path: PathLike) -> None:
    Path(path).write_text(dumps_pfx2as(dataset), encoding="utf-8")


class Pfx2AsFormatError(ValueError):
    """Raised on malformed pfx2as lines."""


def parse_pfx2as(text: str) -> Pfx2AsDataset:
    """Parse the routeviews-prefix2as text format."""
    entries = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        if len(fields) != 3:
            fields = line.split()
        if len(fields) != 3:
            raise Pfx2AsFormatError(f"line {lineno}: expected 3 fields")
        address, length, asn_field = fields
        try:
            prefix = ipaddress.IPv4Network(f"{address}/{int(length)}")
            # "_" joins MOAS origins; "," separates AS-set members —
            # flatten both, as CAIDA's tooling does
            origins = tuple(
                sorted(
                    int(token)
                    for chunk in asn_field.split("_")
                    for token in chunk.split(",")
                )
            )
        except ValueError as exc:
            raise Pfx2AsFormatError(f"line {lineno}: {exc}") from None
        if not origins:
            raise Pfx2AsFormatError(f"line {lineno}: no origins")
        entries.append(Pfx2AsEntry(prefix=prefix, origins=origins))
    return Pfx2AsDataset(entries)


def load_pfx2as(path: PathLike) -> Pfx2AsDataset:
    return parse_pfx2as(Path(path).read_text(encoding="utf-8"))
