"""The paper's iterative IP-to-AS resolution cascade (§4.1, §5).

The final methodology resolves each traceroute hop by consulting PeeringDB
first (peering LANs often use addresses that resolve wrongly — or not at
all — in BGP-derived data), then the Team Cymru service, then whois.  The
earlier methodology iterations used different orders; the order is a
constructor argument so the §5 ablation can replay the whole trajectory.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Optional

from .ipasn import IpAsnService
from .peeringdb import PeeringDB
from .whois import WhoisRegistry

IPLike = ipaddress.IPv4Address | str

#: The final (§5) resolution order.
FINAL_ORDER: tuple[str, ...] = ("peeringdb", "cymru", "whois")
#: The initial approach: BGP-derived mapping only.
INITIAL_ORDER: tuple[str, ...] = ("cymru",)


@dataclass(frozen=True)
class ResolvedHop:
    """Outcome of resolving one hop address."""

    asn: int
    source: str  # which service answered


class IterativeResolver:
    """Resolve addresses through an ordered cascade of services."""

    def __init__(
        self,
        cymru: IpAsnService,
        peeringdb: PeeringDB,
        whois: WhoisRegistry,
        order: tuple[str, ...] = FINAL_ORDER,
    ) -> None:
        unknown = set(order) - {"peeringdb", "cymru", "whois"}
        if unknown:
            raise ValueError(f"unknown resolution services: {sorted(unknown)}")
        if not order:
            raise ValueError("resolution order must not be empty")
        self.cymru = cymru
        self.peeringdb = peeringdb
        self.whois = whois
        self.order = tuple(order)

    def resolve(self, ip: IPLike) -> Optional[ResolvedHop]:
        """First successful resolution in cascade order, else ``None``."""
        for service in self.order:
            asn = self._query(service, ip)
            if asn is not None:
                return ResolvedHop(asn=asn, source=service)
        return None

    def _query(self, service: str, ip: IPLike) -> Optional[int]:
        if service == "peeringdb":
            return self.peeringdb.ip_to_asn(ip)
        if service == "cymru":
            return self.cymru.lookup(ip)
        return self.whois.lookup_asn(ip)


def resolver_from_scenario(
    scenario, order: tuple[str, ...] = FINAL_ORDER
) -> IterativeResolver:
    """Build the full cascade over a scenario's address plan."""
    from .ipasn import cymru_from_scenario
    from .peeringdb import peeringdb_from_scenario
    from .whois import whois_from_scenario

    return IterativeResolver(
        cymru=cymru_from_scenario(scenario),
        peeringdb=peeringdb_from_scenario(scenario),
        whois=whois_from_scenario(scenario),
        order=order,
    )
