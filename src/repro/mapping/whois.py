"""Whois registry over all allocated address space.

Unlike BGP-derived mapping, whois covers allocations that are never
announced — the paper manually resolved several such addresses (IXP LANs
like NL-IX's 193.238.116.0/22) through whois.  Resolution is slower and
coarser in practice, which is why the pipeline uses it last.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Optional

IPLike = ipaddress.IPv4Address | str


@dataclass(frozen=True)
class WhoisRecord:
    """One allocation: who holds this block."""

    network: ipaddress.IPv4Network
    org_name: str
    asn: Optional[int]  # registered origin, when the org operates an AS


class WhoisRegistry:
    """Exact-allocation registry with longest-match lookup."""

    def __init__(self, records: list[WhoisRecord] | None = None) -> None:
        self._records: list[WhoisRecord] = []
        for record in records or []:
            self.register(record)

    def register(self, record: WhoisRecord) -> None:
        self._records.append(record)
        self._records.sort(key=lambda r: -r.network.prefixlen)

    def lookup(self, ip: IPLike) -> Optional[WhoisRecord]:
        address = ipaddress.IPv4Address(ip)
        for record in self._records:
            if address in record.network:
                return record
        return None

    def lookup_asn(self, ip: IPLike) -> Optional[int]:
        record = self.lookup(ip)
        return record.asn if record else None

    def __len__(self) -> int:
        return len(self._records)


def whois_from_scenario(scenario) -> WhoisRegistry:
    """Registry covering every AS prefix and every IXP LAN (announced or
    not)."""
    registry = WhoisRegistry()
    for asn, prefix in scenario.prefixes.items():
        registry.register(
            WhoisRecord(
                network=prefix, org_name=scenario.name_of(asn), asn=asn
            )
        )
    for ixp in scenario.ixps:
        registry.register(
            WhoisRecord(network=ixp.lan, org_name=ixp.name, asn=ixp.asn)
        )
    return registry
