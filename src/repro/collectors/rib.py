"""BGP route collectors (RouteViews / RIPE-RIS style).

The CAIDA relationship data the paper consumes is inferred from AS paths
observed at public route collectors.  This module simulates the
collection step: monitor ASes peer with a collector and export their
tied-best path for every origin's prefix; the collector's RIB is the
resulting path table, serializable in an MRT-inspired pipe-separated text
format (``TABLE_DUMP2``-like) that round-trips through a parser.
"""

from __future__ import annotations

import ipaddress
import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Optional, TextIO

from ..bgpsim.cache import RoutingStateCache
from ..topology.asgraph import ASGraph


@dataclass(frozen=True)
class RibEntry:
    """One collector RIB row: a monitor's best path to a prefix."""

    peer_asn: int  # the monitor exporting the path
    prefix: ipaddress.IPv4Network
    as_path: tuple[int, ...]  # monitor first, origin last

    def __post_init__(self) -> None:
        if not self.as_path:
            raise ValueError("empty AS path")
        if self.as_path[0] != self.peer_asn:
            raise ValueError("AS path must start at the peer ASN")

    @property
    def origin(self) -> int:
        return self.as_path[-1]


@dataclass
class CollectorDump:
    """A collector's full RIB snapshot."""

    entries: list[RibEntry] = field(default_factory=list)

    def paths(self) -> list[tuple[int, ...]]:
        return [entry.as_path for entry in self.entries]

    def monitors(self) -> frozenset[int]:
        return frozenset(entry.peer_asn for entry in self.entries)

    def origins(self) -> frozenset[int]:
        return frozenset(entry.origin for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


def collect_ribs(
    graph: ASGraph,
    monitors: Iterable[int],
    prefixes: dict[int, ipaddress.IPv4Network],
    origins: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
    cache: Optional[RoutingStateCache] = None,
    workers: int | str | None = None,
    engine: Optional[str] = None,
    batch: Optional[int] = None,
) -> CollectorDump:
    """Simulate a collector RIB: each monitor's tied-best path per origin.

    Ties are broken by a deterministic walk over the best-path DAG (the
    supplied ``rng`` picks among tied parents), mirroring the fact that a
    real monitor exports exactly one best path.  ``workers`` parallelizes
    and ``batch`` bit-parallelizes the per-origin propagations (one sweep
    per batch of origins); the tie-breaking walk stays serial and uses the
    per-AS route accessor, so the RNG stream (and the dump) is identical
    for any worker count, batch width, or engine.
    """
    rng = rng or random.Random(0)
    if cache is None:
        cache = RoutingStateCache(graph, engine=engine, batch=batch)
    monitors = sorted(set(monitors))
    if origins is None:
        origins = sorted(graph.nodes())
    dump = CollectorDump()
    for origin, state in cache.states_for_many(
        (origin for origin in origins if origin in prefixes),
        workers=workers,
        batch=batch,
    ):
        for monitor in monitors:
            if monitor == origin:
                continue
            route = state.route(monitor)
            if route is None:
                continue
            path = [monitor]
            node = monitor
            while node != origin:
                node = rng.choice(sorted(state.route(node).parents))
                path.append(node)
            dump.entries.append(
                RibEntry(
                    peer_asn=monitor,
                    prefix=prefixes[origin],
                    as_path=tuple(path),
                )
            )
    return dump


# ---------------------------------------------------------------------------
# MRT-inspired text serialization
# ---------------------------------------------------------------------------

_RECORD_TYPE = "TABLE_DUMP2"


def dump_mrt(dump: CollectorDump, handle: TextIO, timestamp: int = 0) -> None:
    """Write a dump in the pipe-separated text form bgpdump emits."""
    for entry in dump.entries:
        path = " ".join(str(asn) for asn in entry.as_path)
        handle.write(
            f"{_RECORD_TYPE}|{timestamp}|B|0.0.0.0|{entry.peer_asn}|"
            f"{entry.prefix}|{path}|IGP\n"
        )


def dumps_mrt(dump: CollectorDump, timestamp: int = 0) -> str:
    import io

    buffer = io.StringIO()
    dump_mrt(dump, buffer, timestamp)
    return buffer.getvalue()


class MrtFormatError(ValueError):
    """Raised on malformed collector-dump lines."""


def parse_mrt_line(line: str, lineno: int = 0) -> RibEntry:
    fields = line.strip().split("|")
    if len(fields) != 8 or fields[0] != _RECORD_TYPE:
        raise MrtFormatError(f"line {lineno}: malformed record: {line!r}")
    try:
        peer_asn = int(fields[4])
        prefix = ipaddress.IPv4Network(fields[5])
        as_path = tuple(int(asn) for asn in fields[6].split())
    except ValueError as exc:
        raise MrtFormatError(f"line {lineno}: {exc}") from None
    return RibEntry(peer_asn=peer_asn, prefix=prefix, as_path=as_path)


def parse_mrt(text: str) -> CollectorDump:
    dump = CollectorDump()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        dump.entries.append(parse_mrt_line(line, lineno))
    return dump
