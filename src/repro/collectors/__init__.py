"""Route-collector simulation (RouteViews/RIS-style RIB snapshots)."""

from .rib import (
    CollectorDump,
    MrtFormatError,
    RibEntry,
    collect_ribs,
    dump_mrt,
    dumps_mrt,
    parse_mrt,
    parse_mrt_line,
)

__all__ = [
    "CollectorDump",
    "MrtFormatError",
    "RibEntry",
    "collect_ribs",
    "dump_mrt",
    "dumps_mrt",
    "parse_mrt",
    "parse_mrt_line",
]
