"""Tier-1 clique and Tier-2 ISP identification.

The paper takes its Tier-1 and Tier-2 lists from prior relationship-inference
work (AS-Rank / ProbLink).  Those systems identify the Tier-1s as a maximal
clique of mutually peering high-transit-degree ASes, and the Tier-2s as the
next stratum of large transit providers below the clique.  We implement the
same constructions so that tier membership can be inferred from any input
graph; synthetic scenarios additionally carry ground-truth tier sets that
these functions are validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .asgraph import ASGraph


@dataclass(frozen=True)
class TierAssignment:
    """Tier-1 and Tier-2 AS sets for a topology."""

    tier1: frozenset[int]
    tier2: frozenset[int]

    def __post_init__(self) -> None:
        if self.tier1 & self.tier2:
            raise ValueError("tier1 and tier2 sets overlap")

    @property
    def hierarchy(self) -> frozenset[int]:
        """The full set of transit-hierarchy ASes to bypass (T1 ∪ T2)."""
        return self.tier1 | self.tier2


def infer_tier1_clique(graph: ASGraph, candidates: int = 50) -> frozenset[int]:
    """Infer the Tier-1 clique as in AS-Rank's clique construction.

    Rank ASes by transit degree; seed with the top-ranked AS that has no
    providers, then greedily admit the next-ranked provider-free AS that
    peers with every AS already in the clique.
    """
    ranked = sorted(
        (asn for asn in graph if not graph.providers(asn)),
        key=lambda a: (-graph.transit_degree(a), a),
    )[:candidates]
    clique: list[int] = []
    for asn in ranked:
        peers = graph.peers(asn)
        if all(member in peers for member in clique):
            clique.append(asn)
    return frozenset(clique)


def infer_tier2(
    graph: ASGraph,
    tier1: frozenset[int],
    count: int = 25,
    min_tier1_adjacency: int = 2,
) -> frozenset[int]:
    """Infer Tier-2 ISPs: the largest transit providers below the clique.

    A Tier-2 is a non-Tier-1 transit provider adjacent (as customer or peer)
    to at least ``min_tier1_adjacency`` Tier-1s; the ``count`` with the
    highest transit degree qualify.
    """
    scored: list[tuple[int, int]] = []
    for asn in graph:
        if asn in tier1 or graph.is_stub(asn):
            continue
        adjacency = len((graph.peers(asn) | graph.providers(asn)) & tier1)
        if adjacency >= min_tier1_adjacency:
            scored.append((graph.transit_degree(asn), asn))
    scored.sort(key=lambda item: (-item[0], item[1]))
    return frozenset(asn for _, asn in scored[:count])


def infer_tiers(
    graph: ASGraph, tier2_count: int = 25, min_tier1_adjacency: int = 2
) -> TierAssignment:
    """Infer both tiers from graph structure alone."""
    tier1 = infer_tier1_clique(graph)
    tier2 = infer_tier2(
        graph, tier1, count=tier2_count, min_tier1_adjacency=min_tier1_adjacency
    )
    return TierAssignment(tier1=tier1, tier2=tier2)


@dataclass
class TierListBuilder:
    """Accumulates curated tier lists (the paper merges two algorithms'
    cliques); resolves conflicts in favour of Tier-1."""

    _tier1: set[int] = field(default_factory=set)
    _tier2: set[int] = field(default_factory=set)

    def add_tier1(self, *asns: int) -> "TierListBuilder":
        self._tier1.update(asns)
        self._tier2.difference_update(asns)
        return self

    def add_tier2(self, *asns: int) -> "TierListBuilder":
        self._tier2.update(a for a in asns if a not in self._tier1)
        return self

    def build(self) -> TierAssignment:
        return TierAssignment(frozenset(self._tier1), frozenset(self._tier2))
