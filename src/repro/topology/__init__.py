"""AS-level topology substrate: graph, relationships, CAIDA I/O, tiers."""

from .asgraph import ASGraph, RelationshipConflictError
from .augment import AugmentationReport, augment_with_neighbors
from .astype import (
    ASType,
    RawASType,
    classify_graph,
    classify_structural,
    classify_with_users,
    refine_with_users,
    type_breakdown,
)
from .caida import (
    CaidaFormatError,
    dump_graph,
    dumps_graph,
    iter_records,
    load_graph,
    parse_graph,
    parse_line,
)
from .relationships import Relationship, RelationshipRecord
from .tiers import (
    TierAssignment,
    TierListBuilder,
    infer_tier1_clique,
    infer_tier2,
    infer_tiers,
)
# imported last: visibility depends on repro.core, which imports the
# submodules above
from .visibility import (
    invisible_peering_fraction,
    marginal_monitor_gain,
    rank_monitor_candidates,
    visible_edges,
    visible_subgraph,
)

__all__ = [
    "ASGraph",
    "ASType",
    "AugmentationReport",
    "CaidaFormatError",
    "RawASType",
    "Relationship",
    "RelationshipConflictError",
    "RelationshipRecord",
    "TierAssignment",
    "TierListBuilder",
    "augment_with_neighbors",
    "classify_graph",
    "classify_structural",
    "classify_with_users",
    "dump_graph",
    "dumps_graph",
    "infer_tier1_clique",
    "infer_tier2",
    "infer_tiers",
    "invisible_peering_fraction",
    "iter_records",
    "load_graph",
    "marginal_monitor_gain",
    "rank_monitor_candidates",
    "visible_edges",
    "visible_subgraph",
    "parse_graph",
    "parse_line",
    "refine_with_users",
    "type_breakdown",
]
