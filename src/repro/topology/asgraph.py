"""The AS-level topology graph.

``ASGraph`` is the substrate every analysis in this package runs on.  It
stores, per AS, its provider / customer / peer neighbor sets, and offers the
graph-shape queries the paper's metrics need (transit degree, node degree,
stub tests) plus mutation operations used when augmenting a BGP-derived graph
with traceroute-inferred peerings (§4.1 of the paper).

Relationship semantics follow the valley-free model: a provider carries its
customer's traffic anywhere; peers exchange traffic only for themselves and
their customer cones.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Optional

from .relationships import Relationship, RelationshipRecord


class RelationshipConflictError(ValueError):
    """Raised when adding an edge that contradicts an existing edge."""


class ASGraph:
    """Mutable AS-level topology with p2c and p2p edges.

    AS numbers are plain ``int``s.  An AS exists in the graph once it appears
    in any edge or was added via :meth:`add_as`.
    """

    def __init__(self) -> None:
        self._providers: dict[int, set[int]] = {}
        self._customers: dict[int, set[int]] = {}
        self._peers: dict[int, set[int]] = {}
        # topology version and the compiled snapshot built at that version;
        # every mutation bumps the version so compile() never serves a
        # stale CompiledGraph
        self._version: int = 0
        self._compiled = None
        self._compiled_version: int = -1
        # ASes whose adjacency rows changed since the compiled snapshot
        # was built; None means "not patchable" (node set changed, log
        # overflowed, or no snapshot yet) and forces a full recompile
        self._dirty: Optional[set[int]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_as(self, asn: int) -> None:
        """Ensure ``asn`` exists in the graph (possibly with no edges)."""
        if asn < 0:
            raise ValueError("AS numbers must be non-negative")
        if asn not in self._providers:
            self._providers[asn] = set()
            self._customers[asn] = set()
            self._peers[asn] = set()
            self._version += 1
            self._dirty = None  # node set changed: CSR shape is different

    def add_p2c(self, provider: int, customer: int) -> None:
        """Add a provider→customer (transit) edge."""
        if provider == customer:
            raise ValueError(f"self-relationship for AS{provider}")
        if self.relationship_between(provider, customer) not in (
            None,
            Relationship.PROVIDER_CUSTOMER,
        ) or customer in self._providers.get(provider, ()):
            raise RelationshipConflictError(
                f"conflicting relationship between AS{provider} and AS{customer}"
            )
        self.add_as(provider)
        self.add_as(customer)
        self._customers[provider].add(customer)
        self._providers[customer].add(provider)
        self._version += 1
        self._mark_dirty(provider, customer)

    def add_p2p(self, a: int, b: int) -> None:
        """Add a settlement-free peering edge."""
        if a == b:
            raise ValueError(f"self-relationship for AS{a}")
        existing = self.relationship_between(a, b)
        if existing is Relationship.PROVIDER_CUSTOMER:
            raise RelationshipConflictError(
                f"AS{a} and AS{b} already have a transit relationship"
            )
        self.add_as(a)
        self.add_as(b)
        self._peers[a].add(b)
        self._peers[b].add(a)
        self._version += 1
        self._mark_dirty(a, b)

    def add_record(self, record: RelationshipRecord) -> None:
        """Add an edge from a :class:`RelationshipRecord`."""
        if record.relationship is Relationship.PROVIDER_CUSTOMER:
            self.add_p2c(record.left, record.right)
        else:
            self.add_p2p(record.left, record.right)

    def remove_edge(self, a: int, b: int) -> None:
        """Remove whatever edge exists between ``a`` and ``b``."""
        rel = self.relationship_between(a, b)
        if rel is None:
            raise KeyError(f"no edge between AS{a} and AS{b}")
        if rel is Relationship.PEER_PEER:
            self._peers[a].discard(b)
            self._peers[b].discard(a)
        elif b in self._customers[a]:
            self._customers[a].discard(b)
            self._providers[b].discard(a)
        else:
            self._customers[b].discard(a)
            self._providers[a].discard(b)
        self._version += 1
        self._mark_dirty(a, b)

    #: dirty-row cap past which compile() rebuilds the CSR from scratch
    _DIRTY_LIMIT = 256

    def _mark_dirty(self, *asns: int) -> None:
        if self._dirty is None:
            return
        self._dirty.update(asns)
        if len(self._dirty) > self._DIRTY_LIMIT:
            self._dirty = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, asn: int) -> bool:
        return asn in self._providers

    def __len__(self) -> int:
        return len(self._providers)

    def __iter__(self) -> Iterator[int]:
        return iter(self._providers)

    def nodes(self) -> list[int]:
        """All AS numbers in the graph."""
        return list(self._providers)

    def providers(self, asn: int) -> frozenset[int]:
        """Transit providers of ``asn``."""
        return frozenset(self._providers[asn])

    def customers(self, asn: int) -> frozenset[int]:
        """Transit customers of ``asn``."""
        return frozenset(self._customers[asn])

    def peers(self, asn: int) -> frozenset[int]:
        """Settlement-free peers of ``asn``."""
        return frozenset(self._peers[asn])

    def neighbors(self, asn: int) -> frozenset[int]:
        """All neighbors regardless of relationship."""
        return frozenset(
            self._providers[asn] | self._customers[asn] | self._peers[asn]
        )

    def relationship_between(self, a: int, b: int) -> Optional[Relationship]:
        """Relationship on the edge a—b, or ``None`` if not adjacent."""
        if a not in self._providers or b not in self._providers:
            return None
        if b in self._peers[a]:
            return Relationship.PEER_PEER
        if b in self._customers[a] or b in self._providers[a]:
            return Relationship.PROVIDER_CUSTOMER
        return None

    def degree(self, asn: int) -> int:
        """Node degree: number of unique neighbors."""
        return len(self.neighbors(asn))

    def transit_degree(self, asn: int) -> int:
        """Transit degree per AS-Rank: unique neighbors on transit edges."""
        return len(self._providers[asn] | self._customers[asn])

    def is_stub(self, asn: int) -> bool:
        """A stub AS provides transit to nobody."""
        return not self._customers[asn]

    def edge_count(self) -> int:
        """Number of undirected edges (each p2c / p2p pair counted once)."""
        transit = sum(len(c) for c in self._customers.values())
        peering = sum(len(p) for p in self._peers.values()) // 2
        return transit + peering

    def records(self) -> Iterator[RelationshipRecord]:
        """Iterate all edges as canonical records (deterministic order)."""
        for provider in sorted(self._customers):
            for customer in sorted(self._customers[provider]):
                yield RelationshipRecord(
                    provider, customer, Relationship.PROVIDER_CUSTOMER
                )
        for a in sorted(self._peers):
            for b in sorted(self._peers[a]):
                if a < b:
                    yield RelationshipRecord(a, b, Relationship.PEER_PEER)

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(self):
        """Freeze the graph into a :class:`~repro.bgpsim.compiled.CompiledGraph`.

        The compiled snapshot (dense integer-indexed CSR adjacency arrays)
        is cached and reused while the topology is unchanged; any mutation
        (:meth:`add_as`, :meth:`add_p2c`, :meth:`add_p2p`,
        :meth:`remove_edge`, and everything built on them, e.g. the
        traceroute augmentation path) invalidates the cache so the next
        call recompiles.  Previously returned snapshots stay valid as
        immutable views of the topology at the time they were built.

        Edge mutations that keep the node set intact are tracked as a
        dirty-row log, and the recompile *patches* the previous snapshot
        — only the touched adjacency rows are rebuilt — so event-driven
        timelines (``repro.bgpsim.events``) pay per-event compile costs
        proportional to the event, not the graph.  Node additions, or
        more than ``_DIRTY_LIMIT`` touched ASes, fall back to a full
        rebuild; both paths produce identical arrays
        (``tests/test_timeline_properties.py``).
        """
        if self._compiled is None or self._compiled_version != self._version:
            from ..bgpsim.compiled import CompiledGraph

            if self._compiled is not None and self._dirty is not None:
                self._compiled = CompiledGraph.patched(
                    self, self._compiled, self._dirty
                )
            else:
                self._compiled = CompiledGraph.from_graph(self)
            self._compiled_version = self._version
            self._dirty = set()
        return self._compiled

    def __getstate__(self) -> dict:
        # never ship the compiled snapshot alongside the adjacency dicts —
        # workers that want it compile (or receive) it separately
        state = self.__dict__.copy()
        state["_compiled"] = None
        state["_compiled_version"] = -1
        state["_dirty"] = None
        return state

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "ASGraph":
        """Deep copy of the graph."""
        other = ASGraph()
        for asn in self._providers:
            other.add_as(asn)
            other._providers[asn] = set(self._providers[asn])
            other._customers[asn] = set(self._customers[asn])
            other._peers[asn] = set(self._peers[asn])
        return other

    def without(self, excluded: Iterable[int]) -> "ASGraph":
        """Copy of the graph with ``excluded`` ASes (and their edges) removed.

        Most algorithms take an ``excluded`` set directly instead of
        materializing the subgraph; this exists for interoperability and
        tests.
        """
        excluded_set = set(excluded)
        other = ASGraph()
        for asn in self._providers:
            if asn in excluded_set:
                continue
            other.add_as(asn)
            other._providers[asn] = self._providers[asn] - excluded_set
            other._customers[asn] = self._customers[asn] - excluded_set
            other._peers[asn] = self._peers[asn] - excluded_set
        return other

    def validate(self) -> None:
        """Check internal consistency; raises ``AssertionError`` on damage."""
        for asn in self._providers:
            for p in self._providers[asn]:
                assert asn in self._customers[p], (asn, p)
            for c in self._customers[asn]:
                assert asn in self._providers[c], (asn, c)
            for q in self._peers[asn]:
                assert asn in self._peers[q], (asn, q)
            assert not (self._peers[asn] & self._providers[asn])
            assert not (self._peers[asn] & self._customers[asn])
            assert not (self._providers[asn] & self._customers[asn]), asn
            assert asn not in self._providers[asn]
            assert asn not in self._peers[asn]
