"""AS relationship primitives.

The AS-level Internet is modeled with the two conventional business
relationship types (Gao 2001): customer-to-provider (c2p / p2c depending on
perspective) and peer-to-peer (p2p).  The CAIDA relationship files encode
these as ``-1`` (provider-customer) and ``0`` (peer-peer); we keep the same
values so records round-trip through the file formats unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Relationship(enum.IntEnum):
    """Business relationship between two ASes, in CAIDA encoding."""

    PROVIDER_CUSTOMER = -1
    PEER_PEER = 0

    @classmethod
    def from_value(cls, value: int) -> "Relationship":
        """Parse a CAIDA relationship code, rejecting unknown codes."""
        try:
            return cls(value)
        except ValueError as exc:
            raise ValueError(f"unknown relationship code: {value!r}") from exc


@dataclass(frozen=True, slots=True)
class RelationshipRecord:
    """One edge of the AS graph as it appears in a relationship file.

    For ``PROVIDER_CUSTOMER`` records, ``left`` is the provider and ``right``
    the customer (CAIDA convention).  For ``PEER_PEER`` the order carries no
    meaning.
    """

    left: int
    right: int
    relationship: Relationship
    source: str = ""

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise ValueError(f"self-relationship for AS{self.left}")
        if self.left < 0 or self.right < 0:
            raise ValueError("AS numbers must be non-negative")

    @property
    def is_transit(self) -> bool:
        """True if this is a provider-customer (transit) edge."""
        return self.relationship is Relationship.PROVIDER_CUSTOMER

    def normalized(self) -> "RelationshipRecord":
        """Return a canonical form: peer edges ordered by ASN."""
        if self.relationship is Relationship.PEER_PEER and self.left > self.right:
            return RelationshipRecord(
                self.right, self.left, self.relationship, self.source
            )
        return self
