"""Augmenting a BGP-derived AS graph with traceroute-inferred neighbors.

§4.1 of the paper: BGP feeds see c2p links well but miss nearly all edge
peerings, so neighbors discovered in traceroutes from the cloud are added to
the graph **as p2p links**, and a link already present in the CAIDA data
keeps its original type.  ``augment_with_neighbors`` implements exactly that
rule and reports what it did.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from .asgraph import ASGraph


@dataclass
class AugmentationReport:
    """Outcome of merging traceroute neighbors into a BGP graph."""

    added_p2p: dict[int, set[int]] = field(default_factory=dict)
    already_present: dict[int, set[int]] = field(default_factory=dict)
    unknown_neighbors: dict[int, set[int]] = field(default_factory=dict)

    def added_count(self, cloud_asn: int) -> int:
        return len(self.added_p2p.get(cloud_asn, ()))

    def total_neighbors(self, graph: ASGraph, cloud_asn: int) -> int:
        return graph.degree(cloud_asn)


def augment_with_neighbors(
    graph: ASGraph,
    inferred_neighbors: Mapping[int, Iterable[int]],
    add_unknown_ases: bool = True,
) -> AugmentationReport:
    """Merge traceroute-inferred ``{cloud_asn: neighbors}`` into ``graph``.

    Mutates ``graph`` in place.  New adjacencies become p2p; existing
    adjacencies keep their BGP-derived type.  Neighbors absent from the graph
    are added as new ASes when ``add_unknown_ases`` (they exist — the BGP
    feeds simply never saw them) and recorded either way.
    """
    report = AugmentationReport()
    for cloud_asn, neighbors in inferred_neighbors.items():
        added = report.added_p2p.setdefault(cloud_asn, set())
        present = report.already_present.setdefault(cloud_asn, set())
        unknown = report.unknown_neighbors.setdefault(cloud_asn, set())
        for neighbor in neighbors:
            if neighbor == cloud_asn:
                continue
            if neighbor not in graph:
                unknown.add(neighbor)
                if not add_unknown_ases:
                    continue
            if graph.relationship_between(cloud_asn, neighbor) is not None:
                present.add(neighbor)
                continue
            graph.add_p2p(cloud_asn, neighbor)
            added.add(neighbor)
    return report
