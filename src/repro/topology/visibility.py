"""BGP monitor visibility analysis (§2.3, §4.1).

A p2p link is exported only into the two peers' customer cones, so a BGP
monitor observes it only from inside one of those cones; c2p links are
announced upward and are near-universally visible.  This module implements
that visibility rule and the questions the paper's measurement argument
rests on: which subgraph do the feeds see, how much cloud peering is
invisible, and how much a new monitor would add.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from .asgraph import ASGraph
from .relationships import RelationshipRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.reachability import ConeEngine


def _engine(graph: ASGraph) -> "ConeEngine":
    # imported lazily: repro.core depends on repro.topology's submodules
    from ..core.reachability import ConeEngine

    return ConeEngine(graph)


def visible_edges(
    graph: ASGraph,
    monitors: Iterable[int],
    engine: "ConeEngine | None" = None,
) -> list[RelationshipRecord]:
    """Edges a set of BGP monitors can observe.

    Transit edges are always visible; a peering edge is visible iff a
    monitor sits at (or below, in the customer cone of) either endpoint.
    """
    if engine is None:
        engine = _engine(graph)
    monitor_mask = engine.mask_of(monitors)
    records = []
    for record in graph.records():
        if record.is_transit:
            records.append(record)
            continue
        cones = engine.cone_mask(record.left) | engine.cone_mask(record.right)
        if cones & monitor_mask:
            records.append(record)
    return records


def visible_subgraph(
    graph: ASGraph,
    monitors: Iterable[int],
    engine: "ConeEngine | None" = None,
) -> ASGraph:
    """The public (CAIDA-style) view of ``graph`` from ``monitors``.

    Keeps every AS as a node (relationship files list all ASes appearing
    in any visible edge; isolated edge ASes simply look degree-poor).
    """
    public = ASGraph()
    for record in visible_edges(graph, monitors, engine):
        public.add_record(record)
    for asn in graph:
        public.add_as(asn)
    return public


def invisible_peering_fraction(
    graph: ASGraph,
    monitors: Iterable[int],
    asn: int,
    engine: "ConeEngine | None" = None,
) -> float:
    """Fraction of ``asn``'s peerings invisible to the monitors (the
    paper's '90% of Google/Microsoft peers are missed by BGP feeds')."""
    if engine is None:
        engine = _engine(graph)
    monitor_mask = engine.mask_of(monitors)
    peers = graph.peers(asn)
    if not peers:
        return 0.0
    own_cone = engine.cone_mask(asn)
    invisible = 0
    for peer in peers:
        if not ((own_cone | engine.cone_mask(peer)) & monitor_mask):
            invisible += 1
    return invisible / len(peers)


def marginal_monitor_gain(
    graph: ASGraph,
    monitors: Iterable[int],
    candidate: int,
    engine: "ConeEngine | None" = None,
) -> int:
    """How many additional edges ``candidate`` would reveal as a monitor."""
    if engine is None:
        engine = _engine(graph)
    current = {
        (r.left, r.right)
        for r in visible_edges(graph, monitors, engine)
    }
    extended = {
        (r.left, r.right)
        for r in visible_edges(graph, set(monitors) | {candidate}, engine)
    }
    return len(extended - current)


def rank_monitor_candidates(
    graph: ASGraph,
    monitors: Iterable[int],
    candidates: Iterable[int],
    engine: "ConeEngine | None" = None,
    top: int = 10,
) -> list[tuple[int, int]]:
    """Candidates ranked by marginal visibility gain (descending).

    Quantifies the paper's observation that VPs inside edge/cloud networks
    are what traditional mapping lacks: edge candidates reveal far more
    new links than yet another transit monitor.
    """
    if engine is None:
        engine = _engine(graph)
    monitors = set(monitors)
    scored = [
        (marginal_monitor_gain(graph, monitors, candidate, engine), candidate)
        for candidate in candidates
        if candidate not in monitors
    ]
    scored.sort(key=lambda item: (-item[0], item[1]))
    return [(candidate, gain) for gain, candidate in scored[:top]]
