"""Readers and writers for CAIDA AS-relationship files.

Two formats are supported, matching the public datasets the paper uses:

* **serial-1** (``YYYYMMDD.as-rel.txt``): ``<provider>|<customer>|-1`` and
  ``<peer>|<peer>|0`` lines, with ``#`` comments.  The September 2015
  snapshot the paper's retrospective uses is in this format.
* **serial-2** (``YYYYMMDD.as-rel2.txt``): the same, plus a fourth ``source``
  field (``bgp`` or ``mlp``).  The September 2020 snapshot is serial-2.

Files may be plain text or bz2-compressed (CAIDA publishes ``.bz2``).
"""

from __future__ import annotations

import bz2
import io
import os
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import TextIO, Union

from .asgraph import ASGraph
from .relationships import Relationship, RelationshipRecord

PathLike = Union[str, os.PathLike]


class CaidaFormatError(ValueError):
    """Raised when a relationship file line cannot be parsed."""

    def __init__(self, lineno: int, line: str, reason: str) -> None:
        super().__init__(f"line {lineno}: {reason}: {line!r}")
        self.lineno = lineno
        self.line = line
        self.reason = reason


def _open_text(path: PathLike) -> TextIO:
    path = Path(path)
    if path.suffix == ".bz2":
        return io.TextIOWrapper(bz2.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def parse_line(line: str, lineno: int = 0) -> RelationshipRecord:
    """Parse one non-comment relationship line (serial-1 or serial-2)."""
    fields = line.strip().split("|")
    if len(fields) not in (3, 4):
        raise CaidaFormatError(lineno, line, "expected 3 or 4 |-separated fields")
    try:
        left, right, rel_value = int(fields[0]), int(fields[1]), int(fields[2])
    except ValueError:
        raise CaidaFormatError(lineno, line, "non-integer field") from None
    try:
        rel = Relationship.from_value(rel_value)
    except ValueError:
        raise CaidaFormatError(lineno, line, "unknown relationship code") from None
    source = fields[3] if len(fields) == 4 else ""
    try:
        return RelationshipRecord(left, right, rel, source)
    except ValueError as exc:
        raise CaidaFormatError(lineno, line, str(exc)) from None


def iter_records(lines: Iterable[str]) -> Iterator[RelationshipRecord]:
    """Yield records from an iterable of raw lines, skipping comments."""
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield parse_line(line, lineno)


def load_graph(path: PathLike) -> ASGraph:
    """Load an :class:`ASGraph` from a serial-1/serial-2 file (optionally bz2).

    Duplicate edges are tolerated; a line contradicting an earlier line
    (e.g. p2p after p2c for the same pair) raises.
    """
    graph = ASGraph()
    with _open_text(path) as handle:
        for record in iter_records(handle):
            _add_tolerant(graph, record)
    return graph


def parse_graph(text: str) -> ASGraph:
    """Load an :class:`ASGraph` from relationship-file text."""
    graph = ASGraph()
    for record in iter_records(text.splitlines()):
        _add_tolerant(graph, record)
    return graph


def _add_tolerant(graph: ASGraph, record: RelationshipRecord) -> None:
    existing = graph.relationship_between(record.left, record.right)
    if existing is record.relationship:
        if record.relationship is Relationship.PEER_PEER:
            return
        if record.right in graph.customers(record.left):
            return  # exact duplicate p2c line
    graph.add_record(record)


def dump_graph(
    graph: ASGraph,
    path: PathLike,
    serial: int = 2,
    source: str = "bgp",
    header: str = "",
) -> None:
    """Write ``graph`` in CAIDA serial-1 (3 fields) or serial-2 (4 fields)."""
    if serial not in (1, 2):
        raise ValueError("serial must be 1 or 2")
    path = Path(path)
    opener = bz2.open if path.suffix == ".bz2" else open
    with opener(path, "wt", encoding="utf-8") as handle:  # type: ignore[operator]
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for record in graph.records():
            fields = [
                str(record.left),
                str(record.right),
                str(int(record.relationship)),
            ]
            if serial == 2:
                fields.append(record.source or source)
            handle.write("|".join(fields) + "\n")


def dumps_graph(graph: ASGraph, serial: int = 2, source: str = "bgp") -> str:
    """Return the relationship-file text for ``graph``."""
    lines = []
    for record in graph.records():
        fields = [
            str(record.left),
            str(record.right),
            str(int(record.relationship)),
        ]
        if serial == 2:
            fields.append(record.source or source)
        lines.append("|".join(fields))
    return "\n".join(lines) + ("\n" if lines else "")
