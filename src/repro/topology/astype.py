"""AS type classification (content / access / transit / enterprise).

CAIDA's AS-classification dataset buckets ASes into *content*,
*transit/access*, and *enterprise*.  The paper refines this with APNIC user
estimates: a transit/access AS that hosts users in the APNIC dataset is
re-labeled *access* (§4.3), yielding the four categories of Fig. 4.

``classify_graph`` reproduces a CAIDA-style structural classification for
topologies without an external label file, and ``refine_with_users`` applies
the paper's APNIC refinement.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping

from .asgraph import ASGraph


class ASType(enum.Enum):
    """Four-way AS classification used in the unreachable-networks analysis."""

    CONTENT = "content"
    ACCESS = "access"
    TRANSIT = "transit"
    ENTERPRISE = "enterprise"


#: CAIDA's raw three-way labels, before the APNIC refinement.
class RawASType(enum.Enum):
    CONTENT = "content"
    TRANSIT_ACCESS = "transit/access"
    ENTERPRISE = "enterprise"


def classify_structural(graph: ASGraph, asn: int, peering_rich: int = 8) -> RawASType:
    """CAIDA-style structural guess for one AS.

    Transit providers (any customers) are transit/access.  Stubs with a rich
    peering fan-out look like content networks; other stubs are enterprises.
    """
    if graph.customers(asn):
        return RawASType.TRANSIT_ACCESS
    if len(graph.peers(asn)) >= peering_rich:
        return RawASType.CONTENT
    return RawASType.ENTERPRISE


def classify_graph(graph: ASGraph, peering_rich: int = 8) -> dict[int, RawASType]:
    """Structurally classify every AS in the graph."""
    return {asn: classify_structural(graph, asn, peering_rich) for asn in graph}


def refine_with_users(
    raw: Mapping[int, RawASType],
    users_per_as: Mapping[int, int],
) -> dict[int, ASType]:
    """Apply the paper's APNIC refinement (§4.3).

    Any AS hosting users is an eyeball and is labeled ACCESS (CAIDA labels
    real eyeball ISPs transit/access because they carry customers; a
    structural classifier sees stub eyeballs as enterprises, so the user
    signal takes precedence here).  transit/access without users → TRANSIT;
    remaining content and enterprise labels pass through.
    """
    refined: dict[int, ASType] = {}
    for asn, label in raw.items():
        if users_per_as.get(asn, 0) > 0 and label is not RawASType.CONTENT:
            refined[asn] = ASType.ACCESS
        elif label is RawASType.CONTENT:
            refined[asn] = ASType.CONTENT
        elif label is RawASType.ENTERPRISE:
            refined[asn] = ASType.ENTERPRISE
        else:
            refined[asn] = ASType.TRANSIT
    return refined


def classify_with_users(
    graph: ASGraph,
    users_per_as: Mapping[int, int],
    peering_rich: int = 8,
) -> dict[int, ASType]:
    """Full pipeline: structural classification then APNIC refinement."""
    return refine_with_users(classify_graph(graph, peering_rich), users_per_as)


def type_breakdown(
    asns: frozenset[int] | set[int],
    types: Mapping[int, ASType],
) -> dict[ASType, int]:
    """Count members of ``asns`` per type (ASes without a label are skipped)."""
    counts = {t: 0 for t in ASType}
    for asn in asns:
        label = types.get(asn)
        if label is not None:
            counts[label] += 1
    return counts
