"""Active router geolocation (Appendix D).

The paper geolocates traceroute IPs with a RIPE-IPmap-style technique:

1. derive *candidate* ⟨facility, city⟩ locations for the address's AS from
   PeeringDB, filtered by rDNS location hints when present;
2. for each candidate city, pick a RIPE-Atlas-style vantage point within
   40 km whose AS is present at the facility (or in the customer cone of
   one that is), skipping VPs with suspicious self-reported locations;
3. ping the address from each VP; an RTT ≤ 1 ms pins the address to the
   VP's city (≤ ~100 km at the speed of light in fiber).

Everything here is simulated against scenario ground truth: VP and router
locations are known, and the ping simulator returns physically consistent
RTTs, so the algorithm's accuracy is measurable exactly.
"""

from __future__ import annotations

import ipaddress
import random
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Optional

from ..mapping.peeringdb import PeeringDB
from ..mapping.resolver import IterativeResolver
from .cities import WORLD_CITIES, City, city_by_code
from .distance import haversine_km, rtt_floor_ms

#: maximum VP-to-candidate-city distance (Appendix D step 2)
VP_RADIUS_KM = 40.0
#: RTT threshold pinning a target to the VP's city (Appendix D step 3)
RTT_THRESHOLD_MS = 1.0


@dataclass(frozen=True)
class AtlasVP:
    """A RIPE-Atlas-style vantage point."""

    vp_id: int
    asn: int
    city: City  # true location
    reported_city: City  # self-reported; may be wrong ("suspicious")

    @property
    def suspicious(self) -> bool:
        """Ground-truth check the paper approximates with Atlas metadata."""
        return self.city.code != self.reported_city.code


class PingSimulator:
    """Simulated latency measurements between VPs and target addresses."""

    def __init__(
        self,
        target_cities: Mapping[int, City],
        rng: random.Random,
        loss_rate: float = 0.02,
        jitter_ms: float = 0.15,
    ) -> None:
        self._targets = dict(target_cities)
        self._rng = rng
        self.loss_rate = loss_rate
        self.jitter_ms = jitter_ms
        self.probe_count = 0

    @classmethod
    def from_routers(
        cls, routers: Iterable, rng: random.Random, **kwargs
    ) -> "PingSimulator":
        """Build target locations from :class:`~repro.pops.RouterRecord`s."""
        targets = {}
        for router in routers:
            for ip in router.interfaces:
                targets[int(ip)] = router.city
        return cls(targets, rng, **kwargs)

    def rtt_ms(
        self, vp: AtlasVP, ip: ipaddress.IPv4Address | int
    ) -> Optional[float]:
        """Round-trip time from ``vp`` to ``ip``; None on loss/unknown."""
        self.probe_count += 1
        city = self._targets.get(int(ipaddress.IPv4Address(ip)))
        if city is None or self._rng.random() < self.loss_rate:
            return None
        distance = haversine_km(vp.city.lat, vp.city.lon, city.lat, city.lon)
        return rtt_floor_ms(distance) + self._rng.uniform(0, self.jitter_ms)


def atlas_from_scenario(
    scenario,
    rng: random.Random,
    vps_per_city: int = 2,
    suspicious_rate: float = 0.05,
) -> list[AtlasVP]:
    """Deploy Atlas-style VPs in every city hosting an IXP or access AS.

    A ``suspicious_rate`` fraction self-report a wrong city, reproducing
    the bad-metadata problem the paper works around with ground-truth VP
    lists.
    """
    from ..netgen.scenario import ASKind

    hosts: dict[str, list[int]] = {}
    for asn, info in scenario.as_info.items():
        if info.kind is ASKind.ACCESS and asn in scenario.graph:
            hosts.setdefault(info.home_city.code, []).append(asn)
    vps: list[AtlasVP] = []
    vp_id = 0
    for code in sorted(hosts):
        city = city_by_code(code)
        for _ in range(vps_per_city):
            asn = rng.choice(sorted(hosts[code]))
            if rng.random() < suspicious_rate:
                reported = rng.choice(WORLD_CITIES)
            else:
                reported = city
            vps.append(
                AtlasVP(vp_id=vp_id, asn=asn, city=city, reported_city=reported)
            )
            vp_id += 1
    return vps


@dataclass
class GeolocationResult:
    """Outcome for one address."""

    ip: ipaddress.IPv4Address
    city_code: Optional[str]
    candidates: tuple[str, ...]
    probes_used: int

    @property
    def located(self) -> bool:
        return self.city_code is not None


class Geolocator:
    """Appendix D's candidate-then-verify geolocation pipeline."""

    def __init__(
        self,
        peeringdb: PeeringDB,
        resolver: IterativeResolver,
        vps: Iterable[AtlasVP],
        pinger: PingSimulator,
        presence: Mapping[str, frozenset[int]] | None = None,
        rdns_hint=None,  # callable: ip -> city code or None
    ) -> None:
        self.peeringdb = peeringdb
        self.resolver = resolver
        self.pinger = pinger
        self.rdns_hint = rdns_hint
        self.presence = dict(presence or {})
        self._vps_by_city: dict[str, list[AtlasVP]] = {}
        for vp in vps:
            if vp.suspicious:
                continue  # paper: avoid VPs with suspicious locations
            self._vps_by_city.setdefault(vp.city.code, []).append(vp)

    # -- step 1: candidate cities ------------------------------------------
    def candidates(self, ip) -> tuple[str, ...]:
        resolved = self.resolver.resolve(ip)
        if resolved is None:
            return ()
        cities = sorted(self.peeringdb.facility_cities(resolved.asn))
        hint = self.rdns_hint(ip) if self.rdns_hint else None
        if hint is not None:
            cities = [c for c in cities if c == hint] or [hint]
        return tuple(cities)

    # -- step 2: pick a VP near each candidate ------------------------------
    def _vp_for(self, code: str, rng: random.Random) -> Optional[AtlasVP]:
        try:
            target = city_by_code(code)
        except KeyError:
            return None
        eligible: list[AtlasVP] = []
        for vps in self._vps_by_city.values():
            for vp in vps:
                distance = haversine_km(
                    vp.city.lat, vp.city.lon, target.lat, target.lon
                )
                if distance > VP_RADIUS_KM:
                    continue
                allowed = self.presence.get(code)
                if allowed is not None and vp.asn not in allowed:
                    continue
                eligible.append(vp)
        if not eligible:
            return None
        return rng.choice(sorted(eligible, key=lambda v: v.vp_id))

    # -- step 3: verify with pings -------------------------------------------
    def geolocate(
        self, ip, rng: random.Random | None = None
    ) -> GeolocationResult:
        rng = rng or random.Random(0)
        ip = ipaddress.IPv4Address(ip)
        candidates = self.candidates(ip)
        probes = 0
        for code in candidates:
            vp = self._vp_for(code, rng)
            if vp is None:
                continue
            rtt = self.pinger.rtt_ms(vp, ip)
            probes += 1
            if rtt is not None and rtt <= RTT_THRESHOLD_MS:
                return GeolocationResult(
                    ip=ip, city_code=vp.city.code,
                    candidates=candidates, probes_used=probes,
                )
        return GeolocationResult(
            ip=ip, city_code=None, candidates=candidates, probes_used=probes
        )


def geolocate_routers(
    geolocator: Geolocator,
    routers: Iterable,
    rng: random.Random,
) -> dict[str, float]:
    """Accuracy summary over router interfaces with known true cities.

    Returns coverage (fraction located) and accuracy (fraction of located
    answers matching the true city).
    """
    located = 0
    correct = 0
    total = 0
    for router in routers:
        for ip in router.interfaces:
            total += 1
            result = geolocator.geolocate(ip, rng)
            if result.located:
                located += 1
                if result.city_code == router.city.code:
                    correct += 1
    return {
        "total": float(total),
        "coverage": located / total if total else 0.0,
        "accuracy": correct / located if located else 0.0,
    }
