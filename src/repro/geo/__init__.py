"""Geography substrate: cities, distances, population grid, PoP coverage."""

from .cities import (
    WORLD_CITIES,
    City,
    cities_in,
    city_by_code,
    largest_cities,
    total_population_m,
)
from .continents import CONTINENT_ORDER, Continent
from .coverage import (
    COVERAGE_RADII_KM,
    CoverageRow,
    coverage_rows,
    population_coverage,
)
from .distance import EARTH_RADIUS_KM, haversine_km, rtt_floor_ms, within_km
from .geolocate import (
    AtlasVP,
    GeolocationResult,
    Geolocator,
    PingSimulator,
    RTT_THRESHOLD_MS,
    VP_RADIUS_KM,
    atlas_from_scenario,
    geolocate_routers,
)
from .popgrid import GridCell, PopulationGrid

__all__ = [
    "AtlasVP",
    "CONTINENT_ORDER",
    "COVERAGE_RADII_KM",
    "City",
    "GeolocationResult",
    "Geolocator",
    "PingSimulator",
    "RTT_THRESHOLD_MS",
    "VP_RADIUS_KM",
    "atlas_from_scenario",
    "geolocate_routers",
    "Continent",
    "CoverageRow",
    "EARTH_RADIUS_KM",
    "GridCell",
    "PopulationGrid",
    "WORLD_CITIES",
    "cities_in",
    "city_by_code",
    "coverage_rows",
    "haversine_km",
    "largest_cities",
    "population_coverage",
    "rtt_floor_ms",
    "total_population_m",
    "within_km",
]
