"""Gridded population model (stand-in for GPWv4, §4.3).

The paper integrates per-km² population density within radii of PoPs.  We
approximate the same integral with a discrete grid: every city in the
embedded dataset spreads its metro population over a small deterministic
pattern of cells around it (a coarse Gaussian), and coverage queries sum
cell populations within a radius.  Cell placement and weights are
deterministic, so results are reproducible without any external data.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from .cities import WORLD_CITIES, City
from .continents import Continent
from .distance import haversine_km


@dataclass(frozen=True, slots=True)
class GridCell:
    """One population cell: a point mass at the cell center."""

    lat: float
    lon: float
    population: float  # absolute persons (not millions)
    continent: Continent


#: Deterministic spread pattern: (dlat°, dlon°, weight).  Center-heavy with
#: a ring at ~0.6° (~65 km) and a sparse ring at ~1.5° (~165 km), roughly a
#: truncated Gaussian around the metro core.
_SPREAD: tuple[tuple[float, float, float], ...] = (
    (0.0, 0.0, 0.46),
    (0.6, 0.0, 0.07),
    (-0.6, 0.0, 0.07),
    (0.0, 0.6, 0.07),
    (0.0, -0.6, 0.07),
    (0.45, 0.45, 0.04),
    (0.45, -0.45, 0.04),
    (-0.45, 0.45, 0.04),
    (-0.45, -0.45, 0.04),
    (1.5, 0.0, 0.025),
    (-1.5, 0.0, 0.025),
    (0.0, 1.5, 0.025),
    (0.0, -1.5, 0.025),
)
if abs(sum(w for _, _, w in _SPREAD) - 1.0) > 1e-9:
    raise AssertionError("spread weights must sum to 1")


class PopulationGrid:
    """Discrete world population built from a city list."""

    def __init__(self, cities: Sequence[City] | None = None) -> None:
        if cities is None:
            cities = WORLD_CITIES
        cells: list[GridCell] = []
        for city in cities:
            base = city.population_m * 1_000_000.0
            for dlat, dlon, weight in _SPREAD:
                lat = max(-90.0, min(90.0, city.lat + dlat))
                lon = city.lon + dlon
                if lon > 180.0:
                    lon -= 360.0
                elif lon < -180.0:
                    lon += 360.0
                cells.append(
                    GridCell(lat, lon, base * weight, city.continent)
                )
        self.cells: tuple[GridCell, ...] = tuple(cells)
        self.total_population: float = sum(c.population for c in self.cells)

    def distance_profile(
        self, points: Iterable[tuple[float, float]]
    ) -> list[tuple[float, float, Continent]]:
        """Per cell: (distance to the nearest point, population, continent).

        Computing the profile once makes coverage queries at many radii /
        continents cheap (Fig. 12 sweeps 3 radii x 7 regions x ~20
        providers).
        """
        points = list(points)
        profile: list[tuple[float, float, Continent]] = []
        for cell in self.cells:
            if points:
                nearest = min(
                    haversine_km(cell.lat, cell.lon, lat, lon)
                    for lat, lon in points
                )
            else:
                nearest = float("inf")
            profile.append((nearest, cell.population, cell.continent))
        return profile

    @staticmethod
    def covered_from_profile(
        profile: list[tuple[float, float, Continent]],
        radius_km: float,
        continent: Continent | None = None,
    ) -> float:
        return sum(
            population
            for distance, population, cell_continent in profile
            if distance <= radius_km
            and (continent is None or cell_continent is continent)
        )

    def population_within(
        self,
        points: Iterable[tuple[float, float]],
        radius_km: float,
        continent: Continent | None = None,
    ) -> float:
        """Population living within ``radius_km`` of any of ``points``.

        Each cell is counted at most once (union of disks), optionally
        restricted to one continent.
        """
        profile = self.distance_profile(points)
        return self.covered_from_profile(profile, radius_km, continent)

    def continent_population(self, continent: Continent | None = None) -> float:
        """Total population, optionally of one continent."""
        if continent is None:
            return self.total_population
        return sum(
            c.population for c in self.cells if c.continent is continent
        )
