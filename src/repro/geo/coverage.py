"""Population coverage of PoP deployments (§9, Fig. 12).

Given a provider's PoP locations, the paper reports the percentage of
population within 500, 700, and 1000 km of any PoP — the distances large
providers use as user-to-PoP proximity benchmarks — worldwide and per
continent, for individual providers and for the cloud/transit cohorts.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from .continents import CONTINENT_ORDER, Continent
from .popgrid import PopulationGrid

#: The radii (km) reported in Fig. 12.
COVERAGE_RADII_KM: tuple[int, ...] = (500, 700, 1000)


@dataclass(frozen=True)
class CoverageRow:
    """Coverage percentages at each radius for one provider/cohort+region."""

    label: str
    region: str  # "World" or a continent label
    percent_by_radius: tuple[tuple[int, float], ...]

    def percent(self, radius_km: int) -> float:
        for radius, percent in self.percent_by_radius:
            if radius == radius_km:
                return percent
        raise KeyError(f"radius {radius_km} not computed")


def population_coverage(
    grid: PopulationGrid,
    pop_locations: Iterable[tuple[float, float]],
    radii_km: Sequence[int] = COVERAGE_RADII_KM,
    continent: Continent | None = None,
) -> dict[int, float]:
    """Fraction (0-1) of population within each radius of the PoP set."""
    profile = grid.distance_profile(pop_locations)
    total = grid.continent_population(continent)
    if total == 0:
        return {radius: 0.0 for radius in radii_km}
    return {
        radius: grid.covered_from_profile(profile, radius, continent) / total
        for radius in radii_km
    }


def coverage_rows(
    grid: PopulationGrid,
    footprints: Mapping[str, Iterable[tuple[float, float]]],
    radii_km: Sequence[int] = COVERAGE_RADII_KM,
    per_continent: bool = False,
) -> list[CoverageRow]:
    """Fig. 12 rows: coverage per provider/cohort, worldwide and optionally
    per continent."""
    rows: list[CoverageRow] = []
    for label, locations in footprints.items():
        profile = grid.distance_profile(locations)
        regions: list[Continent | None] = [None]
        if per_continent:
            regions.extend(CONTINENT_ORDER)
        for continent in regions:
            total = grid.continent_population(continent)
            percents = tuple(
                (
                    radius,
                    100.0
                    * grid.covered_from_profile(profile, radius, continent)
                    / total
                    if total
                    else 0.0,
                )
                for radius in radii_km
            )
            rows.append(
                CoverageRow(
                    label=label,
                    region="World" if continent is None else continent.value,
                    percent_by_radius=percents,
                )
            )
    return rows
