"""Great-circle distance utilities."""

from __future__ import annotations

import math

EARTH_RADIUS_KM = 6371.0088  # mean Earth radius


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two (lat, lon) points in kilometers."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def within_km(
    lat1: float, lon1: float, lat2: float, lon2: float, radius_km: float
) -> bool:
    """True if the two points lie within ``radius_km`` of each other."""
    return haversine_km(lat1, lon1, lat2, lon2) <= radius_km


def rtt_floor_ms(distance_km: float, fiber_factor: float = 1.5) -> float:
    """Lower bound on round-trip time over fiber for a given distance.

    The speed of light in fiber is ~2/3 c; real paths are longer than the
    geodesic, captured by ``fiber_factor``.  Used by the geolocation
    validation (Appendix D assumes <=1 ms RTT implies <=100 km).
    """
    speed_km_per_ms = 299792.458 / 1000.0 * (2.0 / 3.0)
    return 2.0 * distance_km * fiber_factor / speed_km_per_ms
