"""Embedded world-city dataset.

Stands in for the external geographic data the paper consumes (GPWv4
population density, PeeringDB facility cities, network-map locations).  Each
record carries an IATA-style airport code (used by rDNS hostname
conventions), coordinates, continent, and approximate metro population in
millions.  Values are approximate by design — the §9 analyses only depend on
where people and PoPs concentrate, not on exact counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from .continents import Continent


@dataclass(frozen=True, slots=True)
class City:
    """One metro area usable as a PoP / datacenter / AS home location."""

    code: str  # IATA-style airport code, lowercase (rDNS convention)
    name: str
    country: str
    continent: Continent
    lat: float
    lon: float
    population_m: float  # metro population, millions

    def __post_init__(self) -> None:
        if not (-90.0 <= self.lat <= 90.0):
            raise ValueError(f"latitude out of range for {self.name}")
        if not (-180.0 <= self.lon <= 180.0):
            raise ValueError(f"longitude out of range for {self.name}")
        if self.population_m < 0:
            raise ValueError(f"negative population for {self.name}")


_C = Continent
_RAW: tuple[tuple[str, str, str, Continent, float, float, float], ...] = (
    # --- North America ---
    ("nyc", "New York", "US", _C.NORTH_AMERICA, 40.71, -74.01, 19.8),
    ("lax", "Los Angeles", "US", _C.NORTH_AMERICA, 34.05, -118.24, 13.2),
    ("chi", "Chicago", "US", _C.NORTH_AMERICA, 41.88, -87.63, 9.5),
    ("dfw", "Dallas", "US", _C.NORTH_AMERICA, 32.78, -96.80, 7.6),
    ("hou", "Houston", "US", _C.NORTH_AMERICA, 29.76, -95.37, 7.1),
    ("was", "Washington DC", "US", _C.NORTH_AMERICA, 38.91, -77.04, 6.3),
    ("mia", "Miami", "US", _C.NORTH_AMERICA, 25.76, -80.19, 6.1),
    ("phl", "Philadelphia", "US", _C.NORTH_AMERICA, 39.95, -75.17, 6.2),
    ("atl", "Atlanta", "US", _C.NORTH_AMERICA, 33.75, -84.39, 6.0),
    ("bos", "Boston", "US", _C.NORTH_AMERICA, 42.36, -71.06, 4.9),
    ("phx", "Phoenix", "US", _C.NORTH_AMERICA, 33.45, -112.07, 4.9),
    ("sfo", "San Francisco", "US", _C.NORTH_AMERICA, 37.77, -122.42, 4.7),
    ("sjc", "San Jose", "US", _C.NORTH_AMERICA, 37.34, -121.89, 2.0),
    ("sea", "Seattle", "US", _C.NORTH_AMERICA, 47.61, -122.33, 4.0),
    ("den", "Denver", "US", _C.NORTH_AMERICA, 39.74, -104.99, 3.0),
    ("mci", "Kansas City", "US", _C.NORTH_AMERICA, 39.10, -94.58, 2.2),
    ("msp", "Minneapolis", "US", _C.NORTH_AMERICA, 44.98, -93.27, 3.7),
    ("det", "Detroit", "US", _C.NORTH_AMERICA, 42.33, -83.05, 4.3),
    ("slc", "Salt Lake City", "US", _C.NORTH_AMERICA, 40.76, -111.89, 1.2),
    ("pdx", "Portland", "US", _C.NORTH_AMERICA, 45.52, -122.68, 2.5),
    ("las", "Las Vegas", "US", _C.NORTH_AMERICA, 36.17, -115.14, 2.3),
    ("yyz", "Toronto", "CA", _C.NORTH_AMERICA, 43.65, -79.38, 6.3),
    ("yul", "Montreal", "CA", _C.NORTH_AMERICA, 45.50, -73.57, 4.3),
    ("yvr", "Vancouver", "CA", _C.NORTH_AMERICA, 49.28, -123.12, 2.6),
    ("mex", "Mexico City", "MX", _C.NORTH_AMERICA, 19.43, -99.13, 21.8),
    ("gdl", "Guadalajara", "MX", _C.NORTH_AMERICA, 20.67, -103.35, 5.3),
    ("mty", "Monterrey", "MX", _C.NORTH_AMERICA, 25.69, -100.32, 5.3),
    # --- South America ---
    ("gru", "Sao Paulo", "BR", _C.SOUTH_AMERICA, -23.55, -46.63, 22.0),
    ("gig", "Rio de Janeiro", "BR", _C.SOUTH_AMERICA, -22.91, -43.17, 13.5),
    ("bsb", "Brasilia", "BR", _C.SOUTH_AMERICA, -15.79, -47.88, 4.7),
    ("cnf", "Belo Horizonte", "BR", _C.SOUTH_AMERICA, -19.92, -43.94, 6.0),
    ("for", "Fortaleza", "BR", _C.SOUTH_AMERICA, -3.72, -38.54, 4.1),
    ("poa", "Porto Alegre", "BR", _C.SOUTH_AMERICA, -30.03, -51.22, 4.3),
    ("eze", "Buenos Aires", "AR", _C.SOUTH_AMERICA, -34.60, -58.38, 15.2),
    ("scl", "Santiago", "CL", _C.SOUTH_AMERICA, -33.45, -70.67, 6.8),
    ("bog", "Bogota", "CO", _C.SOUTH_AMERICA, 4.71, -74.07, 11.0),
    ("lim", "Lima", "PE", _C.SOUTH_AMERICA, -12.05, -77.04, 10.7),
    ("ccs", "Caracas", "VE", _C.SOUTH_AMERICA, 10.48, -66.90, 2.9),
    ("uio", "Quito", "EC", _C.SOUTH_AMERICA, -0.18, -78.47, 2.0),
    # --- Europe ---
    ("lon", "London", "GB", _C.EUROPE, 51.51, -0.13, 14.3),
    ("par", "Paris", "FR", _C.EUROPE, 48.86, 2.35, 11.1),
    ("fra", "Frankfurt", "DE", _C.EUROPE, 50.11, 8.68, 2.7),
    ("ber", "Berlin", "DE", _C.EUROPE, 52.52, 13.41, 4.5),
    ("muc", "Munich", "DE", _C.EUROPE, 48.14, 11.58, 2.9),
    ("ham", "Hamburg", "DE", _C.EUROPE, 53.55, 9.99, 3.2),
    ("dus", "Dusseldorf", "DE", _C.EUROPE, 51.23, 6.77, 1.6),
    ("ams", "Amsterdam", "NL", _C.EUROPE, 52.37, 4.90, 2.5),
    ("bru", "Brussels", "BE", _C.EUROPE, 50.85, 4.35, 2.1),
    ("mad", "Madrid", "ES", _C.EUROPE, 40.42, -3.70, 6.7),
    ("bcn", "Barcelona", "ES", _C.EUROPE, 41.39, 2.17, 5.6),
    ("lis", "Lisbon", "PT", _C.EUROPE, 38.72, -9.14, 2.9),
    ("mil", "Milan", "IT", _C.EUROPE, 45.46, 9.19, 4.3),
    ("rom", "Rome", "IT", _C.EUROPE, 41.90, 12.50, 4.3),
    ("zrh", "Zurich", "CH", _C.EUROPE, 47.37, 8.54, 1.4),
    ("gva", "Geneva", "CH", _C.EUROPE, 46.20, 6.14, 0.6),
    ("vie", "Vienna", "AT", _C.EUROPE, 48.21, 16.37, 2.9),
    ("prg", "Prague", "CZ", _C.EUROPE, 50.08, 14.44, 2.7),
    ("waw", "Warsaw", "PL", _C.EUROPE, 52.23, 21.01, 3.1),
    ("bud", "Budapest", "HU", _C.EUROPE, 47.50, 19.04, 3.0),
    ("buh", "Bucharest", "RO", _C.EUROPE, 44.43, 26.10, 2.3),
    ("sof", "Sofia", "BG", _C.EUROPE, 42.70, 23.32, 1.7),
    ("ath", "Athens", "GR", _C.EUROPE, 37.98, 23.73, 3.6),
    ("cph", "Copenhagen", "DK", _C.EUROPE, 55.68, 12.57, 2.1),
    ("sto", "Stockholm", "SE", _C.EUROPE, 59.33, 18.06, 2.4),
    ("osl", "Oslo", "NO", _C.EUROPE, 59.91, 10.75, 1.7),
    ("hel", "Helsinki", "FI", _C.EUROPE, 60.17, 24.94, 1.5),
    ("dub", "Dublin", "IE", _C.EUROPE, 53.35, -6.26, 2.0),
    ("man", "Manchester", "GB", _C.EUROPE, 53.48, -2.24, 3.4),
    ("mow", "Moscow", "RU", _C.EUROPE, 55.76, 37.62, 17.1),
    ("led", "St Petersburg", "RU", _C.EUROPE, 59.93, 30.34, 5.5),
    ("kbp", "Kyiv", "UA", _C.EUROPE, 50.45, 30.52, 3.5),
    ("ist", "Istanbul", "TR", _C.EUROPE, 41.01, 28.98, 15.6),
    # --- Africa ---
    ("jnb", "Johannesburg", "ZA", _C.AFRICA, -26.20, 28.05, 10.0),
    ("cpt", "Cape Town", "ZA", _C.AFRICA, -33.92, 18.42, 4.7),
    ("dur", "Durban", "ZA", _C.AFRICA, -29.86, 31.03, 3.9),
    ("los", "Lagos", "NG", _C.AFRICA, 6.52, 3.38, 15.3),
    ("abv", "Abuja", "NG", _C.AFRICA, 9.06, 7.49, 3.6),
    ("cai", "Cairo", "EG", _C.AFRICA, 30.04, 31.24, 20.9),
    ("alg", "Algiers", "DZ", _C.AFRICA, 36.75, 3.06, 2.8),
    ("cas", "Casablanca", "MA", _C.AFRICA, 33.57, -7.59, 3.7),
    ("tun", "Tunis", "TN", _C.AFRICA, 36.81, 10.18, 2.4),
    ("nbo", "Nairobi", "KE", _C.AFRICA, -1.29, 36.82, 5.0),
    ("dar", "Dar es Salaam", "TZ", _C.AFRICA, -6.79, 39.21, 6.7),
    ("acc", "Accra", "GH", _C.AFRICA, 5.60, -0.19, 2.6),
    ("adk", "Addis Ababa", "ET", _C.AFRICA, 9.02, 38.75, 5.0),
    ("kin", "Kinshasa", "CD", _C.AFRICA, -4.44, 15.27, 14.5),
    ("lad", "Luanda", "AO", _C.AFRICA, -8.84, 13.23, 8.3),
    ("dkr", "Dakar", "SN", _C.AFRICA, 14.72, -17.47, 3.1),
    ("kan", "Khartoum", "SD", _C.AFRICA, 15.50, 32.56, 5.8),
    # --- Asia / Middle East ---
    ("tyo", "Tokyo", "JP", _C.ASIA, 35.68, 139.69, 37.3),
    ("osa", "Osaka", "JP", _C.ASIA, 34.69, 135.50, 19.1),
    ("ngo", "Nagoya", "JP", _C.ASIA, 35.18, 136.91, 9.5),
    ("sel", "Seoul", "KR", _C.ASIA, 37.57, 126.98, 25.5),
    ("pus", "Busan", "KR", _C.ASIA, 35.18, 129.08, 3.4),
    ("bjs", "Beijing", "CN", _C.ASIA, 39.90, 116.41, 20.9),
    ("sha", "Shanghai", "CN", _C.ASIA, 31.23, 121.47, 28.5),
    ("can", "Guangzhou", "CN", _C.ASIA, 23.13, 113.26, 19.0),
    ("szx", "Shenzhen", "CN", _C.ASIA, 22.54, 114.06, 12.6),
    ("ctu", "Chengdu", "CN", _C.ASIA, 30.57, 104.07, 9.3),
    ("hkg", "Hong Kong", "HK", _C.ASIA, 22.32, 114.17, 7.5),
    ("tpe", "Taipei", "TW", _C.ASIA, 25.03, 121.57, 7.0),
    ("sin", "Singapore", "SG", _C.ASIA, 1.35, 103.82, 5.9),
    ("kul", "Kuala Lumpur", "MY", _C.ASIA, 3.14, 101.69, 8.0),
    ("cgk", "Jakarta", "ID", _C.ASIA, -6.21, 106.85, 34.5),
    ("sub", "Surabaya", "ID", _C.ASIA, -7.26, 112.75, 6.5),
    ("bkk", "Bangkok", "TH", _C.ASIA, 13.76, 100.50, 15.6),
    ("sgn", "Ho Chi Minh City", "VN", _C.ASIA, 10.82, 106.63, 9.3),
    ("han", "Hanoi", "VN", _C.ASIA, 21.03, 105.85, 8.1),
    ("mnl", "Manila", "PH", _C.ASIA, 14.60, 120.98, 13.9),
    ("del", "Delhi", "IN", _C.ASIA, 28.61, 77.21, 31.2),
    ("bom", "Mumbai", "IN", _C.ASIA, 19.08, 72.88, 20.7),
    ("blr", "Bangalore", "IN", _C.ASIA, 12.97, 77.59, 12.8),
    ("maa", "Chennai", "IN", _C.ASIA, 13.08, 80.27, 11.2),
    ("ccu", "Kolkata", "IN", _C.ASIA, 22.57, 88.36, 14.9),
    ("hyd", "Hyderabad", "IN", _C.ASIA, 17.39, 78.49, 10.3),
    ("dac", "Dhaka", "BD", _C.ASIA, 23.81, 90.41, 21.7),
    ("khi", "Karachi", "PK", _C.ASIA, 24.86, 67.00, 16.5),
    ("lhe", "Lahore", "PK", _C.ASIA, 31.55, 74.34, 13.1),
    ("cmb", "Colombo", "LK", _C.ASIA, 6.93, 79.85, 2.3),
    ("dxb", "Dubai", "AE", _C.ASIA, 25.20, 55.27, 3.5),
    ("auh", "Abu Dhabi", "AE", _C.ASIA, 24.45, 54.38, 1.5),
    ("doh", "Doha", "QA", _C.ASIA, 25.29, 51.53, 2.4),
    ("ruh", "Riyadh", "SA", _C.ASIA, 24.71, 46.68, 7.7),
    ("jed", "Jeddah", "SA", _C.ASIA, 21.49, 39.19, 4.7),
    ("thr", "Tehran", "IR", _C.ASIA, 35.69, 51.39, 9.5),
    ("bgw", "Baghdad", "IQ", _C.ASIA, 33.31, 44.37, 7.5),
    ("tlv", "Tel Aviv", "IL", _C.ASIA, 32.09, 34.78, 4.2),
    ("amm", "Amman", "JO", _C.ASIA, 31.96, 35.95, 2.2),
    ("alm", "Almaty", "KZ", _C.ASIA, 43.24, 76.89, 2.0),
    ("tas", "Tashkent", "UZ", _C.ASIA, 41.30, 69.24, 2.6),
    # --- Oceania ---
    ("syd", "Sydney", "AU", _C.OCEANIA, -33.87, 151.21, 5.3),
    ("mel", "Melbourne", "AU", _C.OCEANIA, -37.81, 144.96, 5.1),
    ("bne", "Brisbane", "AU", _C.OCEANIA, -27.47, 153.03, 2.6),
    ("per", "Perth", "AU", _C.OCEANIA, -31.95, 115.86, 2.1),
    ("adl", "Adelaide", "AU", _C.OCEANIA, -34.93, 138.60, 1.4),
    ("akl", "Auckland", "NZ", _C.OCEANIA, -36.85, 174.76, 1.7),
    ("wlg", "Wellington", "NZ", _C.OCEANIA, -41.29, 174.78, 0.4),
    ("nan", "Suva", "FJ", _C.OCEANIA, -18.12, 178.45, 0.3),
)

#: All cities, ordered as declared (deterministic).
WORLD_CITIES: tuple[City, ...] = tuple(City(*row) for row in _RAW)

_BY_CODE: dict[str, City] = {city.code: city for city in WORLD_CITIES}
if len(_BY_CODE) != len(WORLD_CITIES):
    raise AssertionError("duplicate city codes in embedded dataset")


def city_by_code(code: str) -> City:
    """Look up a city by its airport code (case-insensitive)."""
    try:
        return _BY_CODE[code.lower()]
    except KeyError:
        raise KeyError(f"unknown city code: {code!r}") from None


def cities_in(continent: Continent) -> tuple[City, ...]:
    """All cities on one continent, in dataset order."""
    return tuple(c for c in WORLD_CITIES if c.continent is continent)


def largest_cities(n: int) -> tuple[City, ...]:
    """The ``n`` most populous cities (ties broken by code)."""
    ordered = sorted(WORLD_CITIES, key=lambda c: (-c.population_m, c.code))
    return tuple(ordered[:n])


def total_population_m() -> float:
    """World metro population covered by the dataset, in millions."""
    return sum(c.population_m for c in WORLD_CITIES)
