"""Continent labels used by the §9 geographic analyses (Fig. 12)."""

from __future__ import annotations

import enum


class Continent(enum.Enum):
    """The six inhabited continents, labeled as in Fig. 12."""

    NORTH_AMERICA = "North America"
    SOUTH_AMERICA = "South America"
    EUROPE = "Europe"
    AFRICA = "Africa"
    ASIA = "Asia"
    OCEANIA = "Oceania"

    @classmethod
    def from_label(cls, label: str) -> "Continent":
        for member in cls:
            if member.value.lower() == label.strip().lower():
                return member
        raise ValueError(f"unknown continent: {label!r}")


#: Deterministic ordering for reports (matches Fig. 12's row order closely).
CONTINENT_ORDER: tuple[Continent, ...] = (
    Continent.OCEANIA,
    Continent.ASIA,
    Continent.AFRICA,
    Continent.EUROPE,
    Continent.NORTH_AMERICA,
    Continent.SOUTH_AMERICA,
)
