"""Command-line interface.

Subcommands mirror the workflows a downstream user actually has:

* ``repro generate`` — write a synthetic Internet as a CAIDA-format
  relationship file (plus, optionally, a collector RIB dump);
* ``repro reach`` — the reachability metric family for one origin in a
  relationship file;
* ``repro sweep`` — top-N networks by hierarchy-free reachability;
* ``repro leak`` — route-leak resilience summary for one origin;
* ``repro infer`` — AS-relationship inference from a collector dump;
* ``repro timeline`` — replay a dynamic-topology event timeline and
  report per-event reachability/reliance/hegemony series;
* ``repro precompute`` — shard every origin's routing state to disk
  under a content-addressed results directory;
* ``repro serve`` — HTTP query service over the warm-LRU + mmap-shard
  tiers (reachable/path_length/reliance/hegemony/rib);
* ``repro experiments`` — run every table/figure reproduction.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from pathlib import Path
from typing import Optional, Sequence


def _load_graph_and_tiers(path: str, tier2_count: int = 25):
    from .topology import infer_tiers, load_graph

    graph = load_graph(path)
    tiers = infer_tiers(graph, tier2_count=tier2_count, min_tier1_adjacency=1)
    return graph, tiers


def cmd_generate(args: argparse.Namespace) -> int:
    from .netgen import build_scenario, profile
    from .topology import dump_graph

    config = profile(args.profile, seed=args.seed)
    scenario = build_scenario(config)
    dump_graph(
        scenario.graph,
        args.output,
        serial=args.serial,
        header=f"synthetic Internet, profile={args.profile} seed={args.seed}",
    )
    print(
        f"wrote {len(scenario.graph)} ASes / "
        f"{scenario.graph.edge_count()} edges to {args.output}"
    )
    if args.mrt:
        from .collectors import collect_ribs, dump_mrt

        dump = collect_ribs(
            scenario.graph,
            scenario.monitors,
            scenario.prefixes,
            rng=random.Random(args.seed),
        )
        with open(args.mrt, "w", encoding="utf-8") as handle:
            dump_mrt(dump, handle)
        print(f"wrote {len(dump)} RIB entries to {args.mrt}")
    return 0


def cmd_reach(args: argparse.Namespace) -> int:
    from .core import customer_cone_size, reachability_report

    graph, tiers = _load_graph_and_tiers(args.file)
    if args.origin not in graph:
        print(f"error: AS{args.origin} not in {args.file}", file=sys.stderr)
        return 1
    report = reachability_report(graph, args.origin, tiers)
    total = len(graph) - 1
    print(f"AS{args.origin} ({len(graph)} ASes in topology)")
    print(f"  customer cone:   {customer_cone_size(graph, args.origin)}")
    print(f"  full:            {report.full}")
    print(f"  provider-free:   {report.provider_free}")
    print(f"  Tier-1-free:     {report.tier1_free}")
    print(
        f"  hierarchy-free:  {report.hierarchy_free} "
        f"({report.hierarchy_free / max(total, 1):.1%})"
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from .core import hierarchy_free_sweep, rank_by

    graph, tiers = _load_graph_and_tiers(args.file)
    values = hierarchy_free_sweep(graph, tiers)
    total = max(len(graph) - 1, 1)
    print(f"top {args.top} by hierarchy-free reachability:")
    for rank, (asn, value) in enumerate(rank_by(values)[: args.top], 1):
        print(f"  {rank:3d}. AS{asn:<8d} {value:6d} ({value / total:.1%})")
    return 0


def _parse_workers(value: str) -> int | str:
    """argparse type for ``--workers``: an int, or ``auto`` for all CPUs."""
    if value == "auto":
        return value
    return int(value)


def cmd_leak(args: argparse.Namespace) -> int:
    from .core import LEAK_CONFIGURATIONS, resilience_curve
    from .experiments.report import cdf_summary

    graph, tiers = _load_graph_and_tiers(args.file)
    if args.origin not in graph:
        print(f"error: AS{args.origin} not in {args.file}", file=sys.stderr)
        return 1
    rng = random.Random(args.seed)
    nodes = sorted(graph.nodes())
    leakers = rng.sample(nodes, k=min(args.leakers, len(nodes)))
    configurations = (
        [args.config] if args.config else list(LEAK_CONFIGURATIONS)
    )
    print(
        f"leaking AS{args.origin}'s prefix from {len(leakers)} random ASes:"
    )
    for configuration in configurations:
        curve = resilience_curve(
            graph, args.origin, tiers, configuration, leakers,
            workers=args.workers, engine=args.engine,
        )
        print(f"  {configuration:28s} {cdf_summary(curve)}")
    return 0


def cmd_infer(args: argparse.Namespace) -> int:
    from .collectors import parse_mrt
    from .inference import (
        evaluate_inference,
        infer_asrank,
        infer_gao,
        infer_problink,
    )

    text = Path(args.mrt).read_text(encoding="utf-8")
    paths = parse_mrt(text).paths()
    algorithm = {
        "gao": infer_gao,
        "asrank": infer_asrank,
        "problink": infer_problink,
    }[args.algorithm]
    result = algorithm(paths)
    records = result.records
    p2c = sum(1 for r in records if r.is_transit)
    print(
        f"{args.algorithm}: inferred {len(records)} edges "
        f"({p2c} p2c, {len(records) - p2c} p2p) from {len(paths)} paths"
    )
    if args.truth:
        from .topology import load_graph

        truth = load_graph(args.truth)
        accuracy = evaluate_inference(truth, records)
        print(f"vs truth: {accuracy.summary()}")
    if args.output:
        from .topology import dump_graph

        dump_graph(result.as_graph(), args.output, serial=2)
        print(f"wrote inferred relationships to {args.output}")
    return 0


def cmd_precompute(args: argparse.Namespace) -> int:
    from .bgpsim.shards import (
        ShardError,
        ShardStore,
        precompute_metric_shards,
        precompute_shards,
    )
    from .topology import load_graph

    graph = load_graph(args.file)
    origins = None
    if args.origins:
        origins = [int(o) for o in args.origins.split(",") if o]
        unknown = [o for o in origins if o not in graph]
        if unknown:
            print(
                f"error: AS{unknown[0]} not in {args.file}", file=sys.stderr
            )
            return 1
    targets = None
    if args.metric_targets:
        if args.metric_targets.isdigit():
            from .bgpsim.shards import default_metric_targets

            targets = default_metric_targets(graph, int(args.metric_targets))
        else:
            targets = [int(t) for t in args.metric_targets.split(",") if t]

    total = len(origins) if origins is not None else len(graph)
    last = [-1]

    def progress(done: int, count: int) -> None:
        percent = done * 100 // count
        if percent >= last[0] + 10 or done == count:
            last[0] = percent
            print(f"  {done}/{count} origins", file=sys.stderr)

    target = precompute_shards(
        graph,
        args.output,
        origins=origins,
        workers=args.workers,
        batch=args.batch,
        engine=args.engine,
        shard_size=args.shard_size,
        force=args.force,
        progress=progress if not args.quiet else None,
    )
    if args.metrics:
        if not args.quiet:
            print("  metric pass:", file=sys.stderr)
        last[0] = -1
        try:
            precompute_metric_shards(
                graph,
                args.output,
                origins=origins,
                targets=targets,
                trim=args.trim,
                workers=args.workers,
                batch=args.batch,
                engine=args.engine,
                shard_size=args.shard_size,
                force=args.force,
                progress=progress if not args.quiet else None,
            )
        except ShardError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    with ShardStore.open(target) as store:
        manifest = store.manifest
        metric = ""
        if store.metrics is not None:
            metric = (
                f" + {len(store.metrics)} metric rows × "
                f"{len(store.metrics.targets)} hegemony targets"
            )
        print(
            f"precomputed {len(store)}/{total} origins into "
            f"{len(manifest['shards'])} shard(s) under {target} "
            f"(graph {manifest['graph_digest'][:16]}){metric}"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .bgpsim.shards import ShardError, ShardStore
    from .serve import (
        QueryService,
        ServiceSpec,
        WorkerSupervisor,
        run_smoke_queries,
        serve,
        smoke_check,
        smoke_expected,
    )
    from .topology import load_graph

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 1
    graph = load_graph(args.file)
    store = None
    if args.shards:
        try:
            store = ShardStore.open(args.shards, graph=graph, lease=True)
        except ShardError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.workers > 1:
        # multi-process fan-out: each worker rebuilds the service from
        # the spec and mmaps the (page-cache-shared) corpus itself; the
        # parent's own store handle only validated the flags above
        spec = ServiceSpec(
            graph_file=args.file,
            shards=None if store is None else str(store.directory),
            maxsize=args.maxsize,
            engine=args.engine,
            batch=args.batch,
        )
        if args.smoke:
            service = QueryService(
                graph,
                shards=store,
                maxsize=args.maxsize,
                engine=args.engine,
                batch=args.batch,
            )
            expected = smoke_expected(service)
            with WorkerSupervisor(
                spec, workers=args.workers, host=args.host
            ) as supervisor:
                failures = run_smoke_queries(
                    supervisor.base_url,
                    expected,
                    require_metric_tier=service.metrics is not None,
                )
            store_close = service.cache.shards
            if store_close is not None:
                store_close.close()
            if failures:
                for failure in failures:
                    print(f"smoke FAIL: {failure}", file=sys.stderr)
                return 1
            print(
                "smoke ok: every endpoint matches live propagation "
                f"({len(graph)} ASes, shards={'yes' if store else 'no'}, "
                f"workers={args.workers})"
            )
            return 0
        if store is not None:
            store.close()  # workers hold their own leases
        tier = f" + precomputed corpus {args.shards}" if args.shards else ""
        with WorkerSupervisor(
            spec, workers=args.workers, host=args.host, port=args.port
        ) as supervisor:
            print(
                f"serving {len(graph)} ASes on {supervisor.base_url} "
                f"across {args.workers} workers "
                f"(SO_REUSEPORT{tier}); Ctrl-C stops"
            )
            try:
                while supervisor.pids():
                    import time

                    time.sleep(1.0)
                print(
                    "error: every worker exited "
                    f"(restarts exhausted at {supervisor.restarts})",
                    file=sys.stderr,
                )
                return 1
            except KeyboardInterrupt:
                pass
        return 0

    service = QueryService(
        graph,
        shards=store,
        maxsize=args.maxsize,
        engine=args.engine,
        batch=args.batch,
    )
    if args.smoke:
        failures = smoke_check(service, host=args.host)
        if store is not None:
            store.close()
        if failures:
            for failure in failures:
                print(f"smoke FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            "smoke ok: every endpoint matches live propagation "
            f"({len(graph)} ASes, shards={'yes' if store else 'no'})"
        )
        return 0
    tier = f" + {len(store)} precomputed origins" if store else ""
    metric = (
        f", {len(store.metrics)} metric rows"
        if store is not None and store.metrics is not None
        else ""
    )
    print(
        f"serving {len(graph)} ASes on http://{args.host}:{args.port} "
        f"(warm LRU maxsize={args.maxsize}{tier}{metric}); Ctrl-C stops"
    )
    try:
        asyncio.run(serve(service, host=args.host, port=args.port))
    except KeyboardInterrupt:
        pass
    finally:
        if store is not None:
            store.close()
    return 0


def cmd_compact(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bgpsim.shards import (
        MANIFEST_NAME,
        ShardError,
        ShardStore,
        gc_corpora,
        graph_digest,
    )

    root = Path(args.root)
    kept = sorted(p.parent for p in root.glob(f"*/{MANIFEST_NAME}"))
    if args.keep:
        from .topology import load_graph

        digests = []
        for path in args.keep:
            digests.append(graph_digest(load_graph(path).compile()))
        removed, kept, refused = gc_corpora(root, digests)
        for corpus in removed:
            print(f"removed {corpus} (no retained graph matches)")
        for corpus in refused:
            print(
                f"refused to remove {corpus}: live process leases",
                file=sys.stderr,
            )
    status = 0
    for corpus in kept:
        try:
            store = ShardStore.open(corpus, lease=True)
        except ShardError as exc:
            print(f"skipping {corpus}: {exc}", file=sys.stderr)
            continue
        try:
            stats = store.compact(shard_size=args.shard_size)
        except ShardError as exc:
            print(f"refused to compact {corpus}: {exc}", file=sys.stderr)
            status = 1
            continue
        finally:
            store.close()
        if stats["merged"]:
            files = (
                stats["routing_files_before"] + stats["metric_files_before"],
                stats["routing_files_after"] + stats["metric_files_after"],
            )
            print(
                f"compacted {corpus}: {files[0]} -> {files[1]} files, "
                f"{stats['bytes_before']} -> {stats['bytes_after']} bytes"
            )
        else:
            print(f"{corpus}: already compact")
    return status


def cmd_timeline(args: argparse.Namespace) -> int:
    from .experiments.timeline import ScenarioRunner, parse_events
    from .topology import load_graph

    graph = load_graph(args.file)
    if args.origin not in graph:
        print(f"error: AS{args.origin} not in {args.file}", file=sys.stderr)
        return 1
    try:
        events = parse_events(args.events)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    targets = (
        [int(t) for t in args.targets.split(",") if t] if args.targets else []
    )
    shards = None
    if args.shards:
        from .bgpsim.shards import ShardError, ShardStore

        try:
            shards = ShardStore.open(args.shards, graph=graph, lease=True)
        except ShardError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    runner = ScenarioRunner(
        graph,
        origins=[args.origin],
        targets=targets,
        engine=args.engine,
        workers=args.workers,
        batch=args.batch,
        threshold=args.threshold,
        shards=shards,
    )
    result = runner.run(events)
    print(
        f"timeline for AS{args.origin} "
        f"({len(graph)} ASes, {len(events)} events, "
        f"engine={runner.engine}):"
    )
    for record in result.series(args.origin):
        extra = ""
        if record.captured is not None:
            extra += f"  captured={record.captured}"
        if record.step > 0:
            extra += f"  visited={record.visited_fraction:.1%}"
        if record.fallback:
            extra += "  [fallback]"
        print(
            f"  step {record.step:2d}  {record.event:28s} "
            f"reachable={record.reachable}{extra}"
        )
        for target in targets:
            print(
                f"           target AS{target}: "
                f"reliance={record.reliance[target]:.4f} "
                f"hegemony={record.hegemony[target]:.4f}"
            )
    stats = runner.cache.stats()
    disk = f" / {stats.disk_hits} disk hits" if shards is not None else ""
    print(
        f"  cache: {stats.hits} hits / {stats.misses} misses{disk}, "
        f"{stats.baseline_invalidations} baseline invalidations"
    )
    if shards is not None:
        shards.close()
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.runner import main as runner_main

    argv = [args.profile]
    if args.workers is not None:
        argv += ["--workers", str(args.workers)]
    if args.engine is not None:
        argv += ["--engine", args.engine]
    if args.batch is not None:
        argv += ["--batch", str(args.batch)]
    if args.stream is not None:
        argv += ["--stream", args.stream]
    return runner_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction toolkit for 'Cloud Provider Connectivity in the "
            "Flat Internet' (IMC 2020)."
        ),
    )
    parser.add_argument(
        "--vector",
        choices=("auto", "on", "off"),
        default=None,
        help="numpy vectorized kernels (default: $REPRO_VECTOR or auto; "
        "'auto' uses numpy when installed, 'on' requires it, 'off' "
        "forces the pure-Python loops)",
    )
    parser.add_argument(
        "--shm",
        choices=("auto", "on", "off"),
        default=None,
        help="shared-memory payload transport for parallel sweeps "
        "(default: $REPRO_SHM or auto)",
    )
    parser.add_argument(
        "--stream",
        choices=("auto", "on", "off"),
        default=None,
        help="O(batch)-memory streaming sweep aggregations "
        "(default: $REPRO_STREAM or auto; 'auto' streams once the graph "
        "reaches the paper-scale threshold, $REPRO_STREAM_THRESHOLD)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="write a synthetic Internet as a CAIDA-format file"
    )
    generate.add_argument(
        "profile", help="tiny | small | mid | large | year2020 | year2015"
    )
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--seed", type=int, default=20200901)
    generate.add_argument("--serial", type=int, choices=(1, 2), default=2)
    generate.add_argument(
        "--mrt", help="also write a collector RIB dump to this path"
    )
    generate.set_defaults(func=cmd_generate)

    reach = sub.add_parser(
        "reach", help="reachability metric family for one origin"
    )
    reach.add_argument("file", help="CAIDA serial-1/serial-2 file")
    reach.add_argument("origin", type=int)
    reach.set_defaults(func=cmd_reach)

    sweep = sub.add_parser(
        "sweep", help="top networks by hierarchy-free reachability"
    )
    sweep.add_argument("file")
    sweep.add_argument("--top", type=int, default=20)
    sweep.set_defaults(func=cmd_sweep)

    leak = sub.add_parser("leak", help="route-leak resilience summary")
    leak.add_argument("file")
    leak.add_argument("origin", type=int)
    leak.add_argument("--leakers", type=int, default=50)
    leak.add_argument("--seed", type=int, default=7)
    leak.add_argument(
        "--config",
        choices=(
            "announce_all",
            "announce_all_t1_lock",
            "announce_all_t1t2_lock",
            "announce_all_global_lock",
            "announce_hierarchy_only",
        ),
    )
    leak.add_argument(
        "--workers",
        type=_parse_workers,
        default=None,
        help="propagation worker processes (int, or 'auto' for all CPUs)",
    )
    leak.add_argument(
        "--engine",
        choices=("compiled", "reference", "incremental"),
        default=None,
        help="propagation engine (default: compiled, or $REPRO_ENGINE); "
        "'incremental' derives each leak from a shared per-configuration "
        "baseline",
    )
    leak.set_defaults(func=cmd_leak)

    infer = sub.add_parser(
        "infer", help="infer AS relationships from a collector dump"
    )
    infer.add_argument("mrt", help="MRT-style text dump (repro generate --mrt)")
    infer.add_argument(
        "--algorithm", choices=("gao", "asrank", "problink"), default="asrank"
    )
    infer.add_argument("--truth", help="ground-truth relationship file")
    infer.add_argument("-o", "--output", help="write inferred relationships")
    infer.set_defaults(func=cmd_infer)

    timeline = sub.add_parser(
        "timeline",
        help="replay a dynamic-topology event timeline for one origin",
    )
    timeline.add_argument("file", help="CAIDA serial-1/serial-2 file")
    timeline.add_argument("origin", type=int)
    timeline.add_argument(
        "--events",
        required=True,
        help="comma-separated timeline, e.g. "
        "'down:11-100,hijack:301,up:11-100:p2c' (kinds: down, up, "
        "depeer, fail, hijack, leak)",
    )
    timeline.add_argument(
        "--targets",
        help="comma-separated ASNs to report reliance/hegemony toward",
    )
    timeline.add_argument(
        "--workers",
        type=_parse_workers,
        default=None,
        help="propagation worker processes (int, or 'auto' for all CPUs)",
    )
    timeline.add_argument(
        "--engine",
        choices=("compiled", "reference", "incremental"),
        default=None,
        help="propagation engine (default: compiled, or $REPRO_ENGINE); "
        "'incremental' derives each post-event state from the cached "
        "baseline instead of recomputing",
    )
    timeline.add_argument(
        "--batch",
        type=int,
        default=None,
        help="bit-parallel batch width for the baseline prefetch",
    )
    timeline.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="max withdrawal-region fraction before the incremental "
        "engine falls back to a full recompute (default: "
        "$REPRO_EVENT_THRESHOLD or 0.5)",
    )
    timeline.add_argument(
        "--shards",
        help="precomputed shard directory (repro precompute) serving "
        "pre-event baselines from mmap instead of propagating",
    )
    timeline.set_defaults(func=cmd_timeline)

    precompute = sub.add_parser(
        "precompute",
        help="shard every origin's routing state to disk for O(1) serving",
    )
    precompute.add_argument("file", help="CAIDA serial-1/serial-2 file")
    precompute.add_argument(
        "-o",
        "--output",
        required=True,
        help="results root; shards land under <output>/<graph-digest16>/",
    )
    precompute.add_argument(
        "--origins",
        help="comma-separated ASNs (default: every AS in the graph)",
    )
    precompute.add_argument(
        "--workers",
        type=_parse_workers,
        default=None,
        help="propagation worker processes (int, or 'auto' for all CPUs)",
    )
    precompute.add_argument(
        "--batch",
        type=int,
        default=None,
        help="bit-parallel batch width (default: $REPRO_BATCH or 256)",
    )
    precompute.add_argument(
        "--engine",
        choices=("compiled", "reference", "incremental"),
        default=None,
        help="propagation engine (shards store compiled array states)",
    )
    precompute.add_argument(
        "--shard-size",
        type=int,
        default=4096,
        help="origins per shard file (default: 4096)",
    )
    precompute.add_argument(
        "--force",
        action="store_true",
        help="rebuild even if a complete corpus already exists",
    )
    precompute.add_argument(
        "--metrics",
        action="store_true",
        help="also write metric shards (per-origin reliance vectors + "
        "fused hegemony rows) so /reliance and /hegemony skip their "
        "kernels entirely",
    )
    precompute.add_argument(
        "--metric-targets",
        help="hegemony targets for the metric shards: an integer N "
        "(top-N ASes by degree) or a comma-separated ASN list "
        "(default: top-64)",
    )
    precompute.add_argument(
        "--trim",
        type=float,
        default=None,
        help="trimmed-mean fraction for stored hegemony rows "
        "(default: 0.1, the paper's)",
    )
    precompute.add_argument("-q", "--quiet", action="store_true")
    precompute.set_defaults(func=cmd_precompute)

    compact = sub.add_parser(
        "compact",
        help="merge rolling shard files and garbage-collect superseded "
        "corpora under a shard root",
    )
    compact.add_argument(
        "root", help="corpus root (the -o passed to repro precompute)"
    )
    compact.add_argument(
        "--keep",
        action="append",
        help="topology file whose corpus must be retained; corpora "
        "matching no --keep graph are deleted (omit to only merge, "
        "never delete)",
    )
    compact.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="origins per merged shard file (default: the corpus's own)",
    )
    compact.set_defaults(func=cmd_compact)

    serve = sub.add_parser(
        "serve",
        help="HTTP query service over the warm-LRU + mmap-shard tiers",
    )
    serve.add_argument("file", help="CAIDA serial-1/serial-2 file")
    serve.add_argument(
        "--shards",
        help="precomputed shard directory (repro precompute) to mmap as "
        "the disk tier",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8351)
    serve.add_argument(
        "--maxsize",
        type=int,
        default=1024,
        help="warm-tier LRU bound (default: 1024)",
    )
    serve.add_argument(
        "--engine",
        choices=("compiled", "reference", "incremental"),
        default=None,
    )
    serve.add_argument(
        "--batch",
        type=int,
        default=None,
        help="bit-parallel width for batched request warming",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="serving processes sharing the address via SO_REUSEPORT "
        "(default: 1, in-process; each worker mmaps the same corpus "
        "and a supervisor restarts dead workers)",
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="bind an ephemeral port, issue one query per endpoint, diff "
        "against live propagation, and exit (CI health check)",
    )
    serve.set_defaults(func=cmd_serve)

    experiments = sub.add_parser(
        "experiments", help="run every table/figure reproduction"
    )
    experiments.add_argument("profile", nargs="?", default="small")
    experiments.add_argument(
        "--workers",
        type=_parse_workers,
        default=None,
        help="propagation worker processes (int, or 'auto' for all CPUs)",
    )
    experiments.add_argument(
        "--engine",
        choices=("compiled", "reference", "incremental"),
        default=None,
        help="propagation engine (default: compiled, or $REPRO_ENGINE); "
        "'incremental' speeds up the leak sweeps via shared baselines",
    )
    experiments.add_argument(
        "--batch",
        type=int,
        default=None,
        help="bit-parallel multi-origin batch width for the all-AS sweeps "
        "(default: $REPRO_BATCH or 256; 1 disables batching)",
    )
    experiments.set_defaults(func=cmd_experiments)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # the kernels read the environment at every dispatch site, so the
    # flags translate to the knobs once, before the subcommand runs
    if args.vector is not None:
        os.environ["REPRO_VECTOR"] = args.vector
    if args.shm is not None:
        os.environ["REPRO_SHM"] = args.shm
    if args.stream is not None:
        os.environ["REPRO_STREAM"] = args.stream
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
