"""repro — reproduction of "Cloud Provider Connectivity in the Flat Internet"
(Arnold et al., IMC 2020).

The package implements the paper's measurement and modeling stack:

* :mod:`repro.topology` — AS-level graph, CAIDA relationship file I/O,
  tier identification, traceroute augmentation;
* :mod:`repro.bgpsim` — Gao-Rexford route propagation with all ties kept;
* :mod:`repro.core` — hierarchy-free reachability, customer cones,
  reliance, route-leak resilience, path-length mixes;
* :mod:`repro.netgen` — synthetic Internet scenarios standing in for the
  paper's proprietary/online datasets;
* :mod:`repro.traceroute`, :mod:`repro.mapping`, :mod:`repro.neighbors` —
  the cloud traceroute measurement pipeline and its validation;
* :mod:`repro.geo`, :mod:`repro.pops` — PoP deployments, rDNS, geography;
* :mod:`repro.experiments` — one module per table/figure of the paper.

Quick taste::

    from repro.netgen import build_scenario, tiny
    from repro.core import hierarchy_free_reachability

    scenario = build_scenario(tiny())
    google = scenario.clouds["Google"]
    print(hierarchy_free_reachability(scenario.graph, google, scenario.tiers))
"""

__version__ = "1.0.0"

from . import (
    bgpsim,
    core,
    geo,
    mapping,
    neighbors,
    netgen,
    pops,
    topology,
    traceroute,
)

__all__ = [
    "__version__",
    "bgpsim",
    "core",
    "geo",
    "mapping",
    "neighbors",
    "netgen",
    "pops",
    "topology",
    "traceroute",
]
