"""Vectorized numpy ports of the compiled propagation and metric kernels.

The compiled engine (:mod:`repro.bgpsim.compiled`), the bit-parallel
multi-origin sweep (:mod:`repro.bgpsim.multiorigin`) and the metric
kernels (:mod:`repro.bgpsim.metrics_kernel`) all walk the CSR arrays in
interpreted Python loops.  This module reimplements the same passes as
level-synchronous numpy sweeps:

* :func:`propagate_compiled_vector` — the three Gao-Rexford phases as
  frontier-mask sweeps over the CSR offset/neighbor arrays.  Each phase
  keeps the level-synchronous structure of the pure kernel (phase 1 BFS
  up provider edges, phase 2 one peer hop with per-receiver min
  reduction, phase 3 a bucket-queue Dijkstra down customer edges), so
  the resulting :class:`~repro.bgpsim.compiled.CompiledRoutingState` is
  route-equivalent to :func:`~repro.bgpsim.compiled.propagate_compiled`
  with the parent pools in the canonical ascending order.
* :func:`propagate_batch_vector` — the multi-origin big-int sweep on
  ``(n, W)`` uint64 mask matrices, converted back to the Python big-int
  lists a :class:`~repro.bgpsim.multiorigin.BatchRoutingState` stores.
* :func:`build_metric_dag_vector` and the kernel twins
  (:func:`reliance_mass_vector`, :func:`cross_fractions_vector`,
  :func:`length_histogram_vector`) — the PR-4 DAG passes as level-batched
  forward/backward sweeps.  Float accumulation keeps the canonical order
  of the pure kernels (``np.add.at`` adds sequentially, levels are
  processed in the same direction, parents ascending within a node), so
  float results are **bit-identical** to the pure-Python kernels; when
  tied-best-path counts exceed 2**53 (where int→float64 casts stop being
  exact) the builders return ``None`` and callers fall back to the pure
  path.

numpy is an *optional* dependency (``pip install repro[perf]``).  The
``REPRO_VECTOR`` knob (``auto``/``on``/``off``, resolved by
:func:`resolve_vector`) selects the implementation: ``auto`` (the
default) uses numpy when importable and silently falls back to the pure
loops otherwise; ``on`` raises when numpy is missing; ``off`` forces the
pure path.  Dispatch happens inside the existing entry points
(``propagate_compiled`` / ``propagate_batch`` / ``dag_of`` / the metric
kernels), so every consumer — cache, incremental deltas, events, sweeps,
CLI — is served transparently.

Equivalence is proven by the differential harness in
``tests/test_vectorized_engine.py``.
"""

from __future__ import annotations

import math
import os
import sys
from array import array
from collections.abc import Collection, Mapping
from itertools import compress
from typing import Optional

from .compiled import (
    _NO_ROUTE,
    _shrink,
    _signed_typecode,
    _unsigned_typecode,
    CompiledGraph,
    CompiledRoutingState,
)
from .routes import Seed

__all__ = [
    "VECTOR_MODES",
    "numpy_available",
    "resolve_vector",
    "vector_enabled",
    "propagate_compiled_vector",
    "propagate_batch_vector",
    "build_metric_dag_vector",
    "path_counts_vector",
    "reliance_mass_vector",
    "reliance_vector",
    "cross_fractions_vector",
    "cross_fractions_many_vector",
    "hegemony_values_vector",
    "length_histogram_vector",
]

VECTOR_MODES = ("auto", "on", "off")

#: largest integer exactly representable as a float64; tied-best-path
#: counts beyond this make the int→float casts inexact, so the
#: vectorized kernels hand back to the pure big-int path
_EXACT_FLOAT_MAX = 1 << 53

# numpy is loaded lazily so that `import repro.bgpsim` stays cheap (and
# works at all) on stdlib-only installs; REPRO_VECTOR=off never imports it
_np = None
_np_checked = False


def _numpy():
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:
            import numpy
        except ImportError:
            numpy = None
        _np = numpy
    return _np


def numpy_available() -> bool:
    """True when numpy is importable (the ``[perf]`` extra is installed)."""
    return _numpy() is not None


def resolve_vector(vector: Optional[str | bool] = None) -> bool:
    """Normalize the vectorization knob: explicit value, else the
    ``REPRO_VECTOR`` environment variable, else ``auto``.

    ``auto`` enables the numpy kernels exactly when numpy is importable
    (silent fallback otherwise); ``on`` (also ``1``/``true``/``yes``)
    requires numpy and raises when it is missing; ``off`` (``0``/
    ``false``/``no``) forces the pure-Python loops.
    """
    if vector is None:
        vector = os.environ.get("REPRO_VECTOR", "auto")
    if isinstance(vector, bool):
        return vector and numpy_available()
    mode = str(vector).strip().lower()
    if mode in ("auto", ""):
        return numpy_available()
    if mode in ("on", "1", "true", "yes"):
        if not numpy_available():
            raise RuntimeError(
                "REPRO_VECTOR=on but numpy is not installed; "
                "install the perf extra (pip install repro[perf]) "
                "or set REPRO_VECTOR=auto/off"
            )
        return True
    if mode in ("off", "0", "false", "no"):
        return False
    raise ValueError(
        f"invalid vector mode {vector!r}; expected one of {VECTOR_MODES}"
    )


def vector_enabled() -> bool:
    """Shorthand used by the dispatch sites: :func:`resolve_vector` on
    the environment."""
    return resolve_vector()


# ---------------------------------------------------------------------------
# buffer <-> numpy bridges
# ---------------------------------------------------------------------------

#: array/memoryview typecode -> numpy dtype string
_DTYPES = {
    "B": "u1",
    "b": "i1",
    "H": "u2",
    "h": "i2",
    "I": "u4",
    "i": "i4",
    "L": "u8",
    "l": "i8",
    "Q": "u8",
    "q": "i8",
}


def _as_np(buf):
    """Zero-copy numpy view of an ``array``/``bytearray``/``memoryview``."""
    np = _np
    if isinstance(buf, array):
        code = buf.typecode
    elif isinstance(buf, memoryview):
        code = buf.format
    elif isinstance(buf, (bytes, bytearray)):
        code = "B"
    else:
        return np.asarray(buf)
    return np.frombuffer(buf, dtype=_DTYPES[code])


def _to_array(code: str, values) -> array:
    """Copy a numpy vector into an ``array(code)`` (the compact storage
    the compiled states pickle)."""
    out = array(code)
    out.frombytes(values.astype(_DTYPES[code], copy=False).tobytes())
    return out


def _graph_arrays(cg: CompiledGraph) -> dict:
    """int64 CSR views of a compiled graph, cached on the graph object
    (dropped by ``CompiledGraph.__getstate__`` so pickles stay small)."""
    cache = cg.__dict__.get("_np_csr")
    if cache is None:
        np = _np
        cache = {
            "poff": _as_np(cg.provider_off).astype(np.int64),
            "pnbr": _as_np(cg.provider_nbr).astype(np.int64),
            "coff": _as_np(cg.customer_off).astype(np.int64),
            "cnbr": _as_np(cg.customer_nbr).astype(np.int64),
            "qoff": _as_np(cg.peer_off).astype(np.int64),
            "qnbr": _as_np(cg.peer_nbr).astype(np.int64),
        }
        cg.__dict__["_np_csr"] = cache
    return cache


def _seg_arange(starts, counts):
    """Concatenated ``arange(start, start + count)`` per segment — the
    CSR gather index for a set of adjacency rows."""
    np = _np
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cum = np.cumsum(counts)
    out = np.repeat(starts - cum + counts, counts)
    out += np.arange(total, dtype=np.int64)
    return out


# ---------------------------------------------------------------------------
# single-announcement propagation (propagate_compiled port)
# ---------------------------------------------------------------------------


def propagate_compiled_vector(
    cg: CompiledGraph,
    seeds: tuple[Seed, ...],
    excluded: Collection[int] = frozenset(),
    peer_locked: Collection[int] = frozenset(),
    locked_origin: Optional[int] = None,
) -> CompiledRoutingState:
    """numpy port of the three Gao-Rexford phases of
    :func:`~repro.bgpsim.compiled.propagate_compiled`.

    ``cg`` must already be compiled and ``seeds`` validated (the caller
    is ``propagate_compiled`` itself, after ``_check_seeds``).  Produces
    a route-equivalent :class:`CompiledRoutingState` with parent pools in
    canonical ascending order and ``routed`` sorted ascending.
    """
    np = _np
    g = _graph_arrays(cg)
    index = cg.index
    n = cg.n
    if locked_origin is None:
        locked_origin = seeds[0].asn
    locked_idx = index.get(locked_origin, -2)

    ex = np.zeros(n, dtype=bool)
    for asn in excluded:
        i = index.get(asn)
        if i is not None:
            ex[i] = True
    seed_asns = {s.asn for s in seeds}
    lk = np.zeros(n, dtype=bool)
    for asn in peer_locked:
        if asn in seed_asns:
            continue
        i = index.get(asn)
        if i is not None:
            lk[i] = True
    # the common sweep case has no exclusions/locks at all; skipping the
    # mask gathers entirely is a sizeable win at small graph scales
    masked = bool(ex.any()) or bool(lk.any())

    # per-seed export restrictions, as sorted neighbor-index arrays
    seed_export: dict[int, "object"] = {}
    for seed in seeds:
        if seed.export_to is not None:
            allowed = sorted(
                index[a] for a in seed.export_to if a in index
            )
            seed_export[index[seed.asn]] = np.asarray(allowed, np.int64)

    rc = np.full(n, _NO_ROUTE, dtype=np.uint8)
    ln = np.zeros(n, dtype=np.int64)
    children_parts: list = []
    parents_parts: list = []

    poff, pnbr = g["poff"], g["pnbr"]
    coff, cnbr = g["coff"], g["cnbr"]
    qoff, qnbr = g["qoff"], g["qnbr"]

    def _apply_export(keep, send, recv):
        """Drop edges a seed sender's export_to filter blocks (in place)."""
        for si, allowed in seed_export.items():
            m = keep & (send == si)
            if m.any():
                idx = np.nonzero(m)[0]
                ok = np.isin(recv[idx], allowed)
                keep[idx[~ok]] = False
        return keep

    def _dedup(nodes):
        """Unique node indices, ascending (flag-scatter: cheaper than a
        sort-based ``np.unique`` at these sizes)."""
        seen = np.zeros(n, dtype=bool)
        seen[nodes] = True
        return np.nonzero(seen)[0]

    # -- phase 1: customer routes, level-synchronous BFS up providers ----
    pending: dict[int, list] = {}
    for seed in seeds:
        s = index[seed.asn]
        rc[s] = 0
        ln[s] = seed.initial_length
        exp = seed_export.get(s)
        row = pnbr[poff[s] : poff[s + 1]]
        if masked:
            keep = ~ex[row]
            if s != locked_idx:
                keep &= ~lk[row]
            if exp is not None:
                keep &= np.isin(row, exp)
            recvs = row[keep]
        elif exp is not None:
            recvs = row[np.isin(row, exp)]
        else:
            recvs = row
        if recvs.size:
            pending.setdefault(seed.initial_length + 1, []).append(
                (recvs, np.full(recvs.size, s, dtype=np.int64))
            )

    level = min(pending) if pending else 0
    while pending:
        if level not in pending:
            level = min(pending)
        parts = pending.pop(level)
        if len(parts) == 1:
            recv, send = parts[0]
        else:
            recv = np.concatenate([p[0] for p in parts])
            send = np.concatenate([p[1] for p in parts])
        # every event whose receiver is still unrouted at level start is
        # a tied parent edge (senders are exactly one level shorter);
        # events into already-routed nodes can only target earlier levels
        # or seeds and are dropped, exactly as in the pure kernel
        new = rc[recv] == _NO_ROUTE
        if new.any():
            nr, ns = recv[new], send[new]
            children_parts.append(nr)
            parents_parts.append(ns)
            newly = _dedup(nr)
            rc[newly] = 0
            ln[newly] = level
            starts = poff[newly]
            counts = poff[newly + 1] - starts
            if int(counts.sum()):
                nrecv = pnbr[_seg_arange(starts, counts)]
                nsend = np.repeat(newly, counts)
                if masked:
                    keep = ~ex[nrecv] & (~lk[nrecv] | (nsend == locked_idx))
                    if keep.any():
                        pending.setdefault(level + 1, []).append(
                            (nrecv[keep], nsend[keep])
                        )
                else:
                    pending.setdefault(level + 1, []).append((nrecv, nsend))
        level += 1

    # -- phase 2: peer routes, one hop from customer-routed ASes ---------
    cust_nodes = np.nonzero(rc == 0)[0].astype(np.int64)
    starts = qoff[cust_nodes]
    counts = qoff[cust_nodes + 1] - starts
    if int(counts.sum()):
        recv = qnbr[_seg_arange(starts, counts)]
        send = np.repeat(cust_nodes, counts)
        keep = rc[recv] == _NO_ROUTE
        if masked:
            keep &= ~ex[recv] & (~lk[recv] | (send == locked_idx))
        if seed_export:
            _apply_export(keep, send, recv)
        recv, send = recv[keep], send[keep]
        if recv.size:
            hop = ln[send] + 1
            minhop = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
            np.minimum.at(minhop, recv, hop)
            tie = hop == minhop[recv]
            tr = recv[tie]
            # ties arrive in sender order, which the canonical pool
            # lexsort at assembly re-orders anyway
            children_parts.append(tr)
            parents_parts.append(send[tie])
            rc[tr] = 1
            ln[tr] = minhop[tr]

    # -- phase 3: provider routes, bucket-queue Dijkstra down customers --
    routed_nodes = np.nonzero(rc != _NO_ROUTE)[0].astype(np.int64)
    pending = {}
    starts = coff[routed_nodes]
    counts = coff[routed_nodes + 1] - starts
    if int(counts.sum()):
        recv = cnbr[_seg_arange(starts, counts)]
        send = np.repeat(routed_nodes, counts)
        keep = rc[recv] == _NO_ROUTE
        if masked:
            keep &= ~ex[recv] & (~lk[recv] | (send == locked_idx))
        if seed_export:
            _apply_export(keep, send, recv)
        recv, send = recv[keep], send[keep]
        if recv.size:
            hop = ln[send] + 1
            for h in np.unique(hop):
                m = hop == h
                pending[int(h)] = [(recv[m], send[m])]
    while pending:
        depth = min(pending)
        parts = pending.pop(depth)
        if len(parts) == 1:
            recv, send = parts[0]
        else:
            recv = np.concatenate([p[0] for p in parts])
            send = np.concatenate([p[1] for p in parts])
        new = rc[recv] == _NO_ROUTE
        if new.any():
            nr, ns = recv[new], send[new]
            children_parts.append(nr)
            parents_parts.append(ns)
            newly = _dedup(nr)
            rc[newly] = 2
            ln[newly] = depth
            starts = coff[newly]
            counts = coff[newly + 1] - starts
            if int(counts.sum()):
                nrecv = cnbr[_seg_arange(starts, counts)]
                nsend = np.repeat(newly, counts)
                keep = rc[nrecv] == _NO_ROUTE
                if masked:
                    keep &= ~ex[nrecv] & (~lk[nrecv] | (nsend == locked_idx))
                if keep.any():
                    pending.setdefault(depth + 1, []).append(
                        (nrecv[keep], nsend[keep])
                    )

    # -- assemble the linked parent-edge pool (canonical order) ----------
    if children_parts:
        children = np.concatenate(children_parts)
        parents = np.concatenate(parents_parts)
        o = np.lexsort((parents, children))
        children, parents = children[o], parents[o]
    else:
        children = parents = np.empty(0, dtype=np.int64)
    pool_size = children.size
    head = np.full(n, -1, dtype=np.int64)
    pool_next = np.empty(pool_size, dtype=np.int64)
    if pool_size:
        first = np.ones(pool_size, dtype=bool)
        first[1:] = children[1:] != children[:-1]
        pool_next = np.arange(pool_size, dtype=np.int64) - 1
        pool_next[first] = -1
        last = np.ones(pool_size, dtype=bool)
        last[:-1] = first[1:]
        head[children[last]] = np.nonzero(last)[0]
    routed = np.nonzero(rc != _NO_ROUTE)[0].astype(np.int64)

    # -- origins: per-level OR of the parents' masks ---------------------
    origin_mask: Optional[list[int]] = None
    if len(seeds) > 1:
        if len(seeds) <= 64 and pool_size:
            om = np.zeros(n, dtype=np.uint64)
            for b, seed in enumerate(seeds):
                om[index[seed.asn]] = np.uint64(1 << b)
            cl = ln[children]
            o = np.argsort(cl, kind="stable")
            ch_s, pa_s, cl_s = children[o], parents[o], cl[o]
            bounds = np.nonzero(np.diff(cl_s))[0] + 1
            lo = np.concatenate((np.zeros(1, dtype=np.int64), bounds))
            hi = np.concatenate((bounds, [cl_s.size]))
            for a, b2 in zip(lo, hi):
                # parents are one hop shorter, so their masks are final
                # when their children's level is processed
                np.bitwise_or.at(
                    om, ch_s[a:b2], om[pa_s[a:b2]]
                )
            origin_mask = [int(v) for v in om.tolist()]
        else:
            origin_mask = [0] * n
            for b, seed in enumerate(seeds):
                origin_mask[index[seed.asn]] = 1 << b
            cl = ln[children]
            o = np.argsort(cl, kind="stable")
            ch_l = children[o].tolist()
            pa_l = parents[o].tolist()
            for c, p in zip(ch_l, pa_l):
                origin_mask[c] |= origin_mask[p]

    node_code = _unsigned_typecode(max(n - 1, 0))
    pool_code = _signed_typecode(pool_size)
    max_len = int(ln[routed].max()) if routed.size else 0
    return CompiledRoutingState(
        cg.asns,
        seeds,
        bytearray(rc.tobytes()),
        _to_array(_unsigned_typecode(max_len), ln),
        _to_array(pool_code, head),
        _to_array(node_code, parents),
        _to_array(pool_code, pool_next),
        _to_array(node_code, routed),
        origin_mask,
    )


# ---------------------------------------------------------------------------
# multi-origin bit-parallel propagation (propagate_batch port)
# ---------------------------------------------------------------------------


def propagate_batch_vector(cg: CompiledGraph, origins: tuple[int, ...], ex):
    """numpy port of :func:`~repro.bgpsim.multiorigin.propagate_batch`.

    ``ex`` is the per-node excluded bytearray the caller already built.
    Origin masks live in ``(n, W)`` uint64 matrices (bit *b* of a row is
    ``origins[b]``), OR-aggregated per level with ``np.bitwise_or.at``;
    the result converts back to the Python big-int lists/buckets a
    :class:`~repro.bgpsim.multiorigin.BatchRoutingState` stores, so views
    and pickling are unchanged.  Returns ``None`` on big-endian hosts
    (the word-blit int conversion assumes little-endian).
    """
    if sys.byteorder != "little":
        return None
    from .multiorigin import BatchRoutingState

    np = _np
    g = _graph_arrays(cg)
    index = cg.index
    n = cg.n
    width = len(origins)
    words = (width + 63) >> 6
    exm = _as_np(ex) != 0

    cust = np.zeros((n, words), dtype=np.uint64)
    peer = np.zeros((n, words), dtype=np.uint64)
    prov = np.zeros((n, words), dtype=np.uint64)
    buckets_np: dict[tuple[int, int], tuple] = {}

    poff, pnbr = g["poff"], g["pnbr"]
    coff, cnbr = g["coff"], g["cnbr"]
    qoff, qnbr = g["qoff"], g["qnbr"]

    def _aggregate(recv, rmask):
        """OR the per-edge masks into one row per distinct receiver."""
        uq, inv = np.unique(recv, return_inverse=True)
        acc = np.zeros((uq.size, words), dtype=np.uint64)
        np.bitwise_or.at(acc, inv, rmask)
        return uq, acc

    def _expand(off, nbr, nodes, masks):
        """Push ``masks`` across one CSR relation, dropping excluded
        receivers; returns per-edge (recv, mask-rows)."""
        starts = off[nodes]
        counts = off[nodes + 1] - starts
        if not int(counts.sum()):
            return None
        recv = nbr[_seg_arange(starts, counts)]
        rmask = np.repeat(masks, counts, axis=0)
        keep = ~exm[recv]
        if not keep.any():
            return None
        return recv[keep], rmask[keep]

    # -- phase 1: BFS up provider edges, all origin bits at once ---------
    start: dict[int, int] = {}
    for b, origin in enumerate(origins):
        i = index[origin]
        start[i] = start.get(i, 0) | (1 << b)
    nodes = np.fromiter(start.keys(), np.int64, len(start))
    masks = np.zeros((nodes.size, words), dtype=np.uint64)
    for k, i in enumerate(nodes.tolist()):
        mask = start[i]
        for w in range(words):
            masks[k, w] = np.uint64((mask >> (64 * w)) & 0xFFFFFFFFFFFFFFFF)
    level = 0
    cust_levels: list[tuple[int, "object", "object"]] = []
    while nodes.size:
        newm = masks & ~cust[nodes]
        any_new = newm.any(axis=1)
        nodes, newm = nodes[any_new], newm[any_new]
        if not nodes.size:
            break
        cust[nodes] |= newm
        buckets_np[(0, level)] = (nodes, newm)
        cust_levels.append((level, nodes, newm))
        edges = _expand(poff, pnbr, nodes, newm)
        if edges is None:
            nodes = np.empty(0, dtype=np.int64)
        else:
            uq, acc = _aggregate(*edges)
            rem = acc & ~cust[uq]
            alive = rem.any(axis=1)
            nodes, masks = uq[alive], rem[alive]
        level += 1

    # -- phase 2: one peer hop, customer levels ascending ----------------
    peer_levels: list[tuple[int, "object", "object"]] = []
    for src_level, lnodes, lmasks in cust_levels:
        edges = _expand(qoff, qnbr, lnodes, lmasks)
        if edges is None:
            continue
        recv, rmask = edges
        bits = rmask & ~cust[recv] & ~peer[recv]
        alive = bits.any(axis=1)
        recv, bits = recv[alive], bits[alive]
        if not recv.size:
            continue
        uq, acc = _aggregate(recv, bits)
        peer[uq] |= acc
        buckets_np[(1, src_level + 1)] = (uq, acc)
        peer_levels.append((src_level + 1, uq, acc))

    # -- phase 3: bucket-queue Dijkstra down customer edges --------------
    pending: dict[int, list] = {}

    def _seed_down(src_level, lnodes, lmasks):
        edges = _expand(coff, cnbr, lnodes, lmasks)
        if edges is not None:
            pending.setdefault(src_level + 1, []).append(edges)

    for src_level, lnodes, lmasks in cust_levels:
        _seed_down(src_level, lnodes, lmasks)
    for src_level, lnodes, lmasks in peer_levels:
        _seed_down(src_level, lnodes, lmasks)
    while pending:
        depth = min(pending)
        parts = pending.pop(depth)
        recv = np.concatenate([p[0] for p in parts])
        rmask = np.concatenate([p[1] for p in parts])
        uq, acc = _aggregate(recv, rmask)
        new = acc & ~cust[uq] & ~peer[uq] & ~prov[uq]
        alive = new.any(axis=1)
        uq, new = uq[alive], new[alive]
        if uq.size:
            prov[uq] |= new
            buckets_np[(2, depth)] = (uq, new)
            _seed_down(depth, uq, new)

    # -- convert the uint64 matrices back to Python big ints -------------
    stride = 8 * words

    def _row_ints(mat) -> list[int]:
        blob = mat.tobytes()
        return [
            int.from_bytes(blob[k * stride : (k + 1) * stride], "little")
            for k in range(mat.shape[0])
        ]

    buckets: dict[tuple[int, int], dict[int, int]] = {}
    for key, (bnodes, bmasks) in buckets_np.items():
        blob = bmasks.tobytes()
        buckets[key] = {
            int(node): int.from_bytes(
                blob[k * stride : (k + 1) * stride], "little"
            )
            for k, node in enumerate(bnodes.tolist())
        }
    return BatchRoutingState(
        cg,
        origins,
        _row_ints(cust),
        _row_ints(peer),
        _row_ints(prov),
        buckets,
    )


# ---------------------------------------------------------------------------
# metric DAG build (MetricDAG port)
# ---------------------------------------------------------------------------


def build_metric_dag_vector(state):
    """Vectorized :class:`~repro.bgpsim.metrics_kernel.MetricDAG` build.

    Produces a genuine ``MetricDAG`` (plain-list fields, identical to the
    pure constructor's output) so every existing consumer — including the
    exact-``Fraction`` reference paths — works unchanged.  Returns
    ``None`` when tied-best-path counts overflow the exact-float range,
    in which case the caller builds the DAG with the pure big-int loop.
    """
    from .incremental import DeltaRoutingState
    from .metrics_kernel import MetricDAG

    np = _np
    if isinstance(state, DeltaRoutingState):
        base, overrides = state._baseline, state._overrides
    else:
        base, overrides = state, None
    asns = base._asns
    n = len(asns)
    rc = _as_np(base._route_class)
    ln = _as_np(base._length).astype(np.int64)
    if overrides:
        rc = rc.copy()
        for i, override in overrides.items():
            rc[i] = override[0]
            if override[0] != _NO_ROUTE:
                ln[i] = override[1]
    routed_mask = rc != _NO_ROUTE
    idxs = np.nonzero(routed_mask)[0].astype(np.int64)
    m = idxs.size
    # stable sort by length == the pure counting sort: length ascending,
    # node index ascending within a length
    order = idxs[np.argsort(ln[idxs], kind="stable")]
    lengths = ln[order]
    positions = np.arange(m, dtype=np.int64)

    # parent edges: walk every linked pool in parallel (one gather per
    # linked-list depth), overridden nodes replaced by their override sets
    head = _as_np(base._parent_head).astype(np.int64)[order]
    if overrides:
        ov_nodes = np.fromiter(overrides.keys(), np.int64, len(overrides))
        head[np.isin(order, ov_nodes)] = -1
    pool_parent = _as_np(base._pool_parent).astype(np.int64)
    pool_next = _as_np(base._pool_next).astype(np.int64)
    pos_parts: list = []
    par_parts: list = []
    apos, acur = positions, head
    alive = acur >= 0
    apos, acur = apos[alive], acur[alive]
    while apos.size:
        pos_parts.append(apos)
        par_parts.append(pool_parent[acur])
        acur = pool_next[acur]
        alive = acur >= 0
        apos, acur = apos[alive], acur[alive]
    if overrides:
        pos_lookup = np.full(n, -1, dtype=np.int64)
        pos_lookup[order] = positions
        extra_pos: list[int] = []
        extra_par: list[int] = []
        for i, override in overrides.items():
            if override[0] == _NO_ROUTE:
                continue
            k = int(pos_lookup[i])
            for p in override[2]:
                extra_pos.append(k)
                extra_par.append(p)
        if extra_pos:
            pos_parts.append(np.asarray(extra_pos, np.int64))
            par_parts.append(np.asarray(extra_par, np.int64))
    if pos_parts:
        epos = np.concatenate(pos_parts)
        epar = np.concatenate(par_parts)
        o = np.lexsort((epar, epos))
        epos, epar = epos[o], epar[o]
    else:
        epos = epar = np.empty(0, dtype=np.int64)
    edge_counts = np.bincount(epos, minlength=m).astype(np.int64)
    par_off = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(edge_counts, out=par_off[1:])

    # tied-best-path counts, level-batched; parents are strictly shorter
    # so each level reads only finalized values
    seed_idx = frozenset(
        i
        for i in (base._idx(asn) for asn in state.seed_asns)
        if i is not None
    )
    seed_arr = np.fromiter(seed_idx, np.int64, len(seed_idx))
    seed_arr.sort()
    is_seed = np.zeros(n, dtype=bool)
    is_seed[seed_arr] = True
    nonseed_pos = ~is_seed[order]
    counts = np.zeros(n, dtype=np.int64)
    counts[seed_arr] = 1
    if m:
        bounds = np.nonzero(np.diff(lengths))[0] + 1
        level_lo = np.concatenate((np.zeros(1, dtype=np.int64), bounds))
        level_hi = np.concatenate((bounds, [m]))
    else:
        level_lo = level_hi = np.empty(0, dtype=np.int64)
    # with pools of at most 1024 parents, a level sum of ≤2**53 counts
    # cannot wrap int64, so the cheap post-check suffices; wider pools
    # keep the per-level conservative pre-check
    global_pool_max = int(edge_counts.max()) if m else 0
    narrow_pools = global_pool_max <= 1024
    # which levels contain a seed (only those need the scatter mask)
    seed_in_level = np.zeros(level_lo.size, dtype=bool)
    if seed_arr.size and m:
        spos = np.nonzero(~nonseed_pos)[0]
        seed_in_level[
            np.searchsorted(level_lo, spos, side="right") - 1
        ] = True
    denom_pos = np.zeros(m, dtype=np.int64)
    for li, (a, b) in enumerate(zip(level_lo.tolist(), level_hi.tolist())):
        ea, eb = int(par_off[a]), int(par_off[b])
        node_sum = np.zeros(b - a, dtype=np.int64)
        if eb > ea:
            vals = counts[epar[ea:eb]]
            if not narrow_pools:
                prev_max = int(vals.max())
                # bail out before int64 accumulation can wrap
                if prev_max and global_pool_max > (1 << 62) // prev_max:
                    return None
            np.add.at(node_sum, epos[ea:eb] - a, vals)
            # counts beyond 2**53 leave the exactly-float range
            if int(node_sum.max()) > _EXACT_FLOAT_MAX:
                return None
        denom_pos[a:b] = node_sum
        tgt = order[a:b]
        if seed_in_level[li]:
            ns = nonseed_pos[a:b]
            counts[tgt[ns]] = node_sum[ns]
        else:
            counts[tgt] = node_sum

    dag = MetricDAG.__new__(MetricDAG)
    dag.asns = asns
    dag.counts = counts.tolist()
    dag.n = n
    dag.order = order.tolist()
    dag.lengths = lengths.tolist()
    dag.par_off = par_off.tolist()
    dag.parents = epar.tolist()
    dag.routed = bytearray(routed_mask.astype(np.uint8).tobytes())
    dag.seed_idx = seed_idx
    # the builder already has every kernel-cache array in hand, so the
    # numpy cache is preset instead of rebuilt from the lists on demand
    _finish_npc(
        dag,
        order=order,
        lengths=lengths,
        par_off=par_off,
        parents=epar,
        counts=counts,
        denom=denom_pos,
        seed_arr=seed_arr,
        levels=(level_lo, level_hi),
        nonseed=nonseed_pos,
    )
    return dag


def _finish_npc(
    dag, *, order, lengths, par_off, parents, counts, denom, seed_arr,
    levels, nonseed
):
    """Assemble and attach a :class:`MetricDAG`'s numpy kernel cache."""
    np = _np
    pools = np.diff(par_off)
    npc = {
        "order": order,
        "lengths": lengths,
        "par_off": par_off,
        "parents": parents,
        "counts": counts,
        "countsf": counts.astype(np.float64),
        "denomf": denom.astype(np.float64),
        "seed_arr": seed_arr,
        "levels": levels,
        "nonseed": nonseed,
        # a zero denominator under a nonempty pool would make the pure
        # kernels raise; hand those (pathological) DAGs back to them
        "zero_denom": bool(np.any((denom == 0) & (pools > 0))),
        # lazy per-DAG caches: node->position lookup, ASN keys in order
        # sequence, and the per-level sweep plans the kernels replay
        "pos": None,
        "keys": None,
        "rel_plan": None,
        "cf_plan": None,
    }
    dag._np = npc
    return npc


def _dag_np(dag):
    """The numpy kernel cache of a :class:`MetricDAG` (lazy, cached on
    the DAG).  ``None`` when the DAG cannot be served exactly by float64
    kernels (counts or denominators beyond 2**53)."""
    npc = getattr(dag, "_np", None)
    if npc is False:
        return None
    if npc is not None:
        return npc
    np = _np
    try:
        counts = np.asarray(dag.counts, dtype=np.int64)
    except OverflowError:
        dag._np = False
        return None
    if counts.size and int(counts.max()) > _EXACT_FLOAT_MAX:
        dag._np = False
        return None
    order = np.asarray(dag.order, dtype=np.int64)
    m = order.size
    lengths = np.asarray(dag.lengths, dtype=np.int64)
    par_off = np.asarray(dag.par_off, dtype=np.int64)
    parents = np.asarray(dag.parents, dtype=np.int64)
    pools = np.diff(par_off)
    # guard the denominator accumulation the same way the builder guards
    # the counts: no int64 wrap, and exact as float64
    prev_max = int(counts.max()) if counts.size else 0
    pool_max = int(pools.max()) if pools.size else 0
    if prev_max and pool_max > (1 << 62) // prev_max:
        dag._np = False
        return None
    edge_pos = np.repeat(np.arange(m, dtype=np.int64), pools)
    seed_arr = np.fromiter(dag.seed_idx, np.int64, len(dag.seed_idx))
    seed_arr.sort()
    if m:
        bounds = np.nonzero(np.diff(lengths))[0] + 1
        level_lo = np.concatenate((np.zeros(1, dtype=np.int64), bounds))
        level_hi = np.concatenate((bounds, [m]))
    else:
        level_lo = level_hi = np.empty(0, dtype=np.int64)
    denom = np.zeros(m, dtype=np.int64)
    np.add.at(denom, edge_pos, counts[parents])
    if denom.size and int(denom.max()) > _EXACT_FLOAT_MAX:
        dag._np = False
        return None
    is_seed = np.zeros(dag.n, dtype=bool)
    is_seed[seed_arr] = True
    return _finish_npc(
        dag,
        order=order,
        lengths=lengths,
        par_off=par_off,
        parents=parents,
        counts=counts,
        denom=denom,
        seed_arr=seed_arr,
        levels=(level_lo, level_hi),
        nonseed=~is_seed[order],
    )


def _pos_of(dag, npc):
    """Node-index -> DAG-position lookup array (lazy, cached)."""
    pos = npc["pos"]
    if pos is None:
        np = _np
        pos = np.full(dag.n, -1, dtype=np.int64)
        pos[npc["order"]] = np.arange(npc["order"].size, dtype=np.int64)
        npc["pos"] = pos
    return pos


def _keys_of(dag, npc):
    """ASNs in DAG-order sequence (the kernels' output-dict keys)."""
    keys = npc["keys"]
    if keys is None:
        asns = dag.asns
        keys = [asns[i] for i in dag.order]
        npc["keys"] = keys
    return keys


def _rel_plan(dag, npc):
    """Per-level backward-sweep plan for the reliance kernel: for each
    length level (descending) the child nodes (descending), their pool
    sizes, the flattened parent indices (ascending within a child) and
    each edge's precomputed share ``counts[p] / denom`` — everything
    that does not depend on the receiver set."""
    plan = npc["rel_plan"]
    if plan is None:
        np = _np
        order, par_off = npc["order"], npc["par_off"]
        parents = npc["parents"]
        countsf, denomf = npc["countsf"], npc["denomf"]
        level_lo, level_hi = npc["levels"]
        plan = []
        for li in range(level_lo.size - 1, -1, -1):
            a, b = int(level_lo[li]), int(level_hi[li])
            if int(par_off[b]) == int(par_off[a]):
                continue
            ks = np.arange(b - 1, a - 1, -1, dtype=np.int64)
            ct = par_off[ks + 1] - par_off[ks]
            nz = ct > 0
            ks, ct = ks[nz], ct[nz]
            pa = parents[_seg_arange(par_off[ks], ct)]
            # a single parent's share is exactly 1.0, so the multiply
            # matches the pure kernel's add-without-multiply bitwise
            share = countsf[pa] / np.repeat(denomf[ks], ct)
            plan.append((order[ks], ct, pa, share))
        npc["rel_plan"] = plan
    return plan


def _cf_plan(dag, npc):
    """Per-level forward-sweep plan for the cross-fraction kernels, in
    DAG *position* space.

    Per level: the multi-parent rows as *global* positions plus their
    denominators and a list of accumulation steps — step ``j`` holds the
    ``j``-th parent (position + float count) of every row with more than
    ``j`` parents, so replaying the steps left-to-right accumulates each
    row's numerator in exactly the pure kernel's order (parents
    ascending) with plain vector adds instead of a buffered ``ufunc.at``
    — and the single-parent rows with their one parent's position."""
    plan = npc["cf_plan"]
    if plan is None:
        np = _np
        par_off, parents = npc["par_off"], npc["parents"]
        countsf, denomf = npc["countsf"], npc["denomf"]
        level_lo, level_hi = npc["levels"]
        pos = _pos_of(dag, npc)
        empty = np.empty(0, dtype=np.int64)
        plan = []
        for li in range(level_lo.size):
            a, b = int(level_lo[li]), int(level_hi[li])
            ks = np.arange(a, b, dtype=np.int64)
            ct = par_off[ks + 1] - par_off[ks]
            lm = np.nonzero(ct > 1)[0]
            steps: list = []
            denom_m = empty
            if lm.size:
                moff = par_off[ks[lm]]
                mct = ct[lm]
                denom_m = denomf[ks[lm]]
                for j in range(int(mct.max())):
                    rows = np.nonzero(mct > j)[0]
                    par_j = parents[moff[rows] + j]
                    pa_pos = pos[par_j]
                    w_pa = countsf[par_j]
                    # step 0 covers every row (all pools have >= 2
                    # parents), recorded as None for the assign fast path
                    steps.append(
                        (None if rows.size == lm.size else rows,
                         pa_pos, w_pa)
                    )
            ls = np.nonzero(ct == 1)[0]
            sp_pos = pos[parents[par_off[ks[ls]]]] if ls.size else empty
            plan.append((a, b, a + lm, steps, denom_m, a + ls, sp_pos))
        npc["cf_plan"] = plan
    return plan


# ---------------------------------------------------------------------------
# metric kernels (bit-identical float twins)
# ---------------------------------------------------------------------------


def _reliance_mass(state, receivers: Optional[Collection[int]]):
    """The §7 backward mass sweep; ``(dag, npc, mass ndarray)`` or
    ``None`` when the pure fallback must serve."""
    from .metrics_kernel import dag_of

    dag = dag_of(state)
    npc = _dag_np(dag)
    if npc is None or npc["zero_denom"]:
        return None
    np = _np
    mass = np.zeros(dag.n)
    if receivers is None:
        mass[npc["order"]] = 1.0
        mass[npc["seed_arr"]] = 0.0
    else:
        seed_idx = dag.seed_idx
        routed = dag.routed
        for asn in receivers:
            i = dag.idx(asn)
            if i is not None and routed[i] and i not in seed_idx:
                mass[i] = 1.0
    # children whose mass is still zero contribute exact +0.0 terms,
    # which leave every (non-negative) accumulator bit-identical — so no
    # per-call filtering is needed beyond skipping all-zero levels
    for child_nodes, ct, pa, share in _rel_plan(dag, npc):
        cm_k = mass[child_nodes]
        if not cm_k.any():
            continue
        np.add.at(mass, pa, np.repeat(cm_k, ct) * share)
    return dag, npc, mass


def reliance_mass_vector(state, receivers: Optional[Collection[int]] = None):
    """Vectorized float twin of
    :func:`~repro.bgpsim.metrics_kernel.reliance_mass_kernel`.

    One backward sweep per length level, edges ordered (child descending,
    parent ascending) and accumulated with ``np.add.at`` — the exact
    order of the pure kernel, so the masses are bit-identical.  Returns
    ``None`` to request the pure fallback.
    """
    result = _reliance_mass(state, receivers)
    if result is None:
        return None
    dag, _, mass = result
    return dag, mass.tolist()


def reliance_vector(state, receivers: Optional[Collection[int]] = None):
    """Dict-shaped vectorized reliance — the whole of
    :func:`~repro.bgpsim.metrics_kernel.reliance_kernel`, including the
    zero-mass/seed filter and the ASN-keyed assembly (the pure wrapper's
    per-node filter loop costs more than the sweep itself).  Returns
    ``None`` to request the pure fallback."""
    result = _reliance_mass(state, receivers)
    if result is None:
        return None
    dag, npc, mass = result
    mass_ord = mass[npc["order"]]
    keep = npc["nonseed"] & (mass_ord != 0.0)
    keys = _keys_of(dag, npc)
    if bool(keep.all()):
        return dict(zip(keys, mass_ord.tolist()))
    kl = keep.tolist()
    return dict(
        zip(compress(keys, kl), compress(mass_ord.tolist(), kl))
    )


def path_counts_vector(state):
    """ASN-keyed tied-best-path counts — the dict of
    :func:`~repro.bgpsim.metrics_kernel.path_counts_kernel` assembled
    without the per-node Python loop.  Returns ``None`` to request the
    pure fallback (counts beyond 2**53 never reach here — the numpy
    cache refuses to build for them)."""
    from .metrics_kernel import dag_of

    dag = dag_of(state)
    npc = _dag_np(dag)
    if npc is None:
        return None
    counts_ord = npc["counts"][npc["order"]]
    return dict(zip(_keys_of(dag, npc), counts_ord.tolist()))


def cross_fractions_vector(state, target: int):
    """Vectorized float twin of
    :func:`~repro.bgpsim.metrics_kernel.cross_fractions_kernel`
    (forward sweep, single-parent inheritance special-cased to match the
    pure shortcut bitwise).  Returns ``None`` to request the fallback."""
    from .metrics_kernel import dag_of

    dag = dag_of(state)
    npc = _dag_np(dag)
    if npc is None or npc["zero_denom"]:
        return None
    ti = dag.idx(target)
    if ti is None or not dag.routed[ti]:
        return {}
    np = _np
    m = npc["order"].size
    tk = int(_pos_of(dag, npc)[ti])
    fracp = np.zeros(m)
    # positions are written exactly once, at their own level, so results
    # land directly in fracp; zero-parent rows (seeds) keep the 0.0 the
    # pure sweep assigns them
    for a, b, lm_g, steps, denom_m, ls_g, sp_pos in _cf_plan(dag, npc):
        if b <= tk:
            # every fraction strictly before the target's level is an
            # exact 0.0, the same value the pure sweep computes
            continue
        if steps:
            # replaying the steps adds each row's parents left-to-right
            # (ascending), the pure kernel's accumulation order
            rows0, pa0, w0 = steps[0]
            numer = fracp[pa0] * w0
            for rows, pa_pos, w_pa in steps[1:]:
                numer[rows] += fracp[pa_pos] * w_pa
            fracp[lm_g] = numer / denom_m
        if ls_g.size:
            fracp[ls_g] = fracp[sp_pos]
        if a <= tk < b:
            fracp[tk] = 1.0
    return dict(zip(_keys_of(dag, npc), fracp.tolist()))


def cross_fractions_many_vector(state, targets):
    """Crossing fractions of *many* targets against one state in a
    single forward sweep (one ``(m, T)`` matrix instead of T vector
    passes — the shape of a hegemony target sweep).  Each returned dict
    is bit-identical to :func:`cross_fractions_vector` of that target;
    unrouted targets yield ``{}``.  Returns ``None`` to request the
    per-target fallback."""
    from .metrics_kernel import dag_of

    dag = dag_of(state)
    npc = _dag_np(dag)
    if npc is None or npc["zero_denom"]:
        return None
    targets = list(targets)
    np = _np
    pos = _pos_of(dag, npc)
    tks = np.full(len(targets), -1, dtype=np.int64)
    for j, target in enumerate(targets):
        ti = dag.idx(target)
        if ti is not None and dag.routed[ti]:
            tks[j] = pos[ti]
    live = np.nonzero(tks >= 0)[0]
    results: list[dict] = [{} for _ in targets]
    if not live.size:
        return results
    keys = _keys_of(dag, npc)
    columns = np.ascontiguousarray(_cf_matrix(dag, npc, tks[live]).T)
    for col, j in enumerate(live.tolist()):
        results[j] = dict(zip(keys, columns[col].tolist()))
    return results


def _cf_matrix(dag, npc, lt):
    """The ``(m, len(lt))`` crossing-fraction matrix, one column per
    (routed) target position in ``lt`` — the shared core of the
    many-target sweeps."""
    np = _np
    m = npc["order"].size
    fracp = np.zeros((m, lt.size))
    mintk = int(lt.min())
    for a, b, lm_g, steps, denom_m, ls_g, sp_pos in _cf_plan(dag, npc):
        if b <= mintk:
            continue
        if steps:
            # same stepped replay as the 1-D kernel, one row vector per
            # target column — every column stays bit-identical
            rows0, pa0, w0 = steps[0]
            numer = fracp[pa0] * w0[:, None]
            for rows, pa_pos, w_pa in steps[1:]:
                numer[rows] += fracp[pa_pos] * w_pa[:, None]
            fracp[lm_g] = numer / denom_m[:, None]
        if ls_g.size:
            fracp[ls_g] = fracp[sp_pos]
        hit = (lt >= a) & (lt < b)
        if hit.any():
            fracp[lt[hit], np.nonzero(hit)[0]] = 1.0
    return fracp


def hegemony_values_vector(state, origin: int, targets, trim: float):
    """One origin's local hegemony toward every target, fused: the
    crossing-fraction matrix feeds the trimmed means directly, with no
    intermediate per-target dicts (which dominate the many-dict sweep's
    cost).  Bit-identical to the dict path: the sample multiset per
    target is the same (every routed AS except the origin and the
    target), sorting is value-determined, and the kept slice is summed
    left-to-right like the pure ``sum``.  Returns ``None`` to request
    the dict-based fallback."""
    from .metrics_kernel import dag_of

    dag = dag_of(state)
    npc = _dag_np(dag)
    if npc is None or npc["zero_denom"]:
        return None
    np = _np
    targets = tuple(targets)
    pos = _pos_of(dag, npc)
    oi = dag.idx(origin)
    opos = int(pos[oi]) if oi is not None else -1
    others = [target for target in targets if target != origin]
    tks = np.full(len(others), -1, dtype=np.int64)
    for j, target in enumerate(others):
        ti = dag.idx(target)
        if ti is not None:
            tks[j] = pos[ti]
    live = np.nonzero(tks >= 0)[0]
    columns = (
        np.ascontiguousarray(_cf_matrix(dag, npc, tks[live]).T)
        if live.size
        else None
    )
    col_of = {j: c for c, j in enumerate(live.tolist())}
    tkl = tks.tolist()
    values = array("d")
    j = 0
    for target in targets:
        if target == origin:
            values.append(math.nan)
            continue
        c = col_of.get(j)
        tk = tkl[j]
        j += 1
        if c is None:
            # unrouted target: the dict path sees no fractions at all
            values.append(0.0)
            continue
        samples = np.delete(
            columns[c], [p for p in (opos, tk) if p >= 0]
        )
        samples.sort()
        nsmp = samples.size
        cut = int(nsmp * trim)
        kept = samples[cut : nsmp - cut]
        if not kept.size:
            kept = samples
        if not kept.size:
            values.append(0.0)
            continue
        values.append(sum(kept.tolist()) / kept.size)
    return values


def length_histogram_vector(
    state,
    weights: Optional[Mapping[int, float]] = None,
    restrict_to: Optional[Collection[int]] = None,
):
    """Vectorized float twin of
    :func:`~repro.bgpsim.metrics_kernel.length_histogram_kernel`.
    Returns ``None`` to request the pure fallback."""
    from .metrics_kernel import dag_of

    dag = dag_of(state)
    npc = _dag_np(dag)
    if npc is None:
        return None
    np = _np
    lengths = npc["lengths"]
    m = npc["order"].size
    if not m:
        return {}
    keep = npc["nonseed"].copy()
    keys = _keys_of(dag, npc)
    if restrict_to is not None:
        restrict = (
            restrict_to
            if isinstance(restrict_to, (set, frozenset))
            else set(restrict_to)
        )
        keep &= np.fromiter((a in restrict for a in keys), np.bool_, m)
    if weights is None:
        w = np.ones(m)
    else:
        get = weights.get
        w = np.fromiter((float(get(a, 0)) for a in keys), np.float64, m)
    keep &= w != 0.0
    if not keep.any():
        return {}
    ls, ws = lengths[keep], w[keep]
    acc = np.zeros(int(ls.max()) + 1)
    # ls is ascending (order is length-sorted), so per-length adds run in
    # the same sequence as the pure dict accumulation — bit-identical
    np.add.at(acc, ls, ws)
    return {int(length): float(acc[length]) for length in np.unique(ls)}
