"""Event-driven dynamic-topology deltas over cached compiled baselines.

The incremental leak engine (:mod:`repro.bgpsim.incremental`) handles one
kind of disturbance — an extra seed whose delta only ever adds or shortens
routes.  This module generalizes the idea to an *event algebra* over the
topology itself:

* :class:`LinkDown` / :class:`Depeer` / :class:`ASFailure` — edge removal,
  the hard new case: routes that transited the removed edges must be
  *withdrawn* and the affected subtrees re-converged;
* :class:`LinkUp` / :class:`ASRecover` — edge addition, a pure-improvement
  delta handled with the leak engine's machinery (improvement waves plus
  the dirty-region provider recompute);
* :class:`Hijack` — a more-specific origin steal: no topology change, the
  hijacker's announcement wins wherever it reaches;
* :class:`RouteLeak` — the existing leak, delegated to
  :func:`~repro.bgpsim.incremental.propagate_delta`.

Each event's :meth:`~Event.apply` mutates an ``ASGraph`` in place and
returns an :class:`AppliedEvent` carrying the exact edge delta plus the
*inverse* event, so timelines can be replayed and reverted (the
property-based tests in ``tests/test_timeline_properties.py`` rely on
apply ∘ revert being the identity on both the graph and its compiled
cache).

:func:`propagate_delta_event` then maps the edge delta onto a cached
single-seed :class:`~repro.bgpsim.compiled.CompiledRoutingState`
baseline, frontier-limited over the CSR arrays:

* **removal** — a withdrawal-closure pass finds every node whose tied-best
  parents are all gone (lazily cascading over the baseline best-route
  DAG), re-solves exactly that region with the three Gao-Rexford phases
  restricted to it, lets provider-class *length improvements* escape the
  region through a Dijkstra wave (a node falling from a long customer
  route to a short peer route shortens its downstream provider paths —
  the one way removal can shorten anything), and finally recomputes the
  parent sets of every touched node exactly from its neighbors' settled
  routes.  When the withdrawal region exceeds a threshold fraction of
  the graph (``REPRO_EVENT_THRESHOLD``, default 0.5) the pass falls back
  to a full recompute — correct either way, just no longer incremental.
* **addition** — initial offers from the new edges feed the leak engine's
  improvement phases (class-0 BFS, one-hop peer scan, dirty-region
  provider Dijkstra); under pure addition routes never worsen except in
  the class-improved-with-longer-path case the dirty region re-solves.
* **seed events** — hijacks merge an independent hijacker propagation
  over the baseline (the more-specific wins wherever it reaches); leaks
  reuse ``propagate_delta`` and inherit its fallback guards.

The result is a fresh :class:`CompiledRoutingState` (baseline arrays
copied, overrides applied), so event outcomes chain as the next event's
baseline, pickle compactly, and feed the metric kernels unchanged.
Every path is proven state-equivalent to a full recompute on the mutated
graph by the differential harness in ``tests/test_event_engine.py``.
"""

from __future__ import annotations

import heapq
import os
from array import array
from collections.abc import Collection
from dataclasses import dataclass, field
from typing import Optional

from .compiled import (
    _NO_ROUTE,
    _shrink,
    _signed_typecode,
    _unsigned_typecode,
    CompiledGraph,
    CompiledRoutingState,
    propagate_compiled,
)
from .incremental import propagate_delta
from .routes import RoutingState, Seed

__all__ = [
    "AppliedEvent",
    "ASFailure",
    "ASRecover",
    "Depeer",
    "Event",
    "EventOutcome",
    "Hijack",
    "LinkDown",
    "LinkUp",
    "RouteLeak",
    "full_event_outcome",
    "propagate_delta_event",
    "resolve_event_threshold",
]

#: environment knob: max withdrawal-region fraction before falling back
THRESHOLD_ENV = "REPRO_EVENT_THRESHOLD"
DEFAULT_THRESHOLD = 0.5


def resolve_event_threshold(threshold: Optional[float] = None) -> float:
    """The effective fallback threshold: argument, else environment, else
    :data:`DEFAULT_THRESHOLD`.  A fraction in [0, 1] of the graph's nodes;
    1.0 disables the fallback entirely."""
    if threshold is None:
        raw = os.environ.get(THRESHOLD_ENV)
        threshold = DEFAULT_THRESHOLD if raw is None else float(raw)
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"event threshold must be in [0, 1], got {threshold}")
    return threshold


# ---------------------------------------------------------------------------
# the event algebra
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AppliedEvent:
    """Record of one event applied to a graph.

    ``removed`` holds the undirected AS pairs the event deleted,
    ``added`` the ``(a, b, relationship)`` triples it created (``a`` is
    the provider for ``"p2c"``).  ``inverse`` is the event that undoes
    this one (``None`` for seed events, which change no topology).
    """

    event: "Event"
    inverse: Optional["Event"]
    removed: tuple[tuple[int, int], ...] = ()
    added: tuple[tuple[int, int, str], ...] = ()

    @property
    def mutates_topology(self) -> bool:
        return bool(self.removed or self.added)


@dataclass(frozen=True)
class Event:
    """Base class of the typed event algebra; use the concrete events."""

    #: whether applying the event changes the topology (seed events don't)
    mutates_topology = True

    def apply(self, graph) -> AppliedEvent:
        raise NotImplementedError

    def describe(self) -> str:
        return repr(self)


@dataclass(frozen=True)
class LinkDown(Event):
    """Failure of the (transit or peering) link between two ASes."""

    a: int
    b: int

    def apply(self, graph) -> AppliedEvent:
        rel = graph.relationship_between(self.a, self.b)
        if rel is None:
            raise KeyError(f"no edge between AS{self.a} and AS{self.b}")
        from ..topology.relationships import Relationship

        if rel is Relationship.PEER_PEER:
            inverse: Event = LinkUp(self.a, self.b, "p2p")
        elif self.b in graph.customers(self.a):
            inverse = LinkUp(self.a, self.b, "p2c")
        else:
            inverse = LinkUp(self.b, self.a, "p2c")
        graph.remove_edge(self.a, self.b)
        return AppliedEvent(self, inverse, removed=((self.a, self.b),))

    def describe(self) -> str:
        return f"link-down AS{self.a}—AS{self.b}"


@dataclass(frozen=True)
class LinkUp(Event):
    """A new link; for ``"p2c"`` the first AS is the provider.

    Both endpoints must already exist in the graph (so the inverse
    :class:`LinkDown` restores the exact previous topology).
    """

    a: int
    b: int
    relationship: str = "p2p"

    def __post_init__(self) -> None:
        if self.relationship not in ("p2c", "p2p"):
            raise ValueError(f"unknown relationship {self.relationship!r}")

    def apply(self, graph) -> AppliedEvent:
        if self.a not in graph or self.b not in graph:
            raise KeyError(
                f"AS{self.a} or AS{self.b} not in graph; add_as() new "
                "ASes before raising links to them"
            )
        if self.relationship == "p2c":
            graph.add_p2c(self.a, self.b)
        else:
            graph.add_p2p(self.a, self.b)
        return AppliedEvent(
            self,
            LinkDown(self.a, self.b),
            added=((self.a, self.b, self.relationship),),
        )

    def describe(self) -> str:
        arrow = "→" if self.relationship == "p2c" else "—"
        return f"link-up AS{self.a}{arrow}AS{self.b} ({self.relationship})"


@dataclass(frozen=True)
class Depeer(Event):
    """Termination of a settlement-free peering (must be p2p)."""

    a: int
    b: int

    def apply(self, graph) -> AppliedEvent:
        from ..topology.relationships import Relationship

        rel = graph.relationship_between(self.a, self.b)
        if rel is not Relationship.PEER_PEER:
            raise ValueError(
                f"AS{self.a} and AS{self.b} are not peers; "
                "use LinkDown for transit edges"
            )
        graph.remove_edge(self.a, self.b)
        return AppliedEvent(
            self, LinkUp(self.a, self.b, "p2p"), removed=((self.a, self.b),)
        )

    def describe(self) -> str:
        return f"depeer AS{self.a}—AS{self.b}"


@dataclass(frozen=True)
class ASFailure(Event):
    """Complete outage of one AS: every incident edge goes down.

    The AS itself stays in the graph (isolated), so the routing-state
    universe is unchanged and the inverse :class:`ASRecover` restores
    the captured edge sets exactly.
    """

    asn: int

    def apply(self, graph) -> AppliedEvent:
        if self.asn not in graph:
            raise KeyError(f"AS{self.asn} not in graph")
        providers = tuple(sorted(graph.providers(self.asn)))
        customers = tuple(sorted(graph.customers(self.asn)))
        peers = tuple(sorted(graph.peers(self.asn)))
        removed = []
        for nbr in providers + customers + peers:
            graph.remove_edge(self.asn, nbr)
            removed.append((self.asn, nbr))
        inverse = ASRecover(self.asn, providers, customers, peers)
        return AppliedEvent(self, inverse, removed=tuple(removed))

    def describe(self) -> str:
        return f"as-failure AS{self.asn}"


@dataclass(frozen=True)
class ASRecover(Event):
    """Recovery of a failed AS: re-raise the captured incident edges."""

    asn: int
    providers: tuple[int, ...] = ()
    customers: tuple[int, ...] = ()
    peers: tuple[int, ...] = ()

    def apply(self, graph) -> AppliedEvent:
        added = []
        for p in self.providers:
            graph.add_p2c(p, self.asn)
            added.append((p, self.asn, "p2c"))
        for c in self.customers:
            graph.add_p2c(self.asn, c)
            added.append((self.asn, c, "p2c"))
        for q in self.peers:
            graph.add_p2p(self.asn, q)
            added.append((self.asn, q, "p2p"))
        return AppliedEvent(self, ASFailure(self.asn), added=tuple(added))

    def describe(self) -> str:
        return f"as-recover AS{self.asn}"


@dataclass(frozen=True)
class Hijack(Event):
    """More-specific prefix hijack: the hijacker originates a more
    specific of the baseline origin's prefix, so its announcement wins at
    every AS it reaches regardless of route preference.  The legitimate
    origin itself keeps its own route."""

    hijacker: int
    key: str = "hijack"
    mutates_topology = False

    def apply(self, graph) -> AppliedEvent:
        return AppliedEvent(self, None)

    def describe(self) -> str:
        return f"hijack by AS{self.hijacker}"


@dataclass(frozen=True)
class RouteLeak(Event):
    """The paper's route leak as an event: the leaker re-announces its
    learned route for the origin's prefix to all neighbors.

    ``initial_length=None`` means re-announce semantics — the leak seed
    carries the leaker's baseline path length (the leaker must hold a
    route); an explicit length overrides (0 reproduces origin-hijack
    style leaks)."""

    leaker: int
    initial_length: Optional[int] = None
    key: str = "leak"
    mutates_topology = False

    def apply(self, graph) -> AppliedEvent:
        return AppliedEvent(self, None)

    def describe(self) -> str:
        return f"route-leak by AS{self.leaker}"


# ---------------------------------------------------------------------------
# outcomes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EventOutcome:
    """A post-event routing state plus delta-pass instrumentation.

    ``visited`` counts the nodes the delta pass examined (``total`` on a
    fallback); ``changed`` counts nodes whose route differs from the
    baseline (``None`` when a fallback recompute didn't track it).
    """

    state: RoutingState
    total: int
    visited: int
    changed: Optional[int]
    fallback: bool = False
    reason: str = ""

    @property
    def visited_fraction(self) -> float:
        return self.visited / self.total if self.total else 0.0


class _Fallback(Exception):
    """Internal: the delta pass cannot (or should not) run; recompute."""


def _capacity(typecode: str) -> int:
    """Largest value an array of ``typecode`` can hold."""
    bits = array(typecode).itemsize * 8
    return (1 << (bits - 1)) - 1 if typecode.islower() else (1 << bits) - 1


def _owned(arr) -> array:
    """A mutable owned copy of ``arr`` (slice copy for arrays; a
    ``memoryview`` of a shared-memory baseline must not be aliased)."""
    if isinstance(arr, array):
        return arr[:]
    return array(arr.format, arr)


def _widened(arr, needed_max: int, code_fn) -> array:
    """Copy ``arr``, widening its typecode only if ``needed_max`` won't
    fit — the common case is a same-typecode slice copy (a memcpy),
    keeping delta-state construction O(frontier) instead of O(n)
    element-conversion work.  A ``memoryview`` (a zero-copy view of a
    shared-memory baseline) must become an owned array either way: its
    slice would alias the shared segment and the caller mutates the
    result."""
    if not isinstance(arr, array):
        code = arr.format
        if needed_max <= _capacity(code):
            return array(code, arr)
        return array(code_fn(needed_max), arr)
    if needed_max <= _capacity(arr.typecode):
        return arr[:]
    return array(code_fn(needed_max), arr)


# ---------------------------------------------------------------------------
# the generalized delta dispatcher
# ---------------------------------------------------------------------------

def propagate_delta_event(
    graph,
    baseline: CompiledRoutingState,
    applied: AppliedEvent,
    threshold: Optional[float] = None,
    excluded: Collection[int] = frozenset(),
    peer_locked: Collection[int] = frozenset(),
    locked_origin: Optional[int] = None,
) -> EventOutcome:
    """Apply an event's delta to a cached single-seed baseline.

    ``graph`` must already be mutated by ``applied`` (i.e. this is called
    with the :class:`AppliedEvent` returned by ``event.apply(graph)``),
    and ``baseline`` must be the pre-event
    :func:`~repro.bgpsim.compiled.propagate_compiled` state for the same
    ``excluded`` / ``peer_locked`` / ``locked_origin`` configuration.
    Removal events whose withdrawal region exceeds ``threshold`` (see
    :func:`resolve_event_threshold`), mixed add+remove deltas, multi-seed
    baselines, and baselines from a different AS universe all fall back
    to a full recompute — flagged in the returned
    :class:`EventOutcome`, never silently wrong.
    """
    event = applied.event
    if isinstance(event, RouteLeak):
        return _leak_outcome(
            graph, baseline, event, excluded, peer_locked, locked_origin
        )
    if isinstance(event, Hijack):
        return _hijack_outcome(
            graph, baseline, event, excluded, peer_locked, locked_origin
        )
    cg: CompiledGraph = graph.compile()
    n = cg.n
    if not applied.mutates_topology:
        return EventOutcome(baseline, n, 0, 0)
    threshold = resolve_event_threshold(threshold)
    try:
        if len(baseline.seeds) != 1:
            raise _Fallback("baseline is not a single-seed propagation")
        if baseline._asns is not cg.asns and baseline._asns != cg.asns:
            raise _Fallback("baseline was computed over a different AS universe")
        if applied.removed and applied.added:
            raise _Fallback("event mixes edge addition and removal")
        ctx = _DeltaContext(
            cg, baseline, excluded, peer_locked, locked_origin
        )
        if applied.removed:
            state, visited, changed = _retract(ctx, applied.removed, threshold)
        else:
            state, visited, changed = _augment(ctx, applied.added)
        return EventOutcome(state, n, visited, changed)
    except _Fallback as fb:
        state = propagate_compiled(
            cg,
            baseline.seeds,
            excluded=excluded,
            peer_locked=peer_locked,
            locked_origin=locked_origin,
        )
        return EventOutcome(state, n, n, None, fallback=True, reason=str(fb))


def full_event_outcome(
    graph,
    baseline: CompiledRoutingState,
    applied: AppliedEvent,
    excluded: Collection[int] = frozenset(),
    peer_locked: Collection[int] = frozenset(),
    locked_origin: Optional[int] = None,
) -> EventOutcome:
    """The post-event state by full recompute on the mutated graph.

    The non-incremental counterpart of :func:`propagate_delta_event`
    (same call convention: ``graph`` already mutated, ``baseline`` the
    pre-event state): topology events re-propagate the baseline's seeds
    from scratch; a :class:`RouteLeak` resolves its re-announce length
    against the baseline and runs one fresh two-seed propagation; a
    :class:`Hijack` is inherently a full hijacker propagation merged over
    the baseline, so both entry points share :func:`_hijack_outcome`.
    Timelines use this when the engine is not ``"incremental"``, and the
    differential harness/benchmark use it as the ground truth the delta
    pass must reproduce bit-for-bit.
    """
    event = applied.event
    if isinstance(event, Hijack):
        return _hijack_outcome(
            graph, baseline, event, excluded, peer_locked, locked_origin
        )
    cg: CompiledGraph = graph.compile()
    n = cg.n
    seeds = baseline.seeds
    if isinstance(event, RouteLeak):
        legit = seeds[0]
        if event.leaker == legit.asn:
            raise ValueError(f"AS{event.leaker} cannot leak its own prefix")
        length = event.initial_length
        if length is None:
            length = baseline.path_length(event.leaker)
            if length is None:
                raise ValueError(
                    f"AS{event.leaker} has no route to AS{legit.asn}; "
                    "nothing to leak"
                )
        seeds = (
            legit,
            Seed(asn=event.leaker, key=event.key, initial_length=length),
        )
    state = propagate_compiled(
        cg,
        seeds,
        excluded=excluded,
        peer_locked=peer_locked,
        locked_origin=locked_origin,
    )
    return EventOutcome(state, n, n, None)


# ---------------------------------------------------------------------------
# shared delta-pass context
# ---------------------------------------------------------------------------

class _DeltaContext:
    """Baseline arrays, filter flags and override maps for one delta pass."""

    def __init__(
        self,
        cg: CompiledGraph,
        baseline: CompiledRoutingState,
        excluded: Collection[int],
        peer_locked: Collection[int],
        locked_origin: Optional[int],
    ) -> None:
        self.cg = cg
        self.baseline = baseline
        index = cg.index
        seed = baseline.seeds[0]
        self.seed_i = index[seed.asn]
        n = cg.n
        ex = bytearray(n)
        for asn in excluded:
            i = index.get(asn)
            if i is not None:
                ex[i] = 1
        lk = bytearray(n)
        for asn in peer_locked:
            if asn == seed.asn:
                continue
            i = index.get(asn)
            if i is not None:
                lk[i] = 1
        self.ex = ex
        self.lk = lk
        if locked_origin is None:
            locked_origin = seed.asn
        self.locked_idx = index.get(locked_origin, -2)
        self.seed_export: Optional[frozenset[int]] = None
        if seed.export_to is not None:
            self.seed_export = frozenset(
                index[a] for a in seed.export_to if a in index
            )
        self.base_rc = baseline._route_class
        self.base_ln = baseline._length
        # copy-on-write (class, length) overrides; parents are recomputed
        # exactly at the end for every touched node, so the phase passes
        # are pure label-setting
        self.cur_rc: dict[int, int] = {}
        self.cur_ln: dict[int, int] = {}
        self._bp_cache: dict[int, set[int]] = {}
        self.visited: set[int] = set()

    def rc_of(self, i: int) -> int:
        got = self.cur_rc.get(i)
        return self.base_rc[i] if got is None else got

    def ln_of(self, i: int) -> int:
        got = self.cur_ln.get(i)
        return self.base_ln[i] if got is None else got

    def base_parents(self, i: int) -> set[int]:
        got = self._bp_cache.get(i)
        if got is None:
            got = set()
            baseline = self.baseline
            h = baseline._parent_head[i]
            while h >= 0:
                got.add(baseline._pool_parent[h])
                h = baseline._pool_next[h]
            self._bp_cache[i] = got
        return got

    def exports(self, sender: int, receiver: int) -> bool:
        if self.ex[receiver] or (
            self.lk[receiver] and sender != self.locked_idx
        ):
            return False
        if sender == self.seed_i and self.seed_export is not None:
            return receiver in self.seed_export
        return True

    # -- final parent reconstruction ---------------------------------------
    def exact_parents(self, v: int) -> set[int]:
        """``v``'s tied-best parents from its neighbors' settled routes.

        A neighbor is a parent iff its class-appropriate offer equals
        ``v``'s final (class, length) and export rules let it through —
        exactly the set the full kernel accumulates via its offer queues.
        """
        cg = self.cg
        rc_v = self.rc_of(v)
        target = self.ln_of(v) - 1
        out: set[int] = set()
        rc_of, ln_of, exports = self.rc_of, self.ln_of, self.exports
        if rc_v == 0:
            off, nbr = cg.customer_off, cg.customer_nbr
            for u in nbr[off[v] : off[v + 1]]:
                if rc_of(u) == 0 and ln_of(u) == target and exports(u, v):
                    out.add(u)
        elif rc_v == 1:
            off, nbr = cg.peer_off, cg.peer_nbr
            for u in nbr[off[v] : off[v + 1]]:
                if rc_of(u) == 0 and ln_of(u) == target and exports(u, v):
                    out.add(u)
        else:
            off, nbr = cg.provider_off, cg.provider_nbr
            for u in nbr[off[v] : off[v + 1]]:
                if (
                    rc_of(u) != _NO_ROUTE
                    and ln_of(u) == target
                    and exports(u, v)
                ):
                    out.add(u)
        return out

    # -- result construction -----------------------------------------------
    def finish(
        self, fixup: set[int]
    ) -> tuple[CompiledRoutingState, int, int]:
        """Build the post-event state: baseline arrays copied, (class,
        length) overrides applied, parent sets of every ``fixup`` node
        recomputed exactly.  Returns ``(state, visited, changed)``."""
        baseline, cg = self.baseline, self.cg
        base_rc, base_ln = self.base_rc, self.base_ln
        overrides = {
            i: (c, self.cur_ln[i])
            for i, c in self.cur_rc.items()
            if c != base_rc[i] or self.cur_ln[i] != base_ln[i]
        }
        new_parents: dict[int, set[int]] = {}
        for v in fixup:
            if v == self.seed_i:
                continue
            if self.rc_of(v) == _NO_ROUTE:
                continue  # withdrawn entirely; head is cleared below
            parents = self.exact_parents(v)
            if v in overrides or parents != self.base_parents(v):
                new_parents[v] = parents

        # copies stay in the baseline's typecodes (slice copies are
        # memcpy-fast) and only widen when an override value or the
        # grown parent pool provably needs it — the whole construction
        # is O(frontier), not O(n), apart from the memcpys themselves
        rc = bytearray(base_rc)
        ln = _widened(
            base_ln,
            max((length for _, length in overrides.values()), default=0),
            _unsigned_typecode,
        )
        grown = sum(len(p) for p in new_parents.values())
        pool_size = len(baseline._pool_parent) + grown
        head = _widened(
            baseline._parent_head, pool_size - 1, _signed_typecode
        )
        pool_parent = _owned(baseline._pool_parent)
        pool_next = _widened(
            baseline._pool_next, pool_size - 1, _signed_typecode
        )
        became_routed: list[int] = []
        became_unrouted = set()
        for i, (c, length) in overrides.items():
            if (c == _NO_ROUTE) != (base_rc[i] == _NO_ROUTE):
                if c == _NO_ROUTE:
                    became_unrouted.add(i)
                else:
                    became_routed.append(i)
            rc[i] = c
            if c == _NO_ROUTE:
                ln[i] = 0
                head[i] = -1
            else:
                ln[i] = length
        for i, parents in new_parents.items():
            h = -1
            for p in sorted(parents):
                pool_parent.append(p)
                pool_next.append(h)
                h = len(pool_parent) - 1
            head[i] = h
        if became_routed or became_unrouted:
            became_routed.sort()
            # baseline._routed may be a plain list (full-propagation
            # output) or an array (a prior delta state) — emit an array
            routed = array(_unsigned_typecode(max(cg.n - 1, 0)))
            ai, added = 0, became_routed
            for i in baseline._routed:
                while ai < len(added) and added[ai] < i:
                    routed.append(added[ai])
                    ai += 1
                if i not in became_unrouted:
                    routed.append(i)
            routed.extend(added[ai:])
        else:
            routed = baseline._routed[:]
        state = CompiledRoutingState(
            cg.asns,
            baseline.seeds,
            rc,
            ln,
            head,
            pool_parent,
            pool_next,
            routed,
            None,
        )
        changed = len(set(overrides) | set(new_parents))
        return state, len(self.visited), changed


# ---------------------------------------------------------------------------
# removal: withdrawal closure + restricted re-convergence
# ---------------------------------------------------------------------------

def _retract(
    ctx: _DeltaContext,
    removed: tuple[tuple[int, int], ...],
    threshold: float,
) -> tuple[CompiledRoutingState, int, int]:
    cg = ctx.cg
    index = cg.index
    n = cg.n
    base_rc = ctx.base_rc
    seed_i = ctx.seed_i
    poff, pnbr = cg.provider_off, cg.provider_nbr
    coff, cnbr = cg.customer_off, cg.customer_nbr
    qoff, qnbr = cg.peer_off, cg.peer_nbr
    cur_rc, cur_ln = ctx.cur_rc, ctx.cur_ln
    rc_of, ln_of = ctx.rc_of, ctx.ln_of
    exports = ctx.exports
    visited = ctx.visited

    # ------------------------------------------------------------------
    # withdrawal closure W: a node joins when its *every* tied-best parent
    # is removed-or-withdrawn; membership cascades lazily down the
    # baseline DAG (children found through the surviving CSR adjacency,
    # confirmed against the baseline parent sets)
    # ------------------------------------------------------------------
    lost: dict[int, set[int]] = {}
    W: set[int] = set()
    cascade: list[int] = []

    def note_lost(v: int, p: int) -> None:
        if v == seed_i or base_rc[v] == _NO_ROUTE:
            return
        bp = ctx.base_parents(v)
        if p not in bp:
            return
        s = lost.get(v)
        if s is None:
            s = lost[v] = set()
        if p in s:
            return
        s.add(p)
        visited.add(v)
        if len(s) == len(bp) and v not in W:
            W.add(v)
            cascade.append(v)

    for a, b in removed:
        ia, ib = index.get(a), index.get(b)
        if ia is None or ib is None:
            raise _Fallback(f"removed edge AS{a}—AS{b} has an unknown endpoint")
        note_lost(ib, ia)
        note_lost(ia, ib)
    while cascade:
        w = cascade.pop()
        for off, nbr in ((poff, pnbr), (coff, cnbr), (qoff, qnbr)):
            for c in nbr[off[w] : off[w + 1]]:
                note_lost(c, w)

    if len(W) > threshold * n:
        raise _Fallback(
            f"withdrawal region {len(W)}/{n} exceeds threshold {threshold}"
        )

    for w in W:
        cur_rc[w] = _NO_ROUTE
        cur_ln[w] = 0

    # ------------------------------------------------------------------
    # phase 1: customer routes of the withdrawn region, level BFS up
    # provider edges.  Non-W class-0 routes are unchanged (under removal
    # customer offers only disappear), so boundary offers use baseline
    # lengths and the wave stays inside W.
    # ------------------------------------------------------------------
    pending: dict[int, list[int]] = {}
    for w in W:
        best = None
        for c in cnbr[coff[w] : coff[w + 1]]:
            if c in W:
                continue  # rebuilt senders announce through the wave
            if base_rc[c] == 0 and exports(c, w):
                hop = ctx.base_ln[c] + 1
                if best is None or hop < best:
                    best = hop
        if best is not None:
            pending.setdefault(best, []).append(w)

    level = min(pending) if pending else 0
    while pending:
        if level not in pending:
            level = min(pending)
        newly: list[int] = []
        for r in pending.pop(level):
            if cur_rc[r] != _NO_ROUTE:
                continue  # already settled at a lower level
            visited.add(r)
            cur_rc[r] = 0
            cur_ln[r] = level
            newly.append(r)
        if newly:
            nxt = level + 1
            for r in newly:
                for p in pnbr[poff[r] : poff[r + 1]]:
                    if p in W and cur_rc[p] == _NO_ROUTE and exports(r, p):
                        pending.setdefault(nxt, []).append(p)
        level += 1

    # ------------------------------------------------------------------
    # phase 2: peer routes for still-unsettled W nodes, one hop from any
    # customer-routed neighbor (baseline or rebuilt)
    # ------------------------------------------------------------------
    for w in W:
        if cur_rc[w] != _NO_ROUTE:
            continue
        best = None
        for q in qnbr[qoff[w] : qoff[w + 1]]:
            if rc_of(q) == 0 and exports(q, w):
                hop = ln_of(q) + 1
                if best is None or hop < best:
                    best = hop
        if best is not None:
            visited.add(w)
            cur_rc[w] = 1
            cur_ln[w] = best

    # ------------------------------------------------------------------
    # phase 3: provider routes, Dijkstra down customer edges.  Seeds:
    # boundary offers into unsettled W nodes, plus the announcements of
    # every W node phases 1-2 settled.  A W node whose class worsened
    # with a *shorter* path (long customer route falling to a short peer
    # route) shortens its downstream provider-class offers, so the wave
    # may improve nodes far outside W — those improvements (and tie
    # parent gains) are tracked for the parent fix-up.
    # ------------------------------------------------------------------
    heap: list[tuple[int, int, int]] = []
    push, pop = heapq.heappush, heapq.heappop
    fixadd: set[int] = set()
    for w in W:
        c = cur_rc[w]
        if c == _NO_ROUTE:
            for u in pnbr[poff[w] : poff[w + 1]]:
                if u in W:
                    continue  # rebuilt providers announce via the wave
                if base_rc[u] != _NO_ROUTE and exports(u, w):
                    push(heap, (ctx.base_ln[u] + 1, w, u))
        else:
            hop = cur_ln[w] + 1
            for cc in cnbr[coff[w] : coff[w + 1]]:
                if exports(w, cc):
                    push(heap, (hop, cc, w))
    while heap:
        hop, r, s = pop(heap)
        if r == seed_i:
            continue
        visited.add(r)
        c = rc_of(r)
        if c == 0 or c == 1:
            continue  # customer/peer routes beat provider offers
        if c == 2:
            existing = ln_of(r)
            if hop > existing:
                continue
            if hop == existing:
                fixadd.add(r)  # may gain the sender as a tied parent
                continue
        # strictly better provider route, or the first offer reaching a
        # withdrawn node
        cur_rc[r] = 2
        cur_ln[r] = hop
        fixadd.add(r)
        nxt = hop + 1
        for cc in cnbr[coff[r] : coff[r + 1]]:
            if exports(r, cc):
                push(heap, (nxt, cc, r))

    fixup = W | set(lost) | fixadd
    return ctx.finish(fixup)


# ---------------------------------------------------------------------------
# addition: improvement waves + dirty-region provider recompute
# ---------------------------------------------------------------------------

def _augment(
    ctx: _DeltaContext,
    added: tuple[tuple[int, int, str], ...],
) -> tuple[CompiledRoutingState, int, int]:
    cg = ctx.cg
    index = cg.index
    base_rc, base_ln = ctx.base_rc, ctx.base_ln
    seed_i = ctx.seed_i
    poff, pnbr = cg.provider_off, cg.provider_nbr
    coff, cnbr = cg.customer_off, cg.customer_nbr
    qoff, qnbr = cg.peer_off, cg.peer_nbr
    cur_rc, cur_ln = ctx.cur_rc, ctx.cur_ln
    rc_of, ln_of = ctx.rc_of, ctx.ln_of
    exports = ctx.exports
    visited = ctx.visited
    fixadd: set[int] = set()

    # initial offers across the new edges (already present in the CSR)
    pending: dict[int, list[tuple[int, int]]] = {}
    peer_init: list[tuple[int, int]] = []  # (sender, receiver)
    prov_init: list[tuple[int, int]] = []
    for a, b, rel in added:
        ia, ib = index.get(a), index.get(b)
        if ia is None or ib is None:
            raise _Fallback(f"added edge AS{a}—AS{b} has an unknown endpoint")
        if rel == "p2c":  # a provider, b customer
            if base_rc[ib] == 0 and exports(ib, ia):
                pending.setdefault(base_ln[ib] + 1, []).append((ia, ib))
            prov_init.append((ia, ib))
        else:
            peer_init.append((ia, ib))
            peer_init.append((ib, ia))

    # ------------------------------------------------------------------
    # phase 1: customer improvement wave (class 0 offers never worsen
    # under addition; anything not strictly better is dropped, ties only
    # mark a parent fix-up)
    # ------------------------------------------------------------------
    changed_customer: list[int] = []
    level = min(pending) if pending else 0
    while pending:
        if level not in pending:
            level = min(pending)
        newly: list[int] = []
        for r, s in pending.pop(level):
            if r == seed_i:
                continue  # the seed's route is fixed
            visited.add(r)
            c = rc_of(r)
            if c == 0:
                existing = ln_of(r)
                if level > existing:
                    continue
                if level == existing:
                    fixadd.add(r)
                    continue
            cur_rc[r] = 0
            cur_ln[r] = level
            newly.append(r)
            changed_customer.append(r)
        if newly:
            nxt = level + 1
            bucket = pending.setdefault(nxt, [])
            for r in newly:
                for p in pnbr[poff[r] : poff[r + 1]]:
                    if exports(r, p):
                        bucket.append((p, r))
        level += 1

    # ------------------------------------------------------------------
    # phase 2: peer offers from every changed customer route plus the
    # new peering edges themselves
    # ------------------------------------------------------------------
    changed_any: list[int] = list(changed_customer)
    offers: list[tuple[int, int]] = []
    for s in dict.fromkeys(changed_customer):
        for q in qnbr[qoff[s] : qoff[s + 1]]:
            offers.append((s, q))
    offers.extend(peer_init)
    for s, q in offers:
        if q == seed_i or rc_of(s) != 0 or not exports(s, q):
            continue
        hop = ln_of(s) + 1
        visited.add(q)
        c = rc_of(q)
        if c == 0:
            continue
        if c == 1:
            existing = ln_of(q)
            if hop > existing:
                continue
            if hop == existing:
                fixadd.add(q)
                continue
        cur_rc[q] = 1
        cur_ln[q] = hop
        changed_any.append(q)

    # ------------------------------------------------------------------
    # phase 3: provider routes.  A node whose class improved with a
    # longer path now exports a longer provider-class route — its
    # provider-class baseline descendants are reset and re-solved, as in
    # the leak engine; everything else is an improvement wave seeded
    # from the changed nodes and the new transit edges.
    # ------------------------------------------------------------------
    worsened = [
        i
        for i, c in cur_rc.items()
        if c != _NO_ROUTE
        and base_rc[i] != _NO_ROUTE
        and cur_ln[i] > base_ln[i]
    ]
    dirty: set[int] = set()
    stack = list(worsened)
    while stack:
        w = stack.pop()
        for c in cnbr[coff[w] : coff[w + 1]]:
            if c in dirty or rc_of(c) != 2:
                continue
            if w in ctx.base_parents(c):
                dirty.add(c)
                visited.add(c)
                stack.append(c)
    for d in dirty:
        cur_rc[d] = _NO_ROUTE
        cur_ln[d] = 0

    heap: list[tuple[int, int, int]] = []
    push, pop = heapq.heappush, heapq.heappop
    for d in dirty:
        for u in pnbr[poff[d] : poff[d + 1]]:
            if u in dirty or rc_of(u) == _NO_ROUTE:
                continue
            if exports(u, d):
                push(heap, (ln_of(u) + 1, d, u))
    for s in dict.fromkeys(changed_any):
        hop = ln_of(s) + 1
        for c in cnbr[coff[s] : coff[s + 1]]:
            if exports(s, c):
                push(heap, (hop, c, s))
    for s, r in prov_init:
        if rc_of(s) != _NO_ROUTE and exports(s, r):
            push(heap, (ln_of(s) + 1, r, s))
    while heap:
        hop, r, s = pop(heap)
        if r == seed_i:
            continue
        visited.add(r)
        c = rc_of(r)
        if c == 0 or c == 1:
            continue
        if c == 2:
            existing = ln_of(r)
            if hop > existing:
                continue
            if hop == existing:
                fixadd.add(r)
                continue
        cur_rc[r] = 2
        cur_ln[r] = hop
        fixadd.add(r)
        nxt = hop + 1
        for cc in cnbr[coff[r] : coff[r + 1]]:
            if exports(r, cc):
                push(heap, (nxt, cc, r))

    fixup = fixadd | set(cur_rc)
    return ctx.finish(fixup)


# ---------------------------------------------------------------------------
# seed events
# ---------------------------------------------------------------------------

def _leak_outcome(
    graph,
    baseline: CompiledRoutingState,
    event: RouteLeak,
    excluded: Collection[int],
    peer_locked: Collection[int],
    locked_origin: Optional[int],
) -> EventOutcome:
    cg: CompiledGraph = graph.compile()
    n = cg.n
    legit = baseline.seeds[0]
    if event.leaker == legit.asn:
        raise ValueError(f"AS{event.leaker} cannot leak its own prefix")
    length = event.initial_length
    if length is None:
        length = baseline.path_length(event.leaker)
        if length is None:
            raise ValueError(
                f"AS{event.leaker} has no route to AS{legit.asn}; "
                "nothing to leak"
            )
    leak = Seed(asn=event.leaker, key=event.key, initial_length=length)
    try:
        state = propagate_delta(
            cg,
            baseline,
            leak,
            excluded=excluded,
            peer_locked=peer_locked,
            locked_origin=locked_origin,
        )
    except ValueError as exc:
        full = propagate_compiled(
            cg,
            (legit, leak),
            excluded=excluded,
            peer_locked=peer_locked,
            locked_origin=locked_origin,
        )
        return EventOutcome(full, n, n, None, fallback=True, reason=str(exc))
    stats = state.delta_stats()
    return EventOutcome(state, n, stats["visited"], stats["route_changed"])


def _hijack_outcome(
    graph,
    baseline: CompiledRoutingState,
    event: Hijack,
    excluded: Collection[int],
    peer_locked: Collection[int],
    locked_origin: Optional[int],
) -> EventOutcome:
    cg: CompiledGraph = graph.compile()
    n = cg.n
    if len(baseline.seeds) != 1:
        raise ValueError("hijack deltas need a single-seed baseline")
    if baseline._asns is not cg.asns and baseline._asns != cg.asns:
        raise ValueError("baseline was computed over a different AS universe")
    legit = baseline.seeds[0]
    if event.hijacker == legit.asn:
        raise ValueError(f"AS{event.hijacker} cannot hijack its own prefix")
    hseed = Seed(asn=event.hijacker, key=event.key)
    hstate = propagate_compiled(
        cg,
        hseed,
        excluded=excluded,
        peer_locked=peer_locked,
        locked_origin=locked_origin,
    )
    index = cg.index
    li, hi = index[legit.asn], index[event.hijacker]
    hrc, hln = hstate._route_class, hstate._length
    hhead = hstate._parent_head
    hpp, hpn = hstate._pool_parent, hstate._pool_next
    # baseline copies stay in their typecodes (memcpy) and widen only
    # when the hijacker's lengths or the grown pool demand it — see
    # _widened; the merge itself is O(hijacker's region), not O(n)
    rc = bytearray(baseline._route_class)
    pool_size = len(baseline._pool_parent) + len(hpp)
    ln = _widened(
        baseline._length, max(hln) if len(hln) else 0, _unsigned_typecode
    )
    head = _widened(baseline._parent_head, pool_size - 1, _signed_typecode)
    pool_parent = _owned(baseline._pool_parent)
    pool_next = _widened(baseline._pool_next, pool_size - 1, _signed_typecode)
    mask = [0] * n
    for i in baseline._routed:
        mask[i] = 1
    stolen = 0
    for i in hstate._routed:
        if i == li:
            continue  # the legitimate origin keeps its own route
        mask[i] = 2
        rc[i] = hrc[i]
        ln[i] = hln[i]
        h = hhead[i]
        nh = -1
        while h >= 0:
            pool_parent.append(hpp[h])
            pool_next.append(nh)
            nh = len(pool_parent) - 1
            h = hpn[h]
        head[i] = nh
        if i != hi:
            stolen += 1
    routed_set = set(baseline._routed)
    routed_set.update(hstate._routed)
    merged = CompiledRoutingState(
        cg.asns,
        (legit, hseed),
        rc,
        ln,
        head,
        pool_parent,
        pool_next,
        array(_unsigned_typecode(max(n - 1, 0)), sorted(routed_set)),
        mask,
    )
    return EventOutcome(merged, n, len(hstate._routed), stolen)
