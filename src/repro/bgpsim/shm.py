"""Zero-copy shared-memory payloads for the parallel sweeps.

:func:`~repro.bgpsim.parallel.graph_map` installs the compiled graph and
the per-sweep constant kwargs (leak baselines, weight tables) in every
worker through the pool initializer.  Without this module those payloads
are *pickled once per worker* (and byte-copied even under ``fork``, as
soon as the interpreter touches the refcounts of the inherited arrays).
Here the big array payloads move into ``multiprocessing.shared_memory``
segments instead:

* the parent packs the CSR / routing-state arrays into one
  :class:`ShmArena` per payload and ships only a tiny :class:`ArenaRef`
  (segment name + entry table) through the initializer;
* each worker attaches the segment once and reconstructs the payload
  around zero-copy ``memoryview`` casts of the mapped buffer — the same
  buffer-protocol objects the pure loops index and the vectorized
  kernels ``np.frombuffer`` (no per-worker array copies at all);
* cleanup is refcounted: the parent unlinks its arenas when the sweep's
  pool shuts down (and an ``atexit`` hook sweeps leftovers), workers
  just close their maps on exit; the shared resource tracker keeps one
  idempotent entry per segment, removed by the creator's ``unlink``.

The ``REPRO_SHM`` knob (``auto``/``on``/``off``) selects the transport:
``auto`` (default) uses shared memory whenever the platform supports it
(probed once with a throwaway segment), ``on`` raises if it cannot,
``off`` keeps the plain pickle path — which still ships constants only
once per worker via the initializer.  :func:`stats` surfaces per-process
``segments`` / ``payload_bytes`` / ``attaches`` / ``reuses`` counters
(workers report their own view — fetch it with a mapped task).
"""

from __future__ import annotations

import atexit
import os
from array import array
from typing import Any, Optional

from .compiled import CompiledGraph, CompiledRoutingState

__all__ = [
    "SHM_MODES",
    "ArenaRef",
    "ShmArena",
    "resolve_shm",
    "shm_available",
    "share_payload",
    "restore_payload",
    "stats",
    "reset_stats",
]

SHM_MODES = ("auto", "on", "off")

_stats = {
    "segments": 0,       # arenas created by this process
    "payload_bytes": 0,  # bytes packed into those arenas
    "attaches": 0,       # segments this process mapped by name
    "reuses": 0,         # attach() calls served from the local cache
}


def stats() -> dict[str, int]:
    """This process's shared-memory counters (a copy)."""
    return dict(_stats)


def reset_stats() -> None:
    _stats.update(segments=0, payload_bytes=0, attaches=0, reuses=0)


_available: Optional[bool] = None


def shm_available() -> bool:
    """True when this platform can create shared-memory segments
    (probed once with a throwaway segment — containers without
    ``/dev/shm`` fail the probe, not the sweep)."""
    global _available
    if _available is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _available = True
        except Exception:
            _available = False
    return _available


def resolve_shm(mode: Optional[str | bool] = None) -> bool:
    """Resolve a ``REPRO_SHM`` setting to use-shared-memory-or-not."""
    if mode is None:
        mode = os.environ.get("REPRO_SHM", "auto")
    if isinstance(mode, bool):
        mode = "on" if mode else "off"
    mode = str(mode).strip().lower()
    if mode in ("on", "1", "true", "yes"):
        if not shm_available():
            raise RuntimeError(
                "REPRO_SHM=on but multiprocessing.shared_memory is "
                "unavailable on this platform"
            )
        return True
    if mode in ("off", "0", "false", "no"):
        return False
    if mode in ("auto", ""):
        return shm_available()
    raise ValueError(f"unknown REPRO_SHM mode {mode!r}; use auto/on/off")


def _format_of(buf) -> str:
    if isinstance(buf, array):
        return buf.typecode
    return "B"  # bytes / bytearray


# parent-side registry of live arenas, swept by atexit
_ARENAS: dict[str, "ShmArena"] = {}


def _sweep_arenas() -> None:
    for arena in list(_ARENAS.values()):
        arena.close()


atexit.register(_sweep_arenas)


class ShmArena:
    """One shared-memory segment packing several named buffers.

    ``buffers`` maps entry names to ``array``/``bytes``/``bytearray``
    objects; offsets are 8-byte aligned so attached views can be
    ``memoryview.cast`` to their element format.  Usable as a context
    manager; :meth:`close` (idempotent) unmaps and unlinks.
    """

    def __init__(self, buffers: dict[str, Any]) -> None:
        from multiprocessing import shared_memory

        entries = []
        total = 0
        for name, buf in buffers.items():
            data = memoryview(buf).cast("B")
            offset = (total + 7) & ~7
            entries.append((name, _format_of(buf), offset, data.nbytes))
            total = offset + data.nbytes
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(total, 1)
        )
        self.name = self._shm.name
        self.entries = tuple(entries)
        self.payload_bytes = total
        mv = self._shm.buf
        for (name, _, offset, nbytes), buf in zip(entries, buffers.values()):
            if nbytes:
                mv[offset : offset + nbytes] = memoryview(buf).cast("B")
        _stats["segments"] += 1
        _stats["payload_bytes"] += total
        _ARENAS[self.name] = self

    def ref(self) -> "ArenaRef":
        return ArenaRef(self.name, self.entries, self.payload_bytes)

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        if _ARENAS.pop(self.name, None) is None:
            return
        try:
            self._shm.close()
        except BufferError:
            _PINNED.append(self._shm)  # a live view pins the map; unlink
            # proceeds regardless, and process exit frees the mapping
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# worker-side cache: segment name -> (SharedMemory, {entry: view}, refs)
_ATTACHED: dict[str, list] = {}

# maps whose close() failed because restored payloads still export views;
# kept referenced so GC never runs SharedMemory.__del__ on a pinned map
# (which would raise an unraisable BufferError) — process exit frees them
_PINNED: list = []


class ArenaRef:
    """Picklable handle to a :class:`ShmArena` (name + entry table)."""

    __slots__ = ("name", "entries", "payload_bytes")

    def __init__(self, name, entries, payload_bytes) -> None:
        self.name = name
        self.entries = entries
        self.payload_bytes = payload_bytes

    def __reduce__(self):
        return (ArenaRef, (self.name, self.entries, self.payload_bytes))

    def attach(self) -> dict[str, memoryview]:
        """Map the segment (cached per process) and return zero-copy
        views of its entries, cast to their element formats."""
        cached = _ATTACHED.get(self.name)
        if cached is not None:
            cached[2] += 1
            _stats["reuses"] += 1
            return cached[1]
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=self.name)
        # Attaching also registers the name with the resource tracker
        # (cpython #82300; ``track=False`` only exists from 3.13).
        # Under ``fork`` the tracker process is shared and its cache is
        # a set, so the duplicate registration is idempotent and the
        # creator's ``unlink`` performs the single removal — do NOT
        # unregister here, that would strip the creator's entry.
        views: dict[str, memoryview] = {}
        for name, fmt, offset, nbytes in self.entries:
            view = shm.buf[offset : offset + nbytes]
            views[name] = view if fmt == "B" else view.cast(fmt)
        _ATTACHED[self.name] = [shm, views, 1]
        _stats["attaches"] += 1
        return views

    def detach(self) -> None:
        """Drop one reference; the cached map closes at zero."""
        cached = _ATTACHED.get(self.name)
        if cached is None:
            return
        cached[2] -= 1
        if cached[2] <= 0:
            del _ATTACHED[self.name]
            cached[1].clear()
            try:
                cached[0].close()
            except BufferError:
                _PINNED.append(cached[0])  # views still exported; see above


# ---------------------------------------------------------------------------
# payload wrappers: pickle as a ref, restore as the original type
# ---------------------------------------------------------------------------

_GRAPH_FIELDS = (
    "asns",
    "provider_off",
    "provider_nbr",
    "customer_off",
    "customer_nbr",
    "peer_off",
    "peer_nbr",
)

_STATE_FIELDS = (
    "_asns",
    "_route_class",
    "_length",
    "_parent_head",
    "_pool_parent",
    "_pool_next",
    "_routed",
)


class SharedGraph:
    """A :class:`CompiledGraph` living in a shared-memory arena; pickles
    as the :class:`ArenaRef`, restores as a graph over attached views."""

    __slots__ = ("ref",)

    def __init__(self, ref: ArenaRef) -> None:
        self.ref = ref

    def restore(self) -> CompiledGraph:
        views = self.ref.attach()
        return CompiledGraph(*(views[field] for field in _GRAPH_FIELDS))


class SharedState:
    """A single-seed :class:`CompiledRoutingState` (a leak/delta
    baseline) in a shared-memory arena."""

    __slots__ = ("ref", "seeds")

    def __init__(self, ref: ArenaRef, seeds) -> None:
        self.ref = ref
        self.seeds = seeds

    def restore(self) -> CompiledRoutingState:
        views = self.ref.attach()
        return CompiledRoutingState(
            views["_asns"],
            self.seeds,
            views["_route_class"],
            views["_length"],
            views["_parent_head"],
            views["_pool_parent"],
            views["_pool_next"],
            views["_routed"],
            None,
        )


def share_payload(obj: Any, arenas: list[ShmArena]) -> Any:
    """Move ``obj``'s array payload into a shared-memory arena.

    Returns a small picklable stand-in (:class:`SharedGraph` /
    :class:`SharedState`, recursing one level into dicts) and appends
    the owning arena(s) to ``arenas`` for cleanup; objects that cannot
    move (or a platform that cannot create segments) pass through
    unchanged, falling back to the pickle path.
    """
    try:
        if isinstance(obj, CompiledGraph):
            arena = ShmArena(
                {field: getattr(obj, field) for field in _GRAPH_FIELDS}
            )
            arenas.append(arena)
            return SharedGraph(arena.ref())
        if (
            isinstance(obj, CompiledRoutingState)
            and obj._origin_mask is None
        ):
            arena = ShmArena(
                {field: getattr(obj, field) for field in _STATE_FIELDS}
            )
            arenas.append(arena)
            return SharedState(arena.ref(), obj.seeds)
        if isinstance(obj, dict) and obj:
            shared = {
                key: share_payload(value, arenas)
                for key, value in obj.items()
            }
            if any(
                value is not obj[key] for key, value in shared.items()
            ):
                return shared
    except Exception:
        return obj  # e.g. segment creation failed: pickle instead
    return obj


def restore_payload(obj: Any) -> Any:
    """Worker-side inverse of :func:`share_payload`."""
    if isinstance(obj, (SharedGraph, SharedState)):
        return obj.restore()
    if isinstance(obj, dict):
        return {key: restore_payload(value) for key, value in obj.items()}
    return obj
