"""Compiled integer-indexed propagation kernel.

The reference engine (:mod:`repro.bgpsim.engine`) walks Python
dicts-of-sets and allocates one :class:`~repro.bgpsim.routes.NodeRoute`
per AS; at measured-Internet scale (~70k ASes × thousands of origins per
sweep) the object churn dominates.  This module freezes an
:class:`~repro.topology.asgraph.ASGraph` into dense CSR adjacency arrays
and reimplements the three Gao-Rexford phases over flat arrays:

* :class:`CompiledGraph` — an immutable snapshot holding, per relation
  (providers / customers / peers), an ``array('q')`` offset table and an
  ``array('i')`` neighbor-index table, plus the ASN↔index mapping.  It
  also implements the read-only query API of ``ASGraph`` so graph
  consumers (and the reference engine itself) can run on it unchanged.
* :func:`propagate_compiled` — the kernel: route class / length /
  parent-head arrays plus a linked parent-edge pool instead of per-node
  route objects.  It is proven result-equivalent to the reference engine
  by the differential harness in ``tests/test_compiled_engine.py``.
* :class:`CompiledRoutingState` — the compact result.  It subclasses
  :class:`~repro.bgpsim.routes.RoutingState` and materializes the
  ``routes`` dict of ``NodeRoute`` objects lazily on first access, so
  every existing consumer keeps working; until then the arrays answer
  the cheap queries (``has_route``, ``path_length``, ``origins_at``,
  ``reachable_ases``) directly, and pickling ships only the arrays —
  which is what makes parallel sweeps and the routing-state cache cheap.
"""

from __future__ import annotations

import heapq
from array import array
from bisect import bisect_left
from collections.abc import Collection, Iterable, Iterator
from typing import Optional

from .routes import NodeRoute, RouteClass, RoutingState, Seed

__all__ = ["CompiledGraph", "CompiledRoutingState", "propagate_compiled"]

#: sentinel in the route-class array: no route
_NO_ROUTE = 3

_CLASSES = (RouteClass.CUSTOMER, RouteClass.PEER, RouteClass.PROVIDER)


def _unsigned_typecode(maxval: int) -> str:
    """Smallest unsigned array typecode holding values in [0, maxval]."""
    if maxval < 1 << 16:
        return "H"
    if maxval < 1 << 31:
        return "i"
    return "q"


def _signed_typecode(maxval: int) -> str:
    """Smallest signed array typecode holding values in [-1, maxval]."""
    if maxval < 1 << 15:
        return "h"
    if maxval < 1 << 31:
        return "i"
    return "q"


def _shrink(values, typecode: str) -> array:
    """Copy ``values`` into the given (usually narrower) array typecode."""
    return array(typecode, values)


def _concrete_buffers(state: dict) -> dict:
    """Replace ``memoryview`` values (zero-copy views of a shared-memory
    arena, see :mod:`repro.bgpsim.shm`) with picklable owned copies."""
    for key, value in state.items():
        if isinstance(value, memoryview):
            state[key] = (
                bytearray(value)
                if value.format == "B"
                else array(value.format, value)
            )
    return state


def _csr(
    asns: list[int], index: dict[int, int], rows, nbr_code: str
) -> tuple[array, array]:
    """Build (offsets, neighbor-index) CSR arrays; rows sorted by index."""
    offsets = array("q", [0])
    neighbors = array(nbr_code)
    for asn in asns:
        neighbors.extend(sorted(index[n] for n in rows(asn)))
        offsets.append(len(neighbors))
    return _shrink(offsets, _unsigned_typecode(len(neighbors))), neighbors


class CompiledGraph:
    """Immutable CSR snapshot of an ``ASGraph``.

    Node *i* corresponds to ``asns[i]`` (ASNs in ascending order); the
    neighbors of node *i* under a relation are
    ``nbr[off[i]:off[i + 1]]`` (neighbor *indices*, ascending).  Built
    via :meth:`ASGraph.compile` (cached, invalidated on mutation) or
    :meth:`from_graph`.
    """

    def __init__(
        self,
        asns: array,
        provider_off: array,
        provider_nbr: array,
        customer_off: array,
        customer_nbr: array,
        peer_off: array,
        peer_nbr: array,
    ) -> None:
        self.asns = asns
        self.n = len(asns)
        self.index: dict[int, int] = {asn: i for i, asn in enumerate(asns)}
        self.provider_off = provider_off
        self.provider_nbr = provider_nbr
        self.customer_off = customer_off
        self.customer_nbr = customer_nbr
        self.peer_off = peer_off
        self.peer_nbr = peer_nbr

    @classmethod
    def from_graph(cls, graph) -> "CompiledGraph":
        asns = sorted(graph.nodes())
        index = {asn: i for i, asn in enumerate(asns)}
        # arrays use the smallest typecode that fits, which keeps the
        # pickled payload (what ships to every pool worker) minimal
        nbr_code = _unsigned_typecode(max(len(asns) - 1, 0))
        provider_off, provider_nbr = _csr(asns, index, graph.providers, nbr_code)
        customer_off, customer_nbr = _csr(asns, index, graph.customers, nbr_code)
        peer_off, peer_nbr = _csr(asns, index, graph.peers, nbr_code)
        return cls(
            array(_unsigned_typecode(asns[-1]) if asns else "H", asns),
            provider_off,
            provider_nbr,
            customer_off,
            customer_nbr,
            peer_off,
            peer_nbr,
        )

    def compile(self) -> "CompiledGraph":
        """Already compiled — lets ``graph.compile()`` work uniformly."""
        return self

    @classmethod
    def patched(cls, graph, base: "CompiledGraph", dirty) -> "CompiledGraph":
        """A snapshot of ``graph`` built by patching ``base`` in place of
        a full rebuild: only the adjacency rows of the ``dirty`` ASes are
        recomputed, everything else is slice-copied from ``base``.

        Valid only when the node set is unchanged since ``base`` was
        built (``ASGraph.compile`` guarantees it by dropping the dirty
        log on any node addition); produces arrays identical to
        :meth:`from_graph` on the same graph.
        """
        index = base.index
        arrays = []
        for rows, off, nbr in (
            (graph.providers, base.provider_off, base.provider_nbr),
            (graph.customers, base.customer_off, base.customer_nbr),
            (graph.peers, base.peer_off, base.peer_nbr),
        ):
            new_rows: dict[int, list[int]] = {}
            for asn in dirty:
                i = index[asn]
                row = sorted(index[n] for n in rows(asn))
                if row != list(nbr[off[i] : off[i + 1]]):
                    new_rows[i] = row
            if not new_rows:
                arrays.append((off, nbr))
                continue
            new_nbr = array(nbr.typecode)
            prev = 0
            for i in sorted(new_rows):
                new_nbr.extend(nbr[prev : off[i]])
                new_nbr.extend(array(nbr.typecode, new_rows[i]))
                prev = off[i + 1]
            new_nbr.extend(nbr[prev:])
            new_off = array("q", [0])
            total = 0
            for i in range(base.n):
                total += (
                    len(new_rows[i])
                    if i in new_rows
                    else off[i + 1] - off[i]
                )
                new_off.append(total)
            arrays.append(
                (_shrink(new_off, _unsigned_typecode(total)), new_nbr)
            )
        (p_off, p_nbr), (c_off, c_nbr), (e_off, e_nbr) = arrays
        return cls(base.asns, p_off, p_nbr, c_off, c_nbr, e_off, e_nbr)

    # -- pickling: the index dict (and the vectorized engine's cached
    # numpy views) are derived, rebuild them on load ----------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["index"]
        state.pop("_np_csr", None)
        return _concrete_buffers(state)

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.index = {asn: i for i, asn in enumerate(self.asns)}

    # -- read-only ASGraph query API --------------------------------------
    def __contains__(self, asn: int) -> bool:
        return asn in self.index

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[int]:
        return iter(self.asns)

    def nodes(self) -> list[int]:
        return list(self.asns)

    def _row(self, off: array, nbr: array, asn: int) -> frozenset[int]:
        i = self.index[asn]
        asns = self.asns
        return frozenset(asns[j] for j in nbr[off[i] : off[i + 1]])

    def providers(self, asn: int) -> frozenset[int]:
        return self._row(self.provider_off, self.provider_nbr, asn)

    def customers(self, asn: int) -> frozenset[int]:
        return self._row(self.customer_off, self.customer_nbr, asn)

    def peers(self, asn: int) -> frozenset[int]:
        return self._row(self.peer_off, self.peer_nbr, asn)

    def neighbors(self, asn: int) -> frozenset[int]:
        return self.providers(asn) | self.customers(asn) | self.peers(asn)

    def degree(self, asn: int) -> int:
        return len(self.neighbors(asn))

    def transit_degree(self, asn: int) -> int:
        return len(self.providers(asn) | self.customers(asn))

    def is_stub(self, asn: int) -> bool:
        i = self.index[asn]
        return self.customer_off[i] == self.customer_off[i + 1]

    def edge_count(self) -> int:
        return len(self.customer_nbr) + len(self.peer_nbr) // 2

    def relationship_between(self, a: int, b: int):
        from ..topology.relationships import Relationship

        if a not in self.index or b not in self.index:
            return None
        if b in self.peers(a):
            return Relationship.PEER_PEER
        if b in self.customers(a) or b in self.providers(a):
            return Relationship.PROVIDER_CUSTOMER
        return None


class CompiledRoutingState(RoutingState):
    """Array-backed routing state; materializes ``NodeRoute`` objects lazily.

    The parent sets live in a linked edge pool: ``parent_head[i]`` is the
    index of node *i*'s first pool entry (−1 = none), each entry holds a
    parent node index (``pool_parent``) and the next entry (``pool_next``).
    ``origin_mask[i]`` is a bitmask over ``seeds`` (``None`` for the
    single-seed fast path, where every routed AS trivially reaches the
    only seed).
    """

    def __init__(
        self,
        asns: array,
        seeds: tuple[Seed, ...],
        route_class: bytearray,
        length: array,
        parent_head: array,
        pool_parent: array,
        pool_next: array,
        routed: array,
        origin_mask: Optional[list[int]],
    ) -> None:
        self.seeds = seeds
        self.seed_asns = frozenset(s.asn for s in seeds)
        # only the (shared) ASN table travels with the state — not the
        # adjacency arrays — so pickled states stay compact
        self._asns = asns
        self._route_class = route_class
        self._length = length
        self._parent_head = parent_head
        self._pool_parent = pool_parent
        self._pool_next = pool_next
        self._routed = routed
        self._origin_mask = origin_mask
        self._materialized: Optional[dict[int, NodeRoute]] = None
        # metric-kernel caches (see repro.bgpsim.metrics_kernel): the
        # flattened best-path DAG and the tied-best-path counts
        self._metric_dag = None
        self._metric_counts: Optional[list[int]] = None

    def _idx(self, asn: int) -> Optional[int]:
        i = bisect_left(self._asns, asn)
        if i < len(self._asns) and self._asns[i] == asn:
            return i
        return None

    # -- lazy materialization ---------------------------------------------
    @property
    def routes(self) -> dict[int, NodeRoute]:
        if self._materialized is None:
            self._materialized = self._materialize()
        return self._materialized

    def _origins_for(self, i: int, keys: tuple[str, ...]) -> set[str]:
        if self._origin_mask is None:
            return {keys[0]}
        mask = self._origin_mask[i]
        return {keys[b] for b in range(len(keys)) if mask >> b & 1}

    def _materialize(self) -> dict[int, NodeRoute]:
        asns = self._asns
        rc, ln = self._route_class, self._length
        head, pool_parent, pool_next = (
            self._parent_head,
            self._pool_parent,
            self._pool_next,
        )
        keys = tuple(s.key for s in self.seeds)
        routes: dict[int, NodeRoute] = {}
        for i in sorted(self._routed):
            parents = set()
            h = head[i]
            while h >= 0:
                parents.add(asns[pool_parent[h]])
                h = pool_next[h]
            routes[asns[i]] = NodeRoute(
                _CLASSES[rc[i]], ln[i], parents, self._origins_for(i, keys)
            )
        return routes

    # -- array-backed fast paths (no materialization) ----------------------
    def route(self, asn: int) -> Optional[NodeRoute]:
        """Per-AS :class:`NodeRoute` without materializing ``routes``.

        Walking one parent pool builds one route object; hop-by-hop
        consumers (the traceroute walk) stay on the compact arrays
        instead of forcing the full dict into existence.
        """
        if self._materialized is not None:
            return self._materialized.get(asn)
        i = self._idx(asn)
        if i is None or self._route_class[i] == _NO_ROUTE:
            return None
        parents = set()
        h = self._parent_head[i]
        pool_parent, pool_next, asns = (
            self._pool_parent,
            self._pool_next,
            self._asns,
        )
        while h >= 0:
            parents.add(asns[pool_parent[h]])
            h = pool_next[h]
        return NodeRoute(
            _CLASSES[self._route_class[i]],
            self._length[i],
            parents,
            self._origins_for(i, tuple(s.key for s in self.seeds)),
        )

    def route_class(self, asn: int) -> Optional[RouteClass]:
        if self._materialized is not None:
            node = self._materialized.get(asn)
            return node.route_class if node else None
        i = self._idx(asn)
        if i is None or self._route_class[i] == _NO_ROUTE:
            return None
        return _CLASSES[self._route_class[i]]

    def has_route(self, asn: int) -> bool:
        if self._materialized is not None:
            return asn in self._materialized
        i = self._idx(asn)
        return i is not None and self._route_class[i] != _NO_ROUTE

    def path_length(self, asn: int) -> Optional[int]:
        if self._materialized is not None:
            node = self._materialized.get(asn)
            return node.length if node else None
        i = self._idx(asn)
        if i is None or self._route_class[i] == _NO_ROUTE:
            return None
        return self._length[i]

    def origins_at(self, asn: int) -> frozenset[str]:
        if self._materialized is not None:
            node = self._materialized.get(asn)
            return frozenset(node.origins) if node else frozenset()
        i = self._idx(asn)
        if i is None or self._route_class[i] == _NO_ROUTE:
            return frozenset()
        return frozenset(self._origins_for(i, tuple(s.key for s in self.seeds)))

    def ases_with_origin(self, key: str) -> frozenset[int]:
        keys = tuple(s.key for s in self.seeds)
        if key not in keys:
            return frozenset()
        asns = self._asns
        if self._origin_mask is None:
            # single-seed fast path: every routed AS reaches the only seed
            return frozenset(asns[i] for i in self._routed)
        want = 0
        for b, k in enumerate(keys):
            if k == key:
                want |= 1 << b
        mask = self._origin_mask
        return frozenset(asns[i] for i in self._routed if mask[i] & want)

    def reachable_ases(self) -> frozenset[int]:
        if self._materialized is not None:
            return frozenset(self._materialized) - self.seed_asns
        asns = self._asns
        return frozenset(asns[i] for i in self._routed) - self.seed_asns

    # -- pickling: ship the compact arrays, never the materialized dict
    # (nor the derived metric-kernel caches) ------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_materialized"] = None
        state["_metric_dag"] = None
        state["_metric_counts"] = None
        return _concrete_buffers(state)


def _check_seeds(
    cgraph: CompiledGraph,
    seeds: tuple[Seed, ...],
    excluded: Collection[int],
) -> None:
    if not seeds:
        raise ValueError("at least one seed required")
    seen = set()
    for seed in seeds:
        if seed.asn not in cgraph.index:
            raise KeyError(f"seed AS{seed.asn} not in graph")
        if seed.asn in excluded:
            raise ValueError(f"seed AS{seed.asn} is excluded")
        if seed.asn in seen:
            raise ValueError(f"duplicate seed AS{seed.asn}")
        seen.add(seed.asn)


def propagate_compiled(
    graph,
    seeds: Seed | Iterable[Seed],
    excluded: Collection[int] = frozenset(),
    peer_locked: Collection[int] = frozenset(),
    locked_origin: Optional[int] = None,
) -> CompiledRoutingState:
    """Array-based Gao-Rexford propagation; result ≡ the reference engine.

    ``graph`` may be an ``ASGraph`` (compiled through its cache) or a
    :class:`CompiledGraph`.  Semantics — valley-free export, customer >
    peer > provider preference, all ties kept, ``excluded`` /
    ``peer_locked`` / per-seed ``export_to`` filtering — match
    :func:`repro.bgpsim.engine.propagate_reference` exactly.
    """
    cg: CompiledGraph = graph.compile()
    if isinstance(seeds, Seed):
        seeds = (seeds,)
    seeds = tuple(seeds)
    _check_seeds(cg, seeds, excluded)

    # vectorized numpy port (REPRO_VECTOR): same semantics, same arrays
    from . import vectorized as _vec

    if _vec.vector_enabled():
        return _vec.propagate_compiled_vector(
            cg, seeds, excluded, peer_locked, locked_origin
        )

    index = cg.index
    n = cg.n
    if locked_origin is None:
        locked_origin = seeds[0].asn
    locked_idx = index.get(locked_origin, -2)

    # per-node flags for the blocked() predicate
    ex = bytearray(n)
    for asn in excluded:
        i = index.get(asn)
        if i is not None:
            ex[i] = 1
    seed_asns = {s.asn for s in seeds}
    lk = bytearray(n)
    for asn in peer_locked:
        if asn in seed_asns:
            continue
        i = index.get(asn)
        if i is not None:
            lk[i] = 1

    # per-seed export restrictions, as neighbor-index sets
    seed_export: dict[int, frozenset[int]] = {}
    for seed in seeds:
        if seed.export_to is not None:
            seed_export[index[seed.asn]] = frozenset(
                index[a] for a in seed.export_to if a in index
            )

    # routing state arrays
    rc = bytearray([_NO_ROUTE]) * n
    ln = array("q", bytes(8 * n))
    head = array("i", b"\xff" * (4 * n))  # -1: no parents
    pool_parent = array("i")
    pool_next = array("i")
    pp_append = pool_parent.append
    pn_append = pool_next.append
    routed: list[int] = []

    poff, pnbr = cg.provider_off, cg.provider_nbr
    coff, cnbr = cg.customer_off, cg.customer_nbr
    qoff, qnbr = cg.peer_off, cg.peer_nbr

    # ------------------------------------------------------------------
    # phase 1: customer routes, level-synchronous BFS up provider edges
    # ------------------------------------------------------------------
    pending: dict[int, list[tuple[int, int]]] = {}
    for seed in seeds:
        s = index[seed.asn]
        rc[s] = 0
        ln[s] = seed.initial_length
        routed.append(s)
        exp = seed_export.get(s)
        bucket = pending.setdefault(seed.initial_length + 1, [])
        for p in pnbr[poff[s] : poff[s + 1]]:
            if ex[p] or (lk[p] and s != locked_idx):
                continue
            if exp is not None and p not in exp:
                continue
            bucket.append((p, s))

    level = min(pending) if pending else 0
    while pending:
        if level not in pending:
            # levels are consumed in increasing order; gaps only occur at
            # seed initial-length boundaries, so this re-scan is O(#seeds)
            level = min(pending)
        events = pending.pop(level)
        newly: list[int] = []
        for r, s in events:
            c = rc[r]
            if c != _NO_ROUTE:
                # only non-seed routes (which always have parents) tie-extend
                if c == 0 and ln[r] == level and head[r] >= 0:
                    pp_append(s)
                    pn_append(head[r])
                    head[r] = len(pool_parent) - 1
                continue
            rc[r] = 0
            ln[r] = level
            pp_append(s)
            pn_append(-1)
            head[r] = len(pool_parent) - 1
            newly.append(r)
            routed.append(r)
        if newly:
            nxt = level + 1
            bucket = pending.get(nxt)
            if bucket is None:
                bucket = pending[nxt] = []
            for r in newly:
                for p in pnbr[poff[r] : poff[r + 1]]:
                    if ex[p] or (lk[p] and r != locked_idx):
                        continue
                    bucket.append((p, r))
        level += 1

    customer_routed = list(routed)

    # ------------------------------------------------------------------
    # phase 2: peer routes, one hop from every customer-routed AS
    # ------------------------------------------------------------------
    cand_len = array("q", bytes(8 * n))  # 0: no candidate (lengths are >= 1)
    cand_head = array("i", b"\xff" * (4 * n))
    touched: list[int] = []
    for s in customer_routed:
        hop = ln[s] + 1
        exp = seed_export.get(s)
        for q in qnbr[qoff[s] : qoff[s + 1]]:
            if rc[q] != _NO_ROUTE:
                continue
            if ex[q] or (lk[q] and s != locked_idx):
                continue
            if exp is not None and q not in exp:
                continue
            best = cand_len[q]
            if best == 0:
                touched.append(q)
            if best == 0 or hop < best:
                cand_len[q] = hop
                pp_append(s)
                pn_append(-1)
                cand_head[q] = len(pool_parent) - 1
            elif hop == best:
                pp_append(s)
                pn_append(cand_head[q])
                cand_head[q] = len(pool_parent) - 1
    for q in touched:
        rc[q] = 1
        ln[q] = cand_len[q]
        head[q] = cand_head[q]
        routed.append(q)

    # ------------------------------------------------------------------
    # phase 3: provider routes, Dijkstra down customer edges
    # ------------------------------------------------------------------
    heap: list[tuple[int, int, int]] = []
    push = heapq.heappush
    pop = heapq.heappop
    for s in routed:
        hop = ln[s] + 1
        exp = seed_export.get(s)
        for c in cnbr[coff[s] : coff[s + 1]]:
            if rc[c] != _NO_ROUTE:
                continue
            if ex[c] or (lk[c] and s != locked_idx):
                continue
            if exp is not None and c not in exp:
                continue
            push(heap, (hop, c, s))
    while heap:
        hop, r, s = pop(heap)
        c = rc[r]
        if c != _NO_ROUTE:
            if c == 2 and ln[r] == hop:
                pp_append(s)
                pn_append(head[r])
                head[r] = len(pool_parent) - 1
            continue
        rc[r] = 2
        ln[r] = hop
        pp_append(s)
        pn_append(-1)
        head[r] = len(pool_parent) - 1
        routed.append(r)
        nxt = hop + 1
        for c in cnbr[coff[r] : coff[r + 1]]:
            if rc[c] != _NO_ROUTE:
                continue
            if ex[c] or (lk[c] and r != locked_idx):
                continue
            push(heap, (nxt, c, r))

    # ------------------------------------------------------------------
    # origins: which seeds each AS's tied-best routes lead to
    # ------------------------------------------------------------------
    origin_mask: Optional[list[int]] = None
    if len(seeds) > 1:
        origin_mask = [0] * n
        for b, seed in enumerate(seeds):
            origin_mask[index[seed.asn]] = 1 << b
        # parents are exactly one hop shorter, so increasing-length order
        # finalizes every parent before its children read it
        for r in sorted(routed, key=ln.__getitem__):
            h = head[r]
            if h < 0:
                continue  # a seed: keeps its own bit
            mask = 0
            while h >= 0:
                mask |= origin_mask[pool_parent[h]]
                h = pool_next[h]
            origin_mask[r] = mask

    # shrink the result arrays to the smallest typecodes that fit so the
    # state pickles (and caches) compactly
    pool_size = len(pool_parent)
    node_code = _unsigned_typecode(max(n - 1, 0))
    pool_code = _signed_typecode(pool_size)
    max_len = max((ln[r] for r in routed), default=0)
    return CompiledRoutingState(
        cg.asns,
        seeds,
        rc,
        _shrink(ln, _unsigned_typecode(max_len)),
        _shrink(head, pool_code),
        _shrink(pool_parent, node_code),
        _shrink(pool_next, pool_code),
        array(node_code, routed),
        origin_mask,
    )
