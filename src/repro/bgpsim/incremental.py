"""Incremental delta-propagation for route-leak sweeps.

A leak simulation under the erratum semantics runs the *same* legitimate
propagation for every leaker and differs only where the leaked route
changes the outcome.  The combined ``(origin, leak)`` state is derived
from the single-origin baseline by a frontier-limited pass that visits
only the region the leak actually disturbs:

1. *delta waves* — replay the customer and peer phases seeded solely
   from the leaker: every offer is compared against the baseline (or the
   already-overridden) route at the receiver and dropped the moment it
   is worse, so propagation stops at the boundary of the leak's
   influence.  Within a class the route set only grows, so these two
   phases are pure improvements.
2. *dirty-region recompute* — the one retraction the phases above can
   cause: an AS whose route *class* improved with a *longer* path (the
   essence of a leak — a customer route beats a shorter peer/provider
   route) now exports a longer provider-class route to its customers.
   Every provider-class baseline descendant of such a node is collected
   down the customer edges, reset, and re-solved by a small Dijkstra
   seeded with the offers still standing at the region's boundary.
3. *origin taint* — a BFS over the best-route DAG (children found
   through the CSR adjacency, membership checked against parent sets)
   marks every AS whose tied-best routes lead to the leak, which is
   exactly the paper's *detoured* set, followed by an exact origin-mask
   pass over the affected region in increasing path-length order.
4. *copy-on-write state* — :class:`DeltaRoutingState` holds the per-node
   overrides plus the origin masks and answers every query by delegating
   to the untouched baseline arrays, so one baseline
   :class:`~repro.bgpsim.compiled.CompiledRoutingState` serves every
   leaker in a sweep (and every pool worker it is shipped to).

The pass is proven outcome- and state-equivalent to a full two-seed
recompute by ``tests/test_incremental_engine.py``.  It applies when the
baseline and the combined run share their filter configuration — erratum
peer-lock semantics, a leaker that is not itself peer-locked, and a leak
seed that does not retract announcements the baseline already made
(enforced here with ``ValueError``).  The :mod:`repro.core.leaks`
consumers fall back to the full engine for the remaining cases
(subprefix leaks, the pre-erratum ``ORIGINAL`` semantics, and locked
leakers), so ``engine="incremental"`` is always safe.
"""

from __future__ import annotations

import heapq
from collections.abc import Collection
from typing import Optional

from .compiled import _NO_ROUTE, CompiledGraph, CompiledRoutingState
from .routes import NodeRoute, RouteClass, RoutingState, Seed

__all__ = ["DeltaRoutingState", "propagate_delta"]

_CLASSES = (RouteClass.CUSTOMER, RouteClass.PEER, RouteClass.PROVIDER)

#: origin-mask bits for the two seeds of a leak scenario
_LEGIT_BIT = 1
_LEAK_BIT = 2


class DeltaRoutingState(RoutingState):
    """Combined ``(origin, leak)`` state as a copy-on-write view.

    ``overrides`` maps a node index to its combined ``(route_class,
    length, parent-index set)`` where that differs from the baseline;
    ``omask`` maps every affected node index to its combined origin mask
    (bit 0: legitimate origin, bit 1: leak).  Nodes outside both maps
    carry their baseline route with origins ``{legit.key}``.  The
    baseline's arrays are shared, never copied and never mutated.
    """

    def __init__(
        self,
        baseline: CompiledRoutingState,
        leak: Seed,
        overrides: dict[int, tuple[int, int, set[int]]],
        omask: dict[int, int],
        visited: int,
    ) -> None:
        legit = baseline.seeds[0]
        self.seeds = (legit, leak)
        self.seed_asns = frozenset((legit.asn, leak.asn))
        self._baseline = baseline
        self._overrides = overrides
        self._omask = omask
        #: nodes examined by the delta pass (offers received, reset or
        #: tainted); the benchmark reports this as the visited fraction
        self.visited_count = visited
        self._materialized: Optional[dict[int, NodeRoute]] = None
        # metric-kernel caches (see repro.bgpsim.metrics_kernel)
        self._metric_dag = None
        self._metric_counts: Optional[list[int]] = None

    # -- instrumentation ---------------------------------------------------
    def delta_stats(self) -> dict[str, int]:
        """Sizes of the regions the delta pass touched."""
        return {
            "visited": self.visited_count,
            "route_changed": len(self._overrides),
            "tainted": sum(1 for m in self._omask.values() if m & _LEAK_BIT),
            "total_ases": len(self._baseline._asns),
        }

    # -- index helpers -----------------------------------------------------
    def _routed_indices(self) -> set[int]:
        routed = set(self._baseline._routed)
        for i, (rc, _, _) in self._overrides.items():
            if rc != _NO_ROUTE:
                routed.add(i)
            else:
                routed.discard(i)
        return routed

    def _base_parents(self, i: int) -> set[int]:
        base = self._baseline
        parents: set[int] = set()
        h = base._parent_head[i]
        while h >= 0:
            parents.add(base._pool_parent[h])
            h = base._pool_next[h]
        return parents

    # -- lazy materialization ---------------------------------------------
    @property
    def routes(self) -> dict[int, NodeRoute]:
        if self._materialized is None:
            self._materialized = self._materialize()
        return self._materialized

    def _materialize(self) -> dict[int, NodeRoute]:
        base = self._baseline
        asns = base._asns
        keys = (self.seeds[0].key, self.seeds[1].key)
        routes: dict[int, NodeRoute] = {}
        for i in sorted(self._routed_indices()):
            override = self._overrides.get(i)
            if override is not None:
                rc, ln, parents = override
                parent_asns = {asns[p] for p in parents}
            else:
                rc = base._route_class[i]
                ln = base._length[i]
                parent_asns = {asns[p] for p in self._base_parents(i)}
            mask = self._omask.get(i, _LEGIT_BIT)
            origins = {keys[b] for b in (0, 1) if mask >> b & 1}
            routes[asns[i]] = NodeRoute(_CLASSES[rc], ln, parent_asns, origins)
        return routes

    # -- array-backed fast paths (no materialization) ----------------------
    def has_route(self, asn: int) -> bool:
        if self._materialized is not None:
            return asn in self._materialized
        i = self._baseline._idx(asn)
        if i is None:
            return False
        override = self._overrides.get(i)
        if override is not None:
            return override[0] != _NO_ROUTE
        return self._baseline._route_class[i] != _NO_ROUTE

    def path_length(self, asn: int) -> Optional[int]:
        if self._materialized is not None:
            node = self._materialized.get(asn)
            return node.length if node else None
        i = self._baseline._idx(asn)
        if i is None:
            return None
        override = self._overrides.get(i)
        if override is not None:
            return override[1] if override[0] != _NO_ROUTE else None
        if self._baseline._route_class[i] == _NO_ROUTE:
            return None
        return self._baseline._length[i]

    def origins_at(self, asn: int) -> frozenset[str]:
        if self._materialized is not None:
            node = self._materialized.get(asn)
            return frozenset(node.origins) if node else frozenset()
        if not self.has_route(asn):
            return frozenset()
        i = self._baseline._idx(asn)
        mask = self._omask.get(i, _LEGIT_BIT)
        keys = (self.seeds[0].key, self.seeds[1].key)
        return frozenset(keys[b] for b in (0, 1) if mask >> b & 1)

    def ases_with_origin(self, key: str) -> frozenset[int]:
        asns = self._baseline._asns
        bit = 0
        if key == self.seeds[0].key:
            bit |= _LEGIT_BIT
        if key == self.seeds[1].key:
            bit |= _LEAK_BIT
        if not bit:
            return frozenset()
        if bit == _LEAK_BIT:
            # only affected nodes can carry the leak bit — no full scan
            base_rc = self._baseline._route_class
            overrides = self._overrides
            hits = []
            for i, m in self._omask.items():
                if not m & _LEAK_BIT:
                    continue
                override = overrides.get(i)
                rc = override[0] if override is not None else base_rc[i]
                if rc != _NO_ROUTE:
                    hits.append(asns[i])
            return frozenset(hits)
        # the legit bit is carried implicitly by every unaffected node
        return frozenset(
            asns[i]
            for i in self._routed_indices()
            if self._omask.get(i, _LEGIT_BIT) & bit
        )

    def reachable_ases(self) -> frozenset[int]:
        if self._materialized is not None:
            return frozenset(self._materialized) - self.seed_asns
        asns = self._baseline._asns
        return (
            frozenset(asns[i] for i in self._routed_indices())
            - self.seed_asns
        )

    # -- pickling: ship the compact pieces, never the materialized dict
    # (nor the derived metric-kernel caches) ------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_materialized"] = None
        state["_metric_dag"] = None
        state["_metric_counts"] = None
        return state


def propagate_delta(
    graph,
    baseline: CompiledRoutingState,
    leak: Seed,
    excluded: Collection[int] = frozenset(),
    peer_locked: Collection[int] = frozenset(),
    locked_origin: Optional[int] = None,
) -> DeltaRoutingState:
    """Inject ``leak`` into a single-seed ``baseline`` and return the
    combined state, visiting only the disturbed region.

    ``baseline`` must be the :func:`~repro.bgpsim.compiled.propagate_compiled`
    result for ``(baseline.seeds[0],)`` over ``graph`` under the *same*
    ``excluded`` / ``peer_locked`` / ``locked_origin`` configuration —
    the equivalence with a full two-seed recompute holds only then.
    Raises ``ValueError`` for the configurations whose combined run
    would retract announcements the baseline already made (a peer-locked
    or excluded leaker, a restricted ``export_to`` on a baseline-routed
    leaker, or a leak seed longer than the leaker's baseline customer
    route); callers fall back to the full engine for those.
    """
    cg: CompiledGraph = graph.compile()
    if len(baseline.seeds) != 1:
        raise ValueError("baseline must be a single-seed propagation")
    legit = baseline.seeds[0]
    if baseline._asns is not cg.asns and baseline._asns != cg.asns:
        raise ValueError("baseline was computed over a different graph")
    index = cg.index
    if leak.asn not in index:
        raise KeyError(f"seed AS{leak.asn} not in graph")
    if leak.asn == legit.asn:
        raise ValueError(f"duplicate seed AS{leak.asn}")
    if leak.asn in excluded:
        raise ValueError(f"seed AS{leak.asn} is excluded")
    if locked_origin is None:
        locked_origin = legit.asn
    peer_locked = frozenset(peer_locked) - {legit.asn}
    if leak.asn in peer_locked:
        raise ValueError(
            f"leaker AS{leak.asn} is peer-locked; the baseline's filter "
            "set would differ from the combined run's"
        )

    base_rc = baseline._route_class
    base_ln = baseline._length
    legit_i = index[legit.asn]
    L = index[leak.asn]
    if leak.export_to is not None and base_rc[L] != _NO_ROUTE:
        raise ValueError(
            f"leak seed at routed AS{leak.asn} restricts export_to; the "
            "baseline's announcements would be retracted"
        )
    if base_rc[L] == 0 and leak.initial_length > base_ln[L]:
        raise ValueError(
            f"leak seed at AS{leak.asn} is longer ({leak.initial_length}) "
            f"than its baseline customer route ({base_ln[L]}); the "
            "leaker's exports to providers and peers would be retracted"
        )

    ex = bytearray(cg.n)
    for asn in excluded:
        i = index.get(asn)
        if i is not None:
            ex[i] = 1
    lk = bytearray(cg.n)
    for asn in peer_locked:
        i = index.get(asn)
        if i is not None:
            lk[i] = 1
    locked_idx = index.get(locked_origin, -2)
    leak_export: Optional[frozenset[int]] = None
    if leak.export_to is not None:
        leak_export = frozenset(
            index[a] for a in leak.export_to if a in index
        )
    legit_export: Optional[frozenset[int]] = None
    if legit.export_to is not None:
        legit_export = frozenset(
            index[a] for a in legit.export_to if a in index
        )

    # copy-on-write override maps: only nodes the leak disturbs appear
    cur_rc: dict[int, int] = {}
    cur_ln: dict[int, int] = {}
    cur_par: dict[int, set[int]] = {}
    visited: set[int] = {L}

    def rc_of(i: int) -> int:
        return cur_rc.get(i, base_rc[i])

    def ln_of(i: int) -> int:
        v = cur_ln.get(i)
        return base_ln[i] if v is None else v

    def base_parents(i: int) -> set[int]:
        parents: set[int] = set()
        h = baseline._parent_head[i]
        while h >= 0:
            parents.add(baseline._pool_parent[h])
            h = baseline._pool_next[h]
        return parents

    def parents_of(i: int) -> set[int]:
        got = cur_par.get(i)
        return base_parents(i) if got is None else got

    # the leak seed's route replaces whatever the leaker held: seeds keep
    # a fixed (CUSTOMER, initial_length) route with no parents
    cur_rc[L] = 0
    cur_ln[L] = leak.initial_length
    cur_par[L] = set()
    #: nodes whose customer-class route strictly changed (re-announce)
    changed_customer: list[int] = [L]

    poff, pnbr = cg.provider_off, cg.provider_nbr
    coff, cnbr = cg.customer_off, cg.customer_nbr
    qoff, qnbr = cg.peer_off, cg.peer_nbr

    def exports(sender: int, receiver: int) -> bool:
        if ex[receiver] or (lk[receiver] and sender != locked_idx):
            return False
        if sender == L and leak_export is not None:
            return receiver in leak_export
        if sender == legit_i and legit_export is not None:
            return receiver in legit_export
        return True

    # ------------------------------------------------------------------
    # phase 1: customer routes, level BFS up provider edges from the
    # leaker.  Within class 0 the delta is a pure improvement: the offer
    # set only grows and announcements are never retracted, so an offer
    # that is worse than the (baseline or overridden) route is dropped.
    # ------------------------------------------------------------------
    pending: dict[int, list[tuple[int, int]]] = {}
    bucket = pending.setdefault(leak.initial_length + 1, [])
    for p in pnbr[poff[L] : poff[L + 1]]:
        if exports(L, p):
            bucket.append((p, L))

    level = min(pending) if pending else 0
    while pending:
        if level not in pending:
            level = min(pending)
        events = pending.pop(level)
        newly: list[int] = []
        for r, s in events:
            if r == legit_i or r == L:
                continue  # seed routes are fixed
            visited.add(r)
            c = rc_of(r)
            if c == 0:
                existing = ln_of(r)
                if level > existing:
                    continue
                if level == existing:
                    # tie: the baseline (or delta) parents gain the sender
                    par = cur_par.get(r)
                    if par is None:
                        par = cur_par[r] = base_parents(r)
                        cur_rc[r] = 0
                        cur_ln[r] = existing
                    par.add(s)
                    continue
            # strictly better customer route (or first one): override
            cur_rc[r] = 0
            cur_ln[r] = level
            cur_par[r] = {s}
            newly.append(r)
            changed_customer.append(r)
        if newly:
            nxt = level + 1
            bucket = pending.get(nxt)
            if bucket is None:
                bucket = pending[nxt] = []
            for r in newly:
                for p in pnbr[poff[r] : poff[r + 1]]:
                    if exports(r, p):
                        bucket.append((p, r))
        level += 1

    # ------------------------------------------------------------------
    # phase 2: peer routes, one hop from every changed customer route.
    # Baseline peer candidates never worsen (class-0 senders only keep
    # or shorten their routes), so this too is a pure improvement.
    # ------------------------------------------------------------------
    changed_any: list[int] = list(changed_customer)
    for s in changed_customer:
        hop = ln_of(s) + 1
        for q in qnbr[qoff[s] : qoff[s + 1]]:
            if q == legit_i or q == L:
                continue
            if not exports(s, q):
                continue
            visited.add(q)
            c = rc_of(q)
            if c == 0:
                continue  # customer routes always beat peer offers
            if c == 1:
                existing = ln_of(q)
                if hop > existing:
                    continue
                if hop == existing:
                    par = cur_par.get(q)
                    if par is None:
                        par = cur_par[q] = base_parents(q)
                        cur_rc[q] = 1
                        cur_ln[q] = existing
                    par.add(s)
                    continue
            # strictly better peer route (or first route at q)
            cur_rc[q] = 1
            cur_ln[q] = hop
            cur_par[q] = {s}
            changed_any.append(q)

    # ------------------------------------------------------------------
    # phase 3: provider routes.  Not monotone: a node whose route class
    # improved with a *longer* path (a leaked customer route beating a
    # shorter peer/provider route) now exports a longer provider-class
    # route to its customers, so its provider-class baseline descendants
    # must be re-solved from scratch.  Collect that dirty region down
    # the customer edges, reset it, then run one Dijkstra seeded with
    # (a) the offers still standing at the region's boundary and (b) the
    # offers of every node phases 1–2 changed.
    # ------------------------------------------------------------------
    # Overrides so far are all class 0/1, so a length can only have grown
    # through a class improvement (or the leak seed replacing the
    # leaker's own shorter customer route — HIJACK with a routed leaker).
    worsened = [
        i
        for i, rc in cur_rc.items()
        if rc != _NO_ROUTE
        and base_rc[i] != _NO_ROUTE
        and cur_ln[i] > base_ln[i]
    ]
    dirty: set[int] = set()
    stack = list(worsened)
    while stack:
        w = stack.pop()
        for c in cnbr[coff[w] : coff[w + 1]]:
            if c in dirty or rc_of(c) != 2:
                continue
            if w in base_parents(c):
                dirty.add(c)
                visited.add(c)
                stack.append(c)
    for d in dirty:
        cur_rc[d] = _NO_ROUTE
        cur_ln[d] = 0
        cur_par[d] = set()

    heap: list[tuple[int, int, int]] = []
    push = heapq.heappush
    pop = heapq.heappop
    # (a) boundary offers: every non-dirty routed provider of a dirty
    # node still announces — at its (possibly overridden) length
    for d in dirty:
        for u in pnbr[poff[d] : poff[d + 1]]:
            if u in dirty or rc_of(u) == _NO_ROUTE:
                continue
            if exports(u, d):
                push(heap, (ln_of(u) + 1, d, u))
    # (b) changed offers: every node phases 1-2 changed re-announces
    for s in dict.fromkeys(changed_any):
        hop = ln_of(s) + 1
        for c in cnbr[coff[s] : coff[s + 1]]:
            if exports(s, c):
                push(heap, (hop, c, s))
    while heap:
        hop, r, s = pop(heap)
        if r == legit_i or r == L:
            continue
        visited.add(r)
        c = rc_of(r)
        if c < 2:
            continue  # customer/peer routes beat provider offers
        if c == 2:
            existing = ln_of(r)
            if hop > existing:
                continue
            if hop == existing:
                par = cur_par.get(r)
                if par is None:
                    par = cur_par[r] = base_parents(r)
                    cur_rc[r] = 2
                    cur_ln[r] = existing
                par.add(s)
                continue
        # strictly better provider route, or the first offer reaching a
        # reset (dirty) or never-routed node
        cur_rc[r] = 2
        cur_ln[r] = hop
        cur_par[r] = {s}
        nxt = hop + 1
        for cch in cnbr[coff[r] : coff[r + 1]]:
            if exports(r, cch):
                push(heap, (nxt, cch, r))

    # ------------------------------------------------------------------
    # origin taint: BFS down the best-route DAG from the leaker.  A
    # node's origins gain the leak key exactly when some parent's did;
    # children are found through the adjacency rows and confirmed
    # against the (combined) parent sets.
    # ------------------------------------------------------------------
    tainted: set[int] = {L}
    parent_cache: dict[int, set[int]] = {}
    queue = [L]
    while queue:
        t = queue.pop()
        for off, nbr in ((poff, pnbr), (coff, cnbr), (qoff, qnbr)):
            for v in nbr[off[t] : off[t + 1]]:
                if v in tainted or v == legit_i:
                    continue
                if rc_of(v) == _NO_ROUTE:
                    continue
                par = parent_cache.get(v)
                if par is None:
                    par = parent_cache[v] = parents_of(v)
                if t in par:
                    tainted.add(v)
                    visited.add(v)
                    queue.append(v)

    # ------------------------------------------------------------------
    # exact origin masks over the affected region, in increasing length
    # order (parents are one hop shorter, so they finalize first)
    # ------------------------------------------------------------------
    affected = set(cur_rc) | tainted
    omask: dict[int, int] = {L: _LEAK_BIT, legit_i: _LEGIT_BIT}
    for i in sorted(affected - {L, legit_i}, key=ln_of):
        if rc_of(i) == _NO_ROUTE:
            continue
        mask = 0
        for p in parents_of(i):
            mask |= omask.get(p, _LEGIT_BIT)
        omask[i] = mask

    overrides = {i: (cur_rc[i], cur_ln[i], cur_par[i]) for i in cur_rc}
    return DeltaRoutingState(baseline, leak, overrides, omask, len(visited))
