"""Route data model for the Gao-Rexford propagation engine.

Preference follows the standard model the paper enforces (§6.1): customer
routes over peer routes over provider routes, then shortest AS-path, with
**all ties kept** (no arbitrary tie-breaking).  ``RoutingState`` captures,
for every AS, the equivalence class of its tied-best routes: the route
class, the AS-path length, the set of next-hop neighbors ("parents"), and
the set of announcement seeds (origins) those tied routes lead to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional


class RouteClass(enum.IntEnum):
    """Gao-Rexford route preference classes; lower value = more preferred."""

    CUSTOMER = 0
    PEER = 1
    PROVIDER = 2


@dataclass(frozen=True)
class Seed:
    """One announcement source for a prefix.

    ``initial_length`` is the AS-path length already carried when the seed
    exports: 0 for a true origin; for a route *leak* it is the length of the
    leaker's legitimate path to the origin (the leaker re-announces a learned
    route, so competing paths start longer).

    ``export_to`` optionally restricts which neighbors receive the seed's own
    announcement (the paper's "announce to Tier-1, Tier-2, and providers"
    configuration); ``None`` means announce to all neighbors.
    """

    asn: int
    key: str = "origin"
    initial_length: int = 0
    export_to: Optional[frozenset[int]] = None

    def __post_init__(self) -> None:
        if self.initial_length < 0:
            raise ValueError("initial_length must be >= 0")

    def exports_to(self, neighbor: int) -> bool:
        return self.export_to is None or neighbor in self.export_to


@dataclass
class NodeRoute:
    """Tied-best route summary at one AS."""

    route_class: RouteClass
    length: int
    parents: set[int] = field(default_factory=set)
    origins: set[str] = field(default_factory=set)

    def better_than(self, route_class: RouteClass, length: int) -> bool:
        return (self.route_class, self.length) < (route_class, length)

    def ties_with(self, route_class: RouteClass, length: int) -> bool:
        return (self.route_class, self.length) == (route_class, length)


class RoutingState:
    """Result of propagating one prefix over the AS graph."""

    def __init__(self, seeds: tuple[Seed, ...]) -> None:
        self.seeds = seeds
        self.seed_asns = frozenset(s.asn for s in seeds)
        self.routes: dict[int, NodeRoute] = {}

    def has_route(self, asn: int) -> bool:
        return asn in self.routes

    def route(self, asn: int) -> Optional[NodeRoute]:
        return self.routes.get(asn)

    def route_class(self, asn: int) -> Optional[RouteClass]:
        """Route class at ``asn`` (None when unrouted); array-backed
        subclasses answer this without materializing ``routes``."""
        node = self.route(asn)
        return node.route_class if node else None

    def reachable_ases(self) -> frozenset[int]:
        """ASes holding a route, excluding the seeds themselves."""
        return frozenset(self.routes) - self.seed_asns

    def origins_at(self, asn: int) -> frozenset[str]:
        """Seed keys reachable via ``asn``'s tied-best routes."""
        node = self.routes.get(asn)
        return frozenset(node.origins) if node else frozenset()

    def path_length(self, asn: int) -> Optional[int]:
        node = self.routes.get(asn)
        return node.length if node else None

    def ases_with_origin(self, key: str) -> frozenset[int]:
        """ASes whose tied-best routes lead to the seed named ``key``.

        Includes the seed itself; array-backed subclasses override this
        so leak consumers never materialize the full routes dict.
        """
        return frozenset(
            asn for asn, node in self.routes.items() if key in node.origins
        )

    # ------------------------------------------------------------------
    # best-path DAG utilities
    # ------------------------------------------------------------------
    def count_best_paths(self, asn: int) -> int:
        """Number of distinct tied-best AS paths from ``asn`` to any seed.

        Iterative memoized traversal (same shape as the engine's origin
        fill) — a recursive count would blow Python's recursion limit on
        deep provider chains.
        """
        routes = self.routes
        if asn not in routes:
            return 0
        seed_asns = self.seed_asns
        memo: dict[int, int] = {}
        stack = [asn]
        while stack:
            node = stack[-1]
            if node in memo:
                stack.pop()
                continue
            if node in seed_asns:
                memo[node] = 1
                stack.pop()
                continue
            parents = routes[node].parents
            missing = [p for p in parents if p not in memo]
            if missing:
                stack.extend(missing)
                continue
            memo[node] = sum(memo[p] for p in parents)
            stack.pop()
        return memo[asn]

    def enumerate_best_paths(
        self, asn: int, limit: int = 1000
    ) -> Iterator[tuple[int, ...]]:
        """Yield tied-best AS paths (asn, ..., seed); bounded by ``limit``."""
        if asn not in self.routes:
            return
        emitted = 0
        stack: list[tuple[int, tuple[int, ...]]] = [(asn, (asn,))]
        while stack and emitted < limit:
            node, path = stack.pop()
            if node in self.seed_asns:
                yield path
                emitted += 1
                continue
            for parent in sorted(self.routes[node].parents):
                stack.append((parent, path + (parent,)))

    def contains_path(self, path: tuple[int, ...]) -> bool:
        """True if ``path`` (receiver first, origin last) is a tied-best path."""
        if len(path) < 1 or path[-1] not in self.seed_asns:
            return False
        for node, parent in zip(path, path[1:]):
            route = self.routes.get(node)
            if route is None or parent not in route.parents:
                return False
        return True
