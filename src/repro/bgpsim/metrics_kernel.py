"""Array-native metric kernels over compiled routing states.

The paper's headline analyses — reliance mass flow (§7), AS-hegemony
cross-fractions (§10), tied-best-path counting, and the Fig. 13
path-length mixes — are all DAG passes over a propagated routing state.
The historical implementations in :mod:`repro.core` walk the
``state.routes`` dict of :class:`~repro.bgpsim.routes.NodeRoute`
objects; on a :class:`~repro.bgpsim.compiled.CompiledRoutingState` that
first *materializes* the dict (one object per routed AS) and then
re-sorts it by path length once per metric pass, which makes the
analytics layer the dominant cost of a sweep once propagation itself is
the compiled CSR kernel.

This module computes the same metrics directly on the compiled state's
flat arrays, without ever touching ``routes``:

* :func:`dag_of` — a :class:`MetricDAG`: the best-path DAG flattened
  into a counting-sorted topological order (path length ascending, node
  index ascending within a length) plus CSR parent pools (each pool
  sorted ascending).  Built once per state and cached on it.
* :func:`path_counts_kernel` — tied-best-path counts as one forward
  pass over the order (cached per state, since reliance and every
  hegemony target reuse it).
* :func:`reliance_kernel` — the §7 mass flow as one backward pass.
* :func:`cross_fractions_kernel` — hegemony's per-receiver crossing
  fractions as one forward pass, reusing the cached counts.
* :func:`length_histogram_kernel` — Fig. 13's weight-per-path-length
  totals read straight off the length array.
* :func:`routed_count_kernel` — ``|reach|`` without building the
  ``reachable_ases`` frozenset.

:class:`~repro.bgpsim.incremental.DeltaRoutingState` is supported
through its override maps, so leak-sweep consumers get the same kernels
over the shared baseline arrays.  Equivalence with the dict reference
implementations is proven by ``tests/test_metric_kernels.py`` (exact
``Fraction`` mode on seeded netgen scenarios); the float paths are
bit-identical as well because both sides process nodes in the same
canonical (length, ASN) order and parents in ascending order.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Collection, Mapping
from fractions import Fraction
from typing import Optional

from . import vectorized as _vec
from .compiled import _NO_ROUTE, CompiledRoutingState
from .incremental import DeltaRoutingState
from .routes import RoutingState

__all__ = [
    "MetricDAG",
    "cross_fractions_kernel",
    "cross_fractions_many_kernel",
    "dag_of",
    "is_array_state",
    "length_histogram_kernel",
    "path_counts_indexed",
    "path_counts_kernel",
    "reliance_kernel",
    "reliance_mass_kernel",
    "routed_count_kernel",
]

#: the state types whose arrays the kernels can consume directly
_ARRAY_STATES = (CompiledRoutingState, DeltaRoutingState)


def is_array_state(state: RoutingState) -> bool:
    """True when ``state`` carries the flat arrays the kernels consume."""
    return isinstance(state, _ARRAY_STATES)


class MetricDAG:
    """The best-path DAG of one routing state, flattened for array passes.

    ``order`` lists the routed node indices in a topological order of the
    DAG — path length ascending, node index (equivalently ASN) ascending
    within a length — produced by a counting sort over the length array.
    Node ``order[k]``'s parents are ``parents[par_off[k]:par_off[k + 1]]``
    (node indices, ascending), and ``lengths[k]`` is its path length.
    ``routed`` is a per-node membership bytearray and ``seed_idx`` the
    seed node indices.  Plain Python lists are used for the hot tables —
    they index faster than ``array`` objects and the DAG never pickles
    (state ``__getstate__`` drops it).
    """

    __slots__ = (
        "asns",
        "counts",
        "n",
        "order",
        "lengths",
        "par_off",
        "parents",
        "routed",
        "seed_idx",
        # lazy numpy cache of the vectorized kernels (repro.bgpsim
        # .vectorized._dag_np): None = not built, False = not servable
        "_np",
    )

    def __init__(self, state: RoutingState) -> None:
        if isinstance(state, DeltaRoutingState):
            base = state._baseline
            overrides = state._overrides
        else:
            base = state
            overrides = None
        asns = base._asns
        n = len(asns)
        rc, ln = base._route_class, base._length
        head = base._parent_head
        pool_parent, pool_next = base._pool_parent, base._pool_next

        # counting sort by path length; scanning node indices in ascending
        # order keeps every bucket ASN-sorted for free
        buckets: list[list[int]] = []
        routed = bytearray(n)
        if overrides is None:
            for i in range(n):
                if rc[i] == _NO_ROUTE:
                    continue
                routed[i] = 1
                li = ln[i]
                while len(buckets) <= li:
                    buckets.append([])
                buckets[li].append(i)
        else:
            get_override = overrides.get
            for i in range(n):
                override = get_override(i)
                if override is None:
                    if rc[i] == _NO_ROUTE:
                        continue
                    li = ln[i]
                elif override[0] == _NO_ROUTE:
                    continue
                else:
                    li = override[1]
                routed[i] = 1
                while len(buckets) <= li:
                    buckets.append([])
                buckets[li].append(i)
        order: list[int] = []
        for bucket in buckets:
            order.extend(bucket)

        # CSR parent pools in order sequence, each pool sorted ascending
        # (deterministic float accumulation needs a canonical order).
        # Tied-best-path counts are computed in the same pass — the order
        # is topological, so every parent's count is final before its
        # children read it — and cached here for reliance and hegemony.
        seed_idx = frozenset(
            i
            for i in (base._idx(asn) for asn in state.seed_asns)
            if i is not None
        )
        counts = [0] * n
        lengths: list[int] = []
        par_off: list[int] = [0]
        parents: list[int] = []
        parents_append = parents.append
        parents_extend = parents.extend
        lengths_append = lengths.append
        off_append = par_off.append
        if overrides is None:
            # hot loop: most nodes have zero (seed) or one parent, which
            # need neither a pool list nor a sort
            for i in order:
                lengths_append(ln[i])
                h = head[i]
                if h < 0:
                    counts[i] = 1 if i in seed_idx else 0
                    off_append(len(parents))
                    continue
                nxt = pool_next[h]
                if nxt < 0:
                    p = pool_parent[h]
                    parents_append(p)
                    counts[i] = 1 if i in seed_idx else counts[p]
                    off_append(len(parents))
                    continue
                pool = [pool_parent[h]]
                h = nxt
                while h >= 0:
                    pool.append(pool_parent[h])
                    h = pool_next[h]
                pool.sort()
                if i in seed_idx:
                    counts[i] = 1
                else:
                    total = 0
                    for p in pool:
                        total += counts[p]
                    counts[i] = total
                parents_extend(pool)
                off_append(len(parents))
        else:
            get_override = overrides.get
            for i in order:
                override = get_override(i)
                if override is not None:
                    lengths_append(override[1])
                    pool = sorted(override[2])
                else:
                    lengths_append(ln[i])
                    h = head[i]
                    pool = []
                    while h >= 0:
                        pool.append(pool_parent[h])
                        h = pool_next[h]
                    pool.sort()
                if i in seed_idx:
                    counts[i] = 1
                elif len(pool) == 1:
                    counts[i] = counts[pool[0]]
                else:
                    total = 0
                    for p in pool:
                        total += counts[p]
                    counts[i] = total
                parents_extend(pool)
                off_append(len(parents))

        self.counts = counts
        self.asns = asns
        self.n = n
        self.order = order
        self.lengths = lengths
        self.par_off = par_off
        self.parents = parents
        self.routed = routed
        self.seed_idx = seed_idx
        self._np = None

    def idx(self, asn: int) -> Optional[int]:
        """Node index of ``asn`` (None when absent from the graph)."""
        i = bisect_left(self.asns, asn)
        if i < len(self.asns) and self.asns[i] == asn:
            return i
        return None


def dag_of(state: RoutingState) -> MetricDAG:
    """The (cached) :class:`MetricDAG` of an array-backed state."""
    dag = getattr(state, "_metric_dag", None)
    if dag is None:
        if not is_array_state(state):
            raise TypeError(
                "metric kernels require a CompiledRoutingState or "
                f"DeltaRoutingState, not {type(state).__name__}"
            )
        if _vec.vector_enabled():
            dag = _vec.build_metric_dag_vector(state)
        if dag is None:
            dag = MetricDAG(state)
        state._metric_dag = dag
    return dag


def path_counts_indexed(state: RoutingState) -> list[int]:
    """Tied-best-path counts per *node index* (0 for unrouted nodes).

    Computed during the (cached) DAG build — the forward pass shares the
    parent-pool walk — so reliance and every hegemony target reuse the
    same counts for free.
    """
    counts = getattr(state, "_metric_counts", None)
    if counts is not None:
        return counts
    counts = dag_of(state).counts
    state._metric_counts = counts
    return counts


def path_counts_kernel(state: RoutingState) -> dict[int, int]:
    """ASN-keyed tied-best-path counts (kernel twin of ``path_counts``)."""
    if _vec.vector_enabled():
        result = _vec.path_counts_vector(state)
        if result is not None:
            return result
    dag = dag_of(state)
    counts = path_counts_indexed(state)
    asns = dag.asns
    return {asns[i]: counts[i] for i in dag.order}


def reliance_mass_kernel(
    state: RoutingState,
    receivers: Optional[Collection[int]] = None,
    exact: bool = False,
) -> tuple[MetricDAG, list]:
    """The §7 mass flow as one backward pass; returns ``(dag, mass)``.

    ``mass`` is indexed by node index (seeds keep the mass routed
    *through* them, which callers exclude).  Fused consumers — e.g. the
    Fig. 6 summaries — aggregate straight off this list instead of
    building an ASN-keyed dict first; :func:`reliance_kernel` is the
    dict-shaped wrapper.
    """
    if not exact and _vec.vector_enabled():
        result = _vec.reliance_mass_vector(state, receivers=receivers)
        if result is not None:
            return result
    dag = dag_of(state)
    counts = path_counts_indexed(state)
    seed_idx = dag.seed_idx
    order, par_off, parents = dag.order, dag.par_off, dag.parents
    one = Fraction(1) if exact else 1.0
    mass: list = [Fraction(0) if exact else 0.0] * dag.n
    if receivers is None:
        for i in order:
            if i not in seed_idx:
                mass[i] = one
    else:
        for asn in receivers:
            i = dag.idx(asn)
            if i is not None and dag.routed[i] and i not in seed_idx:
                mass[i] = one
    for k in range(len(order) - 1, -1, -1):
        i = order[k]
        node_mass = mass[i]
        if not node_mass:
            continue
        begin, end = par_off[k], par_off[k + 1]
        if begin == end:
            continue
        if end - begin == 1:
            # single parent: the whole mass flows through it (share is
            # exactly 1, so skipping the multiply is bit-identical)
            mass[parents[begin]] += node_mass
            continue
        pool = parents[begin:end]
        denom = 0
        for p in pool:
            denom += counts[p]
        if exact:
            for p in pool:
                mass[p] += node_mass * Fraction(counts[p], denom)
        else:
            for p in pool:
                mass[p] += node_mass * (counts[p] / denom)
    return dag, mass


def reliance_kernel(
    state: RoutingState,
    receivers: Optional[Collection[int]] = None,
    exact: bool = False,
) -> dict[int, float]:
    """The §7 reliance mass flow as one backward pass over the DAG.

    Matches ``reliance_from_state``'s dict reference exactly: with
    ``exact=True`` the arithmetic is identical ``Fraction`` algebra; in
    float mode the accumulation order (length descending, ASN descending,
    parents ascending) mirrors the canonical dict-path order, so results
    are bit-identical.
    """
    if not exact and _vec.vector_enabled():
        result = _vec.reliance_vector(state, receivers=receivers)
        if result is not None:
            return result
    dag, mass = reliance_mass_kernel(state, receivers=receivers, exact=exact)
    asns, seed_idx = dag.asns, dag.seed_idx
    return {
        asns[i]: (float(mass[i]) if exact else mass[i])
        for i in dag.order
        if mass[i] and i not in seed_idx
    }


def cross_fractions_kernel(
    state: RoutingState, target: int
) -> dict[int, float]:
    """Hegemony's crossing fractions as one forward pass over the DAG."""
    if _vec.vector_enabled():
        result = _vec.cross_fractions_vector(state, target)
        if result is not None:
            return result
    dag = dag_of(state)
    ti = dag.idx(target)
    if ti is None or not dag.routed[ti]:
        return {}
    counts = path_counts_indexed(state)
    order, par_off, parents = dag.order, dag.par_off, dag.parents
    frac = [0.0] * dag.n
    asns = dag.asns
    out: dict[int, float] = {}
    for k, i in enumerate(order):
        if i == ti:
            value = 1.0
        else:
            begin, end = par_off[k], par_off[k + 1]
            if begin == end:
                value = 0.0  # a seed (the origin itself)
            elif end - begin == 1:
                # single parent: the child inherits its parent's fraction
                # (the dict reference takes the same shortcut)
                value = frac[parents[begin]]
            else:
                denom = 0
                numer = 0.0
                for p in parents[begin:end]:
                    denom += counts[p]
                    numer += frac[p] * counts[p]
                value = numer / denom
        frac[i] = value
        out[asns[i]] = value
    return out


def cross_fractions_many_kernel(
    state: RoutingState, targets: Collection[int]
) -> list[dict[int, float]]:
    """:func:`cross_fractions_kernel` for many targets against one
    state, in target order.

    A hegemony sweep evaluates dozens of targets per origin; the
    vectorized path serves the whole set in one ``(m, T)`` forward sweep
    (every dict bit-identical to the per-target kernel), and the pure
    path simply loops — the DAG and tied-best-path counts are cached on
    the state either way.
    """
    targets = list(targets)
    if _vec.vector_enabled():
        result = _vec.cross_fractions_many_vector(state, targets)
        if result is not None:
            return result
    return [cross_fractions_kernel(state, target) for target in targets]


def length_histogram_kernel(
    state: RoutingState,
    weights: Optional[Mapping[int, float]] = None,
    restrict_to: Optional[Collection[int]] = None,
) -> dict[int, float]:
    """Total weight of routed destinations per exact path length.

    Seeds are excluded (they are sources, not destinations); ``weights``
    maps ASN → weight (default 1 per AS) and ``restrict_to`` limits the
    accounting to a subset.  Read straight off the length array — no
    parent pools, no route objects.
    """
    if _vec.vector_enabled():
        result = _vec.length_histogram_vector(
            state, weights=weights, restrict_to=restrict_to
        )
        if result is not None:
            return result
    dag = dag_of(state)
    seed_idx = dag.seed_idx
    asns, lengths = dag.asns, dag.lengths
    restrict = (
        restrict_to
        if restrict_to is None or isinstance(restrict_to, (set, frozenset))
        else set(restrict_to)
    )
    histogram: dict[int, float] = {}
    for k, i in enumerate(dag.order):
        if i in seed_idx:
            continue
        asn = asns[i]
        if restrict is not None and asn not in restrict:
            continue
        weight = 1.0 if weights is None else float(weights.get(asn, 0))
        if weight:
            length = lengths[k]
            histogram[length] = histogram.get(length, 0.0) + weight
    return histogram


def routed_count_kernel(state: RoutingState) -> int:
    """``len(state.reachable_ases())`` without building the frozenset."""
    if isinstance(state, DeltaRoutingState):
        base = state._baseline
        base_rc = base._route_class
        count = len(base._routed)
        for i, (rc, _, _) in state._overrides.items():
            was = base_rc[i] != _NO_ROUTE
            now = rc != _NO_ROUTE
            count += int(now) - int(was)
        # both seeds (the legitimate origin and the leaker) always route
        return count - len(state.seed_asns)
    if isinstance(state, CompiledRoutingState):
        # seeds are always routed, so they are all in _routed
        return len(state._routed) - len(state.seed_asns)
    raise TypeError(
        "metric kernels require a CompiledRoutingState or "
        f"DeltaRoutingState, not {type(state).__name__}"
    )
