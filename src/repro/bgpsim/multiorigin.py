"""Bit-parallel multi-origin propagation: one graph sweep per batch.

The all-AS sweeps — hierarchy-free reachability for every AS, RIB
collection, global hegemony — run one single-seed Gao-Rexford
propagation per origin.  Those propagations are identical in *shape*:
the same three phases walk the same CSR arrays, and the only per-origin
difference is *which* origins have reached each AS.  That is exactly the
situation bitset-parallel BFS collapses: this module packs B origins
into one Python big-int bit per origin and runs the three phases of
:func:`~repro.bgpsim.compiled.propagate_compiled` once per *batch*
instead of once per origin.

Why first-arrival order is enough: with ``initial_length == 0`` for
every origin (the plain ``Seed(asn=origin)`` the sweeps use), each phase
is level-synchronous —

* phase 1 is a BFS up provider edges, so the level at which an origin's
  bit first reaches an AS *is* its customer-route length, and the tied
  parents are exactly the customer-side neighbors whose bit arrived one
  level earlier;
* phase 2 is one hop across peer edges, processed in ascending customer
  level so the first arrival is the shortest peer route;
* phase 3 is a unit-weight Dijkstra down customer edges, i.e. a bucket
  queue over lengths, so again first arrival = final length.

Per AS the batch stores three origin bitmasks (customer / peer /
provider class) plus per-``(class, level)`` arrival masks; ``(phase,
level)`` recovers the route class and path length for every origin bit,
and parent pools are reconstructed on demand by scanning CSR neighbors
for class/length-consistent predecessors — in ascending neighbor order,
the same canonical order the metric kernels sort into.

The result is a :class:`BatchRoutingState` whose per-origin
:class:`BatchOriginView` objects subclass
:class:`~repro.bgpsim.compiled.CompiledRoutingState`: the cheap queries
(``has_route`` / ``path_length`` / ``route_class`` / per-AS ``route``)
read straight off the batch masks, while the flat per-origin arrays the
PR-4 metric kernels consume are materialized lazily on first touch — so
every existing consumer, including the kernels, runs unchanged.
Equivalence with per-origin :func:`propagate_compiled` is proven by the
differential harness in ``tests/test_multiorigin_engine.py``.

Restrictions: the bit-parallel kernel serves the *plain sweep* shape —
one default seed per origin and one ``excluded`` set shared by the whole
batch, which is all the signature can express.  ``peer_locked`` sets,
nonzero ``initial_length`` and per-seed ``export_to`` filters make the
export predicate origin-dependent and have no batched counterpart;
callers needing them (leak simulations) keep the per-origin engines.
"""

from __future__ import annotations

import os
from array import array
from collections.abc import Collection, Iterable, Iterator, Sequence
from typing import Optional

from .compiled import (
    _CLASSES,
    _NO_ROUTE,
    _shrink,
    _signed_typecode,
    _unsigned_typecode,
    CompiledGraph,
    CompiledRoutingState,
)
from .routes import NodeRoute, Seed

__all__ = [
    "BatchOriginView",
    "BatchRoutingState",
    "DEFAULT_BATCH",
    "propagate_batch",
    "resolve_batch",
]

#: default batch width; 64–512 keeps the big-int masks in the sweet spot
#: where one word-sliced sweep serves many origins without the masks
#: outgrowing the CPU cache.
DEFAULT_BATCH = 256


def resolve_batch(batch: Optional[int | str] = None) -> int:
    """Normalize a ``batch`` knob: explicit value, else the ``REPRO_BATCH``
    environment variable, else :data:`DEFAULT_BATCH`.

    Returns the batch width as an int ``>= 1``; ``0`` and ``1`` both mean
    "no batching" (consumers fall back to the per-origin path) and
    normalize to ``1``.
    """
    if batch is None:
        batch = os.environ.get("REPRO_BATCH", DEFAULT_BATCH)
    width = int(batch)
    if width < 0:
        raise ValueError(f"batch must be >= 0, got {width}")
    return max(width, 1)


class BatchRoutingState:
    """The result of one bit-parallel multi-origin sweep.

    Bit *b* of every mask corresponds to ``origins[b]``.  ``_cust`` /
    ``_peer`` / ``_prov`` hold, per node index, the bitmask of origins
    whose best route at that node has the respective class; ``_buckets``
    maps ``(route class, path length)`` to the per-node masks of origins
    that *arrived* with exactly that class and length.  Together they are
    the whole routing state of all B origins — per-origin arrays are
    derived views (:meth:`view`), not storage.

    The compiled graph is carried only as a reference for on-demand
    parent reconstruction; pickling drops it (workers return batches to
    the parent, which re-binds its own copy via :meth:`bind_graph`).
    """

    def __init__(
        self,
        cgraph: CompiledGraph,
        origins: tuple[int, ...],
        cust: list[int],
        peer: list[int],
        prov: list[int],
        buckets: dict[tuple[int, int], dict[int, int]],
    ) -> None:
        self._graph: Optional[CompiledGraph] = cgraph
        self.origins = origins
        self._cust = cust
        self._peer = peer
        self._prov = prov
        self._buckets = buckets
        self._bit_of: dict[int, int] = {}
        for b, origin in enumerate(origins):
            self._bit_of.setdefault(origin, b)
        self._views: dict[int, "BatchOriginView"] = {}

    @property
    def width(self) -> int:
        """The batch width B (number of origin bits)."""
        return len(self.origins)

    @property
    def graph(self) -> CompiledGraph:
        if self._graph is None:
            raise RuntimeError(
                "BatchRoutingState is unbound (it crossed a process "
                "boundary); call bind_graph(graph) before taking views"
            )
        return self._graph

    def bind_graph(self, graph) -> "BatchRoutingState":
        """Re-attach a compiled graph after unpickling; returns ``self``."""
        self._graph = graph.compile()
        return self

    # -- per-origin views ------------------------------------------------
    def view_at(self, bit: int) -> "BatchOriginView":
        """The lazy per-origin view for bit ``bit`` (cached)."""
        view = self._views.get(bit)
        if view is None:
            view = BatchOriginView(self, bit)
            self._views[bit] = view
        return view

    def view(self, origin: int) -> "BatchOriginView":
        """The lazy view for ``origin`` (its first bit, if repeated)."""
        return self.view_at(self._bit_of[origin])

    def views(self) -> Iterator[tuple[int, "BatchOriginView"]]:
        """``(origin, view)`` pairs in batch (input) order."""
        for bit, origin in enumerate(self.origins):
            yield origin, self.view_at(bit)

    # -- pickling: drop the graph reference and the view cache ------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_graph"] = None
        state["_views"] = {}
        return state


def _restore_compiled(state: dict) -> CompiledRoutingState:
    """Unpickle helper: rebuild a plain ``CompiledRoutingState``."""
    obj = CompiledRoutingState.__new__(CompiledRoutingState)
    obj.__dict__.update(state)
    return obj


class BatchOriginView(CompiledRoutingState):
    """One origin's routing state, read lazily off a batch's masks.

    The scalar queries (``has_route`` / ``path_length`` / ``route_class``
    / per-AS ``route`` / ``reachable_ases``) are answered straight from
    the batch bitmasks and arrival buckets — no per-origin arrays exist
    until something touches them.  The flat arrays of the parent class
    (``_route_class`` … ``_routed``, consumed by the metric kernels and
    ``routes`` materialization) are reconstructed on first attribute
    access by scanning CSR neighbors for class/length-consistent
    predecessors, after which the view behaves exactly like the
    ``CompiledRoutingState`` the per-origin kernel would have produced.

    Pickling converts to a standalone ``CompiledRoutingState`` so a view
    never drags its whole batch across a process boundary.
    """

    #: attributes materialized together on first touch
    _LAZY = frozenset(
        (
            "_route_class",
            "_length",
            "_parent_head",
            "_pool_parent",
            "_pool_next",
            "_routed",
        )
    )

    def __init__(self, batch: BatchRoutingState, bit: int) -> None:
        origin = batch.origins[bit]
        self._batch = batch
        self._bit = bit
        self._seed_index = batch.graph.index[origin]
        self.seeds = (Seed(asn=origin),)
        self.seed_asns = frozenset((origin,))
        self._asns = batch.graph.asns
        self._origin_mask = None  # single seed: the fast path
        self._materialized = None
        self._metric_dag = None
        self._metric_counts = None

    def __getattr__(self, name: str):
        # only the lazy array attributes are synthesized; anything else
        # missing is a genuine error
        if name in BatchOriginView._LAZY:
            self._build_arrays()
            return self.__dict__[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # -- mask-backed scalar queries (never build the arrays) ---------------
    def _class_of(self, i: int) -> int:
        """Route class code at node ``i`` for this bit (``_NO_ROUTE`` if
        unrouted), read off the three class masks."""
        bit = self._bit
        batch = self._batch
        if batch._cust[i] >> bit & 1:
            return 0
        if batch._peer[i] >> bit & 1:
            return 1
        if batch._prov[i] >> bit & 1:
            return 2
        return _NO_ROUTE

    def _level_of(self, i: int, cls: int) -> int:
        """Arrival level of this bit at node ``i`` (class ``cls``)."""
        bit = self._bit
        for (c, level), bucket in self._batch._buckets.items():
            if c != cls:
                continue
            mask = bucket.get(i)
            if mask is not None and mask >> bit & 1:
                return level
        raise AssertionError(
            f"bit {bit} routed at node {i} but missing from arrival buckets"
        )

    def has_route(self, asn: int) -> bool:
        i = self._idx(asn)
        return i is not None and self._class_of(i) != _NO_ROUTE

    def route_class(self, asn: int):
        i = self._idx(asn)
        if i is None:
            return None
        cls = self._class_of(i)
        return None if cls == _NO_ROUTE else _CLASSES[cls]

    def path_length(self, asn: int) -> Optional[int]:
        i = self._idx(asn)
        if i is None:
            return None
        cls = self._class_of(i)
        if cls == _NO_ROUTE:
            return None
        return self._level_of(i, cls)

    def origins_at(self, asn: int) -> frozenset[str]:
        if self.has_route(asn):
            return frozenset((self.seeds[0].key,))
        return frozenset()

    def _parent_indices(self, i: int, cls: int, level: int) -> list[int]:
        """Class/length-consistent predecessors of node ``i``, ascending.

        Scans the CSR neighbor row the sender side of the phase would
        have exported across: customers for customer routes (they export
        up), peers holding customer routes for peer routes, providers
        holding any route for provider routes.  First-arrival levels make
        "arrived at ``level - 1``" exactly the tied-parent condition.
        """
        cg = self._batch.graph
        bit = self._bit
        buckets = self._batch._buckets
        if cls == 0:
            off, nbr = cg.customer_off, cg.customer_nbr
            senders = (buckets.get((0, level - 1)),)
        elif cls == 1:
            off, nbr = cg.peer_off, cg.peer_nbr
            senders = (buckets.get((0, level - 1)),)
        else:
            off, nbr = cg.provider_off, cg.provider_nbr
            senders = (
                buckets.get((0, level - 1)),
                buckets.get((1, level - 1)),
                buckets.get((2, level - 1)),
            )
        parents: list[int] = []
        for p in nbr[off[i] : off[i + 1]]:
            for bucket in senders:
                if bucket is None:
                    continue
                mask = bucket.get(p)
                if mask is not None and mask >> bit & 1:
                    parents.append(p)
                    break
        return parents

    def route(self, asn: int) -> Optional[NodeRoute]:
        """Per-AS :class:`NodeRoute` without materializing ``routes``."""
        if self._materialized is not None:
            return self._materialized.get(asn)
        i = self._idx(asn)
        if i is None:
            return None
        cls = self._class_of(i)
        if cls == _NO_ROUTE:
            return None
        level = self._level_of(i, cls)
        asns = self._asns
        if i == self._seed_index:
            parents: set[int] = set()
        else:
            parents = {
                asns[p] for p in self._parent_indices(i, cls, level)
            }
        return NodeRoute(_CLASSES[cls], level, parents, {self.seeds[0].key})

    def reachable_ases(self) -> frozenset[int]:
        bit = self._bit
        batch = self._batch
        cust, peer, prov = batch._cust, batch._peer, batch._prov
        asns = self._asns
        return frozenset(
            asns[i]
            for i in range(len(asns))
            if (cust[i] | peer[i] | prov[i]) >> bit & 1
        ) - self.seed_asns

    def ases_with_origin(self, key: str) -> frozenset[int]:
        if key != self.seeds[0].key:
            return frozenset()
        return self.reachable_ases() | self.seed_asns

    # -- lazy per-origin array reconstruction ------------------------------
    def _build_arrays(self) -> None:
        """Materialize the flat per-origin arrays the kernels consume.

        One pass over the arrival buckets transposes this bit's column
        out of the batch (every routed node appears in exactly one
        bucket), then one CSR scan per routed node rebuilds the parent
        pools; neighbor rows are ascending, so pools come out in the
        canonical ascending order the metric kernels expect.
        """
        batch = self._batch
        cg = batch.graph
        bit = self._bit
        n = cg.n
        rc = bytearray([_NO_ROUTE]) * n
        ln = array("q", bytes(8 * n))
        routed: list[int] = []
        for (cls, level), bucket in batch._buckets.items():
            for i, mask in bucket.items():
                if mask >> bit & 1:
                    rc[i] = cls
                    ln[i] = level
                    routed.append(i)
        routed.sort()

        head = array("i", b"\xff" * (4 * n))  # -1: no parents
        pool_parent = array("i")
        pool_next = array("i")
        pp_append = pool_parent.append
        pn_append = pool_next.append
        poff, pnbr = cg.provider_off, cg.provider_nbr
        coff, cnbr = cg.customer_off, cg.customer_nbr
        qoff, qnbr = cg.peer_off, cg.peer_nbr
        seed_i = self._seed_index
        for i in routed:
            if i == seed_i:
                continue
            cls = rc[i]
            want = ln[i] - 1
            if cls == 0:
                row = cnbr[coff[i] : coff[i + 1]]
                for p in row:
                    if rc[p] == 0 and ln[p] == want:
                        pp_append(p)
                        pn_append(head[i])
                        head[i] = len(pool_parent) - 1
            elif cls == 1:
                row = qnbr[qoff[i] : qoff[i + 1]]
                for p in row:
                    if rc[p] == 0 and ln[p] == want:
                        pp_append(p)
                        pn_append(head[i])
                        head[i] = len(pool_parent) - 1
            else:
                row = pnbr[poff[i] : poff[i + 1]]
                for p in row:
                    if rc[p] != _NO_ROUTE and ln[p] == want:
                        pp_append(p)
                        pn_append(head[i])
                        head[i] = len(pool_parent) - 1

        d = self.__dict__
        d["_route_class"] = rc
        d["_length"] = ln
        d["_parent_head"] = head
        d["_pool_parent"] = pool_parent
        d["_pool_next"] = pool_next
        d["_routed"] = routed

    def to_compiled(self) -> CompiledRoutingState:
        """A standalone ``CompiledRoutingState`` copy of this view.

        Arrays are shrunk to the smallest typecodes that fit, exactly as
        the per-origin kernel does, so the copy pickles compactly.
        """
        rc = self._route_class
        ln = self._length
        routed = self._routed
        n = len(self._asns)
        pool_size = len(self._pool_parent)
        node_code = _unsigned_typecode(max(n - 1, 0))
        pool_code = _signed_typecode(pool_size)
        max_len = max((ln[i] for i in routed), default=0)
        return CompiledRoutingState(
            self._asns,
            self.seeds,
            bytearray(rc),
            _shrink(ln, _unsigned_typecode(max_len)),
            _shrink(self._parent_head, pool_code),
            _shrink(self._pool_parent, node_code),
            _shrink(self._pool_next, pool_code),
            array(node_code, routed),
            None,
        )

    def __reduce__(self):
        # never pickle the whole batch through a view
        return (_restore_compiled, (self.to_compiled().__getstate__(),))


def propagate_batch(
    graph,
    origins: Sequence[int] | Iterable[int],
    excluded: Collection[int] = frozenset(),
) -> BatchRoutingState:
    """One bit-parallel sweep serving every origin in ``origins``.

    Each origin is an independent plain announcement (``Seed(asn=o)``)
    over ``graph`` minus the shared ``excluded`` set; the per-origin
    views of the returned :class:`BatchRoutingState` are equivalent to
    ``propagate_compiled(graph, Seed(asn=o), excluded=excluded)``.

    ``graph`` may be an ``ASGraph`` (compiled through its cache) or a
    :class:`~repro.bgpsim.compiled.CompiledGraph`.  Duplicate origins
    are allowed (each bit propagates independently).
    """
    cg: CompiledGraph = graph.compile()
    origins = tuple(origins)
    if not origins:
        raise ValueError("at least one origin required")
    excluded = frozenset(excluded)
    index = cg.index
    n = cg.n
    for origin in origins:
        if origin not in index:
            raise KeyError(f"seed AS{origin} not in graph")
        if origin in excluded:
            raise ValueError(f"seed AS{origin} is excluded")
    ex = bytearray(n)
    for asn in excluded:
        i = index.get(asn)
        if i is not None:
            ex[i] = 1

    # vectorized numpy port (REPRO_VECTOR): same masks, same buckets
    from . import vectorized as _vec

    if _vec.vector_enabled():
        state = _vec.propagate_batch_vector(cg, origins, ex)
        if state is not None:
            return state

    cust = [0] * n
    peer = [0] * n
    prov = [0] * n
    #: (route class, path length) -> {node index: newly-arrived bits}
    buckets: dict[tuple[int, int], dict[int, int]] = {}

    poff, pnbr = cg.provider_off, cg.provider_nbr
    coff, cnbr = cg.customer_off, cg.customer_nbr
    qoff, qnbr = cg.peer_off, cg.peer_nbr

    # ------------------------------------------------------------------
    # phase 1: customer routes — level-synchronous BFS up provider edges,
    # all origin bits at once
    # ------------------------------------------------------------------
    frontier: dict[int, int] = {}
    for b, origin in enumerate(origins):
        i = index[origin]
        frontier[i] = frontier.get(i, 0) | (1 << b)
    level = 0
    cust_levels: list[tuple[int, dict[int, int]]] = []
    while frontier:
        newly: dict[int, int] = {}
        for i, mask in frontier.items():
            new = mask & ~cust[i]
            if new:
                cust[i] |= new
                newly[i] = new
        if not newly:
            break
        buckets[(0, level)] = newly
        cust_levels.append((level, newly))
        nxt: dict[int, int] = {}
        nxt_get = nxt.get
        for i, new in newly.items():
            for p in pnbr[poff[i] : poff[i + 1]]:
                if ex[p]:
                    continue
                prev = nxt_get(p)
                nxt[p] = new if prev is None else prev | new
        frontier = {}
        for p, mask in nxt.items():
            rem = mask & ~cust[p]
            if rem:
                frontier[p] = rem
        level += 1

    # ------------------------------------------------------------------
    # phase 2: peer routes — one hop from customer-routed ASes, customer
    # levels ascending so the first arrival is the shortest
    # ------------------------------------------------------------------
    peer_levels: list[tuple[int, dict[int, int]]] = []
    for src_level, bucket in cust_levels:
        add: dict[int, int] = {}
        add_get = add.get
        for s, mask in bucket.items():
            for q in qnbr[qoff[s] : qoff[s + 1]]:
                if ex[q]:
                    continue
                bits = mask & ~cust[q] & ~peer[q]
                if bits:
                    prev = add_get(q)
                    add[q] = bits if prev is None else prev | bits
        newly = {}
        for q, mask in add.items():
            peer[q] |= mask
            newly[q] = mask
        if newly:
            buckets[(1, src_level + 1)] = newly
            peer_levels.append((src_level + 1, newly))

    # ------------------------------------------------------------------
    # phase 3: provider routes — bucket-queue Dijkstra down customer
    # edges, seeded by every customer/peer arrival
    # ------------------------------------------------------------------
    pending: dict[int, dict[int, int]] = {}

    def seed_down(bucket: dict[int, int], src_level: int) -> None:
        target = pending.setdefault(src_level + 1, {})
        target_get = target.get
        for s, mask in bucket.items():
            for c in cnbr[coff[s] : coff[s + 1]]:
                if ex[c]:
                    continue
                prev = target_get(c)
                target[c] = mask if prev is None else prev | mask

    for src_level, bucket in cust_levels:
        seed_down(bucket, src_level)
    for src_level, bucket in peer_levels:
        seed_down(bucket, src_level)
    while pending:
        depth = min(pending)
        bucket = pending.pop(depth)
        newly = {}
        for r, mask in bucket.items():
            new = mask & ~cust[r] & ~peer[r] & ~prov[r]
            if new:
                prov[r] |= new
                newly[r] = new
        if newly:
            buckets[(2, depth)] = newly
            target = pending.setdefault(depth + 1, {})
            target_get = target.get
            for r, new in newly.items():
                for c in cnbr[coff[r] : coff[r + 1]]:
                    if ex[c]:
                        continue
                    prev = target_get(c)
                    target[c] = new if prev is None else prev | new

    return BatchRoutingState(cg, origins, cust, peer, prov, buckets)
