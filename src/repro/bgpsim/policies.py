"""Announcement configurations and peer-locking policy helpers (§8).

The route-leak experiments run each cloud provider under several
configurations: announcing to all neighbors, announcing only to Tier-1s,
Tier-2s and its transit providers, and announcing to all while subsets of
its neighbors deploy peer locking.  This module builds the corresponding
:class:`~repro.bgpsim.routes.Seed` objects and peer-lock AS sets.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..topology.asgraph import ASGraph
from ..topology.tiers import TierAssignment
from .engine import propagate
from .routes import Seed


class LeakMode(enum.Enum):
    """How the misconfigured AS's announcement competes on path length.

    ``REANNOUNCE`` is the paper's route-leak semantics: the leaker exports a
    route it legitimately learned, so the competing path starts at the
    leaker's best path length to the origin.  ``HIJACK`` makes the leaker
    claim origination (length 0) — kept as an ablation of the design choice.
    ``SUBPREFIX`` models a more-specific hijack: longest-prefix-match means
    the leaked route wins wherever it arrives at all, regardless of the
    legitimate route (the classic worst case, against which only filtering
    — e.g. peer locking — helps).
    """

    REANNOUNCE = "reannounce"
    HIJACK = "hijack"
    SUBPREFIX = "subprefix"


def origin_seed(asn: int) -> Seed:
    """The default 'announce to all neighbors' configuration."""
    return Seed(asn=asn, key="origin")


def hierarchy_only_seed(
    graph: ASGraph, asn: int, tiers: TierAssignment
) -> Seed:
    """'Announce to Tier-1, Tier-2, and providers' configuration (§8.2)."""
    allowed = (tiers.hierarchy | graph.providers(asn)) & graph.neighbors(asn)
    return Seed(asn=asn, key="origin", export_to=frozenset(allowed))


def leak_seed(
    graph: ASGraph,
    origin: int,
    leaker: int,
    mode: LeakMode = LeakMode.REANNOUNCE,
    legit_path_length: Optional[int] = None,
) -> Seed:
    """Build the misconfigured-AS seed for a leak of ``origin``'s prefix.

    Under ``REANNOUNCE`` the initial path length is the leaker's tied-best
    path length to the origin (computed here unless supplied); a leaker with
    no route to the origin cannot re-announce anything and raises.
    """
    if mode is LeakMode.HIJACK:
        return Seed(asn=leaker, key="leak", initial_length=0)
    if legit_path_length is None:
        state = propagate(graph, Seed(asn=origin, key="origin"))
        legit_path_length = state.path_length(leaker)
    if legit_path_length is None:
        raise ValueError(f"AS{leaker} has no route to AS{origin}; nothing to leak")
    return Seed(asn=leaker, key="leak", initial_length=legit_path_length)


def peer_lock_set(
    graph: ASGraph,
    origin: int,
    tiers: TierAssignment,
    scope: str,
) -> frozenset[int]:
    """Neighbors of ``origin`` deploying peer locking for its prefixes.

    ``scope`` is one of ``"none"``, ``"tier1"``, ``"tier1+tier2"``,
    ``"all"`` — the three deployment scenarios of Fig. 8 plus the baseline.
    """
    neighbors = graph.neighbors(origin)
    if scope == "none":
        return frozenset()
    if scope == "tier1":
        return frozenset(neighbors & tiers.tier1)
    if scope == "tier1+tier2":
        return frozenset(neighbors & tiers.hierarchy)
    if scope == "all":
        return frozenset(neighbors)
    raise ValueError(f"unknown peer-lock scope: {scope!r}")
