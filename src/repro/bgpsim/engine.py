"""Gao-Rexford route propagation over an AS graph.

The engine simulates the announcement of a single prefix by one or more
*seeds* (the legitimate origin, and optionally a misconfigured AS leaking
the same prefix) and computes, for every AS, its tied-best route set under
standard policies (§6.1 of the paper):

* valley-free export: customer-learned routes (and a seed's own route) are
  exported to all neighbors; peer- and provider-learned routes are exported
  to customers only;
* preference: customer over peer over provider routes, then shortest
  AS-path, keeping **all** ties (no tie-breaking).

The computation runs in the standard three phases, each of which is correct
because preference classes are strictly ordered:

1. *customer phase* — multi-source level BFS up provider edges, giving every
   AS its best customer-learned route;
2. *peer phase* — one hop across peer edges from customer-phase routes;
3. *provider phase* — Dijkstra down customer edges from every routed AS.

Peer locking (§8.2, with the erratum semantics) is modeled by a set of ASes
that discard routes for the origin's prefix unless received directly from
the origin, which blocks leaked routes from ever traversing them.
"""

from __future__ import annotations

import heapq
import os
from collections import defaultdict
from collections.abc import Collection, Iterable
from typing import Optional

from ..topology.asgraph import ASGraph
from .routes import NodeRoute, RouteClass, RoutingState, Seed

#: engines selectable through ``propagate(engine=...)`` / ``REPRO_ENGINE``.
#: ``"incremental"`` changes how *leak sweeps* derive their combined
#: states (``repro.bgpsim.incremental``); for a plain propagation it is
#: the compiled kernel.  Orthogonally, ``REPRO_VECTOR`` selects whether
#: the compiled kernel runs its pure-Python loops or the numpy sweeps of
#: ``repro.bgpsim.vectorized`` — dispatch happens inside
#: ``propagate_compiled``, so the engine names here never change.
ENGINES = ("compiled", "reference", "incremental")


def resolve_engine(engine: Optional[str] = None) -> str:
    """Normalize an ``engine`` knob: explicit value, else the
    ``REPRO_ENGINE`` environment variable, else ``"compiled"``."""
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE", "compiled")
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


#: graph size at which ``stream="auto"`` turns streaming aggregation on.
#: Below it the eager sweeps comfortably fit in memory and keep their
#: states reusable; at the ``full`` (~70k-AS) profile an eager all-origin
#: sweep would hold hundreds of megabytes of views at once.
DEFAULT_STREAM_THRESHOLD = 50_000

_STREAM_TRUE = frozenset({"1", "on", "true", "yes"})
_STREAM_FALSE = frozenset({"0", "off", "false", "no"})


def resolve_stream(
    stream: bool | str | None = None,
    graph_size: Optional[int] = None,
) -> bool:
    """Normalize a ``stream`` knob to a concrete bool.

    Resolution order: an explicit bool wins; ``"on"``/``"off"`` (and the
    usual truthy/falsy spellings) force the choice; ``None`` falls back
    to ``REPRO_STREAM``; ``"auto"`` (the default) streams only when
    ``graph_size`` reaches ``REPRO_STREAM_THRESHOLD`` (default
    :data:`DEFAULT_STREAM_THRESHOLD`), so the paper-scale ``full``
    profile streams out of the box while the seed profiles keep the
    eager, state-reusing path.
    """
    if isinstance(stream, bool):
        return stream
    if stream is None:
        stream = os.environ.get("REPRO_STREAM", "auto")
    knob = str(stream).strip().lower()
    if knob in _STREAM_TRUE:
        return True
    if knob in _STREAM_FALSE:
        return False
    if knob != "auto":
        raise ValueError(
            f"unknown stream knob {stream!r}; expected auto/on/off"
        )
    if graph_size is None:
        return False
    threshold = int(
        os.environ.get("REPRO_STREAM_THRESHOLD", DEFAULT_STREAM_THRESHOLD)
    )
    return graph_size >= threshold


def propagate(
    graph: ASGraph,
    seeds: Seed | Iterable[Seed],
    excluded: Collection[int] = frozenset(),
    peer_locked: Collection[int] = frozenset(),
    locked_origin: Optional[int] = None,
    engine: Optional[str] = None,
) -> RoutingState:
    """Propagate a prefix announced by ``seeds`` and return the routing state.

    ``excluded`` ASes neither receive nor forward routes (used to compute
    the paper's subgraph reachabilities).  ``peer_locked`` ASes accept the
    prefix only directly from ``locked_origin`` (defaulting to the first
    seed's AS), per the NTT peer-locking mechanism.

    ``engine`` selects the implementation: ``"compiled"`` (the default)
    runs the integer-indexed array kernel of
    :mod:`repro.bgpsim.compiled` over the graph's cached
    :class:`~repro.bgpsim.compiled.CompiledGraph`; ``"reference"`` runs
    the historical dict-of-objects engine.  Both return equivalent
    states (proven by ``tests/test_compiled_engine.py``); the
    ``REPRO_ENGINE`` environment variable overrides the default.
    ``"incremental"`` only matters to the leak-sweep consumers in
    :mod:`repro.core.leaks` (which derive combined leak states from a
    shared baseline); for a single propagation it is the compiled kernel.
    """
    if resolve_engine(engine) in ("compiled", "incremental"):
        from .compiled import propagate_compiled

        return propagate_compiled(
            graph,
            seeds,
            excluded=excluded,
            peer_locked=peer_locked,
            locked_origin=locked_origin,
        )
    return propagate_reference(
        graph,
        seeds,
        excluded=excluded,
        peer_locked=peer_locked,
        locked_origin=locked_origin,
    )


def propagate_reference(
    graph: ASGraph,
    seeds: Seed | Iterable[Seed],
    excluded: Collection[int] = frozenset(),
    peer_locked: Collection[int] = frozenset(),
    locked_origin: Optional[int] = None,
) -> RoutingState:
    """The dict-of-objects propagation engine (differential reference)."""
    if isinstance(seeds, Seed):
        seeds = (seeds,)
    seeds = tuple(seeds)
    if not seeds:
        raise ValueError("at least one seed required")
    seen_asns = set()
    for seed in seeds:
        if seed.asn not in graph:
            raise KeyError(f"seed AS{seed.asn} not in graph")
        if seed.asn in excluded:
            raise ValueError(f"seed AS{seed.asn} is excluded")
        if seed.asn in seen_asns:
            raise ValueError(f"duplicate seed AS{seed.asn}")
        seen_asns.add(seed.asn)
    excluded = frozenset(excluded)
    peer_locked = frozenset(peer_locked) - seen_asns
    if locked_origin is None:
        locked_origin = seeds[0].asn

    state = RoutingState(seeds)
    routes = state.routes

    def blocked(sender: int, receiver: int) -> bool:
        if receiver in excluded:
            return True
        return receiver in peer_locked and sender != locked_origin

    # ------------------------------------------------------------------
    # phase 1: customer routes, level-synchronous BFS up provider edges
    # ------------------------------------------------------------------
    for seed in seeds:
        routes[seed.asn] = NodeRoute(
            RouteClass.CUSTOMER, seed.initial_length, set(), {seed.key}
        )

    pending: dict[int, list[tuple[int, int]]] = defaultdict(list)
    for seed in seeds:
        for provider in graph.providers(seed.asn):
            if blocked(seed.asn, provider) or not seed.exports_to(provider):
                continue
            pending[seed.initial_length + 1].append((provider, seed.asn))

    level = min(pending) if pending else 0
    while pending:
        if level not in pending:
            # levels are consumed in increasing order; gaps only occur at
            # seed initial-length boundaries, so the re-scan runs at most
            # once per distinct seed level (not once per iteration)
            level = min(pending)
        events = pending.pop(level)
        newly_settled: list[int] = []
        for receiver, sender in events:
            existing = routes.get(receiver)
            if existing is not None:
                if existing.parents and existing.ties_with(
                    RouteClass.CUSTOMER, level
                ):
                    existing.parents.add(sender)
                continue
            routes[receiver] = NodeRoute(RouteClass.CUSTOMER, level, {sender})
            newly_settled.append(receiver)
        for receiver in newly_settled:
            for provider in graph.providers(receiver):
                if blocked(receiver, provider):
                    continue
                pending[level + 1].append((provider, receiver))
        level += 1

    customer_routed = list(routes)

    # ------------------------------------------------------------------
    # phase 2: peer routes, one hop from every customer-routed AS
    # ------------------------------------------------------------------
    candidates: dict[int, tuple[int, set[int]]] = {}
    seed_by_asn = {s.asn: s for s in seeds}
    for sender in customer_routed:
        length = routes[sender].length + 1
        seed = seed_by_asn.get(sender)
        for peer in graph.peers(sender):
            if peer in routes or blocked(sender, peer):
                continue
            if seed is not None and not seed.exports_to(peer):
                continue
            best = candidates.get(peer)
            if best is None or length < best[0]:
                candidates[peer] = (length, {sender})
            elif length == best[0]:
                best[1].add(sender)
    for receiver, (length, parents) in candidates.items():
        routes[receiver] = NodeRoute(RouteClass.PEER, length, parents)

    # ------------------------------------------------------------------
    # phase 3: provider routes, Dijkstra down customer edges
    # ------------------------------------------------------------------
    heap: list[tuple[int, int, int]] = []
    for sender in routes:
        length = routes[sender].length + 1
        seed = seed_by_asn.get(sender)
        for customer in graph.customers(sender):
            if customer in routes or blocked(sender, customer):
                continue
            if seed is not None and not seed.exports_to(customer):
                continue
            heapq.heappush(heap, (length, customer, sender))
    while heap:
        length, receiver, sender = heapq.heappop(heap)
        existing = routes.get(receiver)
        if existing is not None:
            if existing.ties_with(RouteClass.PROVIDER, length):
                existing.parents.add(sender)
            continue
        routes[receiver] = NodeRoute(RouteClass.PROVIDER, length, {sender})
        for customer in graph.customers(receiver):
            if customer in routes or blocked(receiver, customer):
                continue
            heapq.heappush(heap, (length + 1, customer, receiver))

    _fill_origins(state)
    return state


def _fill_origins(state: RoutingState) -> None:
    """Compute, for each AS, which seeds its tied-best routes lead to.

    Parents always have strictly smaller path length, so the best-route DAG
    is acyclic and origins can be filled by memoized traversal (iterative,
    to stay safe on deep provider chains).
    """
    routes = state.routes
    seed_asns = state.seed_asns
    for asn in routes:
        if routes[asn].origins:
            continue
        stack = [asn]
        while stack:
            node = stack[-1]
            route = routes[node]
            if route.origins:
                stack.pop()
                continue
            missing = [p for p in route.parents if not routes[p].origins]
            if missing:
                stack.extend(missing)
                continue
            for parent in route.parents:
                route.origins |= routes[parent].origins
            if node in seed_asns and not route.origins:
                route.origins = {s.key for s in state.seeds if s.asn == node}
            stack.pop()
