"""Gao-Rexford BGP route-propagation simulator."""

from .engine import propagate
from .policies import (
    LeakMode,
    hierarchy_only_seed,
    leak_seed,
    origin_seed,
    peer_lock_set,
)
from .routes import NodeRoute, RouteClass, RoutingState, Seed

__all__ = [
    "LeakMode",
    "NodeRoute",
    "RouteClass",
    "RoutingState",
    "Seed",
    "hierarchy_only_seed",
    "leak_seed",
    "origin_seed",
    "peer_lock_set",
    "propagate",
]
