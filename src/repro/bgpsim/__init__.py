"""Gao-Rexford BGP route-propagation simulator."""

from .cache import CacheStats, RoutingStateCache
from .compiled import CompiledGraph, CompiledRoutingState, propagate_compiled
from .engine import ENGINES, propagate, propagate_reference, resolve_engine
from .incremental import DeltaRoutingState, propagate_delta
from .parallel import (
    graph_map,
    propagate_many,
    propagate_origins,
    resolve_workers,
)
from .policies import (
    LeakMode,
    hierarchy_only_seed,
    leak_seed,
    origin_seed,
    peer_lock_set,
)
from .routes import NodeRoute, RouteClass, RoutingState, Seed

__all__ = [
    "CacheStats",
    "CompiledGraph",
    "CompiledRoutingState",
    "DeltaRoutingState",
    "ENGINES",
    "LeakMode",
    "NodeRoute",
    "RouteClass",
    "RoutingState",
    "RoutingStateCache",
    "Seed",
    "graph_map",
    "hierarchy_only_seed",
    "leak_seed",
    "origin_seed",
    "peer_lock_set",
    "propagate",
    "propagate_compiled",
    "propagate_delta",
    "propagate_many",
    "propagate_origins",
    "propagate_reference",
    "resolve_engine",
    "resolve_workers",
]
