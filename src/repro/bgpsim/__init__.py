"""Gao-Rexford BGP route-propagation simulator."""

from .cache import CacheStats, RoutingStateCache
from .engine import propagate
from .parallel import (
    graph_map,
    propagate_many,
    propagate_origins,
    resolve_workers,
)
from .policies import (
    LeakMode,
    hierarchy_only_seed,
    leak_seed,
    origin_seed,
    peer_lock_set,
)
from .routes import NodeRoute, RouteClass, RoutingState, Seed

__all__ = [
    "CacheStats",
    "LeakMode",
    "NodeRoute",
    "RouteClass",
    "RoutingState",
    "RoutingStateCache",
    "Seed",
    "graph_map",
    "hierarchy_only_seed",
    "leak_seed",
    "origin_seed",
    "peer_lock_set",
    "propagate",
    "propagate_many",
    "propagate_origins",
    "resolve_workers",
]
