"""Gao-Rexford BGP route-propagation simulator."""

from .cache import CacheStats, RoutingStateCache
from .compiled import CompiledGraph, CompiledRoutingState, propagate_compiled
from .engine import ENGINES, propagate, propagate_reference, resolve_engine
from .incremental import DeltaRoutingState, propagate_delta
from .multiorigin import (
    DEFAULT_BATCH,
    BatchOriginView,
    BatchRoutingState,
    propagate_batch,
    resolve_batch,
)
from .metrics_kernel import (
    MetricDAG,
    cross_fractions_kernel,
    dag_of,
    is_array_state,
    length_histogram_kernel,
    path_counts_kernel,
    reliance_kernel,
    reliance_mass_kernel,
    routed_count_kernel,
)
from .parallel import (
    graph_map,
    propagate_many,
    propagate_origins,
    resolve_workers,
)
from .policies import (
    LeakMode,
    hierarchy_only_seed,
    leak_seed,
    origin_seed,
    peer_lock_set,
)
from .routes import NodeRoute, RouteClass, RoutingState, Seed

__all__ = [
    "BatchOriginView",
    "BatchRoutingState",
    "CacheStats",
    "CompiledGraph",
    "CompiledRoutingState",
    "DEFAULT_BATCH",
    "DeltaRoutingState",
    "ENGINES",
    "LeakMode",
    "MetricDAG",
    "NodeRoute",
    "RouteClass",
    "RoutingState",
    "RoutingStateCache",
    "Seed",
    "cross_fractions_kernel",
    "dag_of",
    "graph_map",
    "hierarchy_only_seed",
    "is_array_state",
    "leak_seed",
    "length_histogram_kernel",
    "origin_seed",
    "path_counts_kernel",
    "peer_lock_set",
    "propagate",
    "propagate_batch",
    "resolve_batch",
    "reliance_kernel",
    "reliance_mass_kernel",
    "routed_count_kernel",
    "propagate_compiled",
    "propagate_delta",
    "propagate_many",
    "propagate_origins",
    "propagate_reference",
    "resolve_engine",
    "resolve_workers",
]
