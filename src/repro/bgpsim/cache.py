"""Shared per-origin routing-state cache.

Several pipelines (traceroute campaigns, route collectors, path containment
checks, hegemony) need the propagation state for many origins over the same
graph; this cache computes each origin once.  A ``RoutingState`` for an
Internet-scale graph is large (one ``NodeRoute`` per routed AS), so the
cache is a bounded LRU: at most ``maxsize`` states are retained, the least
recently used origin is evicted first, and hit/miss/eviction counters are
exposed through :meth:`RoutingStateCache.stats` so sweeps can verify their
access pattern actually fits the bound.

Cached states are implementation-agnostic: a state computed while the
vectorized kernels were enabled (``REPRO_VECTOR``) is bit-for-bit
equivalent to one computed by the pure loops, so toggling the knob
mid-session never invalidates the cache.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Collection, Iterable, Iterator
from dataclasses import dataclass
from typing import Optional

from ..topology.asgraph import ASGraph
from .engine import propagate, resolve_engine, resolve_stream
from .routes import RoutingState, Seed


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time snapshot of a cache's counters.

    ``prefetch_skipped`` counts origins a bounded cache declined to
    prefetch (the request exceeded ``maxsize``; they recompute lazily on
    first use), ``prefetch_chunks`` the batched sweeps prefetches issued.
    ``disk_hits``/``disk_misses`` count consults of the attached shard
    store (always 0 without one): a disk hit served a precomputed
    mmap-backed state instead of propagating.
    """

    size: int
    maxsize: Optional[int]
    hits: int
    misses: int
    evictions: int
    prefetch_skipped: int = 0
    prefetch_chunks: int = 0
    #: times invalidate() dropped the cached states (topology mutations)
    baseline_invalidations: int = 0
    disk_hits: int = 0
    disk_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def tiers(self) -> dict[str, int]:
        """Lookups answered per tier: warm LRU, mmap disk, propagation."""
        return {
            "lru": self.hits,
            "disk": self.disk_hits,
            "computed": self.misses,
        }


class DigestGate:
    """Memoized "does this graph still match that corpus digest?" check.

    Every tier built on precomputed shards — the cache's disk tier, the
    query service's metric tier — must refuse to serve once the live
    topology diverges from the corpus the shards were computed for.
    Hashing the graph per lookup would dominate the fast path, so the
    gate memoizes the verdict on the graph's *compiled-snapshot
    identity*: ``ASGraph.compile()`` returns a cached object until a
    mutation invalidates it, making the steady-state consult two ``is``
    checks.  Each topology change forces exactly one re-hash — closing
    the gate on mismatch, reopening it when an inverse event brings the
    digest back.
    """

    __slots__ = ("graph", "digest", "_ok_cg", "_bad_cg")

    def __init__(self, graph: ASGraph, digest: str, verified: bool = False):
        self.graph = graph
        self.digest = digest
        #: compiled snapshot the digest matched / mismatched
        self._ok_cg = graph.compile() if verified else None
        self._bad_cg = None

    def ready(self) -> bool:
        """Whether the current topology still matches the digest."""
        cg = self.graph.compile()
        if cg is self._ok_cg:
            return True
        if cg is self._bad_cg:
            return False
        from .shards import graph_digest

        if graph_digest(cg) == self.digest:
            self._ok_cg, self._bad_cg = cg, None
            return True
        self._bad_cg, self._ok_cg = cg, None
        return False


class RoutingStateCache:
    """Memoized ``propagate(graph, Seed(origin))`` per origin, LRU-bounded.

    ``maxsize=None`` (the default) keeps every state, preserving the
    historical unbounded behaviour for small scenarios; any positive bound
    caps the number of retained states, evicting the least recently used
    origin.  Evicted origins are transparently recomputed on the next
    request.

    ``engine`` selects the propagation engine (see
    :func:`~repro.bgpsim.engine.propagate`); with the default compiled
    engine the cache holds compact
    :class:`~repro.bgpsim.compiled.CompiledRoutingState` objects — array
    bundles that only materialize per-AS route objects when a consumer
    touches ``state.routes`` — so a bounded cache holds far more origins
    in the same memory.

    ``shards`` (or a later :meth:`attach_shards`) adds a **disk tier**:
    a :class:`~repro.bgpsim.shards.ShardStore` of precomputed
    mmap-backed states consulted between the LRU and propagation, so an
    LRU miss over a precomputed corpus costs an offset lookup + six
    ``memoryview`` casts instead of a graph sweep.  The store's graph
    digest is verified on attach and re-verified whenever the graph's
    compiled snapshot changes (timeline events), so a mutated topology
    silently bypasses the disk tier instead of serving stale states —
    and re-enables it when an inverse event restores the topology.
    """

    def __init__(
        self,
        graph: ASGraph,
        maxsize: Optional[int] = None,
        engine: Optional[str] = None,
        batch: Optional[int] = None,
        shards=None,
        stream: bool | str | None = None,
    ) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be None or >= 1")
        self.graph = graph
        self.maxsize = maxsize
        self.engine = engine
        #: batch width for prefetch sweeps (None: REPRO_BATCH / default)
        self.batch = batch
        #: default ``stream`` mode for :meth:`states_for_many`
        #: (None: per-call knob, else ``REPRO_STREAM`` / auto)
        self.stream = stream
        self._states: OrderedDict[int, RoutingState] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._prefetch_skipped = 0
        self._prefetch_chunks = 0
        self._baseline_invalidations = 0
        self._disk_hits = 0
        self._disk_misses = 0
        self.shards = None
        self._gate: Optional[DigestGate] = None
        if shards is not None:
            self.attach_shards(shards)

    # -- disk tier ------------------------------------------------------
    def attach_shards(self, store) -> None:
        """Attach a precomputed shard store as the disk tier.

        The store's graph digest must match this cache's graph
        (:class:`~repro.bgpsim.shards.ShardError` otherwise).
        """
        store.verify(self.graph)
        self.shards = store
        self._gate = DigestGate(self.graph, store.digest, verified=True)

    def detach_shards(self):
        """Drop the disk tier; returns the store (not closed)."""
        store, self.shards = self.shards, None
        self._gate = None
        return store

    def _disk_ready(self) -> bool:
        """Whether the disk tier may serve the *current* topology.

        Delegates to the :class:`DigestGate`, so steady-state consults
        cost two ``is`` checks and each topology change one re-hash.
        """
        return self.shards is not None and self._gate.ready()

    def _on_disk(self, origin: int) -> bool:
        """Uncounted peek: could the disk tier serve ``origin``?"""
        return self._disk_ready() and origin in self.shards

    def _from_disk(
        self, origin: int, insert: bool = True
    ) -> Optional[RoutingState]:
        """Consult the disk tier for ``origin`` (counted in stats)."""
        if not self._disk_ready():
            return None
        try:
            state = self.shards.state_for(origin)
        except KeyError:
            self._disk_misses += 1
            return None
        self._disk_hits += 1
        if insert:
            self._insert(origin, state)
        return state

    def _batch_width(self, batch: Optional[int], cap: bool = True) -> int:
        """Effective batch width for a sweep: the per-call override, else
        the cache's knob, else the environment default — capped at the
        cache bound (a wider batch would only compute states that evict
        each other before first use; streaming sweeps that bypass the
        LRU pass ``cap=False``) and forced to 1 on the reference engine
        (which has no batch kernel)."""
        from .multiorigin import resolve_batch

        width = resolve_batch(self.batch if batch is None else batch)
        try:
            if resolve_engine(self.engine) == "reference":
                return 1
        except ValueError:
            return 1  # unknown engine string: the sweep itself will raise
        if cap and self.maxsize is not None:
            width = min(width, self.maxsize)
        return max(width, 1)

    def state_for(self, origin: int) -> RoutingState:
        state = self._states.get(origin)
        if state is not None:
            self._hits += 1
            self._states.move_to_end(origin)
            return state
        state = self._from_disk(origin)
        if state is not None:
            return state
        self._misses += 1
        state = propagate(self.graph, Seed(asn=origin), engine=self.engine)
        self._insert(origin, state)
        return state

    def baseline_for(
        self,
        seed: Seed,
        peer_locked: frozenset[int] = frozenset(),
        locked_origin: Optional[int] = None,
    ) -> RoutingState:
        """Memoized single-seed propagation for a leak-sweep baseline.

        Keyed by the full ``(seed, peer_locked, locked_origin)``
        configuration, sharing the same LRU (tuple keys cannot collide
        with :meth:`state_for`'s origin ints).  A plain origin seed with
        no locks is delegated to :meth:`state_for`, so baselines warmed
        through :meth:`prefetch` are reused directly.
        """
        peer_locked = frozenset(peer_locked)
        if (
            not peer_locked
            and seed == Seed(asn=seed.asn)
            and locked_origin in (None, seed.asn)
        ):
            return self.state_for(seed.asn)
        key = (seed, peer_locked, locked_origin)
        state = self._states.get(key)
        if state is not None:
            self._hits += 1
            self._states.move_to_end(key)
            return state
        self._misses += 1
        state = propagate(
            self.graph,
            seed,
            peer_locked=peer_locked,
            locked_origin=locked_origin,
            engine=self.engine,
        )
        self._insert(key, state)
        return state

    def _insert(self, origin: int, state: RoutingState) -> None:
        self._states[origin] = state
        self._states.move_to_end(origin)
        if self.maxsize is not None:
            while len(self._states) > self.maxsize:
                self._states.popitem(last=False)
                self._evictions += 1

    def prefetch(
        self,
        origins: Iterable[int],
        workers: int | str | None = None,
        batch: Optional[int] = None,
    ) -> int:
        """Warm the cache for ``origins``; returns how many were computed.

        Missing origins are served from the disk tier when a shard store
        is attached, and otherwise propagated — batched through the
        bit-parallel multi-origin kernel, in parallel when ``workers``
        asks for it — and inserted in input order.  With a bounded cache
        the request is chunked to the cache bound: the *first*
        ``maxsize`` missing origins are computed (consumers drain
        prefetched sweeps in input order, so these are the ones read
        before any eviction) and the rest are skipped rather than
        computed-then-evicted unread; the skip/chunk decisions are
        visible in :meth:`stats`.
        """
        from .parallel import propagate_origins

        missing = []
        seen = set()
        for origin in origins:
            if origin in seen:
                continue
            seen.add(origin)
            if origin in self._states:
                self._states.move_to_end(origin)
                self._hits += 1
            elif self._from_disk(origin) is None:
                missing.append(origin)
        if self.maxsize is not None and len(missing) > self.maxsize:
            self._prefetch_skipped += len(missing) - self.maxsize
            missing = missing[: self.maxsize]
        if not missing:
            return 0
        width = self._batch_width(batch)
        self._prefetch_chunks += -(-len(missing) // width)
        for origin, state in propagate_origins(
            self.graph,
            missing,
            workers=workers,
            engine=self.engine,
            batch=width,
        ):
            self._misses += 1
            self._insert(origin, state)
        return len(missing)

    def states_for_many(
        self,
        origins: Iterable[int],
        workers: int | str | None = None,
        batch: Optional[int] = None,
        stream: bool | str | None = None,
        excluded: Collection[int] = frozenset(),
    ) -> Iterator[tuple[int, RoutingState]]:
        """``(origin, state)`` pairs in input order, batching the misses.

        Unlike :meth:`prefetch` + :meth:`state_for`, this streams: runs
        of missing origins are computed as bit-parallel batches and
        yielded as they complete, so an over-``maxsize`` sweep still
        pays one batched sweep per chunk — never a fallback to
        per-origin recomputes — while the cache holds at most
        ``maxsize`` states at any moment.  Cache and disk hits are
        served from their tiers either way.

        ``stream`` resolves through
        :func:`~repro.bgpsim.engine.resolve_stream` (per-call value,
        else the cache's knob, else ``REPRO_STREAM``; ``auto`` streams
        at paper scale).  When it resolves true, computed states bypass
        the LRU: views are yielded *one at a time* and each is dropped
        from its batch the moment the caller releases it, so a
        full-origin-set sweep — or ``repro precompute`` — runs in
        **O(batch) peak memory** regardless of the origin count
        (tracemalloc-asserted in ``tests/test_shards.py`` and
        ``tests/test_streaming_sweeps.py``).  The batch width is then
        also not capped at ``maxsize``.  The disk tier still serves
        precomputed origins per window, so a sharded corpus accelerates
        streaming sweeps too.

        ``excluded`` propagates every *computed* state over the subgraph
        without those ASes (the hierarchy-free sweeps of §6–7).  A
        non-empty set bypasses the LRU **and** disk tiers entirely —
        both hold plain full-graph states keyed by origin, which must
        never be conflated with subgraph states.
        """
        origin_list = list(origins)
        excluded = frozenset(excluded)
        knob = stream if stream is not None else self.stream
        streaming = resolve_stream(knob, len(self.graph))
        width = self._batch_width(batch, cap=not streaming)
        if streaming:
            yield from self._stream_states(
                origin_list, width, workers, excluded
            )
            return
        if excluded:
            yield from self._sweep_uncached(
                origin_list, width, workers, excluded
            )
            return
        from .parallel import propagate_origins

        i, n = 0, len(origin_list)
        while i < n:
            origin = origin_list[i]
            state = self._states.get(origin)
            if state is not None:
                self._hits += 1
                self._states.move_to_end(origin)
                yield origin, state
                i += 1
                continue
            state = self._from_disk(origin)
            if state is not None:
                yield origin, state
                i += 1
                continue
            # gather the next window's distinct missing origins, one batch
            chunk: list[int] = []
            chunk_set: set[int] = set()
            j = i
            while j < n and len(chunk) < width:
                candidate = origin_list[j]
                if (
                    candidate not in self._states
                    and candidate not in chunk_set
                    and not self._on_disk(candidate)
                ):
                    chunk.append(candidate)
                    chunk_set.add(candidate)
                j += 1
            computed: dict[int, RoutingState] = {}
            self._prefetch_chunks += 1
            for o, s in propagate_origins(
                self.graph,
                chunk,
                workers=workers,
                engine=self.engine,
                batch=width,
            ):
                self._misses += 1
                self._insert(o, s)
                computed[o] = s
            while i < j:
                origin = origin_list[i]
                state = computed.get(origin)
                if state is None:
                    cached = self._states.get(origin)
                    if cached is not None:
                        self._hits += 1
                        self._states.move_to_end(origin)
                        state = cached
                    else:
                        state = self._from_disk(origin)
                    if state is None:
                        # evicted by the chunk's own inserts (bounded
                        # cache); recompute through the normal path
                        state = self.state_for(origin)
                yield origin, state
                state = None
                i += 1
            computed.clear()

    def _sweep_uncached(
        self,
        origin_list: list[int],
        width: int,
        workers: int | str | None,
        excluded: frozenset[int],
    ) -> Iterator[tuple[int, RoutingState]]:
        """Eager subgraph sweep: no tier is consulted or populated.

        Duplicate origins within a batch window share one propagation;
        the window's states are retained together (the historical eager
        footprint), then released before the next window.
        """
        from .parallel import propagate_origins

        i, n = 0, len(origin_list)
        while i < n:
            chunk: list[int] = []
            chunk_set: set[int] = set()
            j = i
            while j < n and len(chunk) < width:
                candidate = origin_list[j]
                if candidate not in chunk_set:
                    chunk.append(candidate)
                    chunk_set.add(candidate)
                j += 1
            computed: dict[int, RoutingState] = {}
            self._prefetch_chunks += 1
            for o, s in propagate_origins(
                self.graph,
                chunk,
                workers=workers,
                engine=self.engine,
                batch=width,
                excluded=excluded,
            ):
                self._misses += 1
                computed[o] = s
            while i < j:
                yield origin_list[i], computed[origin_list[i]]
                i += 1
            computed.clear()

    def _stream_states(
        self,
        origin_list: list[int],
        width: int,
        workers: int | str | None,
        excluded: frozenset[int],
    ) -> Iterator[tuple[int, RoutingState]]:
        """O(batch)-memory sweep: yield each view as it is computed.

        The interleaving is the point: the window's views are *pulled*
        from the propagation iterator one at a time as the window is
        replayed, so at any moment only the live batch masks plus the
        one or two views in flight are resident — never the whole
        window's materialized arrays (the eager path's footprint).
        Only origins duplicated within a window are parked until their
        last occurrence.
        """
        from .parallel import propagate_origins

        use_tiers = not excluded
        i, n = 0, len(origin_list)
        while i < n:
            origin = origin_list[i]
            if use_tiers:
                state = self._states.get(origin)
                if state is not None:
                    self._hits += 1
                    self._states.move_to_end(origin)
                    yield origin, state
                    i += 1
                    continue
                state = self._from_disk(origin, insert=False)
                if state is not None:
                    yield origin, state
                    i += 1
                    continue
            # gather the next window's distinct missing origins, one batch
            chunk: list[int] = []
            chunk_set: set[int] = set()
            last_use: dict[int, int] = {}
            j = i
            while j < n and len(chunk) < width:
                candidate = origin_list[j]
                if candidate in chunk_set:
                    last_use[candidate] = j
                elif not use_tiers or (
                    candidate not in self._states
                    and not self._on_disk(candidate)
                ):
                    chunk.append(candidate)
                    chunk_set.add(candidate)
                    last_use[candidate] = j
                j += 1
            self._prefetch_chunks += 1
            pending = propagate_origins(
                self.graph,
                chunk,
                workers=workers,
                engine=self.engine,
                batch=width,
                excluded=excluded,
            )
            held: dict[int, RoutingState] = {}
            while i < j:
                origin = origin_list[i]
                if origin in chunk_set:
                    state = held.pop(origin, None)
                    if state is None:
                        # the chunk preserves first-occurrence order, so
                        # this pulls exactly the next view
                        for o, s in pending:
                            self._misses += 1
                            if o == origin:
                                state = s
                                break
                            held[o] = s  # defensive: out-of-order view
                    if last_use[origin] > i:
                        held[origin] = state  # duplicated later in window
                else:
                    # a warm tier covered this origin at gather time
                    state = self._states.get(origin)
                    if state is not None:
                        self._hits += 1
                        self._states.move_to_end(origin)
                    else:
                        state = self._from_disk(origin, insert=False)
                    if state is None:
                        state = self.state_for(origin)
                yield origin, state
                state = None
                i += 1
            held.clear()
            for _o, _s in pending:  # defensive: keep miss accounting exact
                self._misses += 1

    def stats(self) -> CacheStats:
        return CacheStats(
            size=len(self._states),
            maxsize=self.maxsize,
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            prefetch_skipped=self._prefetch_skipped,
            prefetch_chunks=self._prefetch_chunks,
            baseline_invalidations=self._baseline_invalidations,
            disk_hits=self._disk_hits,
            disk_misses=self._disk_misses,
        )

    def __contains__(self, origin: int) -> bool:
        return origin in self._states

    def __len__(self) -> int:
        return len(self._states)

    def invalidate(self) -> int:
        """Drop every cached state because the topology changed.

        Unlike :meth:`clear` the hit/miss counters survive and the drop
        is counted in ``stats().baseline_invalidations``, so timeline
        consumers (which must invalidate on every topology-mutating
        event) leave an audit trail that the silent-staleness hazard is
        actually being handled.  Returns the number of states dropped.
        """
        dropped = len(self._states)
        self._states.clear()
        self._baseline_invalidations += 1
        return dropped

    def install(self, origin: int, state: RoutingState) -> None:
        """Insert a externally-computed state for ``origin``.

        Timelines use this to seed post-event delta states as the next
        events' baselines after :meth:`invalidate`; the normal LRU
        bookkeeping (bound, evictions) applies.
        """
        self._insert(origin, state)

    def clear(self) -> None:
        """Drop all cached states (counters are reset too)."""
        self._states.clear()
        self._hits = self._misses = self._evictions = 0
        self._prefetch_skipped = self._prefetch_chunks = 0
        self._baseline_invalidations = 0
        self._disk_hits = self._disk_misses = 0
