"""Shared per-origin routing-state cache.

Several pipelines (traceroute campaigns, route collectors, path containment
checks) need the propagation state for many origins over the same graph;
this cache computes each origin once.
"""

from __future__ import annotations

from ..topology.asgraph import ASGraph
from .engine import propagate
from .routes import RoutingState, Seed


class RoutingStateCache:
    """Memoized ``propagate(graph, Seed(origin))`` per origin."""

    def __init__(self, graph: ASGraph) -> None:
        self.graph = graph
        self._states: dict[int, RoutingState] = {}

    def state_for(self, origin: int) -> RoutingState:
        state = self._states.get(origin)
        if state is None:
            state = propagate(self.graph, Seed(asn=origin))
            self._states[origin] = state
        return state

    def __len__(self) -> int:
        return len(self._states)

    def clear(self) -> None:
        self._states.clear()
