"""Parallel per-origin route propagation.

Every headline analysis in the paper — hierarchy-free reachability (§6),
reliance (§7), route-leak resilience (§8), and the traceroute campaigns
(§4) — sweeps :func:`~repro.bgpsim.engine.propagate` over many origins on
the *same* immutable :class:`~repro.topology.asgraph.ASGraph`.  The
per-origin runs are independent, which makes the sweep embarrassingly
parallel: this module fans the calls out across a
:class:`concurrent.futures.ProcessPoolExecutor`.

Design rules (all load-bearing for determinism and throughput):

* **The graph ships once per worker, not once per task.**  Workers receive
  the graph through a pool *initializer* and stash it in a module global;
  each task then pickles only its item (an origin ASN, a seed, a leaker).
  Under the default ``fork`` start method the initializer argument is
  inherited copy-on-write, so even the one-time transfer is nearly free.
* **The compiled form ships, not the adjacency dicts.**  When the sweep
  runs the compiled engine (the default), the pool ships the graph's
  compact :class:`~repro.bgpsim.compiled.CompiledGraph` — CSR arrays,
  several times smaller pickled than the dict-of-sets ``ASGraph`` (the
  ablation benchmark records the exact factor).  ``CompiledGraph``
  implements the read-only ``ASGraph`` query API, so task functions are
  oblivious to which form they received.
* **Results come back as an ordered iterator.**  ``graph_map`` yields
  results in input order regardless of worker scheduling, so a parallel
  sweep is a drop-in replacement for the serial loop and callers stay
  bit-for-bit deterministic (the differential harness in
  ``tests/test_parallel_engine.py`` asserts exactly this).
* **``workers=None``/``0``/``1`` runs serially in-process** through the
  very same task function — no pool, no pickling, no behavioural fork
  between the two paths.
* **Worker exceptions surface in the parent.**  A task that raises inside
  a worker re-raises the original exception type at the point the caller
  consumes that result, and the pool shuts down cleanly.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Collection, Iterable, Iterator
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Optional

from ..topology.asgraph import ASGraph
from . import shm
from .engine import propagate, resolve_engine
from .routes import RoutingState, Seed

__all__ = [
    "graph_map",
    "propagate_many",
    "propagate_origins",
    "resolve_workers",
]


def resolve_workers(workers: int | str | None) -> int:
    """Normalize a ``workers`` knob to a concrete process count.

    ``None``, ``0`` and ``1`` mean serial; ``"auto"`` and negative values
    mean one worker per available CPU.
    """
    if workers is None:
        return 1
    if workers == "auto":
        return max(os.cpu_count() or 1, 1)
    count = int(workers)
    if count < 0:
        return max(os.cpu_count() or 1, 1)
    return max(count, 1)


# ---------------------------------------------------------------------------
# worker-side state, installed once per process by the pool initializer
# ---------------------------------------------------------------------------

_WORKER_GRAPH: Optional[ASGraph] = None
_WORKER_FUNC: Optional[Callable[..., Any]] = None
_WORKER_SHARED: dict[str, Any] = {}


def _init_worker(
    graph: ASGraph, func: Callable[..., Any], shared: dict[str, Any]
) -> None:
    global _WORKER_GRAPH, _WORKER_FUNC, _WORKER_SHARED
    # shared-memory payloads arrive as tiny refs; attach and rebuild the
    # real objects once per worker (plain payloads pass through)
    _WORKER_GRAPH = shm.restore_payload(graph)
    _WORKER_FUNC = func
    _WORKER_SHARED = {
        key: shm.restore_payload(value) for key, value in shared.items()
    }


def _run_task(item: Any) -> Any:
    assert _WORKER_FUNC is not None and _WORKER_GRAPH is not None
    return _WORKER_FUNC(_WORKER_GRAPH, item, **_WORKER_SHARED)


def graph_map(
    graph: ASGraph,
    func: Callable[..., Any],
    items: Iterable[Any],
    *,
    workers: int | str | None = None,
    chunksize: Optional[int] = None,
    **shared: Any,
) -> Iterator[Any]:
    """Apply ``func(graph, item, **shared)`` to every item, in input order.

    ``func`` must be a picklable module-level callable.  With more than one
    worker the graph and ``shared`` kwargs are installed once per worker
    process via the pool initializer and only ``item`` crosses the pipe per
    task; serially the exact same calls run inline.  Results are yielded in
    the order of ``items``; an exception raised by any task propagates to
    the caller when that task's slot is consumed.
    """
    count = resolve_workers(workers)
    if count <= 1:
        def _serial() -> Iterator[Any]:
            for item in items:
                yield func(graph, item, **shared)

        return _serial()

    item_list = list(items)
    if not item_list:
        return iter(())
    count = min(count, len(item_list))
    if chunksize is None:
        chunksize = max(1, -(-len(item_list) // (count * 8)))

    # Ship the compact compiled form when the tasks will run the compiled
    # engine anyway (an ``engine`` shared kwarg, or the session default).
    # CompiledGraph answers the same read-only queries, so the tasks are
    # oblivious; serial mode keeps the original graph (nothing is shipped).
    payload: Any = graph
    if isinstance(graph, ASGraph):
        try:
            if resolve_engine(shared.get("engine")) in (
                "compiled",
                "incremental",
            ):
                payload = graph.compile()
        except ValueError:
            pass  # unknown engine string: let the task raise it

    # Move the big constant arrays (the CSR graph, per-sweep baseline
    # states) into shared-memory segments: the initializer then ships
    # only tiny refs and every worker attaches the same pages instead of
    # unpickling its own copy.  REPRO_SHM=off (or an unsupported
    # platform) keeps the plain pickle path — still shipped once per
    # worker via the initializer, never per batch.
    arenas: list[shm.ShmArena] = []
    if shm.resolve_shm():
        payload = shm.share_payload(payload, arenas)
        shared = {
            key: shm.share_payload(value, arenas)
            for key, value in shared.items()
        }

    def _parallel() -> Iterator[Any]:
        try:
            with ProcessPoolExecutor(
                max_workers=count,
                initializer=_init_worker,
                initargs=(payload, func, shared),
            ) as pool:
                yield from pool.map(
                    _run_task, item_list, chunksize=chunksize
                )
        finally:
            for arena in arenas:
                arena.close()

    return _parallel()


# ---------------------------------------------------------------------------
# propagation sweeps
# ---------------------------------------------------------------------------

def _coerce_seeds(task: Any) -> tuple[Seed, ...]:
    if isinstance(task, Seed):
        return (task,)
    if isinstance(task, int):
        return (Seed(asn=task),)
    return tuple(s if isinstance(s, Seed) else Seed(asn=s) for s in task)


def _propagate_task(
    graph: ASGraph,
    task: Any,
    excluded: Collection[int] = frozenset(),
    peer_locked: Collection[int] = frozenset(),
    locked_origin: Optional[int] = None,
    engine: Optional[str] = None,
) -> RoutingState:
    return propagate(
        graph,
        _coerce_seeds(task),
        excluded=excluded,
        peer_locked=peer_locked,
        locked_origin=locked_origin,
        engine=engine,
    )


def propagate_many(
    graph: ASGraph,
    tasks: Iterable[int | Seed | Iterable[Seed]],
    *,
    workers: int | str | None = None,
    excluded: Collection[int] = frozenset(),
    peer_locked: Collection[int] = frozenset(),
    locked_origin: Optional[int] = None,
    chunksize: Optional[int] = None,
    engine: Optional[str] = None,
) -> Iterator[RoutingState]:
    """Propagate each task over ``graph``, yielding states in input order.

    A task is an origin ASN, a :class:`Seed`, or an iterable of seeds (the
    multi-seed form used by leak simulations).  ``excluded``,
    ``peer_locked``, ``locked_origin`` and ``engine`` apply to every task
    and ship to the workers once; with ``engine="compiled"`` (the
    default) the workers receive the compact compiled graph.
    """
    return graph_map(
        graph,
        _propagate_task,
        tasks,
        workers=workers,
        chunksize=chunksize,
        excluded=frozenset(excluded),
        peer_locked=frozenset(peer_locked),
        locked_origin=locked_origin,
        engine=engine,
    )


def _propagate_batch_task(
    graph: ASGraph,
    origins: tuple[int, ...],
    excluded: Collection[int] = frozenset(),
    engine: Optional[str] = None,
):
    """One bit-parallel sweep per batch of origins (worker-side)."""
    from .multiorigin import propagate_batch

    del engine  # the batch kernel *is* the compiled engine
    return propagate_batch(graph, origins, excluded=excluded)


def propagate_origins(
    graph: ASGraph,
    origins: Iterable[int],
    *,
    workers: int | str | None = None,
    excluded: Collection[int] = frozenset(),
    engine: Optional[str] = None,
    batch: Optional[int] = None,
) -> Iterator[tuple[int, RoutingState]]:
    """``(origin, state)`` pairs for a plain single-origin sweep.

    ``batch`` selects the bit-parallel multi-origin kernel
    (:mod:`repro.bgpsim.multiorigin`): origins are chunked to that width
    and each chunk costs one graph sweep instead of one per origin.  The
    default (``None``) resolves through ``REPRO_BATCH`` /
    :data:`~repro.bgpsim.multiorigin.DEFAULT_BATCH`; ``batch=1`` (or
    ``engine="reference"``) keeps the historical per-origin path.  The
    yielded states are per-origin views equivalent to the per-origin
    engines' results, so callers are oblivious.  Process-parallelism
    composes: with ``workers`` the chunks fan out across the pool, each
    worker running whole batches.
    """
    from .multiorigin import resolve_batch

    origin_list = list(origins)
    try:
        resolved = resolve_engine(engine)
    except ValueError:
        resolved = "reference"  # unknown engine: let propagate() raise
    width = resolve_batch(batch)
    if width > 1 and resolved in ("compiled", "incremental") and origin_list:
        chunks = [
            tuple(origin_list[i : i + width])
            for i in range(0, len(origin_list), width)
        ]
        batches = graph_map(
            graph,
            _propagate_batch_task,
            chunks,
            workers=workers,
            excluded=frozenset(excluded),
            engine=engine,
        )

        def _views() -> Iterator[tuple[int, RoutingState]]:
            for result in batches:
                if result._graph is None:  # returned from a pool worker
                    result.bind_graph(graph)
                # Yield view-by-view and drop each from the batch's cache
                # as soon as it is handed over: a streaming consumer that
                # releases its view after folding it frees that view's
                # materialized arrays immediately (refcount alone, no gc),
                # and the batch masks are all that stays live.  This is
                # what keeps full-origin-set sweeps at O(batch) memory.
                for bit, origin in enumerate(result.origins):
                    yield origin, result.view_at(bit)
                    result._views.pop(bit, None)

        return _views()
    states = propagate_many(
        graph, origin_list, workers=workers, excluded=excluded, engine=engine
    )
    return zip(origin_list, states)
