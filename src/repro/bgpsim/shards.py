"""Precomputed on-disk routing shards with zero-copy mmap readers.

Every headline metric in the paper — reachability, path lengths,
reliance, hegemony — is a pure function of a per-origin routing state,
and the compiled engine already represents those states as flat arrays
(:class:`~repro.bgpsim.compiled.CompiledRoutingState`).  This module
persists them: a *shard* is an append-only binary file packing many
origins' state arrays with a fixed header and a per-origin offset index,
so a :class:`ShardReader` can ``mmap`` the file once and materialize any
origin's state **zero-copy** — the state's arrays are ``memoryview``
slices aliased onto the map, exactly the buffer-protocol objects the
pure loops index and the vectorized kernels ``np.frombuffer`` (the same
trick :mod:`repro.bgpsim.shm` plays with worker payloads).  No route
objects are unpickled; opening a state is a dict lookup plus six
``memoryview.cast`` calls.

File layout (all integers little-endian, all payloads 8-byte aligned,
matching the shared-memory arena packing):

.. code-block:: text

   header   magic "RPBGPSH1" | version u32 | flags u32 | n_nodes u64
            | n_origins u64 | index_off u64 (0 while unsealed)
            | asns_off u64 | asns_nbytes u64 | asns fmt char | pad
            | sha256 graph digest (32 bytes)                     [96 B]
   asns     the shared ASN table, one copy per shard
   records  per origin: origin u64, then 6 entry descriptors
            (fmt char | pad | abs offset u64 | nbytes u64) for
            route_class / length / parent_head / pool_parent /
            pool_next / routed, then the 8-aligned array payloads
   index    n_origins × (origin u64, record offset u64)

The header is written last (the writer seals the file by back-patching
``index_off``), so a crash mid-write leaves ``index_off == 0`` and the
reader rejects the file instead of serving a torn state.  The graph
digest binds a shard to the exact CSR snapshot it was computed over;
readers and stores refuse shards whose digest does not match the serving
graph.

On top of single files, :class:`ShardStore` manages a *content-addressed
results directory* — ``<root>/<digest16>/manifest.json`` plus shard
files — and :func:`precompute_shards` fans the origin set through the
bit-parallel batched sweeps of
:func:`~repro.bgpsim.parallel.propagate_origins` to build one.
Correctness is anchored by the differential harness in
``tests/test_shards.py`` (mmap-aliased states ≡ ``propagate_compiled``
output on multiple netgen seeds).
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
from array import array
from collections.abc import Iterator, Sequence
from pathlib import Path
from typing import Any, Optional

from .compiled import CompiledGraph, CompiledRoutingState
from .routes import Seed

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "MANIFEST_NAME",
    "ShardError",
    "ShardReader",
    "ShardStore",
    "ShardWriter",
    "graph_digest",
    "precompute_shards",
]

_MAGIC = b"RPBGPSH1"
_VERSION = 1
#: header: magic, version, flags, n_nodes, n_origins, index_off,
#: asns_off, asns_nbytes, asns fmt char (+pad), graph digest
_HEADER = struct.Struct("<8sIIQQQQQc7x32s")
#: one per-origin record header: the origin ASN
_REC = struct.Struct("<Q")
#: one array entry descriptor: fmt char (+pad), abs offset, nbytes
_ENTRY = struct.Struct("<c7xQQ")
#: one offset-index row: origin ASN, record offset
_INDEX = struct.Struct("<QQ")

#: the state arrays a record stores, in on-disk order; ``_asns`` is
#: shard-level (stored once, aliased by every origin's state)
_RECORD_FIELDS = (
    "_route_class",
    "_length",
    "_parent_head",
    "_pool_parent",
    "_pool_next",
    "_routed",
)

MANIFEST_NAME = "manifest.json"

#: default origins per shard file; small enough that a partial
#: precompute flushes regularly, large enough that a paper-scale corpus
#: stays at a few dozen files
DEFAULT_SHARD_SIZE = 4096


class ShardError(RuntimeError):
    """A shard file or store is unreadable, unsealed, or mismatched."""


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _fmt_of(buf: Any) -> str:
    """The element format char of a state buffer (``B`` for raw bytes)."""
    if isinstance(buf, array):
        return buf.typecode
    if isinstance(buf, memoryview):
        return buf.format
    return "B"  # bytes / bytearray


def graph_digest(graph) -> str:
    """SHA-256 hex digest of a graph's compiled CSR snapshot.

    Covers every adjacency array *and* its element format, so any
    topology change — and nothing else — changes the digest.  Shards
    carry it; readers refuse to serve states for a different graph.
    """
    cg: CompiledGraph = graph.compile()
    digest = hashlib.sha256()
    for name in (
        "asns",
        "provider_off",
        "provider_nbr",
        "customer_off",
        "customer_nbr",
        "peer_off",
        "peer_nbr",
    ):
        buf = getattr(cg, name)
        mv = memoryview(buf)
        digest.update(name.encode())
        digest.update(_fmt_of(buf).encode())
        digest.update(mv.nbytes.to_bytes(8, "little"))
        digest.update(mv.cast("B"))
    return digest.hexdigest()


class ShardWriter:
    """Append per-origin compiled states to one shard file.

    The header is written as a placeholder (``index_off = 0``) up front
    and back-patched by :meth:`close` after the offset index — an
    interrupted write therefore never yields a readable-but-torn shard.
    Usable as a context manager.
    """

    def __init__(self, path: str | os.PathLike, graph) -> None:
        cg: CompiledGraph = graph.compile()
        self.path = Path(path)
        self.digest = graph_digest(cg)
        self._cg = cg
        self._asns_bytes = bytes(memoryview(cg.asns).cast("B"))
        self._asns_fmt = _fmt_of(cg.asns)
        self._index: list[tuple[int, int]] = []
        self._handle = open(self.path, "wb")
        self._pos = 0
        self._write(b"\x00" * _HEADER.size)
        self._pad_to(_align8(self._pos))
        self._asns_off = self._pos
        self._write(self._asns_bytes)
        self._closed = False

    # -- low-level append ----------------------------------------------
    def _write(self, data: bytes) -> None:
        self._handle.write(data)
        self._pos += len(data)

    def _pad_to(self, target: int) -> None:
        if target > self._pos:
            self._write(b"\x00" * (target - self._pos))

    @property
    def origins(self) -> tuple[int, ...]:
        return tuple(origin for origin, _ in self._index)

    def __len__(self) -> int:
        return len(self._index)

    def add(self, origin: int, state) -> None:
        """Append ``origin``'s routing state.

        ``state`` must be an array-backed single-seed state: a
        :class:`~repro.bgpsim.compiled.CompiledRoutingState` for the
        plain ``Seed(asn=origin)`` (a
        :class:`~repro.bgpsim.multiorigin.BatchOriginView` is converted
        via ``to_compiled()``, which also shrinks its arrays to the
        smallest typecodes — the compact on-disk form).
        """
        if self._closed:
            raise ShardError(f"shard {self.path} is already sealed")
        to_compiled = getattr(state, "to_compiled", None)
        if to_compiled is not None:
            state = to_compiled()
        if not isinstance(state, CompiledRoutingState):
            raise ShardError(
                "shards hold array-backed compiled states; got "
                f"{type(state).__name__} (run the compiled engine)"
            )
        if state.seeds != (Seed(asn=origin),) or state._origin_mask is not None:
            raise ShardError(
                f"shard records are plain single-origin states; AS{origin} "
                f"got seeds {state.seeds!r}"
            )
        if len(state._asns) != self._cg.n:
            raise ShardError(
                f"state for AS{origin} has {len(state._asns)} nodes, "
                f"shard graph has {self._cg.n}"
            )
        if any(o == origin for o, _ in self._index):
            raise ShardError(f"duplicate origin AS{origin}")

        buffers = [getattr(state, field) for field in _RECORD_FIELDS]
        record_off = _align8(self._pos)
        self._pad_to(record_off)
        # lay the payloads out after the descriptor table, 8-aligned
        cursor = record_off + _REC.size + _ENTRY.size * len(buffers)
        descriptors = []
        payloads = []
        for buf in buffers:
            data = bytes(memoryview(buf).cast("B"))
            cursor = _align8(cursor)
            descriptors.append((_fmt_of(buf).encode(), cursor, len(data)))
            payloads.append((cursor, data))
            cursor += len(data)
        self._write(_REC.pack(origin))
        for fmt, offset, nbytes in descriptors:
            self._write(_ENTRY.pack(fmt, offset, nbytes))
        for offset, data in payloads:
            self._pad_to(offset)
            self._write(data)
        self._index.append((origin, record_off))

    def close(self) -> None:
        """Write the offset index, seal the header, and fsync."""
        if self._closed:
            return
        index_off = _align8(self._pos)
        self._pad_to(index_off)
        for origin, record_off in self._index:
            self._write(_INDEX.pack(origin, record_off))
        header = _HEADER.pack(
            _MAGIC,
            _VERSION,
            0,
            self._cg.n,
            len(self._index),
            index_off,
            self._asns_off,
            len(self._asns_bytes),
            self._asns_fmt.encode(),
            bytes.fromhex(self.digest),
        )
        self._handle.flush()
        self._handle.seek(0)
        self._handle.write(header)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            self.close()
        else:  # abandon the torn file unsealed (readers will reject it)
            self._handle.close()
            self._closed = True


class ShardReader:
    """Memory-mapped random access to one shard file.

    ``state_for`` materializes an origin's
    :class:`~repro.bgpsim.compiled.CompiledRoutingState` with every
    array aliased onto the map — no copies, no unpickling.  Readers are
    independent (several may map the same file) and ``state_for`` is
    thread-safe after construction (reads only immutable lookups and the
    shared map).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        expected_digest: Optional[str] = None,
    ) -> None:
        self.path = Path(path)
        try:
            self._file = open(self.path, "rb")
        except OSError as exc:
            raise ShardError(f"cannot open shard {self.path}: {exc}") from exc
        try:
            size = os.fstat(self._file.fileno()).st_size
            if size < _HEADER.size:
                raise ShardError(
                    f"shard {self.path} is truncated "
                    f"({size} bytes < {_HEADER.size}-byte header)"
                )
            self._mm = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ShardError:
            self._file.close()
            raise
        self._buf = memoryview(self._mm)
        self._size = size
        try:
            (
                magic,
                version,
                _flags,
                self.n_nodes,
                n_origins,
                index_off,
                asns_off,
                asns_nbytes,
                asns_fmt,
                digest,
            ) = _HEADER.unpack_from(self._buf, 0)
            if magic != _MAGIC:
                raise ShardError(
                    f"{self.path} is not a routing shard "
                    f"(bad magic {magic!r})"
                )
            if version != _VERSION:
                raise ShardError(
                    f"{self.path} has shard format version {version}; "
                    f"this reader understands {_VERSION}"
                )
            if index_off == 0:
                raise ShardError(
                    f"{self.path} is unsealed (interrupted write?)"
                )
            index_end = index_off + n_origins * _INDEX.size
            if index_end > size or asns_off + asns_nbytes > size:
                raise ShardError(
                    f"{self.path} is truncated ({size} bytes; "
                    f"index ends at {index_end})"
                )
            self.digest = digest.hex()
            if expected_digest is not None and self.digest != expected_digest:
                raise ShardError(
                    f"{self.path} was precomputed for graph "
                    f"{self.digest[:16]}, expected {expected_digest[:16]}"
                )
            fmt = asns_fmt.decode()
            asns_view = self._buf[asns_off : asns_off + asns_nbytes]
            self._asns = asns_view if fmt == "B" else asns_view.cast(fmt)
            self._index: dict[int, int] = {}
            for row in range(n_origins):
                origin, record_off = _INDEX.unpack_from(
                    self._buf, index_off + row * _INDEX.size
                )
                self._index[origin] = record_off
        except ShardError:
            self.close()
            raise
        except (struct.error, ValueError) as exc:
            self.close()
            raise ShardError(f"corrupted shard {self.path}: {exc}") from exc

    # -- queries --------------------------------------------------------
    @property
    def origins(self) -> tuple[int, ...]:
        """Origins in record (precompute input) order."""
        return tuple(self._index)

    def __contains__(self, origin: int) -> bool:
        return origin in self._index

    def __len__(self) -> int:
        return len(self._index)

    def state_for(self, origin: int) -> CompiledRoutingState:
        """``origin``'s routing state, arrays aliased onto the map."""
        record_off = self._index.get(origin)
        if record_off is None:
            raise KeyError(f"AS{origin} not in shard {self.path}")
        try:
            (stored,) = _REC.unpack_from(self._buf, record_off)
        except struct.error as exc:
            raise ShardError(
                f"corrupted shard {self.path}: record for AS{origin} "
                f"at {record_off} is out of bounds"
            ) from exc
        if stored != origin:
            raise ShardError(
                f"corrupted shard {self.path}: index points AS{origin} "
                f"at a record for AS{stored}"
            )
        views = []
        cursor = record_off + _REC.size
        for field in _RECORD_FIELDS:
            try:
                fmt, offset, nbytes = _ENTRY.unpack_from(self._buf, cursor)
            except struct.error as exc:
                raise ShardError(
                    f"corrupted shard {self.path}: torn entry table "
                    f"for AS{origin}"
                ) from exc
            cursor += _ENTRY.size
            if offset + nbytes > self._size:
                raise ShardError(
                    f"corrupted shard {self.path}: {field} of AS{origin} "
                    f"extends past end of file"
                )
            view = self._buf[offset : offset + nbytes]
            code = fmt.decode()
            views.append(view if code == "B" else view.cast(code))
        rc, length, head, pool_parent, pool_next, routed = views
        return CompiledRoutingState(
            self._asns,
            (Seed(asn=origin),),
            rc,
            length,
            head,
            pool_parent,
            pool_next,
            routed,
            None,
        )

    def close(self) -> None:
        """Release the map (idempotent).

        States handed out earlier keep the map alive through their
        views; like the shared-memory arenas, a map pinned by live views
        is simply left for process exit to reclaim.
        """
        buf = self.__dict__.pop("_buf", None)
        if buf is not None:
            try:
                buf.release()
            except BufferError:
                pass
        mm = self.__dict__.pop("_mm", None)
        if mm is not None:
            try:
                mm.close()
            except BufferError:
                pass  # live state views pin the map; exit reclaims it
        handle = self.__dict__.pop("_file", None)
        if handle is not None:
            handle.close()

    def __enter__(self) -> "ShardReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# shard stores: a content-addressed directory of shards + manifest
# ---------------------------------------------------------------------------


class ShardStore:
    """A directory of shards behind one origin → state lookup.

    The directory holds ``manifest.json`` (graph digest, engine/vector
    knobs, per-shard origin ranges) and the shard files it names; origins
    resolve to their shard in O(1).  Open with :meth:`open`, which also
    accepts the *root* directory of a content-addressed tree (it then
    descends into ``<digest16>/`` for the supplied graph).
    """

    def __init__(
        self,
        directory: Path,
        manifest: dict[str, Any],
        readers: Sequence[ShardReader],
    ) -> None:
        self.directory = directory
        self.manifest = manifest
        self.digest: str = manifest["graph_digest"]
        self._readers = tuple(readers)
        self._where: dict[int, ShardReader] = {}
        for reader in self._readers:
            for origin in reader.origins:
                self._where.setdefault(origin, reader)

    @classmethod
    def open(cls, directory: str | os.PathLike, graph=None) -> "ShardStore":
        """Open a shard directory (or a content-addressed root).

        With ``graph`` the store's digest is verified against it —
        mismatches raise :class:`ShardError` rather than silently
        serving states for a different topology.
        """
        root = Path(directory)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists() and graph is not None:
            candidate = root / graph_digest(graph)[:16] / MANIFEST_NAME
            if candidate.exists():
                manifest_path = candidate
        if not manifest_path.exists():
            raise ShardError(f"no {MANIFEST_NAME} under {root}")
        base = manifest_path.parent
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ShardError(f"unreadable manifest {manifest_path}: {exc}")
        if manifest.get("format") != "repro.bgpsim.shards":
            raise ShardError(f"{manifest_path} is not a shard manifest")
        digest = manifest.get("graph_digest")
        if not digest:
            raise ShardError(f"{manifest_path} carries no graph digest")
        readers: list[ShardReader] = []
        try:
            for entry in manifest.get("shards", ()):
                readers.append(
                    ShardReader(base / entry["file"], expected_digest=digest)
                )
        except ShardError:
            for reader in readers:
                reader.close()
            raise
        store = cls(base, manifest, readers)
        if graph is not None:
            store.verify(graph)
        return store

    def verify(self, graph) -> "ShardStore":
        """Raise :class:`ShardError` unless ``graph`` matches the store."""
        actual = graph_digest(graph)
        if actual != self.digest:
            raise ShardError(
                f"shard store {self.directory} was precomputed for graph "
                f"{self.digest[:16]}, but the serving graph is "
                f"{actual[:16]} — re-run `repro precompute`"
            )
        return self

    # -- queries --------------------------------------------------------
    def __contains__(self, origin: int) -> bool:
        return origin in self._where

    def __len__(self) -> int:
        return len(self._where)

    def origins(self) -> tuple[int, ...]:
        return tuple(self._where)

    def state_for(self, origin: int) -> CompiledRoutingState:
        reader = self._where.get(origin)
        if reader is None:
            raise KeyError(f"AS{origin} not in shard store {self.directory}")
        return reader.state_for(origin)

    def close(self) -> None:
        for reader in self._readers:
            reader.close()

    def __enter__(self) -> "ShardStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# precompute driver
# ---------------------------------------------------------------------------


def precompute_shards(
    graph,
    out_root: str | os.PathLike,
    origins: Optional[Sequence[int]] = None,
    workers: int | str | None = None,
    batch: Optional[int] = None,
    engine: Optional[str] = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    force: bool = False,
    progress=None,
) -> Path:
    """Precompute routing shards for ``origins`` (default: every AS).

    Fans the origin set through the bit-parallel batched sweeps of
    :func:`~repro.bgpsim.parallel.propagate_origins` (``workers``
    processes, ``REPRO_BATCH``-sized batches) and streams the per-origin
    states into shard files of ``shard_size`` origins under the
    content-addressed directory ``<out_root>/<digest16>/``, consuming
    each batch as it completes — peak memory stays O(batch) regardless
    of the origin-set size.  Writes ``manifest.json`` last (its presence
    marks the corpus complete); an existing complete corpus covering the
    requested origins is reused unless ``force``.

    A valid corpus that covers only *part* of the request is **resumed**,
    not discarded: its shard files are kept, only the missing origins are
    propagated (into new shards appended after the existing ones), and
    the merged manifest covers both — so extending a precomputed corpus
    to more origins costs only the new origins' sweeps.  ``force``
    rebuilds from scratch either way.

    Returns the content-addressed directory.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    from .engine import resolve_engine
    from .multiorigin import resolve_batch
    from .parallel import propagate_origins, resolve_workers
    from .shm import resolve_shm
    from .vectorized import resolve_vector

    cg: CompiledGraph = graph.compile()
    digest = graph_digest(cg)
    target = Path(out_root) / digest[:16]
    origin_list = (
        sorted(cg.asns) if origins is None else list(dict.fromkeys(origins))
    )
    existing_infos: list[dict[str, Any]] = []
    covered = 0
    if not force and (target / MANIFEST_NAME).exists():
        try:
            store = ShardStore.open(target)
        except ShardError:
            pass  # stale/torn corpus: rebuild below
        else:
            have = set(store.origins())
            existing_infos = list(store.manifest.get("shards", ()))
            covered = len(have)
            store.close()
            if set(origin_list) <= have:
                return target
            # resume: keep the existing shards, compute only the gap
            origin_list = [o for o in origin_list if o not in have]
    target.mkdir(parents=True, exist_ok=True)

    shard_infos: list[dict[str, Any]] = list(existing_infos)
    writer: Optional[ShardWriter] = None
    done = 0
    try:
        for origin, state in propagate_origins(
            graph,
            origin_list,
            workers=workers,
            engine=engine,
            batch=batch,
        ):
            if writer is None:
                name = f"shard-{len(shard_infos):05d}.shard"
                writer = ShardWriter(target / name, cg)
            writer.add(origin, state)
            done += 1
            if progress is not None:
                progress(done, len(origin_list))
            if len(writer) >= shard_size:
                writer.close()
                shard_infos.append(_shard_info(writer))
                writer = None
        if writer is not None and len(writer):
            writer.close()
            shard_infos.append(_shard_info(writer))
            writer = None
    finally:
        if writer is not None:
            writer._handle.close()  # abandon unsealed on error

    manifest = {
        "format": "repro.bgpsim.shards",
        "version": _VERSION,
        "graph_digest": digest,
        "n_nodes": cg.n,
        "origins": covered + len(origin_list),
        "engine": resolve_engine(engine),
        "workers": resolve_workers(workers),
        "batch": resolve_batch(batch),
        "vector": resolve_vector(),
        "shm": resolve_shm(),
        "shard_size": shard_size,
        "shards": shard_infos,
    }
    (target / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2) + "\n"
    )
    return target


def _shard_info(writer: ShardWriter) -> dict[str, Any]:
    origins = writer.origins
    return {
        "file": writer.path.name,
        "origins": len(origins),
        "first": min(origins),
        "last": max(origins),
        "bytes": writer.path.stat().st_size,
    }


def iter_store_states(
    store: ShardStore,
) -> Iterator[tuple[int, CompiledRoutingState]]:
    """``(origin, state)`` pairs for every origin in the store."""
    for origin in store.origins():
        yield origin, store.state_for(origin)
