"""Precomputed on-disk routing shards with zero-copy mmap readers.

Every headline metric in the paper — reachability, path lengths,
reliance, hegemony — is a pure function of a per-origin routing state,
and the compiled engine already represents those states as flat arrays
(:class:`~repro.bgpsim.compiled.CompiledRoutingState`).  This module
persists them: a *shard* is an append-only binary file packing many
origins' state arrays with a fixed header and a per-origin offset index,
so a :class:`ShardReader` can ``mmap`` the file once and materialize any
origin's state **zero-copy** — the state's arrays are ``memoryview``
slices aliased onto the map, exactly the buffer-protocol objects the
pure loops index and the vectorized kernels ``np.frombuffer`` (the same
trick :mod:`repro.bgpsim.shm` plays with worker payloads).  No route
objects are unpickled; opening a state is a dict lookup plus six
``memoryview.cast`` calls.

File layout (all integers little-endian, all payloads 8-byte aligned,
matching the shared-memory arena packing):

.. code-block:: text

   header   magic "RPBGPSH1" | version u32 | flags u32 | n_nodes u64
            | n_origins u64 | index_off u64 (0 while unsealed)
            | asns_off u64 | asns_nbytes u64 | asns fmt char | pad
            | sha256 graph digest (32 bytes)                     [96 B]
   asns     the shared ASN table, one copy per shard
   records  per origin: origin u64, then 6 entry descriptors
            (fmt char | pad | abs offset u64 | nbytes u64) for
            route_class / length / parent_head / pool_parent /
            pool_next / routed, then the 8-aligned array payloads
   index    n_origins × (origin u64, record offset u64)

The header is written last (the writer seals the file by back-patching
``index_off``), so a crash mid-write leaves ``index_off == 0`` and the
reader rejects the file instead of serving a torn state.  The graph
digest binds a shard to the exact CSR snapshot it was computed over;
readers and stores refuse shards whose digest does not match the serving
graph.

On top of single files, :class:`ShardStore` manages a *content-addressed
results directory* — ``<root>/<digest16>/manifest.json`` plus shard
files — and :func:`precompute_shards` fans the origin set through the
bit-parallel batched sweeps of
:func:`~repro.bgpsim.parallel.propagate_origins` to build one.
Correctness is anchored by the differential harness in
``tests/test_shards.py`` (mmap-aliased states ≡ ``propagate_compiled``
output on multiple netgen seeds).

**Metric shards** (magic ``RPBGMET1``) are the second record type in a
corpus: instead of state arrays they pack the *answers* of the paper's
metric kernels — per origin, the §7 reliance mass vector over every
node, the fused local-hegemony row toward a fixed target set (Fontugne
et al.), the tied-best-path counts both share, and the routed count.
All three payloads are float64 arrays, so ``/reliance`` and
``/hegemony`` queries become a single zero-copy ``memoryview`` read;
every stored float is produced by the same kernels the live path runs
(:func:`~repro.bgpsim.metrics_kernel.reliance_mass_kernel`,
``_hegemony_values``), so served answers are bit-identical to
kernel-per-request — asserted with exact ``float.hex()`` comparisons in
``tests/test_metric_shards.py`` and ``make bench-serve``.  The layout
mirrors routing shards: sealed header (``index_off`` back-patched on
close, torn writes rejected), the same sha256 graph digest, a shared
ASN table, plus a target table and the trim fraction the hegemony rows
were computed with.  :func:`precompute_metric_shards` streams states
through ``states_for_many(stream=True)`` (O(batch) memory at ``full``
scale, shard-accelerated when a routing corpus is present) and resumes
partial corpora exactly like :func:`precompute_shards`.

A corpus also carries *leases* (``leases/<pid>-<token>.lease``): every
serving process that opens the store with ``lease=True`` registers its
pid, and :meth:`ShardStore.compact` / :func:`gc_corpora` refuse to
rewrite or delete a corpus something live still maps.
"""

from __future__ import annotations

import hashlib
import json
import math
import mmap
import os
import shutil
import struct
from array import array
from bisect import bisect_left
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path
from typing import Any, Optional

from .compiled import CompiledGraph, CompiledRoutingState
from .routes import Seed

__all__ = [
    "DEFAULT_METRIC_TARGETS",
    "DEFAULT_SHARD_SIZE",
    "LEASE_DIR",
    "MANIFEST_NAME",
    "MetricShardReader",
    "MetricShardStore",
    "MetricShardWriter",
    "ShardError",
    "ShardReader",
    "ShardStore",
    "ShardWriter",
    "default_metric_targets",
    "gc_corpora",
    "graph_digest",
    "live_leases",
    "precompute_metric_shards",
    "precompute_shards",
]

_MAGIC = b"RPBGPSH1"
_VERSION = 1
#: header: magic, version, flags, n_nodes, n_origins, index_off,
#: asns_off, asns_nbytes, asns fmt char (+pad), graph digest
_HEADER = struct.Struct("<8sIIQQQQQc7x32s")
#: one per-origin record header: the origin ASN
_REC = struct.Struct("<Q")
#: one array entry descriptor: fmt char (+pad), abs offset, nbytes
_ENTRY = struct.Struct("<c7xQQ")
#: one offset-index row: origin ASN, record offset
_INDEX = struct.Struct("<QQ")

#: the state arrays a record stores, in on-disk order; ``_asns`` is
#: shard-level (stored once, aliased by every origin's state)
_RECORD_FIELDS = (
    "_route_class",
    "_length",
    "_parent_head",
    "_pool_parent",
    "_pool_next",
    "_routed",
)

_MET_MAGIC = b"RPBGMET1"
_MET_VERSION = 1
#: metric-shard header: magic, version, flags, n_nodes, n_origins,
#: index_off, asns_off, asns_nbytes, asns fmt char (+pad), targets_off,
#: n_targets, trim, graph digest
_MET_HEADER = struct.Struct("<8sIIQQQQQc7xQQd32s")
#: one metric record header: origin ASN, flags, routed count
_MET_REC = struct.Struct("<QQQ")
#: metric record flag: every tied-best-path count fit a float64 exactly
_MET_EXACT_COUNTS = 1
#: the float64 payloads a metric record stores, in on-disk order
_MET_FIELDS = ("reliance", "counts", "hegemony")

MANIFEST_NAME = "manifest.json"
LEASE_DIR = "leases"

#: default origins per shard file; small enough that a partial
#: precompute flushes regularly, large enough that a paper-scale corpus
#: stays at a few dozen files
DEFAULT_SHARD_SIZE = 4096

#: default hegemony target-set size for metric shards: the paper's
#: hegemony questions are about the highest-degree transit networks, so
#: rows are precomputed toward the top-N ASes by adjacency (a full
#: n×n matrix would be O(n²) storage for answers nobody queries)
DEFAULT_METRIC_TARGETS = 64


class ShardError(RuntimeError):
    """A shard file or store is unreadable, unsealed, or mismatched."""


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _fmt_of(buf: Any) -> str:
    """The element format char of a state buffer (``B`` for raw bytes)."""
    if isinstance(buf, array):
        return buf.typecode
    if isinstance(buf, memoryview):
        return buf.format
    return "B"  # bytes / bytearray


def graph_digest(graph) -> str:
    """SHA-256 hex digest of a graph's compiled CSR snapshot.

    Covers every adjacency array *and* its element format, so any
    topology change — and nothing else — changes the digest.  Shards
    carry it; readers refuse to serve states for a different graph.
    """
    cg: CompiledGraph = graph.compile()
    digest = hashlib.sha256()
    for name in (
        "asns",
        "provider_off",
        "provider_nbr",
        "customer_off",
        "customer_nbr",
        "peer_off",
        "peer_nbr",
    ):
        buf = getattr(cg, name)
        mv = memoryview(buf)
        digest.update(name.encode())
        digest.update(_fmt_of(buf).encode())
        digest.update(mv.nbytes.to_bytes(8, "little"))
        digest.update(mv.cast("B"))
    return digest.hexdigest()


class ShardWriter:
    """Append per-origin compiled states to one shard file.

    The header is written as a placeholder (``index_off = 0``) up front
    and back-patched by :meth:`close` after the offset index — an
    interrupted write therefore never yields a readable-but-torn shard.
    Usable as a context manager.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        graph=None,
        *,
        digest: Optional[str] = None,
        n_nodes: Optional[int] = None,
        asns=None,
    ) -> None:
        if graph is not None:
            cg = graph.compile() if hasattr(graph, "compile") else graph
            digest = graph_digest(cg)
            n_nodes = cg.n
            asns = cg.asns
        elif digest is None or n_nodes is None or asns is None:
            raise ShardError(
                "ShardWriter needs a graph, or digest + n_nodes + asns"
            )
        self.path = Path(path)
        self.digest = digest
        self._n = n_nodes
        self._asns_bytes = bytes(memoryview(asns).cast("B"))
        self._asns_fmt = _fmt_of(asns)
        self._index: list[tuple[int, int]] = []
        self._handle = open(self.path, "wb")
        self._pos = 0
        self._write(b"\x00" * _HEADER.size)
        self._pad_to(_align8(self._pos))
        self._asns_off = self._pos
        self._write(self._asns_bytes)
        self._closed = False

    # -- low-level append ----------------------------------------------
    def _write(self, data: bytes) -> None:
        self._handle.write(data)
        self._pos += len(data)

    def _pad_to(self, target: int) -> None:
        if target > self._pos:
            self._write(b"\x00" * (target - self._pos))

    @property
    def origins(self) -> tuple[int, ...]:
        return tuple(origin for origin, _ in self._index)

    def __len__(self) -> int:
        return len(self._index)

    def add(self, origin: int, state) -> None:
        """Append ``origin``'s routing state.

        ``state`` must be an array-backed single-seed state: a
        :class:`~repro.bgpsim.compiled.CompiledRoutingState` for the
        plain ``Seed(asn=origin)`` (a
        :class:`~repro.bgpsim.multiorigin.BatchOriginView` is converted
        via ``to_compiled()``, which also shrinks its arrays to the
        smallest typecodes — the compact on-disk form).
        """
        if self._closed:
            raise ShardError(f"shard {self.path} is already sealed")
        to_compiled = getattr(state, "to_compiled", None)
        if to_compiled is not None:
            state = to_compiled()
        if not isinstance(state, CompiledRoutingState):
            raise ShardError(
                "shards hold array-backed compiled states; got "
                f"{type(state).__name__} (run the compiled engine)"
            )
        if state.seeds != (Seed(asn=origin),) or state._origin_mask is not None:
            raise ShardError(
                f"shard records are plain single-origin states; AS{origin} "
                f"got seeds {state.seeds!r}"
            )
        if len(state._asns) != self._n:
            raise ShardError(
                f"state for AS{origin} has {len(state._asns)} nodes, "
                f"shard graph has {self._n}"
            )
        if any(o == origin for o, _ in self._index):
            raise ShardError(f"duplicate origin AS{origin}")

        buffers = [getattr(state, field) for field in _RECORD_FIELDS]
        record_off = _align8(self._pos)
        self._pad_to(record_off)
        # lay the payloads out after the descriptor table, 8-aligned
        cursor = record_off + _REC.size + _ENTRY.size * len(buffers)
        descriptors = []
        payloads = []
        for buf in buffers:
            data = bytes(memoryview(buf).cast("B"))
            cursor = _align8(cursor)
            descriptors.append((_fmt_of(buf).encode(), cursor, len(data)))
            payloads.append((cursor, data))
            cursor += len(data)
        self._write(_REC.pack(origin))
        for fmt, offset, nbytes in descriptors:
            self._write(_ENTRY.pack(fmt, offset, nbytes))
        for offset, data in payloads:
            self._pad_to(offset)
            self._write(data)
        self._index.append((origin, record_off))

    def close(self) -> None:
        """Write the offset index, seal the header, and fsync."""
        if self._closed:
            return
        index_off = _align8(self._pos)
        self._pad_to(index_off)
        for origin, record_off in self._index:
            self._write(_INDEX.pack(origin, record_off))
        header = _HEADER.pack(
            _MAGIC,
            _VERSION,
            0,
            self._n,
            len(self._index),
            index_off,
            self._asns_off,
            len(self._asns_bytes),
            self._asns_fmt.encode(),
            bytes.fromhex(self.digest),
        )
        self._handle.flush()
        self._handle.seek(0)
        self._handle.write(header)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            self.close()
        else:  # abandon the torn file unsealed (readers will reject it)
            self._handle.close()
            self._closed = True


class ShardReader:
    """Memory-mapped random access to one shard file.

    ``state_for`` materializes an origin's
    :class:`~repro.bgpsim.compiled.CompiledRoutingState` with every
    array aliased onto the map — no copies, no unpickling.  Readers are
    independent (several may map the same file) and ``state_for`` is
    thread-safe after construction (reads only immutable lookups and the
    shared map).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        expected_digest: Optional[str] = None,
    ) -> None:
        self.path = Path(path)
        try:
            self._file = open(self.path, "rb")
        except OSError as exc:
            raise ShardError(f"cannot open shard {self.path}: {exc}") from exc
        try:
            size = os.fstat(self._file.fileno()).st_size
            if size < _HEADER.size:
                raise ShardError(
                    f"shard {self.path} is truncated "
                    f"({size} bytes < {_HEADER.size}-byte header)"
                )
            self._mm = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ShardError:
            self._file.close()
            raise
        self._buf = memoryview(self._mm)
        self._size = size
        try:
            (
                magic,
                version,
                _flags,
                self.n_nodes,
                n_origins,
                index_off,
                asns_off,
                asns_nbytes,
                asns_fmt,
                digest,
            ) = _HEADER.unpack_from(self._buf, 0)
            if magic != _MAGIC:
                raise ShardError(
                    f"{self.path} is not a routing shard "
                    f"(bad magic {magic!r})"
                )
            if version != _VERSION:
                raise ShardError(
                    f"{self.path} has shard format version {version}; "
                    f"this reader understands {_VERSION}"
                )
            if index_off == 0:
                raise ShardError(
                    f"{self.path} is unsealed (interrupted write?)"
                )
            index_end = index_off + n_origins * _INDEX.size
            if index_end > size or asns_off + asns_nbytes > size:
                raise ShardError(
                    f"{self.path} is truncated ({size} bytes; "
                    f"index ends at {index_end})"
                )
            self.digest = digest.hex()
            if expected_digest is not None and self.digest != expected_digest:
                raise ShardError(
                    f"{self.path} was precomputed for graph "
                    f"{self.digest[:16]}, expected {expected_digest[:16]}"
                )
            fmt = asns_fmt.decode()
            asns_view = self._buf[asns_off : asns_off + asns_nbytes]
            self._asns = asns_view if fmt == "B" else asns_view.cast(fmt)
            self._index: dict[int, int] = {}
            for row in range(n_origins):
                origin, record_off = _INDEX.unpack_from(
                    self._buf, index_off + row * _INDEX.size
                )
                self._index[origin] = record_off
        except ShardError:
            self.close()
            raise
        except (struct.error, ValueError) as exc:
            self.close()
            raise ShardError(f"corrupted shard {self.path}: {exc}") from exc

    # -- queries --------------------------------------------------------
    @property
    def origins(self) -> tuple[int, ...]:
        """Origins in record (precompute input) order."""
        return tuple(self._index)

    def __contains__(self, origin: int) -> bool:
        return origin in self._index

    def __len__(self) -> int:
        return len(self._index)

    def state_for(self, origin: int) -> CompiledRoutingState:
        """``origin``'s routing state, arrays aliased onto the map."""
        record_off = self._index.get(origin)
        if record_off is None:
            raise KeyError(f"AS{origin} not in shard {self.path}")
        try:
            (stored,) = _REC.unpack_from(self._buf, record_off)
        except struct.error as exc:
            raise ShardError(
                f"corrupted shard {self.path}: record for AS{origin} "
                f"at {record_off} is out of bounds"
            ) from exc
        if stored != origin:
            raise ShardError(
                f"corrupted shard {self.path}: index points AS{origin} "
                f"at a record for AS{stored}"
            )
        views = []
        cursor = record_off + _REC.size
        for field in _RECORD_FIELDS:
            try:
                fmt, offset, nbytes = _ENTRY.unpack_from(self._buf, cursor)
            except struct.error as exc:
                raise ShardError(
                    f"corrupted shard {self.path}: torn entry table "
                    f"for AS{origin}"
                ) from exc
            cursor += _ENTRY.size
            if offset + nbytes > self._size:
                raise ShardError(
                    f"corrupted shard {self.path}: {field} of AS{origin} "
                    f"extends past end of file"
                )
            view = self._buf[offset : offset + nbytes]
            code = fmt.decode()
            views.append(view if code == "B" else view.cast(code))
        rc, length, head, pool_parent, pool_next, routed = views
        return CompiledRoutingState(
            self._asns,
            (Seed(asn=origin),),
            rc,
            length,
            head,
            pool_parent,
            pool_next,
            routed,
            None,
        )

    def close(self) -> None:
        """Release the map (idempotent).

        States handed out earlier keep the map alive through their
        views; like the shared-memory arenas, a map pinned by live views
        is simply left for process exit to reclaim.
        """
        buf = self.__dict__.pop("_buf", None)
        if buf is not None:
            try:
                buf.release()
            except BufferError:
                pass
        mm = self.__dict__.pop("_mm", None)
        if mm is not None:
            try:
                mm.close()
            except BufferError:
                pass  # live state views pin the map; exit reclaims it
        handle = self.__dict__.pop("_file", None)
        if handle is not None:
            handle.close()

    def __enter__(self) -> "ShardReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# metric shards: precomputed kernel answers, one record per origin
# ---------------------------------------------------------------------------


class MetricShardWriter:
    """Append per-origin precomputed metric rows to one metric shard.

    Each record holds three float64 payloads — the node-indexed reliance
    mass vector, the node-indexed tied-best-path counts, and the
    hegemony row toward the shard's fixed target set — plus the routed
    count.  Sealing works exactly like :class:`ShardWriter`: the header
    is zeros until :meth:`close` back-patches ``index_off``, so torn
    writes are rejected by readers.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        graph=None,
        *,
        targets: Sequence[int],
        trim: float,
        digest: Optional[str] = None,
        n_nodes: Optional[int] = None,
        asns=None,
    ) -> None:
        if graph is not None:
            cg = graph.compile() if hasattr(graph, "compile") else graph
            digest = graph_digest(cg)
            n_nodes = cg.n
            asns = cg.asns
        elif digest is None or n_nodes is None or asns is None:
            raise ShardError(
                "MetricShardWriter needs a graph, or digest + n_nodes + asns"
            )
        self.path = Path(path)
        self.digest = digest
        self.targets = tuple(targets)
        self.trim = float(trim)
        self._n = n_nodes
        self._asns_bytes = bytes(memoryview(asns).cast("B"))
        self._asns_fmt = _fmt_of(asns)
        self._index: list[tuple[int, int]] = []
        self._handle = open(self.path, "wb")
        self._pos = 0
        self._write(b"\x00" * _MET_HEADER.size)
        self._pad_to(_align8(self._pos))
        self._asns_off = self._pos
        self._write(self._asns_bytes)
        self._pad_to(_align8(self._pos))
        self._targets_off = self._pos
        self._write(array("q", self.targets).tobytes())
        self._closed = False

    _write = ShardWriter._write
    _pad_to = ShardWriter._pad_to

    @property
    def origins(self) -> tuple[int, ...]:
        return tuple(origin for origin, _ in self._index)

    def __len__(self) -> int:
        return len(self._index)

    def add(
        self,
        origin: int,
        reliance,
        counts,
        hegemony,
        routed_count: int,
        counts_exact: bool = True,
    ) -> None:
        """Append ``origin``'s precomputed metric row.

        ``reliance`` and ``counts`` are float64 buffers of length
        ``n_nodes`` (node-indexed, seeds zeroed in ``reliance``);
        ``hegemony`` is a float64 buffer of one value per shard target
        (NaN where target == origin).  ``counts_exact`` records whether
        every tied-best-path count survived the float64 round-trip.
        """
        if self._closed:
            raise ShardError(f"metric shard {self.path} is already sealed")
        buffers = (reliance, counts, hegemony)
        want = (self._n, self._n, len(self.targets))
        for name, buf, expect in zip(_MET_FIELDS, buffers, want):
            mv = memoryview(buf)
            if mv.format != "d" or len(mv) != expect:
                raise ShardError(
                    f"metric record {name} for AS{origin} must be "
                    f"{expect} float64s, got {len(mv)} {mv.format!r}"
                )
        if any(o == origin for o, _ in self._index):
            raise ShardError(f"duplicate origin AS{origin}")
        record_off = _align8(self._pos)
        self._pad_to(record_off)
        cursor = record_off + _MET_REC.size + _ENTRY.size * len(buffers)
        descriptors = []
        payloads = []
        for buf in buffers:
            data = bytes(memoryview(buf).cast("B"))
            cursor = _align8(cursor)
            descriptors.append((b"d", cursor, len(data)))
            payloads.append((cursor, data))
            cursor += len(data)
        flags = _MET_EXACT_COUNTS if counts_exact else 0
        self._write(_MET_REC.pack(origin, flags, routed_count))
        for fmt, offset, nbytes in descriptors:
            self._write(_ENTRY.pack(fmt, offset, nbytes))
        for offset, data in payloads:
            self._pad_to(offset)
            self._write(data)
        self._index.append((origin, record_off))

    def close(self) -> None:
        """Write the offset index, seal the header, and fsync."""
        if self._closed:
            return
        index_off = _align8(self._pos)
        self._pad_to(index_off)
        for origin, record_off in self._index:
            self._write(_INDEX.pack(origin, record_off))
        header = _MET_HEADER.pack(
            _MET_MAGIC,
            _MET_VERSION,
            0,
            self._n,
            len(self._index),
            index_off,
            self._asns_off,
            len(self._asns_bytes),
            self._asns_fmt.encode(),
            self._targets_off,
            len(self.targets),
            self.trim,
            bytes.fromhex(self.digest),
        )
        self._handle.flush()
        self._handle.seek(0)
        self._handle.write(header)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "MetricShardWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            self.close()
        else:  # abandon the torn file unsealed (readers will reject it)
            self._handle.close()
            self._closed = True


class MetricRecord:
    """One origin's precomputed metric row, zero-copy off the map."""

    __slots__ = ("origin", "reliance", "counts", "hegemony",
                 "routed_count", "counts_exact")

    def __init__(self, origin, reliance, counts, hegemony,
                 routed_count, counts_exact) -> None:
        self.origin = origin
        self.reliance = reliance  # float64 memoryview, node-indexed
        self.counts = counts  # float64 memoryview, node-indexed
        self.hegemony = hegemony  # float64 memoryview, target-indexed
        self.routed_count = routed_count
        self.counts_exact = counts_exact


class MetricShardReader:
    """Memory-mapped random access to one metric shard file.

    Shares the sealed-header/torn-write rejection and digest binding of
    :class:`ShardReader`; :meth:`record_for` returns float64
    ``memoryview`` payloads aliased onto the map.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        expected_digest: Optional[str] = None,
    ) -> None:
        self.path = Path(path)
        try:
            self._file = open(self.path, "rb")
        except OSError as exc:
            raise ShardError(f"cannot open shard {self.path}: {exc}") from exc
        try:
            size = os.fstat(self._file.fileno()).st_size
            if size < _MET_HEADER.size:
                raise ShardError(
                    f"metric shard {self.path} is truncated "
                    f"({size} bytes < {_MET_HEADER.size}-byte header)"
                )
            self._mm = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ShardError:
            self._file.close()
            raise
        self._buf = memoryview(self._mm)
        self._size = size
        try:
            (
                magic,
                version,
                _flags,
                self.n_nodes,
                n_origins,
                index_off,
                asns_off,
                asns_nbytes,
                asns_fmt,
                targets_off,
                n_targets,
                self.trim,
                digest,
            ) = _MET_HEADER.unpack_from(self._buf, 0)
            if magic != _MET_MAGIC:
                raise ShardError(
                    f"{self.path} is not a metric shard "
                    f"(bad magic {magic!r})"
                )
            if version != _MET_VERSION:
                raise ShardError(
                    f"{self.path} has metric shard format version "
                    f"{version}; this reader understands {_MET_VERSION}"
                )
            if index_off == 0:
                raise ShardError(
                    f"{self.path} is unsealed (interrupted write?)"
                )
            index_end = index_off + n_origins * _INDEX.size
            targets_end = targets_off + n_targets * 8
            if max(index_end, asns_off + asns_nbytes, targets_end) > size:
                raise ShardError(
                    f"{self.path} is truncated ({size} bytes; "
                    f"index ends at {index_end})"
                )
            self.digest = digest.hex()
            if expected_digest is not None and self.digest != expected_digest:
                raise ShardError(
                    f"{self.path} was precomputed for graph "
                    f"{self.digest[:16]}, expected {expected_digest[:16]}"
                )
            fmt = asns_fmt.decode()
            asns_view = self._buf[asns_off : asns_off + asns_nbytes]
            self.asns = asns_view if fmt == "B" else asns_view.cast(fmt)
            self.targets: tuple[int, ...] = tuple(
                self._buf[targets_off:targets_end].cast("q")
            )
            self._index: dict[int, int] = {}
            for row in range(n_origins):
                origin, record_off = _INDEX.unpack_from(
                    self._buf, index_off + row * _INDEX.size
                )
                self._index[origin] = record_off
        except ShardError:
            self.close()
            raise
        except (struct.error, ValueError) as exc:
            self.close()
            raise ShardError(f"corrupted shard {self.path}: {exc}") from exc

    # -- queries --------------------------------------------------------
    @property
    def origins(self) -> tuple[int, ...]:
        return tuple(self._index)

    def __contains__(self, origin: int) -> bool:
        return origin in self._index

    def __len__(self) -> int:
        return len(self._index)

    def record_for(self, origin: int) -> MetricRecord:
        """``origin``'s metric row, payloads aliased onto the map."""
        record_off = self._index.get(origin)
        if record_off is None:
            raise KeyError(f"AS{origin} not in metric shard {self.path}")
        try:
            stored, flags, routed_count = _MET_REC.unpack_from(
                self._buf, record_off
            )
        except struct.error as exc:
            raise ShardError(
                f"corrupted shard {self.path}: record for AS{origin} "
                f"at {record_off} is out of bounds"
            ) from exc
        if stored != origin:
            raise ShardError(
                f"corrupted shard {self.path}: index points AS{origin} "
                f"at a record for AS{stored}"
            )
        views = []
        cursor = record_off + _MET_REC.size
        for field in _MET_FIELDS:
            try:
                fmt, offset, nbytes = _ENTRY.unpack_from(self._buf, cursor)
            except struct.error as exc:
                raise ShardError(
                    f"corrupted shard {self.path}: torn entry table "
                    f"for AS{origin}"
                ) from exc
            cursor += _ENTRY.size
            if fmt != b"d" or offset + nbytes > self._size:
                raise ShardError(
                    f"corrupted shard {self.path}: {field} of AS{origin} "
                    f"is malformed"
                )
            views.append(self._buf[offset : offset + nbytes].cast("d"))
        reliance, counts, hegemony = views
        return MetricRecord(
            origin,
            reliance,
            counts,
            hegemony,
            routed_count,
            bool(flags & _MET_EXACT_COUNTS),
        )

    close = ShardReader.close

    def __enter__(self) -> "MetricShardReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MetricShardStore:
    """Per-corpus metric shards behind one origin → row lookup.

    The serving tier for ``/reliance`` and ``/hegemony``: a query is an
    O(1) record lookup plus one float read.  ``hegemony`` answers only
    targets in the precomputed target set (and never the ``NaN``
    origin-diagonal); everything else returns ``None`` so callers fall
    back to the live kernels.
    """

    def __init__(self, readers: Sequence[MetricShardReader]) -> None:
        if not readers:
            raise ShardError("a metric shard store needs >= 1 reader")
        first = readers[0]
        self.digest: str = first.digest
        self.targets: tuple[int, ...] = first.targets
        self.trim: float = first.trim
        self._readers = tuple(readers)
        for reader in self._readers[1:]:
            if reader.targets != self.targets or reader.trim != self.trim:
                raise ShardError(
                    f"{reader.path} disagrees with {first.path} on the "
                    "hegemony target set or trim — rebuild with "
                    "`repro precompute --metrics --force`"
                )
        self._asns = first.asns
        self._col = {asn: k for k, asn in enumerate(self.targets)}
        self._where: dict[int, MetricShardReader] = {}
        for reader in self._readers:
            for origin in reader.origins:
                self._where.setdefault(origin, reader)

    # -- queries --------------------------------------------------------
    def __contains__(self, origin: int) -> bool:
        return origin in self._where

    def __len__(self) -> int:
        return len(self._where)

    def origins(self) -> tuple[int, ...]:
        return tuple(self._where)

    def _idx(self, asn: int) -> Optional[int]:
        i = bisect_left(self._asns, asn)
        if i < len(self._asns) and self._asns[i] == asn:
            return i
        return None

    def record_for(self, origin: int) -> MetricRecord:
        reader = self._where.get(origin)
        if reader is None:
            raise KeyError(f"AS{origin} has no precomputed metric row")
        return reader.record_for(origin)

    def reliance(self, origin: int, target: int) -> Optional[float]:
        """``rely(origin, target)``, or ``None`` when not precomputed.

        Bit-identical to ``reliance_from_state(state).get(target, 0.0)``:
        the stored vector is the kernel's mass list with seed entries
        zeroed (the dict path excludes seeds and zero-mass nodes, which
        the vector holds as 0.0).
        """
        reader = self._where.get(origin)
        if reader is None:
            return None
        i = self._idx(target)
        if i is None:
            return None
        return reader.record_for(origin).reliance[i]

    def hegemony(self, origin: int, target: int) -> Optional[float]:
        """``H(origin, target)``, or ``None`` when not precomputed.

        ``None`` for origins outside the corpus, targets outside the
        precomputed target set, and the ``target == origin`` diagonal
        (stored as NaN; the live path defines it per-query).
        """
        reader = self._where.get(origin)
        if reader is None:
            return None
        col = self._col.get(target)
        if col is None:
            return None
        value = reader.record_for(origin).hegemony[col]
        if math.isnan(value):
            return None
        return value

    def path_counts(self, origin: int) -> Optional[dict[int, int]]:
        """ASN-keyed tied-best-path counts, or ``None`` when the row is
        missing or the counts overflowed float64 (flagged at write)."""
        reader = self._where.get(origin)
        if reader is None:
            return None
        record = reader.record_for(origin)
        if not record.counts_exact:
            return None
        asns, counts = self._asns, record.counts
        return {
            asns[i]: int(counts[i])
            for i in range(len(counts))
            if counts[i]
        }

    def routed_count(self, origin: int) -> Optional[int]:
        reader = self._where.get(origin)
        if reader is None:
            return None
        return reader.record_for(origin).routed_count

    def close(self) -> None:
        for reader in self._readers:
            reader.close()


# ---------------------------------------------------------------------------
# corpus leases: which live processes have a store mapped
# ---------------------------------------------------------------------------


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def _acquire_lease(directory: Path) -> Path:
    lease_dir = directory / LEASE_DIR
    lease_dir.mkdir(exist_ok=True)
    path = lease_dir / f"{os.getpid()}-{os.urandom(4).hex()}.lease"
    path.write_text(json.dumps({"pid": os.getpid()}) + "\n")
    return path


def live_leases(directory: str | os.PathLike) -> list[Path]:
    """Lease files under ``directory`` whose process is still alive.

    These are the corpus's refcounts: :meth:`ShardStore.compact` and
    :func:`gc_corpora` refuse to touch a corpus with a live lease.
    Stale leases (dead pids) are ignored here and cleaned up by the
    compaction paths.
    """
    alive = []
    for path in sorted(Path(directory).glob(f"{LEASE_DIR}/*.lease")):
        pid = None
        try:
            pid = json.loads(path.read_text()).get("pid")
        except (OSError, json.JSONDecodeError, AttributeError):
            pass
        if pid is None:
            try:
                pid = int(path.name.split("-", 1)[0])
            except ValueError:
                continue
        if _pid_alive(int(pid)):
            alive.append(path)
    return alive


def _reap_stale_leases(directory: Path) -> None:
    live = set(live_leases(directory))
    for path in Path(directory).glob(f"{LEASE_DIR}/*.lease"):
        if path not in live:
            path.unlink(missing_ok=True)


# ---------------------------------------------------------------------------
# shard stores: a content-addressed directory of shards + manifest
# ---------------------------------------------------------------------------


class ShardStore:
    """A directory of shards behind one origin → state lookup.

    The directory holds ``manifest.json`` (graph digest, engine/vector
    knobs, per-shard origin ranges) and the shard files it names; origins
    resolve to their shard in O(1).  Open with :meth:`open`, which also
    accepts the *root* directory of a content-addressed tree — it then
    descends into ``<digest16>/`` for the supplied graph, falling back
    to scanning every corpus under the root for a matching digest (the
    newest wins) so renamed corpus directories keep working.

    When the manifest names metric shards (``repro precompute
    --metrics``), they are opened too and exposed as :attr:`metrics`
    (a :class:`MetricShardStore`, else ``None``).  ``lease=True``
    registers a pid lease under the corpus so compaction and GC know the
    store is live-mapped; :meth:`close` releases it.
    """

    def __init__(
        self,
        directory: Path,
        manifest: dict[str, Any],
        readers: Sequence[ShardReader],
        metrics: Optional[MetricShardStore] = None,
        lease: Optional[Path] = None,
    ) -> None:
        self.directory = directory
        self.manifest = manifest
        self.digest: str = manifest["graph_digest"]
        self.metrics = metrics
        self._lease = lease
        self._readers = tuple(readers)
        self._where: dict[int, ShardReader] = {}
        for reader in self._readers:
            for origin in reader.origins:
                self._where.setdefault(origin, reader)

    @classmethod
    def open(
        cls,
        directory: str | os.PathLike,
        graph=None,
        lease: bool = False,
    ) -> "ShardStore":
        """Open a shard directory (or a content-addressed root).

        With ``graph`` the store's digest is verified against it —
        mismatches raise :class:`ShardError` rather than silently
        serving states for a different topology — and a root with no
        matching corpus raises an error naming the expected digest.
        """
        root = Path(directory)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists() and graph is not None:
            digest = graph_digest(graph)
            candidate = root / digest[:16] / MANIFEST_NAME
            if candidate.exists():
                manifest_path = candidate
            else:
                manifest_path = _discover_corpus(root, digest)
        if not manifest_path.exists():
            raise ShardError(f"no {MANIFEST_NAME} under {root}")
        base = manifest_path.parent
        manifest = _load_manifest(manifest_path)
        digest = manifest["graph_digest"]
        readers: list[ShardReader] = []
        metric_readers: list[MetricShardReader] = []
        try:
            for entry in manifest.get("shards", ()):
                readers.append(
                    ShardReader(base / entry["file"], expected_digest=digest)
                )
            for entry in manifest.get("metric_shards", ()):
                metric_readers.append(
                    MetricShardReader(
                        base / entry["file"], expected_digest=digest
                    )
                )
        except ShardError:
            for reader in [*readers, *metric_readers]:
                reader.close()
            raise
        metrics = MetricShardStore(metric_readers) if metric_readers else None
        store = cls(
            base,
            manifest,
            readers,
            metrics=metrics,
            lease=_acquire_lease(base) if lease else None,
        )
        if graph is not None:
            try:
                store.verify(graph)
            except ShardError:
                store.close()
                raise
        return store

    def verify(self, graph) -> "ShardStore":
        """Raise :class:`ShardError` unless ``graph`` matches the store."""
        actual = graph_digest(graph)
        if actual != self.digest:
            raise ShardError(
                f"shard store {self.directory} was precomputed for graph "
                f"{self.digest[:16]}, but the serving graph is "
                f"{actual[:16]} — re-run `repro precompute`"
            )
        return self

    # -- queries --------------------------------------------------------
    def __contains__(self, origin: int) -> bool:
        return origin in self._where

    def __len__(self) -> int:
        return len(self._where)

    def origins(self) -> tuple[int, ...]:
        return tuple(self._where)

    def state_for(self, origin: int) -> CompiledRoutingState:
        reader = self._where.get(origin)
        if reader is None:
            raise KeyError(f"AS{origin} not in shard store {self.directory}")
        return reader.state_for(origin)

    def close(self) -> None:
        for reader in self._readers:
            reader.close()
        if self.metrics is not None:
            self.metrics.close()
        if self._lease is not None:
            self._lease.unlink(missing_ok=True)
            self._lease = None

    def __enter__(self) -> "ShardStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- compaction -----------------------------------------------------
    def compact(self, shard_size: Optional[int] = None) -> dict[str, Any]:
        """Merge rolling shard files into full-size ones, in place.

        Interrupted precomputes, ``shard_size`` flushes, and resume
        appends leave a corpus as many small files; this rewrites each
        record type into ``ceil(origins / shard_size)`` files (states
        and metric rows byte-identical — they round-trip through the
        same writers), atomically replaces the manifest, unlinks the
        superseded files, and reloads the store's readers.

        Refuses (:class:`ShardError`) while any *other* live process
        holds a lease on the corpus — their mmaps alias the very files
        compaction would delete.  Stale leases from dead pids are
        reaped.  Returns a stats dict (files/bytes before and after).
        """
        _reap_stale_leases(self.directory)
        others = [p for p in live_leases(self.directory) if p != self._lease]
        if others:
            raise ShardError(
                f"refusing to compact {self.directory}: "
                f"{len(others)} live lease(s) still map it "
                f"(e.g. {others[0].name})"
            )
        if shard_size is None:
            shard_size = int(
                self.manifest.get("shard_size", DEFAULT_SHARD_SIZE)
            )
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        stats = {
            "routing_files_before": len(self.manifest.get("shards", ())),
            "metric_files_before": len(
                self.manifest.get("metric_shards", ())
            ),
            "bytes_before": _manifest_bytes(self.manifest),
        }
        token = os.urandom(3).hex()
        manifest = dict(self.manifest)
        old_files: list[Path] = []

        routing_infos = list(manifest.get("shards", ()))
        if _needs_merge(routing_infos, shard_size):
            merged: list[dict[str, Any]] = []
            writer: Optional[ShardWriter] = None
            reference = self._readers[0]
            for reader in self._readers:
                for origin in reader.origins:
                    if writer is None:
                        name = f"shard-{token}-{len(merged):05d}.shard"
                        writer = ShardWriter(
                            self.directory / name,
                            digest=self.digest,
                            n_nodes=reference.n_nodes,
                            asns=reference._asns,
                        )
                    writer.add(origin, reader.state_for(origin))
                    if len(writer) >= shard_size:
                        writer.close()
                        merged.append(_shard_info(writer))
                        writer = None
            if writer is not None and len(writer):
                writer.close()
                merged.append(_shard_info(writer))
            old_files += [self.directory / e["file"] for e in routing_infos]
            manifest["shards"] = merged

        metric_infos = list(manifest.get("metric_shards", ()))
        if self.metrics is not None and _needs_merge(metric_infos, shard_size):
            merged = []
            mwriter: Optional[MetricShardWriter] = None
            reference_m = self.metrics._readers[0]
            for reader in self.metrics._readers:
                for origin in reader.origins:
                    if mwriter is None:
                        name = f"metrics-{token}-{len(merged):05d}.mshard"
                        mwriter = MetricShardWriter(
                            self.directory / name,
                            targets=self.metrics.targets,
                            trim=self.metrics.trim,
                            digest=self.digest,
                            n_nodes=reference_m.n_nodes,
                            asns=reference_m.asns,
                        )
                    record = reader.record_for(origin)
                    mwriter.add(
                        origin,
                        record.reliance,
                        record.counts,
                        record.hegemony,
                        record.routed_count,
                        record.counts_exact,
                    )
                    if len(mwriter) >= shard_size:
                        mwriter.close()
                        merged.append(_metric_shard_info(mwriter))
                        mwriter = None
            if mwriter is not None and len(mwriter):
                mwriter.close()
                merged.append(_metric_shard_info(mwriter))
            old_files += [self.directory / e["file"] for e in metric_infos]
            manifest["metric_shards"] = merged

        if old_files:
            manifest["shard_size"] = shard_size
            _write_manifest(self.directory, manifest)
            # manifest now names only the merged files; old readers may
            # still map the superseded ones — close them before unlink
            for reader in self._readers:
                reader.close()
            if self.metrics is not None:
                self.metrics.close()
            for path in old_files:
                path.unlink(missing_ok=True)
            fresh = ShardStore.open(self.directory)
            self.manifest = fresh.manifest
            self._readers = fresh._readers
            self._where = fresh._where
            self.metrics = fresh.metrics

        stats.update(
            routing_files_after=len(self.manifest.get("shards", ())),
            metric_files_after=len(self.manifest.get("metric_shards", ())),
            bytes_after=_manifest_bytes(self.manifest),
            merged=bool(old_files),
        )
        return stats


# ---------------------------------------------------------------------------
# precompute driver
# ---------------------------------------------------------------------------


def precompute_shards(
    graph,
    out_root: str | os.PathLike,
    origins: Optional[Sequence[int]] = None,
    workers: int | str | None = None,
    batch: Optional[int] = None,
    engine: Optional[str] = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    force: bool = False,
    progress=None,
) -> Path:
    """Precompute routing shards for ``origins`` (default: every AS).

    Fans the origin set through the bit-parallel batched sweeps of
    :func:`~repro.bgpsim.parallel.propagate_origins` (``workers``
    processes, ``REPRO_BATCH``-sized batches) and streams the per-origin
    states into shard files of ``shard_size`` origins under the
    content-addressed directory ``<out_root>/<digest16>/``, consuming
    each batch as it completes — peak memory stays O(batch) regardless
    of the origin-set size.  Writes ``manifest.json`` last (its presence
    marks the corpus complete); an existing complete corpus covering the
    requested origins is reused unless ``force``.

    A valid corpus that covers only *part* of the request is **resumed**,
    not discarded: its shard files are kept, only the missing origins are
    propagated (into new shards appended after the existing ones), and
    the merged manifest covers both — so extending a precomputed corpus
    to more origins costs only the new origins' sweeps.  ``force``
    rebuilds from scratch either way.

    Returns the content-addressed directory.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    from .engine import resolve_engine
    from .multiorigin import resolve_batch
    from .parallel import propagate_origins, resolve_workers
    from .shm import resolve_shm
    from .vectorized import resolve_vector

    cg: CompiledGraph = graph.compile()
    digest = graph_digest(cg)
    target = Path(out_root) / digest[:16]
    origin_list = (
        sorted(cg.asns) if origins is None else list(dict.fromkeys(origins))
    )
    existing_infos: list[dict[str, Any]] = []
    carried: dict[str, Any] = {}
    covered = 0
    if not force and (target / MANIFEST_NAME).exists():
        try:
            store = ShardStore.open(target)
        except ShardError:
            pass  # stale/torn corpus: rebuild below
        else:
            have = set(store.origins())
            existing_infos = list(store.manifest.get("shards", ()))
            # a resume must not drop the corpus's metric shards
            carried = {
                key: store.manifest[key]
                for key in store.manifest
                if key.startswith("metric_")
            }
            covered = len(have)
            store.close()
            if set(origin_list) <= have:
                return target
            # resume: keep the existing shards, compute only the gap
            origin_list = [o for o in origin_list if o not in have]
    target.mkdir(parents=True, exist_ok=True)

    shard_infos: list[dict[str, Any]] = list(existing_infos)
    writer: Optional[ShardWriter] = None
    done = 0
    try:
        for origin, state in propagate_origins(
            graph,
            origin_list,
            workers=workers,
            engine=engine,
            batch=batch,
        ):
            if writer is None:
                name = f"shard-{len(shard_infos):05d}.shard"
                writer = ShardWriter(target / name, cg)
            writer.add(origin, state)
            done += 1
            if progress is not None:
                progress(done, len(origin_list))
            if len(writer) >= shard_size:
                writer.close()
                shard_infos.append(_shard_info(writer))
                writer = None
        if writer is not None and len(writer):
            writer.close()
            shard_infos.append(_shard_info(writer))
            writer = None
    finally:
        if writer is not None:
            writer._handle.close()  # abandon unsealed on error

    manifest = {
        "format": "repro.bgpsim.shards",
        "version": _VERSION,
        "graph_digest": digest,
        "n_nodes": cg.n,
        "origins": covered + len(origin_list),
        "engine": resolve_engine(engine),
        "workers": resolve_workers(workers),
        "batch": resolve_batch(batch),
        "vector": resolve_vector(),
        "shm": resolve_shm(),
        "shard_size": shard_size,
        "shards": shard_infos,
        **carried,
    }
    _write_manifest(target, manifest)
    return target


def _shard_info(writer: ShardWriter) -> dict[str, Any]:
    origins = writer.origins
    return {
        "file": writer.path.name,
        "origins": len(origins),
        "first": min(origins),
        "last": max(origins),
        "bytes": writer.path.stat().st_size,
    }


_metric_shard_info = _shard_info  # same fields, same meaning


def _load_manifest(manifest_path: Path) -> dict[str, Any]:
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ShardError(f"unreadable manifest {manifest_path}: {exc}")
    if manifest.get("format") != "repro.bgpsim.shards":
        raise ShardError(f"{manifest_path} is not a shard manifest")
    if not manifest.get("graph_digest"):
        raise ShardError(f"{manifest_path} carries no graph digest")
    return manifest


def _write_manifest(directory: Path, manifest: dict[str, Any]) -> None:
    """Atomically replace a corpus manifest (tmp file + rename)."""
    final = directory / MANIFEST_NAME
    tmp = directory / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2) + "\n")
    os.replace(tmp, final)


def _manifest_bytes(manifest: dict[str, Any]) -> int:
    return sum(
        int(entry.get("bytes", 0))
        for key in ("shards", "metric_shards")
        for entry in manifest.get(key, ())
    )


def _needs_merge(infos: Sequence[dict[str, Any]], shard_size: int) -> bool:
    total = sum(int(entry["origins"]) for entry in infos)
    if not total:
        return False
    return len(infos) > -(-total // shard_size)


def _discover_corpus(root: Path, digest: str) -> Path:
    """The newest corpus manifest under ``root`` matching ``digest``.

    Scans one level of subdirectories (corpus dirs may have been
    renamed away from ``<digest16>``); several matches resolve to the
    most recently written manifest.  No match raises a
    :class:`ShardError` that names the digest the serving graph needs
    and every digest that *was* found.
    """
    matches: list[tuple[float, Path]] = []
    found: dict[str, str] = {}
    for manifest_path in sorted(root.glob(f"*/{MANIFEST_NAME}")):
        try:
            manifest = _load_manifest(manifest_path)
        except ShardError:
            continue  # torn or foreign manifest: not a candidate
        have = manifest["graph_digest"]
        found[manifest_path.parent.name] = have[:16]
        if have == digest:
            matches.append((manifest_path.stat().st_mtime, manifest_path))
    if matches:
        matches.sort()
        return matches[-1][1]
    others = (
        "; found corpora for "
        + ", ".join(f"{d} ({name}/)" for name, d in sorted(found.items()))
        if found
        else ""
    )
    raise ShardError(
        f"no shard corpus for graph {digest[:16]} under {root}{others} "
        f"— run `repro precompute` against the current topology"
    )


# ---------------------------------------------------------------------------
# metric precompute driver
# ---------------------------------------------------------------------------


def default_metric_targets(
    graph, count: int = DEFAULT_METRIC_TARGETS
) -> tuple[int, ...]:
    """The top-``count`` ASes by total adjacency, in ASN order.

    The deterministic default target set for precomputed hegemony rows:
    the paper's hegemony questions concern the highest-degree transit
    providers, and ties break toward the lower ASN so the set is stable
    across runs.
    """
    nodes = sorted(graph.nodes())
    ranked = sorted(
        nodes,
        key=lambda a: (
            -(
                len(graph.providers(a))
                + len(graph.customers(a))
                + len(graph.peers(a))
            ),
            a,
        ),
    )
    return tuple(sorted(ranked[: max(0, min(count, len(nodes)))]))


def _metric_row(state, origin: int, targets: tuple[int, ...], trim: float):
    """One origin's metric record payloads, via the live kernels.

    Every float comes out of the exact code path a live query runs —
    :func:`~repro.bgpsim.metrics_kernel.reliance_mass_kernel` (seeds
    then zeroed, matching the dict wrapper's exclusion) and the fused
    ``_hegemony_values`` row — so serving a stored value is
    bit-identical to kernel-per-request.
    """
    from ..core.hegemony import _hegemony_values
    from .metrics_kernel import (
        path_counts_indexed,
        reliance_mass_kernel,
        routed_count_kernel,
    )

    dag, mass = reliance_mass_kernel(state)
    reliance = array("d", mass)
    for i in dag.seed_idx:
        reliance[i] = 0.0
    counts = path_counts_indexed(state)
    counts_exact = all(c < 2**53 for c in counts)
    counts_vec = array("d", (float(c) for c in counts))
    hegemony = array("d", _hegemony_values(state, origin, targets, trim))
    return reliance, counts_vec, hegemony, routed_count_kernel(state), (
        counts_exact
    )


def precompute_metric_shards(
    graph,
    out_root: str | os.PathLike,
    origins: Optional[Sequence[int]] = None,
    targets: Optional[Sequence[int]] = None,
    trim: Optional[float] = None,
    workers: int | str | None = None,
    batch: Optional[int] = None,
    engine: Optional[str] = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    force: bool = False,
    progress=None,
) -> Path:
    """Precompute metric shards for ``origins`` (default: every AS).

    Streams per-origin states through
    ``RoutingStateCache.states_for_many(stream=True)`` — O(batch) peak
    memory at any corpus size, and served straight off the mmap disk
    tier when the corpus already holds routing shards — and writes each
    origin's reliance vector, tied-best-path counts, and fused hegemony
    row toward ``targets`` (default:
    :func:`default_metric_targets`) into metric shard files under the
    same content-addressed directory ``<out_root>/<digest16>/``.

    Resume semantics match :func:`precompute_shards`: existing metric
    shards are kept byte-untouched, only missing origins are computed
    (into new files appended after the existing ones), and the merged
    manifest covers both.  A resume must use the stored target set and
    trim — pass ``force=True`` to rebuild with different ones.

    Returns the content-addressed directory.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    from ..core.hegemony import TRIM
    from .cache import RoutingStateCache

    cg: CompiledGraph = graph.compile()
    digest = graph_digest(cg)
    target_dir = Path(out_root) / digest[:16]
    origin_list = (
        sorted(cg.asns) if origins is None else list(dict.fromkeys(origins))
    )

    manifest: dict[str, Any] = {}
    routing_store: Optional[ShardStore] = None
    if (target_dir / MANIFEST_NAME).exists():
        try:
            routing_store = ShardStore.open(target_dir)
        except ShardError:
            routing_store = None
        else:
            manifest = dict(routing_store.manifest)

    existing_infos: list[dict[str, Any]] = []
    covered = 0
    stored = routing_store.metrics if routing_store is not None else None
    if stored is not None and force:
        # rebuild: drop the old metric shards (routing shards untouched)
        for entry in manifest.get("metric_shards", ()):
            (target_dir / entry["file"]).unlink(missing_ok=True)
        stored.close()
        stored = None
        for key in [k for k in manifest if k.startswith("metric_")]:
            del manifest[key]
    if stored is not None:
        if targets is not None and tuple(targets) != stored.targets:
            routing_store.close()
            raise ShardError(
                f"corpus {target_dir} already holds metric shards for "
                f"{len(stored.targets)} targets; pass force=True to "
                "rebuild with a different target set"
            )
        if trim is not None and float(trim) != stored.trim:
            routing_store.close()
            raise ShardError(
                f"corpus {target_dir} already holds metric shards with "
                f"trim={stored.trim}; pass force=True to rebuild"
            )
        targets = stored.targets
        trim = stored.trim
        have = set(stored.origins())
        existing_infos = list(manifest.get("metric_shards", ()))
        covered = len(have)
        if set(origin_list) <= have:
            routing_store.close()
            return target_dir
        origin_list = [o for o in origin_list if o not in have]

    target_tuple = tuple(
        targets if targets is not None else default_metric_targets(graph)
    )
    unknown = [t for t in target_tuple if t not in graph]
    if unknown:
        if routing_store is not None:
            routing_store.close()
        raise ShardError(f"hegemony target AS{unknown[0]} not in graph")
    trim_value = TRIM if trim is None else float(trim)
    target_dir.mkdir(parents=True, exist_ok=True)

    cache = RoutingStateCache(
        graph, engine=engine, batch=batch, shards=routing_store
    )
    shard_infos: list[dict[str, Any]] = list(existing_infos)
    writer: Optional[MetricShardWriter] = None
    done = 0
    try:
        for origin, state in cache.states_for_many(
            origin_list, workers=workers, batch=batch, stream=True
        ):
            if writer is None:
                name = f"metrics-{len(shard_infos):05d}.mshard"
                writer = MetricShardWriter(
                    target_dir / name,
                    targets=target_tuple,
                    trim=trim_value,
                    digest=digest,
                    n_nodes=cg.n,
                    asns=cg.asns,
                )
            writer.add(origin, *_metric_row(state, origin, target_tuple,
                                            trim_value))
            done += 1
            if progress is not None:
                progress(done, len(origin_list))
            if len(writer) >= shard_size:
                writer.close()
                shard_infos.append(_metric_shard_info(writer))
                writer = None
        if writer is not None and len(writer):
            writer.close()
            shard_infos.append(_metric_shard_info(writer))
            writer = None
    finally:
        if writer is not None:
            writer._handle.close()  # abandon unsealed on error
        if routing_store is not None:
            routing_store.close()

    if not manifest:
        from .engine import resolve_engine
        from .multiorigin import resolve_batch
        from .shm import resolve_shm
        from .vectorized import resolve_vector

        manifest = {
            "format": "repro.bgpsim.shards",
            "version": _VERSION,
            "graph_digest": digest,
            "n_nodes": cg.n,
            "origins": 0,
            "engine": resolve_engine(engine),
            "workers": 1,
            "batch": resolve_batch(batch),
            "vector": resolve_vector(),
            "shm": resolve_shm(),
            "shard_size": shard_size,
            "shards": [],
        }
    manifest["metric_shards"] = shard_infos
    manifest["metric_targets"] = list(target_tuple)
    manifest["metric_trim"] = trim_value
    manifest["metric_origins"] = covered + len(origin_list)
    _write_manifest(target_dir, manifest)
    return target_dir


# ---------------------------------------------------------------------------
# garbage collection: retire corpora no retained graph can use
# ---------------------------------------------------------------------------


def gc_corpora(
    root: str | os.PathLike,
    keep_digests: Iterable[str],
) -> tuple[list[Path], list[Path], list[Path]]:
    """Delete corpora under ``root`` whose digest matches no kept graph.

    ``keep_digests`` holds the full sha256 digests of every retained
    topology snapshot (:func:`graph_digest`).  A corpus with a *live
    lease* — some running process still maps it — is refused rather
    than deleted, whatever its digest.  Stale leases (dead pids) are
    reaped first, so crashed servers do not pin garbage forever.

    Returns ``(removed, kept, refused)`` corpus directories.
    """
    keep = set(keep_digests)
    removed: list[Path] = []
    kept: list[Path] = []
    refused: list[Path] = []
    for manifest_path in sorted(Path(root).glob(f"*/{MANIFEST_NAME}")):
        corpus = manifest_path.parent
        try:
            manifest = _load_manifest(manifest_path)
        except ShardError:
            continue  # not a corpus of ours: never delete it
        if manifest["graph_digest"] in keep:
            kept.append(corpus)
            continue
        _reap_stale_leases(corpus)
        if live_leases(corpus):
            refused.append(corpus)
            continue
        shutil.rmtree(corpus)
        removed.append(corpus)
    return removed, kept, refused


def iter_store_states(
    store: ShardStore,
) -> Iterator[tuple[int, CompiledRoutingState]]:
    """``(origin, state)`` pairs for every origin in the store."""
    for origin in store.origins():
        yield origin, store.state_for(origin)
