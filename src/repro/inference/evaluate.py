"""Evaluation of inferred relationships against ground truth."""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..topology.asgraph import ASGraph
from ..topology.relationships import Relationship, RelationshipRecord


@dataclass(frozen=True)
class InferenceAccuracy:
    """Per-type and overall accuracy of a relationship inference run."""

    edges_evaluated: int
    correct: int
    p2c_total: int
    p2c_correct: int
    p2p_total: int
    p2p_correct: int
    unknown_edges: int  # inferred edges absent from the truth graph

    @property
    def accuracy(self) -> float:
        return self.correct / self.edges_evaluated if self.edges_evaluated else 0.0

    @property
    def p2c_accuracy(self) -> float:
        return self.p2c_correct / self.p2c_total if self.p2c_total else 0.0

    @property
    def p2p_accuracy(self) -> float:
        return self.p2p_correct / self.p2p_total if self.p2p_total else 0.0

    def summary(self) -> str:
        return (
            f"{self.edges_evaluated} edges: overall "
            f"{self.accuracy:.1%}, p2c {self.p2c_accuracy:.1%} "
            f"({self.p2c_total}), p2p {self.p2p_accuracy:.1%} "
            f"({self.p2p_total})"
        )


def evaluate_inference(
    truth: ASGraph, inferred: Iterable[RelationshipRecord]
) -> InferenceAccuracy:
    """Score inferred records against a ground-truth graph.

    Correctness for p2c requires the right direction; a p2p inference is
    correct iff the truth edge is p2p.  Inferred edges not present in the
    truth are counted separately (they indicate path-sanitization bugs —
    the collector only reports real adjacencies).
    """
    evaluated = correct = 0
    p2c_total = p2c_correct = 0
    p2p_total = p2p_correct = 0
    unknown = 0
    for record in inferred:
        actual = truth.relationship_between(record.left, record.right)
        if actual is None:
            unknown += 1
            continue
        evaluated += 1
        is_p2c_truth = actual is Relationship.PROVIDER_CUSTOMER
        if is_p2c_truth:
            p2c_total += 1
            if (
                record.relationship is Relationship.PROVIDER_CUSTOMER
                and record.right in truth.customers(record.left)
            ):
                p2c_correct += 1
                correct += 1
        else:
            p2p_total += 1
            if record.relationship is Relationship.PEER_PEER:
                p2p_correct += 1
                correct += 1
    return InferenceAccuracy(
        edges_evaluated=evaluated,
        correct=correct,
        p2c_total=p2c_total,
        p2c_correct=p2c_correct,
        p2p_total=p2p_total,
        p2p_correct=p2p_correct,
        unknown_edges=unknown,
    )


def coverage(truth: ASGraph, inferred: Iterable[RelationshipRecord]) -> float:
    """Fraction of true edges the inference produced a record for."""
    seen = {frozenset((r.left, r.right)) for r in inferred}
    total = truth.edge_count()
    if total == 0:
        return 0.0
    covered = sum(
        1
        for record in truth.records()
        if frozenset((record.left, record.right)) in seen
    )
    return covered / total
