"""Gao's AS-relationship inference heuristic (Gao 2001).

The classic algorithm behind all later relationship-inference work
(AS-Rank, ProbLink) and the lineage of the CAIDA dataset the paper uses:

1. every observed AS path is assumed valley-free: uphill (customer →
   provider) to a *top provider*, then downhill;
2. the top provider of a path is its highest-degree AS; edges before it
   accumulate "right is provider" votes, edges after it the reverse;
3. an edge voted in only one direction is provider-customer; an edge
   voted both ways is a sibling/mutual-transit candidate unless one
   direction dominates;
4. a refinement pass marks top edges between ASes of comparable degree as
   peer-to-peer.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from ..topology.asgraph import ASGraph
from ..topology.relationships import Relationship, RelationshipRecord
from .paths import clean_paths, observed_degree


@dataclass
class GaoParameters:
    """Tunables of the refined heuristic."""

    #: votes in the minority direction tolerated before calling a sibling
    sibling_vote_threshold: int = 1
    #: max degree ratio for a top edge to be considered a peering
    peer_degree_ratio: float = 60.0


@dataclass
class GaoResult:
    """Inferred relationships plus bookkeeping for inspection."""

    records: list[RelationshipRecord] = field(default_factory=list)
    provider_votes: dict[tuple[int, int], int] = field(default_factory=dict)
    siblings: set[frozenset[int]] = field(default_factory=set)

    def as_graph(self) -> ASGraph:
        graph = ASGraph()
        for record in self.records:
            graph.add_record(record)
        return graph

    def relationship_of(self, a: int, b: int):
        for record in self.records:
            if {record.left, record.right} == {a, b}:
                return record.relationship
        return None


def infer_gao(
    paths: Iterable[Sequence[int]],
    params: GaoParameters | None = None,
) -> GaoResult:
    """Run the refined Gao heuristic over observed AS paths."""
    params = params or GaoParameters()
    usable = clean_paths(paths)
    degree = observed_degree(usable)

    # phase 2: accumulate transit votes around each path's top provider
    votes: dict[tuple[int, int], int] = defaultdict(int)  # (cust, prov) -> n
    top_edges: set[frozenset[int]] = set()
    for path in usable:
        if len(path) < 2:
            continue
        top_index = max(range(len(path)), key=lambda i: (degree[path[i]], -i))
        for i in range(top_index):
            votes[(path[i], path[i + 1])] += 1  # uphill: right is provider
        for i in range(top_index, len(path) - 1):
            votes[(path[i + 1], path[i])] += 1  # downhill: left is provider
        if 0 < top_index:
            top_edges.add(frozenset((path[top_index - 1], path[top_index])))
        if top_index < len(path) - 1:
            top_edges.add(frozenset((path[top_index], path[top_index + 1])))

    # phase 3: classify every observed edge
    result = GaoResult(provider_votes=dict(votes))
    edges: set[frozenset[int]] = set()
    for (customer, provider) in votes:
        edges.add(frozenset((customer, provider)))

    classified: dict[frozenset[int], RelationshipRecord] = {}
    for edge in edges:
        a, b = sorted(edge)
        a_under_b = votes.get((a, b), 0)  # b provider of a
        b_under_a = votes.get((b, a), 0)
        if a_under_b and b_under_a:
            ratio = max(degree[a], degree[b]) / max(
                1, min(degree[a], degree[b])
            )
            balanced = (
                min(a_under_b, b_under_a) * 3 >= max(a_under_b, b_under_a)
            )
            if (
                edge in top_edges
                and balanced
                and ratio <= params.peer_degree_ratio
            ):
                # Gao's peering identification: a top edge between
                # comparable networks transited symmetrically is a peering
                classified[edge] = RelationshipRecord(
                    a, b, Relationship.PEER_PEER
                )
            elif min(a_under_b, b_under_a) > params.sibling_vote_threshold:
                # mutual transit: report as sibling (kept out of records —
                # the CAIDA public files omit siblings too)
                result.siblings.add(edge)
            elif a_under_b >= b_under_a:
                classified[edge] = RelationshipRecord(
                    b, a, Relationship.PROVIDER_CUSTOMER
                )
            else:
                classified[edge] = RelationshipRecord(
                    a, b, Relationship.PROVIDER_CUSTOMER
                )
        elif a_under_b:
            classified[edge] = RelationshipRecord(
                b, a, Relationship.PROVIDER_CUSTOMER
            )
        else:
            classified[edge] = RelationshipRecord(
                a, b, Relationship.PROVIDER_CUSTOMER
            )

    # phase 4 (refinement): a one-way-voted top edge whose "customer" side
    # never visibly provides transit is indistinguishable from a stub
    # peering (the final peer hop of a valley-free path); demote it when it
    # also never appears below a path top — a real provider would re-export
    # the customer's routes upward, placing the edge under higher tops.
    from .paths import observed_transit_degree

    transit_degree = observed_transit_degree(usable)
    for edge in top_edges:
        if edge in result.siblings or edge not in classified:
            continue
        record = classified[edge]
        if record.relationship is Relationship.PEER_PEER:
            continue
        customer, provider = record.right, record.left
        one_way = (
            min(
                votes.get((customer, provider), 0),
                votes.get((provider, customer), 0),
            )
            == 0
        )
        if (
            one_way
            and transit_degree.get(customer, 0) == 0
            and _edge_only_at_top(edge, usable, degree)
        ):
            a, b = sorted(edge)
            classified[edge] = RelationshipRecord(
                a, b, Relationship.PEER_PEER
            )
    result.records = sorted(
        classified.values(), key=lambda r: (r.left, r.right)
    )
    return result


def _edge_only_at_top(
    edge: frozenset[int],
    paths: list[tuple[int, ...]],
    degree: dict[int, int],
) -> bool:
    """True if the edge only ever appears adjacent to the path top."""
    for path in paths:
        top_index = max(range(len(path)), key=lambda i: (degree[path[i]], -i))
        for i in range(len(path) - 1):
            if frozenset((path[i], path[i + 1])) == edge:
                if abs(i - top_index) > 1 and abs(i + 1 - top_index) > 1:
                    return False
    return True
