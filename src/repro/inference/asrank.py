"""AS-Rank-style relationship inference (Luckie et al. 2013, simplified).

The successor to Gao's heuristic and the direct ancestor of the CAIDA
serial-1/serial-2 files the paper consumes.  The full algorithm has ~14
steps; this implementation keeps its load-bearing ideas:

1. compute *transit degree* from the observed paths;
2. infer the Tier-1 **clique**: the maximal set of high-transit-degree
   ASes that are mutually adjacent in the paths;
3. anchor each path at its clique member (falling back to the highest
   transit degree AS) and accumulate c2p votes on the uphill/downhill
   segments — with the valley-free constraint that nothing is *above*
   a clique member;
4. classify: consistently one-directional edges are p2c; clique-clique
   edges and edges that only ever straddle path apexes are p2p; leftover
   ambiguous edges fall back to transit-degree ordering.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from ..topology.asgraph import ASGraph
from ..topology.relationships import Relationship, RelationshipRecord
from .paths import (
    clean_paths,
    observed_adjacencies,
    observed_degree,
    observed_transit_degree,
)


@dataclass
class ASRankResult:
    records: list[RelationshipRecord] = field(default_factory=list)
    clique: frozenset[int] = frozenset()
    transit_degree: dict[int, int] = field(default_factory=dict)

    def as_graph(self) -> ASGraph:
        graph = ASGraph()
        for record in self.records:
            graph.add_record(record)
        return graph


def infer_clique_from_paths(
    paths: list[tuple[int, ...]],
    transit_degree: dict[int, int],
    candidates: int = 12,
) -> frozenset[int]:
    """Greedy clique over path adjacency among top transit-degree ASes."""
    adjacency = observed_adjacencies(paths)
    ranked = sorted(
        transit_degree, key=lambda a: (-transit_degree[a], a)
    )[:candidates]
    clique: list[int] = []
    for asn in ranked:
        if all(frozenset((asn, member)) in adjacency for member in clique):
            clique.append(asn)
    return frozenset(clique)


def infer_asrank(
    paths: Iterable[Sequence[int]],
    clique: frozenset[int] | None = None,
) -> ASRankResult:
    """Simplified AS-Rank inference over observed AS paths."""
    usable = clean_paths(paths)
    transit_degree = observed_transit_degree(usable)
    degree = observed_degree(usable)
    for asn in degree:
        transit_degree.setdefault(asn, 0)
    if clique is None:
        clique = infer_clique_from_paths(usable, transit_degree)

    def apex_index(path: tuple[int, ...]) -> int:
        in_clique = [i for i, asn in enumerate(path) if asn in clique]
        if in_clique:
            return in_clique[0]
        return max(
            range(len(path)),
            key=lambda i: (transit_degree[path[i]], degree[path[i]], -i),
        )

    # --- round 1: high-precision votes away from the apex ------------------
    # Valley-free guarantees the single peer hop sits at the apex, so edges
    # strictly below it on either side are unambiguously c2p.
    votes: dict[tuple[int, int], int] = defaultdict(int)  # (cust, prov)
    for path in usable:
        if len(path) < 2:
            continue
        apex = apex_index(path)
        for i in range(max(0, apex - 1)):
            votes[(path[i], path[i + 1])] += 1
        for i in range(apex + 1, len(path) - 1):
            votes[(path[i + 1], path[i])] += 1

    def voted_c2p(customer: int, provider: int) -> bool:
        return votes.get((customer, provider), 0) > votes.get(
            (provider, customer), 0
        )

    # --- round 2: resolve apex-adjacent edges using round-1 knowledge ------
    # (AS-Rank's "customers of clique members": when the announcement
    # passes *through* an apex AS toward a non-customer, the far side must
    # be the apex's customer.)
    for path in usable:
        if len(path) < 3:
            continue
        apex = apex_index(path)
        if 1 <= apex < len(path) - 1:
            before, at, after = path[apex - 1], path[apex], path[apex + 1]
            if not voted_c2p(before, at) and not voted_c2p(at, before):
                # the collector-side hop is not visibly below the apex, so
                # the route crossed the apex sideways/upward: customer rule
                votes[(after, at)] += 1

    result = ASRankResult(clique=clique, transit_degree=dict(transit_degree))
    classified: dict[frozenset[int], RelationshipRecord] = {}
    for edge in observed_adjacencies(usable):
        a, b = sorted(edge)
        if a in clique and b in clique:
            classified[edge] = RelationshipRecord(a, b, Relationship.PEER_PEER)
            continue
        a_under_b = votes.get((a, b), 0)
        b_under_a = votes.get((b, a), 0)
        if a_under_b and not b_under_a:
            classified[edge] = RelationshipRecord(
                b, a, Relationship.PROVIDER_CUSTOMER
            )
        elif b_under_a and not a_under_b:
            classified[edge] = RelationshipRecord(
                a, b, Relationship.PROVIDER_CUSTOMER
            )
        elif not a_under_b and not b_under_a:
            # only ever observed straddling apexes → peering
            classified[edge] = RelationshipRecord(a, b, Relationship.PEER_PEER)
        elif max(a_under_b, b_under_a) >= 3 * min(a_under_b, b_under_a):
            if a_under_b > b_under_a:
                classified[edge] = RelationshipRecord(
                    b, a, Relationship.PROVIDER_CUSTOMER
                )
            else:
                classified[edge] = RelationshipRecord(
                    a, b, Relationship.PROVIDER_CUSTOMER
                )
        else:
            # genuinely conflicted: comparable transit degrees look like a
            # peering, otherwise the bigger network is the provider
            lo, hi = sorted((transit_degree[a], transit_degree[b]))
            if hi == 0 or lo / hi > 0.2:
                classified[edge] = RelationshipRecord(
                    a, b, Relationship.PEER_PEER
                )
            elif transit_degree[a] >= transit_degree[b]:
                classified[edge] = RelationshipRecord(
                    a, b, Relationship.PROVIDER_CUSTOMER
                )
            else:
                classified[edge] = RelationshipRecord(
                    b, a, Relationship.PROVIDER_CUSTOMER
                )
    result.records = sorted(
        classified.values(), key=lambda r: (r.left, r.right)
    )
    return result
