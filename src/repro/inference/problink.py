"""ProbLink-style probabilistic relationship inference (Jin et al. 2019).

ProbLink — the paper's cited state of the art (§2.3) — replaces AS-Rank's
hard heuristics with a naive-Bayes model over per-link features, seeded by
a conventional inference and iterated until stable.  This implementation
keeps that structure:

* **seed**: AS-Rank-style labels provide the initial assignment;
* **features** (per link, from the observed paths): how many vantage
  points observe it, whether it is ever observed *below* another link
  (non-apex), the endpoint transit-degree ratio, and the fraction of
  triplets in which the link is crossed toward a known customer edge
  (ProbLink's triplet feature);
* **iterate**: naive-Bayes posteriors are re-estimated from the current
  labels and links are re-assigned until no label changes (or a round
  limit).
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from ..topology.asgraph import ASGraph
from ..topology.relationships import Relationship, RelationshipRecord
from .asrank import infer_asrank
from .paths import clean_paths, observed_transit_degree


@dataclass(frozen=True)
class LinkFeatures:
    """Discretized per-link evidence vector."""

    vantage_points: int  # how many distinct first-hop monitors saw it
    seen_non_apex: bool  # ever observed away from a path apex
    degree_ratio_bucket: int  # 0: ~equal, 1: skewed, 2: very skewed
    triplet_bucket: int  # 0: never above a customer edge, 1: sometimes, 2: mostly

    def as_tuple(self) -> tuple[int, bool, int, int]:
        return (
            min(self.vantage_points, 5),
            self.seen_non_apex,
            self.degree_ratio_bucket,
            self.triplet_bucket,
        )


@dataclass
class ProbLinkResult:
    records: list[RelationshipRecord] = field(default_factory=list)
    iterations: int = 0
    features: dict[frozenset[int], LinkFeatures] = field(default_factory=dict)

    def as_graph(self) -> ASGraph:
        graph = ASGraph()
        for record in self.records:
            graph.add_record(record)
        return graph


def _degree_ratio_bucket(a: int, b: int, transit_degree: dict[int, int]) -> int:
    lo, hi = sorted((transit_degree.get(a, 0), transit_degree.get(b, 0)))
    if hi == 0 or (lo and hi / max(lo, 1) <= 3):
        return 0
    if lo and hi / lo <= 20:
        return 1
    return 2


def extract_features(
    paths: Sequence[tuple[int, ...]],
    transit_degree: dict[int, int],
    customer_edges: set[tuple[int, int]],
) -> dict[frozenset[int], LinkFeatures]:
    """Per-link feature vectors from the observed paths.

    ``customer_edges`` is the current set of (customer, provider) pairs —
    the triplet feature counts how often a link is immediately followed by
    a descent into a known customer edge.
    """
    vantage: dict[frozenset[int], set[int]] = defaultdict(set)
    non_apex: dict[frozenset[int], bool] = defaultdict(bool)
    triplet_hits: dict[frozenset[int], int] = defaultdict(int)
    triplet_total: dict[frozenset[int], int] = defaultdict(int)
    for path in paths:
        if len(path) < 2:
            continue
        apex = max(
            range(len(path)),
            key=lambda i: (transit_degree.get(path[i], 0), -i),
        )
        monitor = path[0]
        for i in range(len(path) - 1):
            edge = frozenset((path[i], path[i + 1]))
            vantage[edge].add(monitor)
            if abs(i - apex) > 1 and abs(i + 1 - apex) > 1:
                non_apex[edge] = True
            if i + 2 < len(path):
                triplet_total[edge] += 1
                if (path[i + 2], path[i + 1]) in customer_edges:
                    triplet_hits[edge] += 1
    features: dict[frozenset[int], LinkFeatures] = {}
    for edge, monitors in vantage.items():
        a, b = sorted(edge)
        total = triplet_total.get(edge, 0)
        hits = triplet_hits.get(edge, 0)
        if total == 0:
            triplet_bucket = 0
        elif hits == 0:
            triplet_bucket = 0
        elif hits * 2 >= total:
            triplet_bucket = 2
        else:
            triplet_bucket = 1
        features[edge] = LinkFeatures(
            vantage_points=len(monitors),
            seen_non_apex=non_apex.get(edge, False),
            degree_ratio_bucket=_degree_ratio_bucket(a, b, transit_degree),
            triplet_bucket=triplet_bucket,
        )
    return features


def _naive_bayes_round(
    features: dict[frozenset[int], LinkFeatures],
    labels: dict[frozenset[int], Relationship],
    priors_floor: float = 1.0,
) -> dict[frozenset[int], Relationship]:
    """One naive-Bayes re-estimation + re-assignment round."""
    classes = (Relationship.PROVIDER_CUSTOMER, Relationship.PEER_PEER)
    counts = {c: priors_floor for c in classes}
    feature_counts: dict[tuple[int, object, Relationship], float] = (
        defaultdict(lambda: priors_floor)
    )
    for edge, label in labels.items():
        counts[label] += 1.0
        vector = features[edge].as_tuple()
        for index, value in enumerate(vector):
            feature_counts[(index, value, label)] += 1.0
    total = sum(counts.values())
    new_labels: dict[frozenset[int], Relationship] = {}
    for edge, feature in features.items():
        vector = feature.as_tuple()
        best_label, best_score = None, -math.inf
        for label in classes:
            score = math.log(counts[label] / total)
            for index, value in enumerate(vector):
                numerator = feature_counts[(index, value, label)]
                score += math.log(numerator / (counts[label] + priors_floor * 8))
            if score > best_score:
                best_label, best_score = label, score
        new_labels[edge] = best_label
    return new_labels


def infer_problink(
    paths: Iterable[Sequence[int]],
    max_rounds: int = 10,
) -> ProbLinkResult:
    """ProbLink-style inference: AS-Rank seed + iterated naive Bayes.

    The probabilistic stage only reconsiders the p2c/p2p *type* of each
    link; the p2c *direction* is taken from the seed (ProbLink does the
    same — direction mistakes are rare, type mistakes are the problem).
    """
    usable = clean_paths(paths)
    seed = infer_asrank(usable)
    transit_degree = dict(seed.transit_degree)

    direction: dict[frozenset[int], RelationshipRecord] = {}
    labels: dict[frozenset[int], Relationship] = {}
    for record in seed.records:
        edge = frozenset((record.left, record.right))
        direction[edge] = record
        labels[edge] = record.relationship

    iterations = 0
    features: dict[frozenset[int], LinkFeatures] = {}
    for _ in range(max_rounds):
        iterations += 1
        customer_edges = {
            (rec.right, rec.left)
            for edge, rec in direction.items()
            if labels[edge] is Relationship.PROVIDER_CUSTOMER
        }
        features = extract_features(usable, transit_degree, customer_edges)
        # links with no features (shouldn't happen) keep their seed labels
        relabeled = _naive_bayes_round(
            {e: f for e, f in features.items() if e in labels}, labels
        )
        changed = sum(
            1 for edge, label in relabeled.items() if labels[edge] is not label
        )
        labels.update(relabeled)
        if changed == 0:
            break

    records = []
    for edge, record in direction.items():
        label = labels[edge]
        a, b = sorted(edge)
        if label is Relationship.PEER_PEER:
            records.append(RelationshipRecord(a, b, Relationship.PEER_PEER))
        elif record.relationship is Relationship.PROVIDER_CUSTOMER:
            records.append(record)  # keep the seed's direction
        else:
            # seed said peer, model says transit: bigger network provides
            provider, customer = sorted(
                (a, b), key=lambda x: -transit_degree.get(x, 0)
            )
            records.append(
                RelationshipRecord(
                    provider, customer, Relationship.PROVIDER_CUSTOMER
                )
            )
    records.sort(key=lambda r: (r.left, r.right))
    return ProbLinkResult(
        records=records, iterations=iterations, features=features
    )
