"""Shared statistics over collections of observed AS paths."""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence


def clean_paths(paths: Iterable[Sequence[int]]) -> list[tuple[int, ...]]:
    """Deduplicate consecutive repeats (prepending) and drop paths with
    loops — standard BGP path sanitization."""
    cleaned: list[tuple[int, ...]] = []
    for path in paths:
        deduped: list[int] = []
        for asn in path:
            if not deduped or deduped[-1] != asn:
                deduped.append(asn)
        if len(set(deduped)) != len(deduped):
            continue  # loop: poisoned or corrupted path
        if len(deduped) >= 1:
            cleaned.append(tuple(deduped))
    return cleaned


def observed_degree(paths: Iterable[Sequence[int]]) -> dict[int, int]:
    """Node degree as observed in the paths (Gao's degree signal)."""
    neighbors: dict[int, set[int]] = defaultdict(set)
    for path in paths:
        for a, b in zip(path, path[1:]):
            neighbors[a].add(b)
            neighbors[b].add(a)
    return {asn: len(adj) for asn, adj in neighbors.items()}


def observed_adjacencies(
    paths: Iterable[Sequence[int]],
) -> set[frozenset[int]]:
    """All AS pairs seen adjacent on any path."""
    edges: set[frozenset[int]] = set()
    for path in paths:
        for a, b in zip(path, path[1:]):
            if a != b:
                edges.add(frozenset((a, b)))
    return edges


def observed_transit_degree(
    paths: Iterable[Sequence[int]],
) -> dict[int, int]:
    """AS-Rank's transit degree: unique neighbors of an AS when it appears
    in the *middle* of a path (i.e. visibly providing transit)."""
    neighbors: dict[int, set[int]] = defaultdict(set)
    for path in paths:
        for i in range(1, len(path) - 1):
            neighbors[path[i]].add(path[i - 1])
            neighbors[path[i]].add(path[i + 1])
    return {asn: len(adj) for asn, adj in neighbors.items()}
