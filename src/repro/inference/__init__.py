"""AS-relationship inference from observed AS paths (Gao, AS-Rank-style)."""

from .asrank import ASRankResult, infer_asrank, infer_clique_from_paths
from .evaluate import InferenceAccuracy, coverage, evaluate_inference
from .gao import GaoParameters, GaoResult, infer_gao
from .problink import (
    LinkFeatures,
    ProbLinkResult,
    extract_features,
    infer_problink,
)
from .paths import (
    clean_paths,
    observed_adjacencies,
    observed_degree,
    observed_transit_degree,
)

__all__ = [
    "ASRankResult",
    "GaoParameters",
    "GaoResult",
    "InferenceAccuracy",
    "LinkFeatures",
    "ProbLinkResult",
    "extract_features",
    "infer_problink",
    "clean_paths",
    "coverage",
    "evaluate_inference",
    "infer_asrank",
    "infer_clique_from_paths",
    "infer_gao",
    "observed_adjacencies",
    "observed_degree",
    "observed_transit_degree",
]
