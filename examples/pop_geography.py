#!/usr/bin/env python3
"""PoP geography study (§9): deployments, rDNS locations, user proximity.

1. Consolidates each provider's PoP map from network maps, looking
   glasses, PeeringDB facilities and rDNS hostnames (Table 3).
2. Shows the rDNS location-extraction pipeline: MIDAR-style alias
   resolution, sc_hoiho-style naming-convention learning, and the manual
   regex it must agree with.
3. Computes population coverage within 500/700/1000 km of each cohort's
   PoPs (Figs. 11/12).

Run:  python examples/pop_geography.py [profile]
"""

import random
import sys

from repro.experiments import build_context, fig11_map, fig12_coverage
from repro.mapping import peeringdb_from_scenario
from repro.pops import (
    ConventionLearner,
    ProbeSimulator,
    alias_groups_to_hostnames,
    collect_rdns,
    consolidate_scenario,
    convention_for,
    extract_with_regex,
    regex_for_convention,
    resolve_aliases,
)

profile = sys.argv[1] if len(sys.argv) > 1 else "tiny"
print(f"building scenario ({profile})...")
ctx = build_context(profile, measure=False)
scenario = ctx.scenario

# --- Table 3: consolidated PoP maps --------------------------------------
pdb = peeringdb_from_scenario(scenario)
consolidation = consolidate_scenario(scenario, pdb)
print("\nTable 3 — consolidated PoPs and rDNS confirmation:")
for row in consolidation.table3()[:8]:
    print(
        f"  {row.provider:22s} pops={row.graph_pops:3d} "
        f"hostnames={row.hostnames:4d} rDNS={row.rdns_percent:5.1f}%"
    )

# --- rDNS location extraction --------------------------------------------
provider = "Hurricane Electric"
footprint = consolidation.footprints[provider]
rdns = collect_rdns([footprint])
routers = footprint.routers[:12]
prober = ProbeSimulator(routers, seed=1)
addresses = [ip for router in routers for ip in router.interfaces]
groups = resolve_aliases(prober, addresses, seed=2)
hostname_groups = alias_groups_to_hostnames(groups, rdns.lookup)
hostnames = [name for group in hostname_groups for name in group]
learned = ConventionLearner().learn([r.hostname for r in footprint.routers if r.hostname])
manual = regex_for_convention(convention_for(provider))
print(f"\n{provider}: {len(groups)} routers from {len(addresses)} interfaces")
for name in hostnames[:3]:
    code_learned = learned.extract(name) if learned else None
    code_manual = extract_with_regex(name, manual)
    agreement = "==" if code_learned == code_manual else "!="
    print(f"  {name}: learned={code_learned} {agreement} manual={code_manual}")

# --- Figs. 11/12 -----------------------------------------------------------
print("\nFig. 11 — deployment overlap:")
r11 = fig11_map.run(ctx)
print(f"  cloud-only metros:   {sorted(r11.cloud_only)}")
print(f"  shared metros:       {len(r11.both)}")
print(f"  transit-only metros: {len(r11.transit_only)}")

r12 = fig12_coverage.run(ctx)
clouds = r12.cohort("clouds")
transit = r12.cohort("transit")
print("\nFig. 12 — population within X km of a PoP:")
for radius in (500, 700, 1000):
    print(
        f"  {radius:4d} km: clouds {clouds.percent(radius):5.1f}%   "
        f"transit {transit.percent(radius):5.1f}%"
    )
