#!/usr/bin/env python3
"""The paper's full measurement pipeline, end to end (§4-§6).

1. Generate a synthetic Internet (ground truth known).
2. Run traceroute campaigns from VMs inside each cloud provider.
3. Infer each cloud's neighbors with the final §5 methodology and
   validate against ground truth (FDR/FNR).
4. Augment the BGP-visible (CAIDA-style) graph with the inferred peers.
5. Compute hierarchy-free reachability on the augmented graph and compare
   against what BGP data alone would have shown.

Run:  python examples/cloud_measurement_pipeline.py [profile]
(profiles: tiny, small, year2020 — tiny runs in seconds)
"""

import sys

from repro.core import hierarchy_free_reachability
from repro.experiments import build_context
from repro.experiments.report import format_table, percent

profile = sys.argv[1] if len(sys.argv) > 1 else "tiny"
print(f"building scenario + running campaign ({profile})...")
ctx = build_context(profile)
scenario = ctx.scenario

rows = []
for name, asn in scenario.clouds.items():
    report = ctx.validation_reports()[asn]
    bgp_only = len(scenario.visible_cloud_neighbors(asn))
    hfr_bgp = hierarchy_free_reachability(
        scenario.public_graph, asn, scenario.tiers
    )
    hfr_aug = hierarchy_free_reachability(ctx.graph, asn, scenario.tiers)
    rows.append(
        (
            name,
            bgp_only,
            report.inferred_count,
            report.truth_count,
            percent(report.fdr),
            percent(report.fnr),
            hfr_bgp,
            hfr_aug,
        )
    )

print()
print(
    format_table(
        (
            "cloud",
            "BGP peers",
            "inferred",
            "truth",
            "FDR",
            "FNR",
            "HFR (BGP only)",
            "HFR (augmented)",
        ),
        rows,
        title="Cloud neighbor discovery and its effect on hierarchy-free "
        "reachability",
    )
)
total = len(ctx.graph) - 1
print(f"\n({total + 1} ASes in the topology; HFR counts reachable ASes)")
print(
    "\nBGP feeds alone miss most cloud peerings, drastically"
    " underestimating how much of the Internet the clouds can reach"
    " without the Tier-1/Tier-2 hierarchy."
)
