#!/usr/bin/env python3
"""Archive a scenario and share reproducible artifacts.

Measurement papers ship their datasets; this example shows the synthetic
equivalents this toolkit produces:

1. a full scenario archive (JSON, ground truth included) that reloads
   bit-identically on any machine;
2. the CAIDA-format relationship file (what the paper's §4.1 consumes);
3. a collector RIB dump (MRT-like) and the derived RouteViews-style
   prefix-to-AS file (the paper's reference [19]).

Run:  python examples/archive_and_share.py [profile] [output_dir]
"""

import random
import sys
from pathlib import Path

from repro.collectors import collect_ribs, dump_mrt
from repro.mapping import dump_pfx2as, pfx2as_from_dump
from repro.netgen import build_scenario, load_scenario, profile, save_scenario
from repro.topology import dump_graph

profile_name = sys.argv[1] if len(sys.argv) > 1 else "tiny"
out = Path(sys.argv[2] if len(sys.argv) > 2 else "artifacts")
out.mkdir(parents=True, exist_ok=True)

print(f"building scenario ({profile_name})...")
scenario = build_scenario(profile(profile_name))

archive = out / f"{profile_name}.scenario.json.gz"
save_scenario(scenario, archive)
print(f"  scenario archive:   {archive} ({archive.stat().st_size:,} bytes)")

rel = out / f"{profile_name}.as-rel2.txt"
dump_graph(scenario.graph, rel, serial=2, header=f"profile={profile_name}")
print(f"  relationship file:  {rel}")

dump = collect_ribs(
    scenario.graph, scenario.monitors, scenario.prefixes,
    rng=random.Random(1),
)
mrt = out / f"{profile_name}.rib.txt"
with open(mrt, "w", encoding="utf-8") as handle:
    dump_mrt(dump, handle)
print(f"  collector dump:     {mrt} ({len(dump)} entries)")

pfx2as = out / f"{profile_name}.pfx2as"
dump_pfx2as(pfx2as_from_dump(dump), pfx2as)
print(f"  prefix-to-AS file:  {pfx2as}")

# prove the archive round-trips
restored = load_scenario(archive)
assert restored.summary() == scenario.summary()
assert set(restored.graph.records()) == set(scenario.graph.records())
print("\narchive verified: reload is identical to the generated scenario")
print(
    "Anyone can now rerun every experiment against these files without"
    " regenerating anything."
)
