#!/usr/bin/env python3
"""Quickstart: hierarchy-free reachability in ~40 lines.

Builds a small AS topology by hand (a Tier-1 clique, two Tier-2s, a cloud
provider with rich peering, and a handful of edge networks), then computes
the paper's metric family for the cloud:

    provider-free   reach(o, I \\ P_o)
    Tier-1-free     reach(o, I \\ P_o \\ T1)
    hierarchy-free  reach(o, I \\ P_o \\ T1 \\ T2)

Run:  python examples/quickstart.py
"""

from repro.core import reachability_report
from repro.topology import ASGraph, TierAssignment

CLOUD = 15169

graph = ASGraph()
# Tier-1 clique
graph.add_p2p(1, 2)
# Tier-2s buy transit from the Tier-1s
graph.add_p2c(1, 11)
graph.add_p2c(2, 12)
graph.add_p2p(11, 12)
# the cloud buys transit from one Tier-2 and peers broadly
graph.add_p2c(11, CLOUD)
graph.add_p2p(CLOUD, 12)
graph.add_p2p(CLOUD, 2)
# edge networks: regional ISP with a customer, eyeballs, content
graph.add_p2c(11, 201)
graph.add_p2c(201, 204)
graph.add_p2c(12, 202)
graph.add_p2c(12, 301)
graph.add_p2c(1, 203)
graph.add_p2p(CLOUD, 201)
graph.add_p2p(CLOUD, 202)

tiers = TierAssignment(tier1=frozenset({1, 2}), tier2=frozenset({11, 12}))

report = reachability_report(graph, CLOUD, tiers)
total = len(graph) - 1

print(f"AS{CLOUD} in a {len(graph)}-AS Internet")
print(f"  full reachability:        {report.full:2d} / {total}")
print(f"  provider-free:            {report.provider_free:2d} / {total}")
print(f"  Tier-1-free:              {report.tier1_free:2d} / {total}")
print(f"  hierarchy-free:           {report.hierarchy_free:2d} / {total}")
print()
print(
    "Even bypassing its transit provider and every Tier-1/Tier-2, the"
    f" cloud still reaches {report.hierarchy_free} networks through its"
    " peering footprint."
)
