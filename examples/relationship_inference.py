#!/usr/bin/env python3
"""The upstream of the paper's dataset: inferring AS relationships.

The paper consumes CAIDA's AS-relationship files, which are themselves
inferred from AS paths observed at public route collectors.  This example
regenerates that pipeline end to end on a synthetic Internet:

1. simulate RouteViews-style collectors peering with the scenario's
   monitor ASes and dump their RIBs (MRT-like text);
2. run three generations of inference algorithms over the observed paths —
   Gao (2001), an AS-Rank-style voter (2013), and a ProbLink-style
   naive-Bayes classifier (2019);
3. score each against the known ground truth.

Expected shape (it mirrors the literature): Gao is weakest, especially on
peerings; AS-Rank nails transit edges; ProbLink closes the p2p gap.

Run:  python examples/relationship_inference.py [profile]
"""

import random
import sys

from repro.collectors import collect_ribs, dumps_mrt, parse_mrt
from repro.inference import (
    coverage,
    evaluate_inference,
    infer_asrank,
    infer_gao,
    infer_problink,
)
from repro.netgen import build_scenario, profile

profile_name = sys.argv[1] if len(sys.argv) > 1 else "tiny"
print(f"building scenario ({profile_name})...")
scenario = build_scenario(profile(profile_name))

print(f"collecting RIBs from {len(scenario.monitors)} monitors...")
dump = collect_ribs(
    scenario.graph, scenario.monitors, scenario.prefixes,
    rng=random.Random(1),
)
print(f"  {len(dump)} RIB entries")

# round-trip through the MRT-style format, as a real pipeline would
paths = parse_mrt(dumps_mrt(dump)).paths()

print("\nalgorithm     accuracy   p2c        p2p        edge coverage")
for name, algorithm in (
    ("Gao 2001", infer_gao),
    ("AS-Rank", infer_asrank),
    ("ProbLink", infer_problink),
):
    result = algorithm(paths)
    acc = evaluate_inference(scenario.graph, result.records)
    cov = coverage(scenario.graph, result.records)
    print(
        f"{name:12s}  {acc.accuracy:7.1%}   {acc.p2c_accuracy:7.1%}   "
        f"{acc.p2p_accuracy:7.1%}   {cov:7.1%}"
    )

print(
    "\nNote the coverage column: collectors see every transit edge but"
    " miss most peerings — the visibility gap that motivates the paper's"
    " cloud-internal traceroute campaign (§4.1)."
)
