#!/usr/bin/env python3
"""Route-leak resilience study (§8): announcement policy and peer locking.

Simulates a misconfigured AS leaking a cloud provider's prefix under the
paper's five configurations and prints, for each, the distribution of the
fraction of ASes detoured — reproducing the qualitative result of Figs.
7/8: the cloud's peering footprint protects it, peer locking (erratum
semantics) caps the damage, and announcing only to the Tier-1/Tier-2
hierarchy is *worse* than being an average network.

Run:  python examples/route_leak_study.py [profile] [cloud]
"""

import random
import sys

from repro.core import (
    LEAK_CONFIGURATIONS,
    average_resilience_curve,
    resilience_curve,
)
from repro.experiments import build_context
from repro.experiments.report import cdf_summary

profile = sys.argv[1] if len(sys.argv) > 1 else "tiny"
cloud_name = sys.argv[2] if len(sys.argv) > 2 else "Google"

print(f"building scenario ({profile})...")
ctx = build_context(profile)
origin = ctx.clouds[cloud_name]

rng = random.Random(42)
nodes = sorted(ctx.graph.nodes())
leakers = rng.sample(nodes, k=min(60, len(nodes)))

print(f"\nleaking AS{origin} ({cloud_name})'s prefix from "
      f"{len(leakers)} random misconfigured ASes:\n")
for configuration in LEAK_CONFIGURATIONS:
    curve = resilience_curve(
        ctx.graph, origin, ctx.tiers, configuration, leakers
    )
    print(f"  {configuration:28s} {cdf_summary(curve)}")

baseline = average_resilience_curve(
    ctx.graph, random.Random(7), origins=10, leakers_per_origin=10
)
print(f"  {'average resilience':28s} {cdf_summary(baseline)}")
print(
    "\nReading: lower detoured fractions = more resilient.  Peer locking"
    " tightens the tail; 'announce to hierarchy only' forfeits the"
    " peering footprint and is the worst configuration."
)
