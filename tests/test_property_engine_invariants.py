"""Property-based invariants of the three-phase propagation engine.

Seeded random ``netgen`` scenarios (plus the layered random topologies
from ``conftest``) are checked against:

* a *naive reference engine* — synchronous fixed-point iteration of the
  Gao-Rexford export/selection rules, with none of the three-phase
  engine's cleverness — which must agree exactly on route class, path
  length and parent sets;
* the preference ordering customer > peer > provider (an AS never holds a
  peer/provider route when a neighbor is obliged to export it something
  better);
* valley-freeness of every emitted tied-best path;
* ``reachable_set`` ≡ ``{asn : state.has_route(asn)}`` for the same
  origin/excluded set (the reachability BFS and the simulator must agree).
"""

from __future__ import annotations

import random

import pytest

from .conftest import (
    assert_valley_free,
    netgen_graph,
    random_internet,
)
from repro.bgpsim import RouteClass, Seed, propagate
from repro.core import reachable_set

NETGEN_SEEDS = [20200901, 7, 8]
RANDOM_SEEDS = [11, 12, 13]


def reference_propagate(graph, origin):
    """Fixed-point Gao-Rexford reference: {asn: (class, length, parents)}.

    Each round recomputes every AS's best offer from its neighbors'
    current routes under the export rules (customer-learned routes go to
    everyone, peer/provider-learned routes go to customers only) and the
    preference order (class, then length, all ties kept).  Iterates until
    nothing changes.
    """
    best: dict[int, tuple[RouteClass, int, frozenset[int]]] = {
        origin: (RouteClass.CUSTOMER, 0, frozenset())
    }
    for _ in range(len(graph.nodes()) + 2):
        nxt = {origin: (RouteClass.CUSTOMER, 0, frozenset())}
        for receiver in graph.nodes():
            if receiver == origin:
                continue
            offers: list[tuple[RouteClass, int, int]] = []
            for sender, (cls, length, _) in best.items():
                if sender == receiver:
                    continue
                exports = (
                    cls is RouteClass.CUSTOMER
                    or receiver in graph.customers(sender)
                )
                if not exports:
                    continue
                if sender in graph.customers(receiver):
                    received = RouteClass.CUSTOMER
                elif sender in graph.peers(receiver):
                    received = RouteClass.PEER
                elif sender in graph.providers(receiver):
                    received = RouteClass.PROVIDER
                else:
                    continue
                offers.append((received, length + 1, sender))
            if not offers:
                continue
            top = min(offer[:2] for offer in offers)
            parents = frozenset(
                sender for cls, length, sender in offers
                if (cls, length) == top
            )
            nxt[receiver] = (top[0], top[1], parents)
        if nxt == best:
            return best
        best = nxt
    raise AssertionError("reference engine did not converge")


def graphs_under_test():
    for seed in NETGEN_SEEDS:
        yield f"netgen-{seed}", netgen_graph("tiny", seed=seed)
    for seed in RANDOM_SEEDS:
        yield f"random-{seed}", random_internet(
            random.Random(seed), n_tier1=3, n_transit=6, n_edge=25
        )


def sample(nodes, count, seed):
    nodes = sorted(nodes)
    if len(nodes) <= count:
        return nodes
    return sorted(random.Random(seed).sample(nodes, count))


@pytest.mark.parametrize(
    "label,graph", list(graphs_under_test()), ids=lambda v: v if isinstance(v, str) else ""
)
class TestEngineProperties:
    def test_matches_reference_engine(self, label, graph):
        for origin in sample(graph.nodes(), 8, seed=1):
            state = propagate(graph, Seed(asn=origin))
            reference = reference_propagate(graph, origin)
            assert state.routes.keys() == reference.keys(), label
            for asn, (cls, length, parents) in reference.items():
                route = state.routes[asn]
                assert (
                    route.route_class, route.length, frozenset(route.parents)
                ) == (cls, length, parents), f"{label}: AS{asn} from AS{origin}"

    def test_preference_ordering(self, label, graph):
        for origin in sample(graph.nodes(), 8, seed=2):
            state = propagate(graph, Seed(asn=origin))
            for asn, route in state.routes.items():
                if asn == origin:
                    continue
                # a customer holding a customer-class route must be beaten
                # or matched by a customer-class route here
                customer_offers = [
                    state.routes[c].length + 1
                    for c in graph.customers(asn)
                    if c in state.routes
                    and state.routes[c].route_class is RouteClass.CUSTOMER
                ]
                if customer_offers:
                    assert route.route_class is RouteClass.CUSTOMER, (
                        f"{label}: AS{asn} holds {route.route_class.name}"
                    )
                    assert route.length <= min(customer_offers)
                elif route.route_class is RouteClass.PROVIDER:
                    # no peer may be obliged to export something better
                    peer_offers = [
                        p for p in graph.peers(asn)
                        if p in state.routes
                        and state.routes[p].route_class is RouteClass.CUSTOMER
                    ]
                    assert not peer_offers, (
                        f"{label}: AS{asn} holds a provider route but peer "
                        f"{peer_offers[:1]} exports a customer route"
                    )

    def test_parent_links_consistent(self, label, graph):
        for origin in sample(graph.nodes(), 8, seed=3):
            state = propagate(graph, Seed(asn=origin))
            for asn, route in state.routes.items():
                if asn == origin:
                    assert not route.parents
                    continue
                assert route.parents, f"{label}: AS{asn} has no parents"
                for parent in route.parents:
                    parent_route = state.routes[parent]
                    assert parent_route.length == route.length - 1
                    if route.route_class is RouteClass.CUSTOMER:
                        assert parent in graph.customers(asn)
                    elif route.route_class is RouteClass.PEER:
                        assert parent in graph.peers(asn)
                    else:
                        assert parent in graph.providers(asn)
                    if route.route_class is not RouteClass.PROVIDER:
                        # exported across a non-p2c edge: the parent's own
                        # route must have been customer-learned
                        assert (
                            parent_route.route_class is RouteClass.CUSTOMER
                        )

    def test_no_valleys_in_best_paths(self, label, graph):
        for origin in sample(graph.nodes(), 5, seed=4):
            state = propagate(graph, Seed(asn=origin))
            for receiver in sample(state.routes.keys(), 12, seed=origin):
                for path in state.enumerate_best_paths(receiver, limit=40):
                    assert_valley_free(graph, path)

    def test_reachable_set_matches_has_route(self, label, graph):
        rng = random.Random(5)
        nodes = sorted(graph.nodes())
        for origin in sample(nodes, 5, seed=6):
            for trial in range(3):
                excluded = frozenset(
                    rng.sample(nodes, k=min(trial * 4, len(nodes) - 1))
                ) - {origin}
                state = propagate(graph, Seed(asn=origin), excluded=excluded)
                simulated = {
                    asn for asn in nodes
                    if state.has_route(asn) and asn != origin
                }
                assert simulated == reachable_set(graph, origin, excluded), (
                    f"{label}: origin={origin} excluded={sorted(excluded)}"
                )
