"""CompiledGraph: CSR snapshot correctness, caching and invalidation.

``ASGraph.compile()`` freezes the adjacency dicts into dense
integer-indexed CSR arrays; the snapshot is cached and must be
invalidated by *every* mutation path (``add_as`` / ``add_p2c`` /
``add_p2p`` / ``remove_edge`` and the traceroute augmentation flow) so a
stale compiled graph is never served.  The compact form must also answer
the whole read-only ``ASGraph`` query API identically and pickle smaller
than the dict-of-sets graph (that is why parallel sweeps ship it).
"""

from __future__ import annotations

import pickle
import random

from .conftest import build_mini, netgen_graph, random_internet
from repro.bgpsim import CompiledGraph
from repro.topology import ASGraph
from repro.topology.augment import augment_with_neighbors


def assert_same_queries(graph: ASGraph, compiled: CompiledGraph) -> None:
    assert len(compiled) == len(graph)
    assert compiled.nodes() == sorted(graph.nodes())
    assert list(compiled) == sorted(graph.nodes())
    assert compiled.edge_count() == graph.edge_count()
    probe = sorted(graph.nodes()) + [987654321]
    for asn in probe:
        assert (asn in compiled) == (asn in graph)
    for asn in graph.nodes():
        assert compiled.providers(asn) == graph.providers(asn)
        assert compiled.customers(asn) == graph.customers(asn)
        assert compiled.peers(asn) == graph.peers(asn)
        assert compiled.neighbors(asn) == graph.neighbors(asn)
        assert compiled.degree(asn) == graph.degree(asn)
        assert compiled.transit_degree(asn) == graph.transit_degree(asn)
        assert compiled.is_stub(asn) == graph.is_stub(asn)
    rng = random.Random(0)
    nodes = sorted(graph.nodes())
    for _ in range(50):
        a, b = rng.sample(nodes, 2)
        assert compiled.relationship_between(a, b) == (
            graph.relationship_between(a, b)
        )


class TestQueryEquivalence:
    def test_mini(self):
        graph, _ = build_mini()
        assert_same_queries(graph, graph.compile())

    def test_random_internet(self):
        for seed in (1, 2, 3):
            graph = random_internet(random.Random(seed))
            assert_same_queries(graph, graph.compile())

    def test_netgen(self):
        graph = netgen_graph("tiny", seed=7)
        assert_same_queries(graph, graph.compile())

    def test_empty_graph(self):
        graph = ASGraph()
        compiled = graph.compile()
        assert len(compiled) == 0
        assert compiled.nodes() == []
        assert 1 not in compiled

    def test_compile_of_compiled_is_identity(self):
        graph, _ = build_mini()
        compiled = graph.compile()
        assert compiled.compile() is compiled


class TestSnapshotCaching:
    def test_repeated_compile_returns_cached_object(self):
        graph, _ = build_mini()
        assert graph.compile() is graph.compile()

    def test_add_p2c_invalidates(self):
        graph, _ = build_mini()
        stale = graph.compile()
        graph.add_p2c(1, 999)
        fresh = graph.compile()
        assert fresh is not stale
        assert 999 in fresh
        assert 999 not in stale
        assert fresh.providers(999) == {1}
        assert_same_queries(graph, fresh)

    def test_add_p2p_invalidates(self):
        graph, _ = build_mini()
        stale = graph.compile()
        graph.add_p2p(203, 204)
        fresh = graph.compile()
        assert fresh is not stale
        assert 204 in fresh.peers(203)
        assert 204 not in stale.peers(203)
        assert_same_queries(graph, fresh)

    def test_add_as_invalidates(self):
        graph, _ = build_mini()
        stale = graph.compile()
        graph.add_as(5555)
        fresh = graph.compile()
        assert fresh is not stale
        assert 5555 in fresh and 5555 not in stale
        # re-adding an existing AS is a no-op and must NOT recompile
        again = graph.compile()
        graph.add_as(5555)
        assert graph.compile() is again

    def test_remove_edge_invalidates(self):
        graph, _ = build_mini()
        stale = graph.compile()
        graph.remove_edge(1, 11)
        fresh = graph.compile()
        assert fresh is not stale
        assert 11 not in fresh.customers(1)
        assert 11 in stale.customers(1)
        assert_same_queries(graph, fresh)

    def test_augmentation_invalidates(self):
        """The traceroute augmentation flow must not serve a stale CSR."""
        graph, _ = build_mini()
        stale = graph.compile()
        report = augment_with_neighbors(graph, {100: [203, 64500]})
        assert report.added_p2p[100] == {203, 64500}
        fresh = graph.compile()
        assert fresh is not stale
        assert fresh.peers(100) >= {203, 64500}
        assert 64500 not in stale
        assert_same_queries(graph, fresh)

    def test_stale_snapshot_remains_queryable(self):
        """Holders of an old snapshot keep a consistent frozen view."""
        graph, _ = build_mini()
        stale = graph.compile()
        before = {asn: stale.neighbors(asn) for asn in graph.nodes()}
        graph.add_p2p(1, 301)
        for asn, neighbors in before.items():
            assert stale.neighbors(asn) == neighbors


class TestPickling:
    def test_roundtrip(self):
        graph = netgen_graph("tiny", seed=7)
        clone = pickle.loads(pickle.dumps(graph.compile()))
        assert_same_queries(graph, clone)

    def test_compiled_pickles_smaller_than_asgraph(self):
        graph = netgen_graph("small", seed=20200901)
        compiled_bytes = len(pickle.dumps(graph.compile()))
        graph_bytes = len(pickle.dumps(graph))
        assert compiled_bytes < graph_bytes

    def test_pickled_asgraph_does_not_carry_snapshot(self):
        graph, _ = build_mini()
        graph.compile()
        clone = pickle.loads(pickle.dumps(graph))
        assert clone._compiled is None
        assert_same_queries(clone, clone.compile())
