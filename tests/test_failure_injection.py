"""Failure-injection tests: the pipeline degrades gracefully, never
silently fabricates data."""

from dataclasses import replace

import pytest

from repro.bgpsim import Seed, propagate
from repro.neighbors import FINAL_STAGE, infer_all_clouds, stage_by_name
from repro.netgen import ArtifactRates, build_scenario, tiny
from repro.traceroute import TracerouteCampaign


def scenario_with(**artifact_overrides):
    base = ArtifactRates()
    config = replace(tiny(seed=13), artifacts=replace(base, **artifact_overrides))
    return build_scenario(config)


class TestTotalRateLimiting:
    def test_no_traceroutes_survive(self):
        scenario = scenario_with(rate_limited=1.0)
        campaign = TracerouteCampaign(scenario, seed=1)
        cloud = scenario.clouds["Google"]
        traces = campaign.run_cloud(cloud)
        assert traces
        assert all(not t.reached for t in traces)
        inferred = infer_all_clouds(scenario, {cloud: traces}, FINAL_STAGE)
        assert inferred[cloud].neighbors == set()
        assert inferred[cloud].used == 0


class TestTotalTunneling:
    def test_everything_discarded_without_cloud_hops(self):
        scenario = scenario_with(tunnel_suppression=1.0, rate_limited=0.0)
        campaign = TracerouteCampaign(scenario, seed=1)
        cloud = scenario.clouds["Google"]
        traces = campaign.run_cloud(cloud)
        inferred = infer_all_clouds(scenario, {cloud: traces}, FINAL_STAGE)
        # no traceroute has a cloud hop adjacent to the border → nothing
        # can be inferred (the paper's Google standard-tier problem)
        assert inferred[cloud].neighbors == set()
        assert inferred[cloud].discarded == len(
            [t for t in traces if t.reached]
        )


class TestTotalBorderLoss:
    def test_discard_policy_yields_nothing_and_skip_policy_fabricates(self):
        scenario = scenario_with(
            unresponsive_border=1.0, rate_limited=0.0, tunnel_suppression=0.0
        )
        campaign = TracerouteCampaign(scenario, seed=1)
        cloud = scenario.clouds["Google"]
        traces = campaign.run_cloud(cloud)
        final = infer_all_clouds(scenario, {cloud: traces}, FINAL_STAGE)
        assert final[cloud].neighbors == set()
        # V0's skip-one-hop rule fabricates neighbors from second hops
        naive = infer_all_clouds(
            scenario, {cloud: traces}, stage_by_name("V0")
        )
        truth = scenario.true_cloud_neighbors(cloud)
        fabricated = naive[cloud].neighbors - truth
        assert fabricated  # exactly the §5 failure mode


class TestMaximumMisattribution:
    def test_fdr_explodes_with_full_misattribution(self):
        clean = scenario_with(ixp_misattribution=0.0, rate_limited=0.0)
        dirty = scenario_with(ixp_misattribution=1.0, rate_limited=0.0)
        for scenario, expect_noise in ((clean, False), (dirty, True)):
            campaign = TracerouteCampaign(scenario, seed=1)
            cloud = scenario.clouds["Google"]
            traces = campaign.run_cloud(cloud)
            inferred = infer_all_clouds(scenario, {cloud: traces}, FINAL_STAGE)
            truth = scenario.true_cloud_neighbors(cloud)
            false_positives = inferred[cloud].neighbors - truth
            if expect_noise:
                assert false_positives
            else:
                assert not false_positives


class TestDisconnectedDestinations:
    def test_unrouted_destination_produces_no_trace(self):
        scenario = build_scenario(tiny(seed=13))
        graph = scenario.graph
        graph.add_as(777)  # disconnected AS with no prefix
        campaign = TracerouteCampaign(scenario, seed=1)
        cloud = scenario.clouds["Google"]
        from repro.traceroute import vantage_points

        vm = vantage_points(scenario, cloud)[0]
        assert campaign.forwarding_path(vm, 777, wan_egress=True) is None

    def test_propagation_with_isolated_node(self):
        scenario = build_scenario(tiny(seed=13))
        graph = scenario.graph.copy()
        graph.add_as(777)
        state = propagate(graph, Seed(asn=777))
        assert state.reachable_ases() == frozenset()
