"""Differential harness: parallel propagation ≡ serial propagation.

The parallel sweep in ``repro.bgpsim.parallel`` is only safe to use if it
is *bit-for-bit* equivalent to the serial engine.  This module proves it
on randomized synthetic-Internet scenarios across several seeds and two
sizes, checks the valley-free invariant on every emitted path, exercises
multi-seed / excluded / peer-locked configurations, and asserts that the
experiment-level consumers produce identical outputs at ``workers=1`` and
``workers=N``.  Worker-failure behaviour (original exception surfaces,
pool shuts down cleanly) is covered at the end.

Set ``REPRO_TEST_WORKERS`` to change the parallel worker count (CI runs
the harness at 2).
"""

from __future__ import annotations

import os
import random

import pytest

from .conftest import (
    assert_states_equal,
    assert_valley_free,
    build_mini,
    netgen_graph,
    random_internet,
)
from repro.bgpsim import (
    RoutingStateCache,
    Seed,
    graph_map,
    propagate,
    propagate_many,
    propagate_origins,
    resolve_workers,
)

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "4"))

#: (profile, scenario seed) — ≥3 seeds × 2 sizes, per the acceptance bar.
SCENARIOS = [
    ("tiny", 20200901),
    ("tiny", 7),
    ("tiny", 8),
    ("small", 20200901),
    ("small", 7),
    ("small", 8),
]


def sample_origins(graph, count: int, seed: int = 0) -> list[int]:
    nodes = sorted(graph.nodes())
    if len(nodes) <= count:
        return nodes
    return sorted(random.Random(seed).sample(nodes, count))


class TestResolveWorkers:
    def test_serial_spellings(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1

    def test_explicit_count(self):
        assert resolve_workers(3) == 3

    def test_auto_uses_cpus(self):
        assert resolve_workers("auto") >= 1
        assert resolve_workers(-1) == resolve_workers("auto")


class TestDifferentialNetgen:
    """Serial vs parallel on seeded synthetic-Internet scenarios."""

    @pytest.mark.parametrize("profile_name,seed", SCENARIOS)
    def test_states_identical(self, profile_name, seed):
        graph = netgen_graph(profile_name, seed=seed)
        origins = sample_origins(graph, 40, seed=seed)
        serial = list(propagate_many(graph, origins, workers=1))
        parallel = list(propagate_many(graph, origins, workers=WORKERS))
        for origin, s, p in zip(origins, serial, parallel):
            assert_states_equal(
                s, p, f"({profile_name}, seed={seed}, origin={origin})"
            )

    @pytest.mark.parametrize("profile_name,seed", SCENARIOS[:3])
    def test_emitted_paths_valley_free(self, profile_name, seed):
        graph = netgen_graph(profile_name, seed=seed)
        origins = sample_origins(graph, 10, seed=seed + 1)
        for origin, state in propagate_origins(
            graph, origins, workers=WORKERS
        ):
            receivers = sample_origins(graph, 15, seed=origin)
            for receiver in receivers:
                if not state.has_route(receiver):
                    continue
                for path in state.enumerate_best_paths(receiver, limit=50):
                    assert path[-1] == origin
                    assert_valley_free(graph, path)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_internet_identical(self, seed):
        rng = random.Random(seed)
        graph = random_internet(rng, n_tier1=4, n_transit=8, n_edge=40)
        origins = sorted(graph.nodes())
        serial = list(propagate_many(graph, origins, workers=1))
        parallel = list(propagate_many(graph, origins, workers=WORKERS))
        for origin, s, p in zip(origins, serial, parallel):
            assert_states_equal(s, p, f"(random seed={seed}, origin={origin})")


class TestDifferentialConfigurations:
    """Excluded sets, peer locking and multi-seed leak tasks."""

    def test_excluded_and_locked(self):
        graph = netgen_graph("tiny", seed=7)
        nodes = sorted(graph.nodes())
        rng = random.Random(42)
        excluded = frozenset(rng.sample(nodes, 8))
        origins = [n for n in nodes if n not in excluded][:25]
        locked = frozenset(rng.sample(origins, 3))
        serial = list(
            propagate_many(
                graph, origins, workers=1,
                excluded=excluded, peer_locked=locked,
            )
        )
        parallel = list(
            propagate_many(
                graph, origins, workers=WORKERS,
                excluded=excluded, peer_locked=locked,
            )
        )
        for origin, s, p in zip(origins, serial, parallel):
            assert_states_equal(s, p, f"(excluded/locked, origin={origin})")

    def test_multi_seed_leak_tasks(self):
        graph = netgen_graph("tiny", seed=8)
        nodes = sorted(graph.nodes())
        rng = random.Random(5)
        tasks = []
        for _ in range(12):
            origin, leaker = rng.sample(nodes, 2)
            tasks.append(
                (
                    Seed(asn=origin, key="origin"),
                    Seed(asn=leaker, key="leak", initial_length=2),
                )
            )
        serial = list(propagate_many(graph, tasks, workers=1))
        parallel = list(propagate_many(graph, tasks, workers=WORKERS))
        for task, s, p in zip(tasks, serial, parallel):
            assert_states_equal(s, p, f"(leak task {task[0].asn}/{task[1].asn})")

    def test_ordered_iterator(self):
        graph, _ = build_mini()
        origins = sorted(graph.nodes(), reverse=True)
        for origin, state in propagate_origins(
            graph, origins, workers=WORKERS
        ):
            assert state.seed_asns == {origin}


class TestConsumersIdentical:
    """workers=1 and workers=N produce identical experiment outputs."""

    def test_resilience_curve(self, mini):
        from repro.core import resilience_curve

        graph, tiers = mini
        leakers = sorted(graph.nodes())
        for configuration in ("announce_all", "announce_all_t1_lock"):
            serial = resilience_curve(
                graph, 100, tiers, configuration, leakers, workers=1
            )
            parallel = resilience_curve(
                graph, 100, tiers, configuration, leakers, workers=WORKERS
            )
            assert serial == parallel

    def test_average_resilience_curve(self, mini_graph):
        from repro.core import average_resilience_curve

        serial = average_resilience_curve(
            mini_graph, random.Random(23), origins=5, leakers_per_origin=4,
            workers=1,
        )
        parallel = average_resilience_curve(
            mini_graph, random.Random(23), origins=5, leakers_per_origin=4,
            workers=WORKERS,
        )
        assert serial == parallel

    def test_reliance_sweep(self, mini):
        from repro.core import hierarchy_free_reliance, hierarchy_free_reliance_sweep

        graph, tiers = mini
        origins = [100, 201, 301]
        serial = [
            hierarchy_free_reliance(graph, origin, tiers)
            for origin in origins
        ]
        parallel = hierarchy_free_reliance_sweep(
            graph, origins, tiers, workers=WORKERS
        )
        assert serial == parallel

    def test_collector_dump(self):
        from repro.collectors import collect_ribs, dumps_mrt
        from repro.netgen import build_scenario, profile

        scenario = build_scenario(profile("tiny", seed=7))
        serial = collect_ribs(
            scenario.graph, scenario.monitors, scenario.prefixes,
            rng=random.Random(3),
        )
        parallel = collect_ribs(
            scenario.graph, scenario.monitors, scenario.prefixes,
            rng=random.Random(3), workers=WORKERS,
        )
        assert dumps_mrt(serial) == dumps_mrt(parallel)

    def test_traceroute_campaign(self):
        from repro.netgen import build_scenario, profile
        from repro.traceroute import TracerouteCampaign

        scenario = build_scenario(profile("tiny", seed=7))
        serial = TracerouteCampaign(scenario, seed=5).run_all()
        parallel = TracerouteCampaign(
            scenario, seed=5, workers=WORKERS
        ).run_all()
        assert serial == parallel

    def test_cache_prefetch_matches_serial_compute(self):
        graph = netgen_graph("tiny", seed=9)
        origins = sample_origins(graph, 20, seed=1)
        warm = RoutingStateCache(graph)
        warm.prefetch(origins, workers=WORKERS)
        cold = RoutingStateCache(graph)
        for origin in origins:
            assert_states_equal(
                cold.state_for(origin),
                warm.state_for(origin),
                f"(prefetch origin={origin})",
            )


def _explode(graph, item):
    raise RuntimeError(f"worker exploded on {item}")


class TestWorkerFailure:
    def test_propagate_error_surfaces(self, mini_graph):
        missing = 987654
        with pytest.raises(KeyError, match=str(missing)):
            list(
                propagate_many(
                    mini_graph, [1, missing, 2], workers=WORKERS
                )
            )

    def test_custom_task_error_surfaces(self, mini_graph):
        with pytest.raises(RuntimeError, match="worker exploded on 2"):
            list(graph_map(mini_graph, _explode, [2], workers=WORKERS))

    def test_serial_path_raises_identically(self, mini_graph):
        with pytest.raises(KeyError):
            list(propagate_many(mini_graph, [987654], workers=1))
        with pytest.raises(RuntimeError, match="worker exploded"):
            list(graph_map(mini_graph, _explode, [2], workers=1))

    def test_pool_usable_after_failure(self, mini_graph):
        with pytest.raises(KeyError):
            list(propagate_many(mini_graph, [987654], workers=WORKERS))
        states = list(propagate_many(mini_graph, [1, 2], workers=WORKERS))
        assert len(states) == 2
        for state, origin in zip(states, (1, 2)):
            assert state.seed_asns == {origin}

    def test_results_before_failure_are_delivered(self, mini_graph):
        # chunksize=1 so the good task and the failing task are separate
        # work items; the iterator yields the first result, then raises.
        iterator = propagate_many(
            mini_graph, [1, 987654], workers=WORKERS, chunksize=1
        )
        first = next(iterator)
        assert first.seed_asns == {1}
        with pytest.raises(KeyError):
            list(iterator)
