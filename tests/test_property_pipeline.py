"""Property-based tests across the measurement/inference pipeline."""

from __future__ import annotations

import ipaddress
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bgpsim import Seed, propagate
from repro.bgpsim.cache import RoutingStateCache
from repro.collectors import collect_ribs, dumps_mrt, parse_mrt
from repro.core.hegemony import (
    local_hegemony,
    path_cross_fractions,
    trimmed_mean,
)
from repro.inference import evaluate_inference, infer_asrank
from repro.mapping.pfx2as import (
    Pfx2AsDataset,
    Pfx2AsEntry,
    dumps_pfx2as,
    parse_pfx2as,
    pfx2as_from_dump,
)

from .conftest import random_internet

RELAXED = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def graph_and_prefixes(seed: int):
    graph = random_internet(random.Random(seed))
    prefixes = {
        asn: ipaddress.IPv4Network(((16 << 24) + (i << 16), 16))
        for i, asn in enumerate(sorted(graph.nodes()))
    }
    return graph, prefixes


def monitors_for(graph, seed: int, k: int = 6):
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    return rng.sample(nodes, k=min(k, len(nodes)))


class TestCollectorProperties:
    @RELAXED
    @given(seed=st.integers(0, 10**6), mseed=st.integers(0, 10**6))
    def test_all_rib_paths_are_tied_best(self, seed, mseed):
        graph, prefixes = graph_and_prefixes(seed)
        monitors = monitors_for(graph, mseed)
        origins = sorted(graph.nodes())[::4]
        dump = collect_ribs(
            graph, monitors, prefixes, origins=origins,
            rng=random.Random(seed),
        )
        cache = RoutingStateCache(graph)
        for entry in dump.entries[::7]:
            state = cache.state_for(entry.origin)
            assert state.contains_path(entry.as_path)

    @RELAXED
    @given(seed=st.integers(0, 10**6), mseed=st.integers(0, 10**6))
    def test_mrt_round_trip(self, seed, mseed):
        graph, prefixes = graph_and_prefixes(seed)
        monitors = monitors_for(graph, mseed)
        origins = sorted(graph.nodes())[::5]
        dump = collect_ribs(
            graph, monitors, prefixes, origins=origins,
            rng=random.Random(seed),
        )
        assert parse_mrt(dumps_mrt(dump)).paths() == dump.paths()

    @RELAXED
    @given(seed=st.integers(0, 10**6), mseed=st.integers(0, 10**6))
    def test_inference_never_invents_edges(self, seed, mseed):
        graph, prefixes = graph_and_prefixes(seed)
        monitors = monitors_for(graph, mseed)
        dump = collect_ribs(
            graph, monitors, prefixes, rng=random.Random(seed)
        )
        result = infer_asrank(dump.paths())
        accuracy = evaluate_inference(graph, result.records)
        assert accuracy.unknown_edges == 0

    @RELAXED
    @given(seed=st.integers(0, 10**6), mseed=st.integers(0, 10**6))
    def test_pfx2as_round_trip_and_origins(self, seed, mseed):
        graph, prefixes = graph_and_prefixes(seed)
        monitors = monitors_for(graph, mseed)
        dump = collect_ribs(
            graph, monitors, prefixes, rng=random.Random(seed)
        )
        dataset = pfx2as_from_dump(dump)
        again = parse_pfx2as(dumps_pfx2as(dataset))
        assert again.origins() == dataset.origins()
        assert len(again) == len(dataset)
        for asn, prefix in dataset.one_prefix_per_as().items():
            assert prefix == prefixes[asn]


class TestHegemonyProperties:
    @RELAXED
    @given(
        seed=st.integers(0, 10**6),
        origin_pick=st.integers(0, 10**6),
        target_pick=st.integers(0, 10**6),
    )
    def test_hegemony_bounded(self, seed, origin_pick, target_pick):
        graph = random_internet(random.Random(seed))
        nodes = sorted(graph.nodes())
        origin = nodes[origin_pick % len(nodes)]
        target = nodes[target_pick % len(nodes)]
        if origin == target:
            return
        value = local_hegemony(graph, origin, target)
        assert 0.0 <= value <= 1.0

    @RELAXED
    @given(seed=st.integers(0, 10**6), origin_pick=st.integers(0, 10**6))
    def test_cross_fractions_consistent_with_paths(self, seed, origin_pick):
        graph = random_internet(random.Random(seed))
        nodes = sorted(graph.nodes())
        origin = nodes[origin_pick % len(nodes)]
        state = propagate(graph, Seed(asn=origin))
        routed = sorted(state.routes)
        target = routed[len(routed) // 2]
        fractions = path_cross_fractions(state, target)
        for asn in routed[::6]:
            paths = list(state.enumerate_best_paths(asn, limit=500))
            if not paths or len(paths) >= 500:
                continue
            exact = sum(1 for p in paths if target in p) / len(paths)
            assert fractions[asn] == pytest.approx(exact)

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.floats(0, 1), max_size=40),
        trim=st.floats(0, 0.4),
    )
    def test_trimmed_mean_within_range(self, values, trim):
        result = trimmed_mean(values, trim)
        if values:
            assert min(values) - 1e-9 <= result <= max(values) + 1e-9
        else:
            assert result == 0.0
