"""Unit tests for the synthetic Internet generator."""

import ipaddress

import pytest

from repro.core import hierarchy_free_reachability
from repro.netgen import (
    ASKind,
    InterconnectMedium,
    build_scenario,
    profile,
    tiny,
)
from repro.netgen.addressing import (
    allocate_as_prefixes,
    as_prefix,
    host_in,
    ixp_lan,
    router_ip,
)
from repro.netgen.population import eyeball_ases, zipf_shares
from repro.topology import Relationship


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(tiny())


class TestAddressing:
    def test_as_prefixes_disjoint(self):
        prefixes = allocate_as_prefixes([10, 20, 30])
        nets = list(prefixes.values())
        assert len({str(n) for n in nets}) == 3
        for i, a in enumerate(nets):
            for b in nets[i + 1 :]:
                assert not a.overlaps(b)

    def test_ixp_lan_disjoint_from_as_space(self):
        assert not as_prefix(0).overlaps(ixp_lan(0))
        assert ixp_lan(1) != ixp_lan(2)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            as_prefix(10**6)
        with pytest.raises(ValueError):
            ixp_lan(-1)

    def test_host_and_router_ips_inside_prefix(self):
        prefix = as_prefix(3)
        assert host_in(prefix, 5) in prefix
        assert router_ip(prefix, 2, 1) in prefix
        assert router_ip(prefix, 2, 1) != router_ip(prefix, 2, 2)
        with pytest.raises(ValueError):
            host_in(prefix, 0)


class TestPopulationHelpers:
    def test_zipf_shares_normalized(self):
        shares = zipf_shares(5)
        assert sum(shares) == pytest.approx(1.0)
        assert shares == sorted(shares, reverse=True)
        assert zipf_shares(0) == []

    def test_eyeball_ases(self):
        assert eyeball_ases({1: 10, 2: 0, 3: 5}) == {1, 3}


class TestScenarioStructure:
    def test_deterministic(self):
        a = build_scenario(tiny(seed=3))
        b = build_scenario(tiny(seed=3))
        assert a.summary() == b.summary()
        assert sorted(a.graph.nodes()) == sorted(b.graph.nodes())
        assert a.prefixes == b.prefixes

    def test_seed_changes_topology(self):
        a = build_scenario(tiny(seed=3))
        b = build_scenario(tiny(seed=4))
        assert set(a.graph.records()) != set(b.graph.records())

    def test_graph_valid_and_counts(self, scenario):
        scenario.graph.validate()
        cfg = scenario.config
        assert len(scenario.graph) == cfg.total_ases
        assert len(scenario.tiers.tier1) == cfg.n_tier1
        assert len(scenario.tiers.tier2) == cfg.n_tier2

    def test_tier1_clique(self, scenario):
        tier1 = sorted(scenario.tiers.tier1)
        for i, a in enumerate(tier1):
            assert not scenario.graph.providers(a)
            for b in tier1[i + 1 :]:
                assert (
                    scenario.graph.relationship_between(a, b)
                    is Relationship.PEER_PEER
                )

    def test_every_as_connected(self, scenario):
        for asn in scenario.graph:
            if scenario.kind_of(asn) is ASKind.IXP:
                continue
            assert scenario.graph.degree(asn) > 0, scenario.name_of(asn)

    def test_clouds_are_stub_like(self, scenario):
        for asn in scenario.cloud_asns():
            assert scenario.graph.providers(asn)
            assert len(scenario.graph.peers(asn)) > 3

    def test_ixp_ases_not_in_graph(self, scenario):
        for ixp in scenario.ixps:
            assert ixp.asn not in scenario.graph
            assert scenario.as_info[ixp.asn].kind is ASKind.IXP

    def test_prefixes_cover_graph(self, scenario):
        assert set(scenario.prefixes) == set(scenario.graph.nodes())
        nets = sorted(scenario.prefixes.values(), key=lambda n: int(n[0]))
        for a, b in zip(nets, nets[1:]):
            assert not a.overlaps(b)

    def test_users_only_on_access(self, scenario):
        for asn, count in scenario.users.items():
            assert count >= 0
            assert scenario.kind_of(asn) is ASKind.ACCESS
        assert scenario.users  # somebody has users

    def test_transit_labels(self, scenario):
        assert scenario.transit_labels["Level 3"] == 3356
        assert scenario.transit_labels["Hurricane Electric"] == 6939


class TestPublicView:
    def test_public_is_subgraph(self, scenario):
        pub, truth = scenario.public_graph, scenario.graph
        assert sorted(pub.nodes()) == sorted(truth.nodes())
        for record in pub.records():
            assert (
                truth.relationship_between(record.left, record.right)
                is record.relationship
            )

    def test_all_transit_edges_visible(self, scenario):
        for record in scenario.graph.records():
            if record.is_transit:
                assert (
                    scenario.public_graph.relationship_between(
                        record.left, record.right
                    )
                    is Relationship.PROVIDER_CUSTOMER
                )

    def test_bgp_misses_most_cloud_peers(self, scenario):
        missed_fractions = []
        for asn in scenario.cloud_asns():
            truth = scenario.true_cloud_neighbors(asn)
            visible = scenario.visible_cloud_neighbors(asn)
            assert visible <= truth
            missed_fractions.append(1 - len(visible) / len(truth))
        # a large share of cloud neighbors is invisible even in the tiny
        # profile (the realistic profiles miss ~90%, like the paper)
        assert sum(missed_fractions) / len(missed_fractions) > 0.3

    def test_monitor_count(self, scenario):
        assert scenario.monitors
        assert scenario.monitors <= set(scenario.graph.nodes())


class TestInterconnects:
    def test_every_cloud_neighbor_has_interconnect(self, scenario):
        for cloud in scenario.cloud_asns():
            neighbors = scenario.true_cloud_neighbors(cloud)
            linked = {
                n for (c, n) in scenario.interconnects if c == cloud
            }
            assert linked == set(neighbors)

    def test_ixp_interconnects_use_member_ips(self, scenario):
        for links in scenario.interconnects.values():
            for link in links:
                if link.medium is InterconnectMedium.IXP:
                    ixp = scenario.ixp_by_id(link.ixp_id)
                    assert link.neighbor_ip in ixp.lan
                    assert link.neighbor_asn in ixp.members
                    assert link.cloud_asn in ixp.members
                else:
                    prefix = scenario.prefixes[link.neighbor_asn]
                    assert link.neighbor_ip in prefix

    def test_member_ip_requires_membership(self, scenario):
        ixp = scenario.ixps[0]
        with pytest.raises(KeyError):
            ixp.member_ip(999999999)


class TestFootprints:
    def test_cloud_pops_include_china(self, scenario):
        for name in scenario.clouds:
            codes = {c.code for c in scenario.pop_footprints[name]}
            assert "sha" in codes and "bjs" in codes

    def test_transit_pops_exclude_mainland_china(self, scenario):
        for label in scenario.transit_labels:
            codes = {c.code for c in scenario.pop_footprints[label]}
            assert "sha" not in codes and "bjs" not in codes

    def test_vm_cities_subset_of_pops(self, scenario):
        for name, asn in scenario.clouds.items():
            pops = set(scenario.pop_footprints[name])
            assert set(scenario.vm_cities[asn]) <= pops


class TestProfiles:
    def test_profile_lookup(self):
        cfg = profile("tiny", seed=11)
        assert cfg.seed == 11
        with pytest.raises(KeyError):
            profile("nope")

    def test_year_profiles_scale(self):
        cfg2020 = profile("year2020")
        cfg2015 = profile("year2015")
        assert cfg2015.total_ases < cfg2020.total_ases
        amazon2015 = next(c for c in cfg2015.clouds if c.name == "Amazon")
        amazon2020 = next(c for c in cfg2020.clouds if c.name == "Amazon")
        assert amazon2015.edge_peer_fraction < amazon2020.edge_peer_fraction
        microsoft2015 = next(c for c in cfg2015.clouds if c.name == "Microsoft")
        assert microsoft2015.vm_locations == 0


class TestPaperShapes:
    """Coarse structural facts the experiments depend on."""

    def test_clouds_have_high_hierarchy_free_reach(self, scenario):
        n = len(scenario.graph) - 1
        google = scenario.clouds["Google"]
        value = hierarchy_free_reachability(scenario.graph, google, scenario.tiers)
        assert value / n > 0.5

    def test_amazon_fewest_cloud_neighbors(self, scenario):
        counts = {
            name: len(scenario.true_cloud_neighbors(asn))
            for name, asn in scenario.clouds.items()
        }
        assert counts["Amazon"] == min(counts.values())
