"""Unit tests for the reachability metric family (§6)."""

import pytest

from repro.core import (
    ConeEngine,
    ReachabilityReport,
    all_customer_cone_sizes,
    customer_cone,
    customer_cone_size,
    full_reachability,
    hierarchy_free_reachability,
    hierarchy_free_set,
    hierarchy_free_sweep,
    node_degree,
    provider_free_reachability,
    rank_by,
    reachability_report,
    tier1_free_reachability,
    transit_degree,
)

from .conftest import CLOUD, CONTENT, E1, E2, E3, E4, T1A, T1B, T2A, T2B


class TestCloudReachability:
    def test_full(self, mini):
        graph, _ = mini
        assert full_reachability(graph, CLOUD) == 9

    def test_provider_free(self, mini):
        graph, _ = mini
        assert provider_free_reachability(graph, CLOUD) == 6

    def test_tier1_free(self, mini):
        graph, tiers = mini
        assert tier1_free_reachability(graph, CLOUD, tiers) == 5

    def test_hierarchy_free(self, mini):
        graph, tiers = mini
        assert hierarchy_free_reachability(graph, CLOUD, tiers) == 3

    def test_hierarchy_free_set(self, mini):
        graph, tiers = mini
        assert hierarchy_free_set(graph, CLOUD, tiers) == {E1, E2, E4}

    def test_report_nesting(self, mini):
        graph, tiers = mini
        report = reachability_report(graph, CLOUD, tiers)
        assert report.full == 9
        assert report.provider_free == 6
        assert report.tier1_free == 5
        assert report.hierarchy_free == 3

    def test_report_fractions(self, mini):
        graph, tiers = mini
        report = reachability_report(graph, CLOUD, tiers)
        fractions = report.as_fractions(len(graph))
        assert fractions["full"] == 1.0
        assert fractions["hierarchy_free"] == pytest.approx(3 / 9)

    def test_report_rejects_non_nested(self):
        with pytest.raises(ValueError):
            ReachabilityReport(
                origin=1, full=5, provider_free=6, tier1_free=2, hierarchy_free=1
            )


class TestTierOrigins:
    def test_tier1_provider_free_is_max(self, mini):
        graph, tiers = mini
        assert provider_free_reachability(graph, T1A) == len(graph) - 1
        assert provider_free_reachability(graph, T1B) == len(graph) - 1

    def test_tier1_loses_reach_without_other_tier1s(self, mini):
        graph, tiers = mini
        # AS1 without AS2: loses AS12's cone except what its own cone holds.
        assert tier1_free_reachability(graph, T1A, tiers) == 5
        # AS2's own cone is small; its extra peering with the cloud does not
        # extend it because the cloud has no customers.
        assert tier1_free_reachability(graph, T1B, tiers) == 4

    def test_tier2_hierarchy_free(self, mini):
        graph, tiers = mini
        # Without AS1/AS2/AS12, AS11 is left with its own customer cone.
        assert hierarchy_free_reachability(graph, T2A, tiers) == 3


class TestSweep:
    def test_sweep_matches_per_origin(self, mini):
        graph, tiers = mini
        sweep = hierarchy_free_sweep(graph, tiers)
        assert set(sweep) == set(graph.nodes())
        for origin, value in sweep.items():
            assert value == hierarchy_free_reachability(graph, origin, tiers)

    def test_sweep_with_explicit_origins_and_engine(self, mini):
        graph, tiers = mini
        engine = ConeEngine(graph, excluded=tiers.hierarchy)
        sweep = hierarchy_free_sweep(
            graph, tiers, origins=[CLOUD, E3], engine=engine
        )
        assert sweep == {
            CLOUD: 3,
            E3: hierarchy_free_reachability(graph, E3, tiers),
        }

    def test_sweep_rejects_mismatched_engine(self, mini):
        graph, tiers = mini
        engine = ConeEngine(graph)  # no exclusion
        with pytest.raises(ValueError):
            hierarchy_free_sweep(graph, tiers, engine=engine)

    def test_rank_by(self):
        ranked = rank_by({1: 5, 2: 9, 3: 5})
        assert ranked == [(2, 9), (1, 5), (3, 5)]


class TestCones:
    def test_customer_cone_contents(self, mini_graph):
        assert customer_cone(mini_graph, T2A) == {CLOUD, E1, E4}
        assert customer_cone(mini_graph, T1A) == {T2A, CLOUD, E1, E4, E3}
        assert customer_cone(mini_graph, CLOUD) == frozenset()

    def test_customer_cone_size(self, mini_graph):
        assert customer_cone_size(mini_graph, T1A) == 5
        assert customer_cone_size(mini_graph, CONTENT) == 0

    def test_all_cone_sizes(self, mini_graph):
        sizes = all_customer_cone_sizes(mini_graph)
        for asn in mini_graph.nodes():
            assert sizes[asn] == customer_cone_size(mini_graph, asn)

    def test_degrees(self, mini_graph):
        assert node_degree(mini_graph, CLOUD) == 5
        assert transit_degree(mini_graph, CLOUD) == 1

    def test_unknown_as_raises(self, mini_graph):
        with pytest.raises(KeyError):
            customer_cone(mini_graph, 5555)
