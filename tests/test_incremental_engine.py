"""Differential harness: incremental delta-propagation ≡ full recompute.

The incremental engine (``repro.bgpsim.incremental``) derives each
combined ``(origin, leak)`` state from a shared single-seed baseline,
re-propagating only the region the leak disturbs.  It is only safe to
use for the paper's leak sweeps if every outcome it produces is
*identical* to the full two-seed recompute.  This module proves it at
three levels:

* **state level** — :func:`propagate_delta` against the two-seed
  :func:`propagate_compiled` on seeded synthetic-Internet scenarios
  (random lock sets, exclusions, hijack and re-announce initial
  lengths, restricted ``export_to`` origin seeds);
* **outcome level** — ``simulate_leaks`` / ``resilience_curve`` /
  ``average_resilience_curve`` / ``lock_coverage_sweep`` with
  ``engine="incremental"`` against ``engine="compiled"`` across every
  ``LEAK_CONFIGURATIONS`` × :class:`LeakMode` ×
  :class:`PeerLockSemantics` combination;
* **property level** — the delta pass's override set covers every AS
  whose combined route differs from the baseline, and the visited
  count bounds it from above (the pass never reports a region smaller
  than what actually changed).

The fallback guards (peer-locked leakers, retracting configurations)
are exercised explicitly, as are the shared-baseline cache and the
parallel sweep.  Set ``REPRO_TEST_WORKERS`` to change the parallel
worker count (CI runs the harness at 2).
"""

from __future__ import annotations

import os
import random

import pytest

from .conftest import (
    assert_states_equal,
    build_mini,
    netgen_graph,
    sample_origins,
)
from repro.bgpsim import (
    CompiledRoutingState,
    DeltaRoutingState,
    ENGINES,
    LeakMode,
    RoutingStateCache,
    Seed,
    hierarchy_only_seed,
    propagate,
    propagate_compiled,
    propagate_delta,
    resolve_engine,
)
from repro.core.leaks import (
    LEAK_CONFIGURATIONS,
    PeerLockSemantics,
    resilience_curve,
    average_resilience_curve,
    lock_coverage_sweep,
    simulate_leak,
    simulate_leaks,
)
from repro.topology.tiers import infer_tiers

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "4"))

#: (profile, scenario seed) — ≥3 seeds × 2 sizes, per the acceptance bar.
SCENARIOS = [
    ("tiny", 20200901),
    ("tiny", 7),
    ("tiny", 8),
    ("small", 20200901),
    ("small", 7),
    ("small", 8),
]


def _delta_or_none(graph, baseline, leak, **kwargs):
    """Run the delta pass, returning ``None`` where a guard fires."""
    try:
        return propagate_delta(graph, baseline, leak, **kwargs)
    except ValueError:
        return None


# ---------------------------------------------------------------------------
# state-level differential
# ---------------------------------------------------------------------------

class TestStateDifferential:
    @pytest.mark.parametrize("profile,seed", SCENARIOS)
    def test_delta_matches_full_recompute(self, profile, seed):
        graph = netgen_graph(profile, seed=seed)
        nodes = sorted(graph.nodes())
        rng = random.Random(seed * 13 + 5)
        checked = 0
        for trial in range(30):
            origin, leaker = rng.sample(nodes, 2)
            lockset = [
                frozenset(),
                frozenset(rng.sample(nodes, 12)),
                frozenset(rng.sample(nodes, len(nodes) // 3)),
            ][trial % 3]
            locks = lockset - {origin, leaker}
            legit = Seed(asn=origin, key="origin")
            baseline = propagate_compiled(
                graph, (legit,), peer_locked=locks, locked_origin=origin
            )
            legit_length = baseline.path_length(leaker)
            if trial % 2 and legit_length is not None:
                initial = legit_length  # re-announce
            else:
                initial = 0  # hijack
            leak = Seed(asn=leaker, key="leak", initial_length=initial)
            delta = _delta_or_none(
                graph, baseline, leak, peer_locked=locks, locked_origin=origin
            )
            if delta is None:
                continue
            full = propagate_compiled(
                graph, (legit, leak), peer_locked=locks, locked_origin=origin
            )
            context = (
                f"({profile}, seed={seed}, trial={trial}, "
                f"{origin}->{leaker}, init={initial}, locks={len(locks)})"
            )
            assert_states_equal(full, delta, context)
            checked += 1
        assert checked >= 15, "too few scenarios survived the guards"

    @pytest.mark.parametrize("profile,seed", [("tiny", 11), ("small", 13)])
    def test_delta_with_exclusions_and_arbitrary_lengths(self, profile, seed):
        graph = netgen_graph(profile, seed=seed)
        nodes = sorted(graph.nodes())
        rng = random.Random(seed * 7 + 3)
        checked = 0
        for trial in range(40):
            origin, leaker = rng.sample(nodes, 2)
            locks = frozenset(rng.sample(nodes, 8)) - {origin, leaker}
            excluded = frozenset(
                a for a in rng.sample(nodes, 5) if a not in (origin, leaker)
            )
            legit = Seed(asn=origin, key="origin")
            kwargs = dict(
                excluded=excluded, peer_locked=locks, locked_origin=origin
            )
            baseline = propagate_compiled(graph, (legit,), **kwargs)
            leak = Seed(
                asn=leaker, key="leak", initial_length=rng.randint(0, 5)
            )
            delta = _delta_or_none(graph, baseline, leak, **kwargs)
            if delta is None:
                continue
            full = propagate_compiled(graph, (legit, leak), **kwargs)
            assert_states_equal(
                full, delta, f"(excl {profile}, seed={seed}, trial={trial})"
            )
            checked += 1
        assert checked >= 10

    def test_delta_with_hierarchy_only_origin(self):
        graph, tiers = build_mini()
        legit = hierarchy_only_seed(graph, 100, tiers)
        baseline = propagate_compiled(graph, (legit,))
        for leaker in (201, 202, 203, 204, 301, 11, 12):
            legit_length = baseline.path_length(leaker)
            lengths = [0] + ([legit_length] if legit_length is not None else [])
            for initial in lengths:
                leak = Seed(asn=leaker, key="leak", initial_length=initial)
                delta = _delta_or_none(graph, baseline, leak)
                if delta is None:
                    continue
                full = propagate_compiled(graph, (legit, leak))
                assert_states_equal(
                    full, delta, f"(mini, leaker={leaker}, init={initial})"
                )

    def test_fast_paths_agree_without_materialization(self):
        graph = netgen_graph("tiny", seed=7)
        nodes = sorted(graph.nodes())
        rng = random.Random(99)
        origin, leaker = rng.sample(nodes, 2)
        legit = Seed(asn=origin, key="origin")
        baseline = propagate_compiled(graph, (legit,))
        leak = Seed(asn=leaker, key="leak", initial_length=0)
        delta = propagate_delta(graph, baseline, leak)
        full = propagate_compiled(graph, (legit, leak))
        assert isinstance(delta, DeltaRoutingState)
        assert delta.reachable_ases() == full.reachable_ases()
        for key in ("origin", "leak"):
            expected = frozenset(
                asn for asn, route in full.routes.items()
                if key in route.origins
            )
            assert delta.ases_with_origin(key) == expected
        for asn in nodes:
            assert delta.has_route(asn) == full.has_route(asn)
            assert delta.path_length(asn) == full.path_length(asn)
            assert delta.origins_at(asn) == full.origins_at(asn)


# ---------------------------------------------------------------------------
# property: the delta pass covers everything that changed
# ---------------------------------------------------------------------------

class TestVisitedCoversChanges:
    @pytest.mark.parametrize("profile,seed", [("tiny", 20200901), ("small", 8)])
    def test_overrides_superset_of_changed_routes(self, profile, seed):
        graph = netgen_graph(profile, seed=seed)
        nodes = sorted(graph.nodes())
        rng = random.Random(seed + 41)
        checked = 0
        for trial in range(20):
            origin, leaker = rng.sample(nodes, 2)
            legit = Seed(asn=origin, key="origin")
            baseline = propagate_compiled(graph, (legit,))
            initial = 0 if trial % 2 else (baseline.path_length(leaker) or 0)
            leak = Seed(asn=leaker, key="leak", initial_length=initial)
            delta = _delta_or_none(graph, baseline, leak)
            if delta is None:
                continue
            full = propagate_compiled(graph, (legit, leak))
            changed = {
                asn
                for asn, route in full.routes.items()
                if baseline.routes.get(asn) is None
                or baseline.routes[asn].route_class != route.route_class
                or baseline.routes[asn].length != route.length
                or baseline.routes[asn].parents != route.parents
            }
            changed |= set(baseline.routes) - set(full.routes)
            asns = delta._baseline._asns
            overridden = {asns[i] for i in delta._overrides}
            assert changed <= overridden, (
                f"delta missed changed ASes {sorted(changed - overridden)[:5]} "
                f"({profile}, seed={seed}, trial={trial})"
            )
            stats = delta.delta_stats()
            assert stats["visited"] >= stats["route_changed"]
            assert stats["visited"] == delta.visited_count
            assert stats["total_ases"] == len(graph)
            checked += 1
        assert checked >= 10

    def test_visited_fraction_below_one_on_localized_leak(self):
        # a stub leaking its own provider route disturbs a small region;
        # the instrumentation must reflect that, not the whole graph
        graph = netgen_graph("small", seed=20200901)
        origins = sample_origins(graph, 12, seed=3)
        baseline_origin = origins[0]
        legit = Seed(asn=baseline_origin, key="origin")
        baseline = propagate_compiled(graph, (legit,))
        fractions = []
        for leaker in origins[1:]:
            legit_length = baseline.path_length(leaker)
            if legit_length is None:
                continue
            leak = Seed(asn=leaker, key="leak", initial_length=legit_length)
            delta = _delta_or_none(graph, baseline, leak)
            if delta is None:
                continue
            fractions.append(delta.visited_count / len(graph))
        assert fractions, "no re-announce leakers survived"
        assert min(fractions) < 0.8


# ---------------------------------------------------------------------------
# guard rails: configurations the delta pass must refuse
# ---------------------------------------------------------------------------

class TestGuards:
    def setup_method(self):
        self.graph = netgen_graph("tiny", seed=20200901)
        self.nodes = sorted(self.graph.nodes())
        self.origin = self.nodes[0]
        self.leaker = self.nodes[-1]
        self.legit = Seed(asn=self.origin, key="origin")
        self.baseline = propagate_compiled(self.graph, (self.legit,))

    def test_rejects_multi_seed_baseline(self):
        other = Seed(asn=self.nodes[1], key="other")
        multi = propagate_compiled(self.graph, (self.legit, other))
        with pytest.raises(ValueError, match="single-seed"):
            propagate_delta(
                self.graph, multi, Seed(asn=self.leaker, key="leak")
            )

    def test_rejects_foreign_graph_baseline(self):
        # the guard keys on the compiled ASN universe, so a graph over a
        # different node set (the mini fixture) must be refused
        other_graph, _ = build_mini()
        with pytest.raises(ValueError, match="different graph"):
            propagate_delta(
                other_graph,
                self.baseline,
                Seed(asn=sorted(other_graph.nodes())[-1], key="leak"),
            )

    def test_rejects_unknown_and_duplicate_leaker(self):
        with pytest.raises(KeyError, match="not in graph"):
            propagate_delta(
                self.graph, self.baseline, Seed(asn=999999, key="leak")
            )
        with pytest.raises(ValueError, match="duplicate seed"):
            propagate_delta(
                self.graph, self.baseline, Seed(asn=self.origin, key="leak")
            )

    def test_rejects_excluded_leaker(self):
        with pytest.raises(ValueError, match="is excluded"):
            propagate_delta(
                self.graph,
                self.baseline,
                Seed(asn=self.leaker, key="leak"),
                excluded={self.leaker},
            )

    def test_rejects_peer_locked_leaker(self):
        with pytest.raises(ValueError, match="peer-locked"):
            propagate_delta(
                self.graph,
                self.baseline,
                Seed(asn=self.leaker, key="leak"),
                peer_locked={self.leaker},
                locked_origin=self.origin,
            )

    def test_rejects_export_restriction_on_routed_leaker(self):
        routed = next(
            asn
            for asn in self.nodes
            if asn != self.origin and self.baseline.has_route(asn)
        )
        restricted = Seed(
            asn=routed,
            key="leak",
            export_to=frozenset(list(self.graph.neighbors(routed))[:1]),
        )
        with pytest.raises(ValueError, match="export_to"):
            propagate_delta(self.graph, self.baseline, restricted)

    def test_rejects_longer_seed_on_customer_routed_leaker(self):
        # seed from a stub so its provider chain holds customer routes
        stub_origin = self.nodes[-1]
        baseline = propagate_compiled(
            self.graph, (Seed(asn=stub_origin, key="origin"),)
        )
        customer_routed = next(
            asn
            for asn, route in sorted(baseline.routes.items())
            if asn != stub_origin and route.route_class.name == "CUSTOMER"
        )
        length = baseline.path_length(customer_routed)
        longer = Seed(
            asn=customer_routed, key="leak", initial_length=length + 3
        )
        with pytest.raises(ValueError, match="longer"):
            propagate_delta(self.graph, baseline, longer)


# ---------------------------------------------------------------------------
# engine dispatch
# ---------------------------------------------------------------------------

class TestEngineDispatch:
    def test_incremental_is_a_known_engine(self):
        assert "incremental" in ENGINES
        assert resolve_engine("incremental") == "incremental"

    def test_env_override_selects_incremental(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "incremental")
        assert resolve_engine(None) == "incremental"

    def test_plain_propagation_is_the_compiled_kernel(self, mini_graph):
        compiled = propagate(mini_graph, Seed(asn=100), engine="compiled")
        incremental = propagate(mini_graph, Seed(asn=100), engine="incremental")
        assert isinstance(incremental, CompiledRoutingState)
        assert_states_equal(compiled, incremental, "(engine dispatch)")


# ---------------------------------------------------------------------------
# outcome-level differential: the sweep consumers
# ---------------------------------------------------------------------------

class TestSweepEquivalence:
    @pytest.mark.parametrize("profile,seed", [("tiny", 20200901), ("tiny", 7), ("tiny", 8)])
    @pytest.mark.parametrize("mode", list(LeakMode))
    @pytest.mark.parametrize("semantics", list(PeerLockSemantics))
    def test_resilience_curves_identical(self, profile, seed, mode, semantics):
        graph = netgen_graph(profile, seed=seed)
        tiers = infer_tiers(graph, tier2_count=5, min_tier1_adjacency=1)
        origin = sample_origins(graph, 1, seed=seed)[0]
        leakers = sample_origins(graph, 8, seed=seed + 1)
        for configuration in LEAK_CONFIGURATIONS:
            full = resilience_curve(
                graph, origin, tiers, configuration, leakers,
                mode=mode, semantics=semantics, engine="compiled",
            )
            incremental = resilience_curve(
                graph, origin, tiers, configuration, leakers,
                mode=mode, semantics=semantics, engine="incremental",
            )
            assert incremental == full, (
                f"{configuration} diverged ({profile}, seed={seed}, "
                f"{mode}, {semantics})"
            )

    def test_simulate_leaks_outcomes_identical(self):
        graph = netgen_graph("small", seed=20200901)
        origin = sample_origins(graph, 1, seed=5)[0]
        leakers = [a for a in sample_origins(graph, 10, seed=6) if a != origin]
        full = simulate_leaks(graph, origin, leakers, engine="compiled")
        incremental = simulate_leaks(graph, origin, leakers, engine="incremental")
        # LeakOutcome equality ignores visited_fraction by design
        assert incremental == full
        assert any(
            outcome is not None and outcome.visited_fraction is not None
            for outcome in incremental
        )
        assert all(
            outcome is None or outcome.visited_fraction is None
            for outcome in full
        )

    def test_parallel_incremental_matches_serial(self):
        graph = netgen_graph("tiny", seed=7)
        origin = sample_origins(graph, 1, seed=2)[0]
        leakers = [a for a in sample_origins(graph, 8, seed=3) if a != origin]
        serial = simulate_leaks(graph, origin, leakers, engine="incremental")
        parallel = simulate_leaks(
            graph, origin, leakers, engine="incremental", workers=WORKERS
        )
        assert parallel == serial

    def test_locked_leaker_falls_back_to_full_simulation(self):
        graph = netgen_graph("tiny", seed=20200901)
        origin = sample_origins(graph, 1, seed=4)[0]
        leakers = [a for a in sample_origins(graph, 6, seed=9) if a != origin]
        locked = frozenset(leakers[:2])
        full = simulate_leaks(
            graph, origin, leakers, peer_locked=locked, engine="compiled"
        )
        incremental = simulate_leaks(
            graph, origin, leakers, peer_locked=locked, engine="incremental"
        )
        assert incremental == full
        # the locked leakers took the fallback: no visited instrumentation
        by_leaker = {
            outcome.leaker: outcome
            for outcome in incremental
            if outcome is not None
        }
        for leaker in locked:
            if leaker in by_leaker:
                assert by_leaker[leaker].visited_fraction is None

    def test_single_leak_parity_across_modes(self):
        graph = netgen_graph("tiny", seed=8)
        origin = sample_origins(graph, 1, seed=1)[0]
        leaker = next(
            a for a in sample_origins(graph, 5, seed=11) if a != origin
        )
        for mode in LeakMode:
            full = simulate_leak(
                graph, origin, leaker, mode=mode, engine="compiled"
            )
            incremental = simulate_leak(
                graph, origin, leaker, mode=mode, engine="incremental"
            )
            assert incremental == full, mode

    def test_average_resilience_curve_identical(self):
        graph = netgen_graph("tiny", seed=7)
        full = average_resilience_curve(
            graph, random.Random(42), origins=4, leakers_per_origin=4,
            engine="compiled",
        )
        incremental = average_resilience_curve(
            graph, random.Random(42), origins=4, leakers_per_origin=4,
            engine="incremental",
        )
        assert incremental == full

    def test_lock_coverage_sweep_identical(self):
        graph = netgen_graph("tiny", seed=20200901)
        origin = sample_origins(graph, 1, seed=7)[0]
        leakers = sample_origins(graph, 8, seed=8)
        full = lock_coverage_sweep(
            graph, origin, leakers, coverages=(0.0, 0.5, 1.0),
            rng=random.Random(17), engine="compiled",
        )
        incremental = lock_coverage_sweep(
            graph, origin, leakers, coverages=(0.0, 0.5, 1.0),
            rng=random.Random(17), engine="incremental",
        )
        assert incremental == full


# ---------------------------------------------------------------------------
# the shared-baseline cache
# ---------------------------------------------------------------------------

class TestBaselineCache:
    def test_baseline_for_plain_origin_delegates_to_state_for(self):
        graph = netgen_graph("tiny", seed=7)
        origin = sample_origins(graph, 1, seed=0)[0]
        cache = RoutingStateCache(graph)
        warmed = cache.state_for(origin)
        baseline = cache.baseline_for(Seed(asn=origin))
        assert baseline is warmed
        assert cache.stats().misses == 1
        assert cache.stats().hits == 1

    def test_baseline_for_memoizes_locked_configurations(self):
        graph = netgen_graph("tiny", seed=7)
        nodes = sorted(graph.nodes())
        origin = nodes[0]
        locks = frozenset(nodes[1:4])
        cache = RoutingStateCache(graph)
        seed = Seed(asn=origin, key="origin")
        first = cache.baseline_for(seed, locks, origin)
        second = cache.baseline_for(seed, locks, origin)
        assert second is first
        assert cache.stats() .hits == 1
        # a different lock set is a different baseline
        other = cache.baseline_for(seed, frozenset(nodes[1:2]), origin)
        assert other is not first
        assert cache.stats().misses == 2

    def test_sweep_reuses_cached_baseline(self):
        graph = netgen_graph("tiny", seed=8)
        origin = sample_origins(graph, 1, seed=0)[0]
        leakers = [a for a in sample_origins(graph, 6, seed=1) if a != origin]
        cache = RoutingStateCache(graph, engine="incremental")
        first = simulate_leaks(
            graph, origin, leakers, engine="incremental", cache=cache
        )
        assert cache.stats().misses == 1
        second = simulate_leaks(
            graph, origin, leakers, engine="incremental", cache=cache
        )
        assert cache.stats().misses == 1
        assert cache.stats().hits >= 1
        assert second == first

    def test_reference_engine_cache_is_recompiled_not_crashed(self):
        # a cache built on the reference engine cannot supply compiled
        # baseline arrays; the sweep must recompute instead of failing
        graph = netgen_graph("tiny", seed=7)
        origin = sample_origins(graph, 1, seed=0)[0]
        leakers = [a for a in sample_origins(graph, 4, seed=1) if a != origin]
        cache = RoutingStateCache(graph, engine="reference")
        incremental = simulate_leaks(
            graph, origin, leakers, engine="incremental", cache=cache
        )
        full = simulate_leaks(graph, origin, leakers, engine="compiled")
        assert incremental == full
