"""Property-based tests (hypothesis) for the core routing algorithms.

The central invariants:

* reachability computed three ways (exact BFS, BGP propagation, bitset
  cone engine) always agrees;
* excluding more ASes never increases reachability (constraint nesting);
* every tied-best path produced by the engine is valley-free;
* reliance conserves mass: summed over the origin's first-hop neighbors it
  accounts for every receiver exactly once;
* peer locking never helps a route leak (erratum semantics).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bgpsim import RouteClass, Seed, propagate
from repro.core import (
    ConeEngine,
    path_counts,
    reachable_set,
    reliance_from_state,
    simulate_leak,
)
from repro.topology import ASGraph, Relationship

from .conftest import random_internet

GRAPH_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def graph_from_seed(seed: int) -> ASGraph:
    return random_internet(random.Random(seed))


def pick_origin(graph: ASGraph, seed: int) -> int:
    nodes = sorted(graph.nodes())
    return nodes[seed % len(nodes)]


class TestReachabilityAgreement:
    @GRAPH_SETTINGS
    @given(seed=st.integers(0, 10**6), origin_pick=st.integers(0, 10**6))
    def test_bfs_matches_propagation(self, seed, origin_pick):
        graph = graph_from_seed(seed)
        origin = pick_origin(graph, origin_pick)
        state = propagate(graph, Seed(asn=origin))
        assert reachable_set(graph, origin) == state.reachable_ases()

    @GRAPH_SETTINGS
    @given(
        seed=st.integers(0, 10**6),
        origin_pick=st.integers(0, 10**6),
        excl_seed=st.integers(0, 10**6),
    )
    def test_bfs_matches_propagation_with_exclusions(
        self, seed, origin_pick, excl_seed
    ):
        graph = graph_from_seed(seed)
        origin = pick_origin(graph, origin_pick)
        rng = random.Random(excl_seed)
        others = [a for a in graph.nodes() if a != origin]
        excluded = frozenset(rng.sample(others, k=min(8, len(others))))
        state = propagate(graph, Seed(asn=origin), excluded=excluded)
        assert reachable_set(graph, origin, excluded) == state.reachable_ases()

    @GRAPH_SETTINGS
    @given(seed=st.integers(0, 10**6), origin_pick=st.integers(0, 10**6))
    def test_cone_engine_matches_exact(self, seed, origin_pick):
        graph = graph_from_seed(seed)
        origin = pick_origin(graph, origin_pick)
        tier1 = frozenset(a for a in graph if not graph.providers(a))
        engine = ConeEngine(graph, excluded=tier1)
        expected = len(
            reachable_set(
                graph, origin, (tier1 | graph.providers(origin)) - {origin}
            )
        )
        assert engine.provider_free_count(origin) == expected


class TestMonotonicity:
    @GRAPH_SETTINGS
    @given(
        seed=st.integers(0, 10**6),
        origin_pick=st.integers(0, 10**6),
        excl_seed=st.integers(0, 10**6),
    )
    def test_excluding_more_never_expands_reach(
        self, seed, origin_pick, excl_seed
    ):
        graph = graph_from_seed(seed)
        origin = pick_origin(graph, origin_pick)
        rng = random.Random(excl_seed)
        others = [a for a in graph.nodes() if a != origin]
        smaller = frozenset(rng.sample(others, k=min(4, len(others))))
        larger = smaller | frozenset(
            rng.sample(others, k=min(8, len(others)))
        )
        reach_small = reachable_set(graph, origin, smaller)
        reach_large = reachable_set(graph, origin, larger)
        assert reach_large <= reach_small


class TestValleyFree:
    @staticmethod
    def assert_valley_free(graph: ASGraph, path: tuple[int, ...]) -> None:
        """path is (receiver, ..., origin); traffic flows receiver→origin,
        announcements flow origin→receiver.  Walking from the origin, the
        announcement must climb c2p edges, cross at most one p2p edge, then
        descend p2c edges."""
        hops = list(reversed(path))  # origin first
        phase = "up"
        for sender, receiver in zip(hops, hops[1:]):
            rel = graph.relationship_between(sender, receiver)
            assert rel is not None
            if rel is Relationship.PEER_PEER:
                assert phase == "up"
                phase = "down"
            elif receiver in graph.providers(sender):
                assert phase == "up"
            else:
                assert receiver in graph.customers(sender)
                phase = "down"

    @GRAPH_SETTINGS
    @given(seed=st.integers(0, 10**6), origin_pick=st.integers(0, 10**6))
    def test_enumerated_best_paths_are_valley_free(self, seed, origin_pick):
        graph = graph_from_seed(seed)
        origin = pick_origin(graph, origin_pick)
        state = propagate(graph, Seed(asn=origin))
        for asn in sorted(state.routes)[::5]:
            for path in state.enumerate_best_paths(asn, limit=8):
                self.assert_valley_free(graph, path)

    @GRAPH_SETTINGS
    @given(seed=st.integers(0, 10**6), origin_pick=st.integers(0, 10**6))
    def test_route_class_matches_first_edge(self, seed, origin_pick):
        graph = graph_from_seed(seed)
        origin = pick_origin(graph, origin_pick)
        state = propagate(graph, Seed(asn=origin))
        for asn, route in state.routes.items():
            if asn == origin:
                continue
            for parent in route.parents:
                if route.route_class is RouteClass.CUSTOMER:
                    assert parent in graph.customers(asn)
                elif route.route_class is RouteClass.PEER:
                    assert parent in graph.peers(asn)
                else:
                    assert parent in graph.providers(asn)


class TestRelianceInvariants:
    @GRAPH_SETTINGS
    @given(seed=st.integers(0, 10**6), origin_pick=st.integers(0, 10**6))
    def test_mass_conservation_at_first_hops(self, seed, origin_pick):
        graph = graph_from_seed(seed)
        origin = pick_origin(graph, origin_pick)
        state = propagate(graph, Seed(asn=origin))
        rely = reliance_from_state(state, exact=True)
        receivers = len(state.routes) - 1
        if receivers == 0:
            return
        first_hop_mass = sum(
            value
            for asn, value in rely.items()
            if state.routes[asn].parents == {origin}
        )
        assert first_hop_mass == pytest.approx(receivers)

    @GRAPH_SETTINGS
    @given(seed=st.integers(0, 10**6), origin_pick=st.integers(0, 10**6))
    def test_every_receiver_relies_on_itself(self, seed, origin_pick):
        graph = graph_from_seed(seed)
        origin = pick_origin(graph, origin_pick)
        state = propagate(graph, Seed(asn=origin))
        rely = reliance_from_state(state)
        for asn in state.routes:
            if asn != origin:
                assert rely[asn] >= 1.0 - 1e-9

    @GRAPH_SETTINGS
    @given(seed=st.integers(0, 10**6), origin_pick=st.integers(0, 10**6))
    def test_path_counts_match_enumeration(self, seed, origin_pick):
        graph = graph_from_seed(seed)
        origin = pick_origin(graph, origin_pick)
        state = propagate(graph, Seed(asn=origin))
        counts = path_counts(state)
        for asn in sorted(state.routes)[::7]:
            enumerated = list(state.enumerate_best_paths(asn, limit=10_000))
            assert counts[asn] == len(enumerated)
            assert counts[asn] == state.count_best_paths(asn)


class TestLeakInvariants:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 10**6),
        origin_pick=st.integers(0, 10**6),
        leaker_pick=st.integers(0, 10**6),
    )
    def test_peer_locking_never_hurts(self, seed, origin_pick, leaker_pick):
        graph = graph_from_seed(seed)
        origin = pick_origin(graph, origin_pick)
        nodes = [a for a in sorted(graph.nodes()) if a != origin]
        leaker = nodes[leaker_pick % len(nodes)]
        unlocked = simulate_leak(graph, origin, leaker)
        locked = simulate_leak(
            graph, origin, leaker,
            peer_locked=graph.neighbors(origin),
        )
        if unlocked is None or locked is None:
            return
        assert locked.detoured <= unlocked.detoured

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 10**6),
        origin_pick=st.integers(0, 10**6),
        leaker_pick=st.integers(0, 10**6),
    )
    def test_detoured_never_includes_seeds(self, seed, origin_pick, leaker_pick):
        graph = graph_from_seed(seed)
        origin = pick_origin(graph, origin_pick)
        nodes = [a for a in sorted(graph.nodes()) if a != origin]
        leaker = nodes[leaker_pick % len(nodes)]
        outcome = simulate_leak(graph, origin, leaker)
        if outcome is None:
            return
        assert origin not in outcome.detoured
        assert leaker not in outcome.detoured
        assert 0.0 <= outcome.fraction_detoured <= 1.0
