"""Unit tests for the experiment context plumbing."""

import os

import pytest

from repro.experiments.context import (
    DEFAULT_PROFILE,
    build_context,
    cached_context,
)


class TestCachedContext:
    def test_same_key_returns_same_object(self):
        a = cached_context("tiny", seed=77)
        b = cached_context("tiny", seed=77)
        assert a is b

    def test_different_seed_rebuilds(self):
        a = cached_context("tiny", seed=77)
        b = cached_context("tiny", seed=78)
        assert a is not b

    def test_measure_flag_is_part_of_key(self):
        measured = cached_context("tiny", seed=77, measure=True)
        truth = cached_context("tiny", seed=77, measure=False)
        assert measured is not truth
        assert truth.inferred == {}

    def test_env_profile_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "tiny")
        ctx = cached_context(seed=77)
        assert ctx.scenario.config.name == "tiny"

    def test_default_profile_constant(self):
        assert DEFAULT_PROFILE in ("tiny", "small", "year2020")


class TestBuildContext:
    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            build_context("nope")

    def test_seeded_build_is_deterministic(self):
        a = build_context("tiny", seed=5)
        b = build_context("tiny", seed=5)
        assert set(a.graph.records()) == set(b.graph.records())
        assert {
            c: i.neighbors for c, i in a.inferred.items()
        } == {c: i.neighbors for c, i in b.inferred.items()}
