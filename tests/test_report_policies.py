"""Unit tests for report formatting and bgpsim policy helpers."""

import pytest

from repro.bgpsim import (
    LeakMode,
    Seed,
    hierarchy_only_seed,
    leak_seed,
    origin_seed,
    peer_lock_set,
)
from repro.experiments.report import cdf_summary, format_table, percent

from .conftest import CLOUD, CONTENT, E1, E2, E3, T1B, T2A, T2B


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(
            ("name", "value"), [("a", 1), ("longer", 22)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert "---" in lines[2]
        assert len(lines) == 5

    def test_format_table_empty_rows(self):
        text = format_table(("x",), [])
        assert "x" in text

    def test_percent(self):
        assert percent(0.5) == "50.0%"
        assert percent(0.123456, 2) == "12.35%"

    def test_cdf_summary(self):
        assert cdf_summary([]) == "n=0"
        summary = cdf_summary([0.1, 0.2, 0.3, 0.4])
        assert "n=4" in summary
        assert "median=30.0%" in summary
        assert "max=40.0%" in summary


class TestSeeds:
    def test_origin_seed_defaults(self):
        seed = origin_seed(42)
        assert seed.asn == 42
        assert seed.key == "origin"
        assert seed.initial_length == 0
        assert seed.exports_to(7)

    def test_negative_initial_length_rejected(self):
        with pytest.raises(ValueError):
            Seed(asn=1, initial_length=-1)

    def test_hierarchy_only_seed_restricts_exports(self, mini):
        graph, tiers = mini
        seed = hierarchy_only_seed(graph, CLOUD, tiers)
        assert seed.exports_to(T2A)  # provider
        assert seed.exports_to(T2B)  # Tier-2 peer
        assert seed.exports_to(T1B)  # Tier-1 peer
        assert not seed.exports_to(E1)  # edge peer excluded
        assert not seed.exports_to(E2)

    def test_leak_seed_reannounce_uses_path_length(self, mini_graph):
        seed = leak_seed(mini_graph, CLOUD, CONTENT)
        assert seed.key == "leak"
        assert seed.initial_length == 2  # CONTENT's best path to the cloud

    def test_leak_seed_hijack_is_zero(self, mini_graph):
        seed = leak_seed(mini_graph, CLOUD, E3, mode=LeakMode.HIJACK)
        assert seed.initial_length == 0

    def test_leak_seed_without_route_raises(self, mini_graph):
        g = mini_graph.copy()
        g.add_as(999)
        with pytest.raises(ValueError, match="no route"):
            leak_seed(g, CLOUD, 999)

    def test_leak_seed_explicit_length(self, mini_graph):
        seed = leak_seed(mini_graph, CLOUD, CONTENT, legit_path_length=5)
        assert seed.initial_length == 5


class TestPeerLockSets:
    def test_scopes(self, mini):
        graph, tiers = mini
        assert peer_lock_set(graph, CLOUD, tiers, "none") == frozenset()
        assert peer_lock_set(graph, CLOUD, tiers, "tier1") == {T1B}
        assert peer_lock_set(graph, CLOUD, tiers, "tier1+tier2") == {
            T1B, T2A, T2B,
        }
        assert peer_lock_set(graph, CLOUD, tiers, "all") == graph.neighbors(
            CLOUD
        )

    def test_unknown_scope(self, mini):
        graph, tiers = mini
        with pytest.raises(ValueError):
            peer_lock_set(graph, CLOUD, tiers, "everything")
