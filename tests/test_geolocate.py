"""Unit tests for the Appendix D geolocation pipeline."""

import random

import pytest

from repro.geo import (
    AtlasVP,
    Geolocator,
    PingSimulator,
    RTT_THRESHOLD_MS,
    atlas_from_scenario,
    city_by_code,
    geolocate_routers,
    rtt_floor_ms,
)
from repro.mapping import peeringdb_from_scenario, resolver_from_scenario
from repro.netgen import build_scenario, tiny
from repro.pops import generate_footprint


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(tiny())


@pytest.fixture(scope="module")
def footprint(scenario):
    return generate_footprint(scenario, "Hurricane Electric", random.Random(5))


@pytest.fixture(scope="module")
def geolocator(scenario, footprint):
    rng = random.Random(9)
    vps = atlas_from_scenario(scenario, rng, vps_per_city=2)
    pinger = PingSimulator.from_routers(footprint.routers, rng, loss_rate=0.0)
    return Geolocator(
        peeringdb=peeringdb_from_scenario(scenario),
        resolver=resolver_from_scenario(scenario),
        vps=vps,
        pinger=pinger,
    )


class TestAtlasVPs:
    def test_vps_deployed_in_access_cities(self, scenario):
        vps = atlas_from_scenario(scenario, random.Random(1))
        assert vps
        access_cities = {
            info.home_city.code
            for info in scenario.as_info.values()
            if info.kind.value == "access"
        }
        for vp in vps:
            assert vp.city.code in access_cities

    def test_suspicious_vps_exist_and_are_detected(self, scenario):
        vps = atlas_from_scenario(
            scenario, random.Random(1), suspicious_rate=0.5
        )
        assert any(vp.suspicious for vp in vps)
        assert any(not vp.suspicious for vp in vps)


class TestPingSimulator:
    def test_rtt_grows_with_distance(self, footprint):
        rng = random.Random(0)
        pinger = PingSimulator.from_routers(
            footprint.routers, rng, loss_rate=0.0, jitter_ms=0.0
        )
        router = footprint.routers[0]
        ip = router.interfaces[0]
        near_vp = AtlasVP(0, 1, router.city, router.city)
        far_city = city_by_code("syd" if router.city.code != "syd" else "lon")
        far_vp = AtlasVP(1, 1, far_city, far_city)
        near = pinger.rtt_ms(near_vp, ip)
        far = pinger.rtt_ms(far_vp, ip)
        assert near == pytest.approx(0.0, abs=1e-6)
        assert far > RTT_THRESHOLD_MS

    def test_unknown_target_is_lost(self, footprint):
        pinger = PingSimulator({}, random.Random(0))
        vp = AtlasVP(0, 1, city_by_code("lon"), city_by_code("lon"))
        assert pinger.rtt_ms(vp, "203.0.113.9") is None

    def test_threshold_matches_100km(self):
        # the paper's 1 ms bound corresponds to ~100 km in fiber
        assert rtt_floor_ms(100) > RTT_THRESHOLD_MS
        assert rtt_floor_ms(60) < RTT_THRESHOLD_MS


class TestGeolocation:
    def test_candidates_come_from_peeringdb(self, geolocator, footprint):
        ip = footprint.routers[0].interfaces[0]
        candidates = geolocator.candidates(ip)
        assert set(candidates) <= {
            c.code for c in footprint.cities()
        } | set(candidates)  # facility subset sampling keeps most
        assert candidates

    def test_rdns_hint_narrows_candidates(self, scenario, footprint):
        rng = random.Random(9)
        ip = footprint.routers[0].interfaces[0]
        true_code = footprint.routers[0].city.code
        geolocator = Geolocator(
            peeringdb=peeringdb_from_scenario(scenario),
            resolver=resolver_from_scenario(scenario),
            vps=atlas_from_scenario(scenario, rng),
            pinger=PingSimulator.from_routers(footprint.routers, rng),
            rdns_hint=lambda _ip: true_code,
        )
        assert geolocator.candidates(ip) == (true_code,)

    def test_located_answers_are_accurate(self, geolocator, footprint):
        rng = random.Random(4)
        summary = geolocate_routers(
            geolocator, footprint.routers[:30], rng
        )
        assert summary["total"] == sum(
            len(r.interfaces) for r in footprint.routers[:30]
        )
        # located answers are (nearly) always the true city — the RTT
        # test cannot pass for a VP ~100 km from the target
        if summary["coverage"] > 0:
            assert summary["accuracy"] > 0.9

    def test_unresolvable_address_has_no_candidates(self, geolocator):
        result = geolocator.geolocate("203.0.113.77")
        assert not result.located
        assert result.candidates == ()

    def test_suspicious_vps_never_used(self, scenario, footprint):
        rng = random.Random(9)
        vps = atlas_from_scenario(scenario, rng, suspicious_rate=1.0)
        geolocator = Geolocator(
            peeringdb=peeringdb_from_scenario(scenario),
            resolver=resolver_from_scenario(scenario),
            vps=vps,
            pinger=PingSimulator.from_routers(footprint.routers, rng),
        )
        ip = footprint.routers[0].interfaces[0]
        result = geolocator.geolocate(ip)
        assert not result.located  # every VP was suspicious → none usable

    def test_presence_restriction(self, scenario, footprint):
        rng = random.Random(9)
        vps = atlas_from_scenario(scenario, rng)
        geolocator = Geolocator(
            peeringdb=peeringdb_from_scenario(scenario),
            resolver=resolver_from_scenario(scenario),
            vps=vps,
            pinger=PingSimulator.from_routers(footprint.routers, rng),
            presence={
                code: frozenset()  # nobody is present anywhere
                for code in {c.code for c in footprint.cities()}
            },
        )
        ip = footprint.routers[0].interfaces[0]
        assert not geolocator.geolocate(ip).located
